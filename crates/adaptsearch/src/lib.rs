//! AdaptSearch: adaptive prefix filtering for ad-hoc set-similarity
//! search, after Wang, Li & Feng ("Can we beat the prefix filtering?",
//! SIGMOD 2012) — the competitor of the paper's Section 7.
//!
//! Rankings are treated as plain sets under a global total order (items
//! sorted by corpus frequency, rarest first). The **delta inverted index**
//! stores, for every item, the rankings in which the item occupies prefix
//! position `ℓ` of the reordered record — the incremental (`delta`) lists
//! whose unions form the ℓ-prefix indices of AdaptJoin.
//!
//! At query time the required overlap `c` follows from the Footrule
//! overlap bound (`ω` of the paper's Section 6.1, the same quantity the
//! authors plug into their AdaptSearch implementation). The *ℓ-prefix
//! scheme* then states: a ranking overlapping the query in `≥ c` items
//! shares at least `ℓ` items with the query within both `(k − c + ℓ)`-
//! prefixes. Larger `ℓ` means longer prefixes (more postings scanned) but
//! stronger filtering (count threshold `ℓ`); the cost model picks the
//! sweet spot per query:
//!
//! ```text
//! cost(ℓ) = posting_cost · S(ℓ) + candidate_cost · S(ℓ)/ℓ
//! ```
//!
//! where `S(ℓ)` is the total number of postings in the probed delta lists
//! (computable in O(k) from per-item offset arrays) and `S(ℓ)/ℓ` is a
//! sound upper bound on the candidate count (every surviving candidate
//! consumes at least `ℓ` postings).

use ranksim_invindex::drop::omega;
use ranksim_rankings::hash::{fx_map_with_capacity, FxHashMap};
use ranksim_rankings::{ItemId, PositionMap, QueryStats, RankingId, RankingStore};

/// Cost-model constants for the adaptive prefix-length choice.
#[derive(Debug, Clone, Copy)]
pub struct AdaptCostParams {
    /// Cost of scanning one posting.
    pub posting_cost: f64,
    /// Cost of verifying one candidate (hash aggregation + Footrule).
    pub candidate_cost: f64,
}

impl Default for AdaptCostParams {
    fn default() -> Self {
        // Verification is roughly an order of magnitude more expensive
        // than streaming one posting; the exact ratio only shifts the
        // chosen ℓ by ±1 and can be calibrated by the caller.
        AdaptCostParams {
            posting_cost: 1.0,
            candidate_cost: 12.0,
        }
    }
}

/// Per-item delta lists in a blocked layout: postings sorted by prefix
/// position with `k + 1` offsets.
#[derive(Debug, Clone)]
struct DeltaList {
    ids: Vec<RankingId>,
    offsets: Vec<u32>,
}

/// The delta inverted index plus the global frequency order.
#[derive(Debug, Clone)]
pub struct AdaptSearchIndex {
    k: usize,
    /// Corpus frequency of every item (defines the global order).
    freq: FxHashMap<ItemId, u32>,
    delta: FxHashMap<ItemId, DeltaList>,
    indexed: usize,
    params: AdaptCostParams,
}

impl AdaptSearchIndex {
    /// Indexes every ranking of the store with default cost parameters.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_with(store, AdaptCostParams::default())
    }

    /// Indexes every ranking of the store.
    pub fn build_with(store: &RankingStore, params: AdaptCostParams) -> Self {
        let k = store.k();
        // Pass 1: global item frequencies.
        let mut freq: FxHashMap<ItemId, u32> = fx_map_with_capacity(1024);
        for id in store.ids() {
            for &item in store.items(id) {
                *freq.entry(item).or_insert(0) += 1;
            }
        }
        // Pass 2: reorder each record by (freq, item) and fill delta lists.
        let mut staging: FxHashMap<ItemId, Vec<(u32, RankingId)>> =
            fx_map_with_capacity(freq.len());
        let mut record: Vec<ItemId> = Vec::with_capacity(k);
        for id in store.ids() {
            record.clear();
            record.extend_from_slice(store.items(id));
            record.sort_unstable_by_key(|i| (freq[i], *i));
            for (pos, &item) in record.iter().enumerate() {
                staging.entry(item).or_default().push((pos as u32, id));
            }
        }
        let mut delta = fx_map_with_capacity(staging.len());
        for (item, mut postings) in staging {
            postings.sort_unstable_by_key(|&(pos, id)| (pos, id.0));
            let mut offsets = Vec::with_capacity(k + 1);
            let mut ids = Vec::with_capacity(postings.len());
            let mut cursor = 0usize;
            for pos in 0..k as u32 {
                offsets.push(cursor as u32);
                while cursor < postings.len() && postings[cursor].0 == pos {
                    ids.push(postings[cursor].1);
                    cursor += 1;
                }
            }
            offsets.push(cursor as u32);
            delta.insert(item, DeltaList { ids, offsets });
        }
        AdaptSearchIndex {
            k,
            freq,
            delta,
            indexed: store.len(),
            params,
        }
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// The query items sorted by the global (frequency, id) order; unseen
    /// items have frequency 0 and sort to the front (rarest).
    fn reorder_query(&self, query: &[ItemId]) -> Vec<ItemId> {
        let mut q: Vec<ItemId> = query.to_vec();
        q.sort_unstable_by_key(|i| (self.freq.get(i).copied().unwrap_or(0), *i));
        q
    }

    /// `S(ℓ)`: postings in delta lists `1..=k−c+ℓ` of the first `k−c+ℓ`
    /// query-prefix items.
    fn scan_volume(&self, qsorted: &[ItemId], prefix_len: usize) -> u64 {
        let mut total = 0u64;
        for &item in &qsorted[..prefix_len] {
            if let Some(dl) = self.delta.get(&item) {
                total += dl.offsets[prefix_len] as u64;
            }
        }
        total
    }

    /// Picks the prefix extension `ℓ ∈ 1..=c` minimizing the modeled cost.
    fn choose_ell(&self, qsorted: &[ItemId], c: usize) -> usize {
        let mut best = (1usize, f64::INFINITY);
        for ell in 1..=c {
            let prefix_len = (self.k - c + ell).min(self.k);
            let s = self.scan_volume(qsorted, prefix_len) as f64;
            let cost = self.params.posting_cost * s + self.params.candidate_cost * (s / ell as f64);
            if cost < best.1 {
                best = (ell, cost);
            }
        }
        best.0
    }

    /// AdaptSearch: all indexed rankings within `theta_raw` of the query.
    pub fn search(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        debug_assert_eq!(self.k, query.len());
        // Required overlap from the Footrule bound; every result overlaps
        // the query in at least one item for θ < d_max, hence max(1, ω).
        let c = omega(self.k, theta_raw).max(1);
        let qsorted = self.reorder_query(query);
        let ell = self.choose_ell(&qsorted, c);
        let prefix_len = (self.k - c + ell).min(self.k);

        // Probe phase: count prefix co-occurrences per candidate.
        let mut counts: FxHashMap<u32, u32> = fx_map_with_capacity(256);
        for &item in &qsorted[..prefix_len] {
            if let Some(dl) = self.delta.get(&item) {
                let end = dl.offsets[prefix_len] as usize;
                stats.count_list(end);
                for &id in &dl.ids[..end] {
                    *counts.entry(id.0).or_insert(0) += 1;
                }
            } else {
                stats.count_list(0);
            }
        }

        // Verify phase: Footrule per candidate passing the count filter.
        let qmap = PositionMap::new(query);
        let mut out = Vec::new();
        for (id, cnt) in counts {
            if (cnt as usize) < ell {
                continue;
            }
            stats.candidates += 1;
            stats.count_distance();
            if qmap.distance_to(store.items(RankingId(id))) <= theta_raw {
                out.push(RankingId(id));
            }
        }
        stats.results += out.len() as u64;
        out
    }

    /// Approximate heap footprint in bytes (Table 6's "Delta Inverted
    /// Index" row).
    pub fn heap_bytes(&self) -> usize {
        let freq = self.freq.capacity() * (std::mem::size_of::<ItemId>() + 4);
        let buckets = self.delta.capacity()
            * (std::mem::size_of::<ItemId>() + std::mem::size_of::<DeltaList>());
        let payload: usize = self
            .delta
            .values()
            .map(|d| d.ids.capacity() * 4 + d.offsets.capacity() * 4)
            .sum();
        freq + buckets + payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use ranksim_rankings::raw_threshold;

    fn random_store(n: usize, k: usize, domain: u32, seed: u64) -> RankingStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = RankingStore::with_capacity(k, n);
        let mut base: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            let items: Vec<u32> = if !base.is_empty() && rng.random_bool(0.5) {
                let mut items = base[rng.random_range(0..base.len())].clone();
                let a = rng.random_range(0..k);
                let b = rng.random_range(0..k);
                items.swap(a, b);
                if rng.random_bool(0.4) {
                    let p = rng.random_range(0..k);
                    let mut cand = rng.random_range(0..domain);
                    while items.contains(&cand) {
                        cand = rng.random_range(0..domain);
                    }
                    items[p] = cand;
                }
                items
            } else {
                let mut pool: Vec<u32> = (0..domain).collect();
                pool.shuffle(&mut rng);
                pool.truncate(k);
                pool
            };
            if i % 4 == 0 {
                base.push(items.clone());
            }
            let ids: Vec<ItemId> = items.into_iter().map(ItemId).collect();
            store.push_items_unchecked(&ids);
        }
        store
    }

    fn scan(store: &RankingStore, query: &[ItemId], theta_raw: u32) -> Vec<RankingId> {
        let q = PositionMap::new(query);
        store
            .ids()
            .filter(|&id| q.distance_to(store.items(id)) <= theta_raw)
            .collect()
    }

    #[test]
    fn adaptsearch_equals_scan() {
        let store = random_store(400, 7, 60, 77);
        let index = AdaptSearchIndex::build(&store);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..15 {
            let base = rng.random_range(0..400u32);
            let mut q: Vec<ItemId> = store.items(RankingId(base)).to_vec();
            q.swap(0, 3);
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let mut got = index.search(&store, &q, raw, &mut stats);
                let mut expect = scan(&store, &q, raw);
                got.sort_unstable();
                expect.sort_unstable();
                assert_eq!(got, expect, "θ={theta}");
            }
        }
    }

    #[test]
    fn prefix_probing_scans_fewer_postings_than_full_index() {
        let store = random_store(600, 10, 100, 99);
        let index = AdaptSearchIndex::build(&store);
        let q: Vec<ItemId> = store.items(RankingId(11)).to_vec();
        let raw = raw_threshold(0.1, 10);
        let mut stats = QueryStats::new();
        let _ = index.search(&store, &q, raw, &mut stats);
        let full: u64 = q
            .iter()
            .map(|i| index.freq.get(i).copied().unwrap_or(0) as u64)
            .sum();
        assert!(
            stats.entries_scanned < full,
            "prefix probing ({}) must beat scanning all k lists ({full})",
            stats.entries_scanned
        );
    }

    #[test]
    fn exact_search_uses_maximal_filtering() {
        // θ = 0 ⇒ c = k ⇒ prefix length ℓ with strong count filter; all
        // returned rankings equal the query.
        let store = random_store(300, 6, 50, 55);
        let index = AdaptSearchIndex::build(&store);
        let q: Vec<ItemId> = store.items(RankingId(8)).to_vec();
        let mut stats = QueryStats::new();
        let got = index.search(&store, &q, 0, &mut stats);
        assert!(got.contains(&RankingId(8)));
        for id in got {
            assert_eq!(store.items(id), q.as_slice());
        }
    }

    #[test]
    fn cost_model_prefers_small_scan_volume() {
        let store = random_store(500, 8, 70, 31);
        let index = AdaptSearchIndex::build(&store);
        let q: Vec<ItemId> = store.items(RankingId(0)).to_vec();
        let qsorted = index.reorder_query(&q);
        // S(ℓ) grows with prefix length.
        let c = 4usize;
        let mut prev = 0u64;
        for ell in 1..=c {
            let s = index.scan_volume(&qsorted, 8 - c + ell);
            assert!(s >= prev);
            prev = s;
        }
        let ell = index.choose_ell(&qsorted, c);
        assert!((1..=c).contains(&ell));
    }

    #[test]
    fn disjoint_query_returns_empty() {
        let store = random_store(100, 5, 30, 3);
        let index = AdaptSearchIndex::build(&store);
        let q: Vec<ItemId> = (500..505u32).map(ItemId).collect();
        let mut stats = QueryStats::new();
        assert!(index.search(&store, &q, 8, &mut stats).is_empty());
    }
}
