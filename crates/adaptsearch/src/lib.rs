//! AdaptSearch: adaptive prefix filtering for ad-hoc set-similarity
//! search, after Wang, Li & Feng ("Can we beat the prefix filtering?",
//! SIGMOD 2012) — the competitor of the paper's Section 7.
//!
//! Rankings are treated as plain sets under a global total order (items
//! sorted by corpus frequency, rarest first). The **delta inverted index**
//! stores, for every item, the rankings in which the item occupies prefix
//! position `ℓ` of the reordered record — the incremental (`delta`) lists
//! whose unions form the ℓ-prefix indices of AdaptJoin.
//!
//! At query time the required overlap `c` follows from the Footrule
//! overlap bound (`ω` of the paper's Section 6.1, the same quantity the
//! authors plug into their AdaptSearch implementation). The *ℓ-prefix
//! scheme* then states: a ranking overlapping the query in `≥ c` items
//! shares at least `ℓ` items with the query within both `(k − c + ℓ)`-
//! prefixes. Larger `ℓ` means longer prefixes (more postings scanned) but
//! stronger filtering (count threshold `ℓ`); the cost model picks the
//! sweet spot per query:
//!
//! ```text
//! cost(ℓ) = posting_cost · S(ℓ) + candidate_cost · S(ℓ)/ℓ
//! ```
//!
//! where `S(ℓ)` is the total number of postings in the probed delta lists
//! (computable in O(k) from per-item offset arrays) and `S(ℓ)/ℓ` is a
//! sound upper bound on the candidate count (every surviving candidate
//! consumes at least `ℓ` postings).
//!
//! The delta lists live in one CSR arena (a contiguous posting-id array
//! plus `k + 1` absolute prefix-position offsets per dense item, like the
//! blocked inverted index), and the per-query candidate counts accumulate
//! in the epoch-versioned [`QueryScratch`] counter — the query hot path
//! performs no hashing and, in steady state, no heap allocation.

use std::sync::Arc;

use ranksim_invindex::drop::omega;
use ranksim_invindex::{rank_window, validate_rank_sorted, PostingOrder};
use ranksim_rankings::{
    ExecStats, ItemId, ItemRemap, Kernel, QueryExecutor, QueryScratch, QueryStats, RankingId,
    RankingStore,
};

/// Cost-model constants for the adaptive prefix-length choice.
#[derive(Debug, Clone, Copy)]
pub struct AdaptCostParams {
    /// Cost of scanning one posting.
    pub posting_cost: f64,
    /// Cost of verifying one candidate (count aggregation + Footrule).
    pub candidate_cost: f64,
}

impl Default for AdaptCostParams {
    fn default() -> Self {
        // Verification is roughly an order of magnitude more expensive
        // than streaming one posting; the exact ratio only shifts the
        // chosen ℓ by ±1 and can be calibrated by the caller.
        AdaptCostParams {
            posting_cost: 1.0,
            candidate_cost: 12.0,
        }
    }
}

/// The delta inverted index plus the global frequency order.
#[derive(Debug, Clone)]
pub struct AdaptSearchIndex {
    k: usize,
    remap: Arc<ItemRemap>,
    /// Corpus frequency per dense item id (defines the global order).
    freq: Vec<u32>,
    /// All delta postings, item-major, prefix-position-major within each
    /// item.
    ids: Vec<RankingId>,
    /// Parallel plane of the item's **store rank** in each posting's
    /// ranking; empty under [`PostingOrder::Id`].
    ranks: Vec<u32>,
    /// `k + 1` absolute offsets per dense item into `ids`; the layout of
    /// the blocked inverted index with prefix positions instead of ranks.
    pos_offsets: Vec<u32>,
    indexed: usize,
    params: AdaptCostParams,
    order: PostingOrder,
}

impl AdaptSearchIndex {
    /// Indexes every ranking of the store with default cost parameters.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_with(store, AdaptCostParams::default())
    }

    /// Indexes every ranking of the store.
    pub fn build_with(store: &RankingStore, params: AdaptCostParams) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), params)
    }

    /// Indexes every ranking of the store against a shared corpus remap.
    pub fn build_with_remap(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        params: AdaptCostParams,
    ) -> Self {
        Self::build_with_remap_ordered(store, remap, params, PostingOrder::default())
    }

    /// Like [`AdaptSearchIndex::build_with_remap`] with an explicit
    /// per-run posting order. Under [`PostingOrder::SuffixBound`] every
    /// `(item, prefix position)` run carries a parallel store-rank plane
    /// and is sorted by `(rank, id)`, so the probe phase can window each
    /// run to ranks within θ of the item's query rank: a shared item at
    /// candidate rank `r` contributes at least `|r − q(i)|` to the
    /// Footrule distance, so a true result loses **no** probe counts to
    /// the window and the count filter stays sound.
    pub fn build_with_remap_ordered(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        params: AdaptCostParams,
        order: PostingOrder,
    ) -> Self {
        let k = store.k();
        let m = remap.len();
        let stride = k + 1;
        // Pass 1: global item frequencies by dense id.
        let mut freq = vec![0u32; m];
        for id in store.live_ids() {
            for &item in store.items(id) {
                // Unmapped items have no dense frequency slot; they are
                // dropped from the reordered records below, so skipping
                // them here keeps both passes consistent.
                let Some(d) = remap.dense(item) else { continue };
                freq[d as usize] += 1;
            }
        }
        // Pass 2: count (dense item, prefix position) occurrences; records
        // are reordered by (freq, item id) — the dense id and the item's
        // store rank ride along so the fill passes need no extra lookups.
        let mut pos_offsets = vec![0u32; m * stride + 1];
        let mut record: Vec<(u32, ItemId, u32, u32)> = Vec::with_capacity(k);
        let reorder =
            |record: &mut Vec<(u32, ItemId, u32, u32)>, items: &[ItemId]| {
                record.clear();
                // Items without a dense coordinate can carry no posting, so
                // they are dropped rather than aborting the build; dropping
                // only moves the ranking's mapped items into *earlier* delta
                // lists, which can never lose a candidate at query time.
                record.extend(items.iter().enumerate().filter_map(|(r, &i)| {
                    remap.dense(i).map(|d| (freq[d as usize], i, d, r as u32))
                }));
                record.sort_unstable();
            };
        for id in store.live_ids() {
            reorder(&mut record, store.items(id));
            for (pos, &(_, _, d, _)) in record.iter().enumerate() {
                pos_offsets[d as usize * stride + pos + 1] += 1;
            }
        }
        for i in 1..pos_offsets.len() {
            pos_offsets[i] += pos_offsets[i - 1];
        }
        let total = *pos_offsets.last().unwrap_or(&0) as usize;
        let mut cursors: Vec<u32> = pos_offsets[..m * stride].to_vec();
        let mut ids = vec![RankingId(0); total];
        let mut ranks = if order == PostingOrder::SuffixBound {
            vec![0u32; total]
        } else {
            Vec::new()
        };
        // Pass 3: fill; iterating store ids ascending keeps every
        // (item, position) run id-sorted.
        for id in store.live_ids() {
            reorder(&mut record, store.items(id));
            for (pos, &(_, _, d, store_rank)) in record.iter().enumerate() {
                let c = &mut cursors[d as usize * stride + pos];
                ids[*c as usize] = id;
                if order == PostingOrder::SuffixBound {
                    ranks[*c as usize] = store_rank;
                }
                *c += 1;
            }
        }
        if order == PostingOrder::SuffixBound {
            // Re-sort each (item, position) run by (rank, id). The strided
            // offsets array's phantom per-item tail windows are empty, so
            // treating every consecutive window as a run is safe.
            let mut tmp: Vec<(u32, RankingId)> = Vec::new();
            for w in 0..m * stride {
                let (s, e) = (pos_offsets[w] as usize, pos_offsets[w + 1] as usize);
                if e - s < 2 {
                    continue;
                }
                tmp.clear();
                tmp.extend(ranks[s..e].iter().copied().zip(ids[s..e].iter().copied()));
                tmp.sort_unstable();
                for (i, &(r, id)) in tmp.iter().enumerate() {
                    ranks[s + i] = r;
                    ids[s + i] = id;
                }
            }
        }
        AdaptSearchIndex {
            k,
            remap,
            freq,
            ids,
            ranks,
            pos_offsets,
            indexed: store.live_len(),
            params,
            order,
        }
    }

    /// The per-run posting order the index was built with.
    #[inline]
    pub fn order(&self) -> PostingOrder {
        self.order
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// The shared item remap backing the CSR layout.
    #[inline]
    pub fn remap(&self) -> &Arc<ItemRemap> {
        &self.remap
    }

    /// Corpus frequency of `item` (0 if unseen).
    #[inline]
    pub fn item_freq(&self, item: ItemId) -> u32 {
        self.remap
            .dense(item)
            .map(|d| self.freq[d as usize])
            .unwrap_or(0)
    }

    /// The query items sorted by the global (frequency, id) order; unseen
    /// items have frequency 0 and sort to the front (rarest).
    fn reorder_query_into(&self, query: &[ItemId], out: &mut Vec<ItemId>) {
        out.clear();
        out.extend_from_slice(query);
        out.sort_unstable_by_key(|&i| (self.item_freq(i), i.0));
    }

    /// Postings of `item`'s delta lists `0..prefix_len` (the item's
    /// ℓ-prefix slice of the CSR arena); empty if the item is unseen.
    #[inline]
    fn prefix_slice(&self, item: ItemId, prefix_len: usize) -> &[RankingId] {
        match self.remap.dense(item) {
            Some(d) => {
                let base = d as usize * (self.k + 1);
                let lo = self.pos_offsets[base] as usize;
                let hi = self.pos_offsets[base + prefix_len] as usize;
                &self.ids[lo..hi]
            }
            None => &[],
        }
    }

    /// `S(ℓ)`: postings in delta lists `1..=k−c+ℓ` of the first `k−c+ℓ`
    /// query-prefix items.
    fn scan_volume(&self, qsorted: &[ItemId], prefix_len: usize) -> u64 {
        qsorted[..prefix_len]
            .iter()
            .map(|&item| self.prefix_slice(item, prefix_len).len() as u64)
            .sum()
    }

    /// Picks the prefix extension `ℓ ∈ 1..=c` minimizing the modeled cost.
    fn choose_ell(&self, qsorted: &[ItemId], c: usize) -> usize {
        let mut best = (1usize, f64::INFINITY);
        for ell in 1..=c {
            let prefix_len = (self.k - c + ell).min(self.k);
            let s = self.scan_volume(qsorted, prefix_len) as f64;
            let cost = self.params.posting_cost * s + self.params.candidate_cost * (s / ell as f64);
            if cost < best.1 {
                best = (ell, cost);
            }
        }
        best.0
    }

    /// AdaptSearch: all indexed rankings within `theta_raw` of the query.
    pub fn search(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.search_into(
            store,
            query,
            theta_raw,
            Kernel::default(),
            &mut scratch,
            stats,
            &mut out,
        );
        out
    }

    /// Scratch-reusing AdaptSearch; appends results to `out`.
    #[allow(clippy::too_many_arguments)]
    pub fn search_into(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        kernel: Kernel,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        debug_assert_eq!(self.k, query.len());
        // Required overlap from the Footrule bound; every result overlaps
        // the query in at least one item for θ < d_max, hence max(1, ω).
        let c = omega(self.k, theta_raw).max(1);
        let QueryScratch {
            qmap,
            counts,
            qsorted,
            ..
        } = scratch;
        self.reorder_query_into(query, qsorted);
        let ell = self.choose_ell(qsorted, c);
        let prefix_len = (self.k - c + ell).min(self.k);
        qmap.build(&self.remap, query);

        // Probe phase: count prefix co-occurrences per candidate. Under
        // the suffix-bound order each run is windowed to store ranks
        // within θ of the item's query rank: a true result's shared items
        // all satisfy |r − q(i)| ≤ dist ≤ θ, so its count never drops and
        // the ℓ filter below stays sound — only non-results lose counts.
        counts.begin(store.len());
        if self.order == PostingOrder::SuffixBound {
            let stride = self.k + 1;
            for &item in &qsorted[..prefix_len] {
                let Some(d) = self.remap.dense(item) else {
                    stats.count_list(0);
                    continue;
                };
                // Mapped query items always get a rank in `qmap.build`.
                let q_rank =
                    qmap.rank_of(&self.remap, item)
                        .expect("mapped query item has a recorded rank") as u32;
                let base = d as usize * stride;
                let mut scanned = 0usize;
                let mut skipped = 0usize;
                for pos in 0..prefix_len {
                    let lo = self.pos_offsets[base + pos] as usize;
                    let hi = self.pos_offsets[base + pos + 1] as usize;
                    let (s, e) = rank_window(&self.ranks[lo..hi], q_rank, theta_raw);
                    scanned += e - s;
                    skipped += (hi - lo) - (e - s);
                    for &id in &self.ids[lo + s..lo + e] {
                        *counts.probe(id.0) += 1;
                    }
                }
                stats.count_list(scanned);
                stats.postings_skipped += skipped as u64;
            }
        } else {
            for &item in &qsorted[..prefix_len] {
                let slice = self.prefix_slice(item, prefix_len);
                stats.count_list(slice.len());
                for &id in slice {
                    *counts.probe(id.0) += 1;
                }
            }
        }

        // Verify phase: Footrule per candidate passing the count filter.
        let out_start = out.len();
        for &id in counts.keys() {
            let cnt = counts.get(id).expect("counted candidate");
            if (cnt as usize) < ell {
                continue;
            }
            stats.candidates += 1;
            stats.count_distance();
            match qmap.distance_within(&self.remap, store.items(RankingId(id)), theta_raw, kernel) {
                Some(dist) if dist <= theta_raw => out.push(RankingId(id)),
                Some(_) => {}
                None => stats.validations_pruned += 1,
            }
        }
        stats.results += (out.len() - out_start) as u64;
    }

    /// Exact heap footprint in bytes (Table 6's "Delta Inverted Index"
    /// row).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.freq.capacity() * std::mem::size_of::<u32>()
            + self.ids.capacity() * std::mem::size_of::<RankingId>()
            + self.ranks.capacity() * std::mem::size_of::<u32>()
            + self.pos_offsets.capacity() * std::mem::size_of::<u32>()
            + self.remap.heap_bytes()
    }

    /// Decomposes the index into its flat persistence form. The cost
    /// parameters' f64s are persisted as raw bits by the caller.
    #[doc(hidden)]
    pub fn export_parts(&self) -> AdaptIndexParts {
        AdaptIndexParts {
            k: self.k as u32,
            indexed: self.indexed as u32,
            params: self.params,
            order: self.order,
            freq: self.freq.clone(),
            pos_offsets: self.pos_offsets.clone(),
            ids: ranksim_rankings::ranking_vec_into_u32(self.ids.clone()),
            ranks: self.ranks.clone(),
        }
    }

    /// Rebuilds the index from its flat persistence form against the
    /// corpus remap, validating the strided offset invariants.
    #[doc(hidden)]
    pub fn from_parts(parts: AdaptIndexParts, remap: Arc<ItemRemap>) -> Result<Self, String> {
        let k = parts.k as usize;
        if k == 0 {
            return Err("adaptsearch index k must be positive".into());
        }
        let m = remap.len();
        let stride = k + 1;
        if parts.freq.len() != m {
            return Err(format!(
                "frequency table length {} != remap size {m}",
                parts.freq.len()
            ));
        }
        if parts.pos_offsets.len() != m * stride + 1 {
            return Err(format!(
                "prefix offsets length {} != remap size {m} × (k + 1) + 1",
                parts.pos_offsets.len()
            ));
        }
        if parts.pos_offsets.first().copied().unwrap_or(0) != 0 {
            return Err("prefix offsets must start at 0".into());
        }
        if parts.pos_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("prefix offsets not monotone".into());
        }
        let end = parts.pos_offsets.last().copied().unwrap_or(0) as usize;
        if end != parts.ids.len() {
            return Err(format!(
                "prefix offsets end {end} != posting arena length {}",
                parts.ids.len()
            ));
        }
        match parts.order {
            PostingOrder::Id => {
                if !parts.ranks.is_empty() {
                    return Err("id-ordered delta index must not carry a rank plane".into());
                }
            }
            PostingOrder::SuffixBound => {
                if parts.ranks.len() != parts.ids.len() {
                    return Err(format!(
                        "rank plane length {} != posting arena length {}",
                        parts.ranks.len(),
                        parts.ids.len()
                    ));
                }
                if parts.ranks.iter().any(|&r| r as usize >= k) {
                    return Err(format!("delta posting rank out of range (k = {k})"));
                }
                // Validated, never re-sorted on load; the strided offsets
                // double as per-run boundaries (phantom windows are empty).
                validate_rank_sorted(&parts.pos_offsets, &parts.ranks, &parts.ids)?;
            }
        }
        Ok(AdaptSearchIndex {
            k,
            remap,
            freq: parts.freq,
            ids: ranksim_rankings::ranking_vec_from_u32(parts.ids),
            ranks: parts.ranks,
            pos_offsets: parts.pos_offsets,
            indexed: parts.indexed as usize,
            params: parts.params,
            order: parts.order,
        })
    }
}

/// Flat persistence form of an [`AdaptSearchIndex`].
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct AdaptIndexParts {
    pub k: u32,
    pub indexed: u32,
    pub params: AdaptCostParams,
    pub order: PostingOrder,
    pub freq: Vec<u32>,
    pub pos_offsets: Vec<u32>,
    pub ids: Vec<u32>,
    pub ranks: Vec<u32>,
}

/// [`QueryExecutor`] running AdaptSearch over a shared delta index.
pub struct AdaptSearchExecutor {
    index: Arc<AdaptSearchIndex>,
    kernel: Kernel,
}

impl AdaptSearchExecutor {
    /// Wraps a shared delta index with the default distance kernel.
    pub fn new(index: Arc<AdaptSearchIndex>) -> Self {
        Self::with_kernel(index, Kernel::default())
    }

    /// Wraps a shared delta index with an explicit distance kernel for
    /// the verification phase.
    pub fn with_kernel(index: Arc<AdaptSearchIndex>, kernel: Kernel) -> Self {
        AdaptSearchExecutor { index, kernel }
    }
}

impl QueryExecutor for AdaptSearchExecutor {
    fn name(&self) -> &'static str {
        "AdaptSearch"
    }

    fn execute(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> ExecStats {
        let before = *stats;
        self.index
            .search_into(store, query, theta_raw, self.kernel, scratch, stats, out);
        ExecStats::since(&before, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use ranksim_rankings::{raw_threshold, PositionMap};

    fn random_store(n: usize, k: usize, domain: u32, seed: u64) -> RankingStore {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = RankingStore::with_capacity(k, n);
        let mut base: Vec<Vec<u32>> = Vec::new();
        for i in 0..n {
            let items: Vec<u32> = if !base.is_empty() && rng.random_bool(0.5) {
                let mut items = base[rng.random_range(0..base.len())].clone();
                let a = rng.random_range(0..k);
                let b = rng.random_range(0..k);
                items.swap(a, b);
                if rng.random_bool(0.4) {
                    let p = rng.random_range(0..k);
                    let mut cand = rng.random_range(0..domain);
                    while items.contains(&cand) {
                        cand = rng.random_range(0..domain);
                    }
                    items[p] = cand;
                }
                items
            } else {
                let mut pool: Vec<u32> = (0..domain).collect();
                pool.shuffle(&mut rng);
                pool.truncate(k);
                pool
            };
            if i % 4 == 0 {
                base.push(items.clone());
            }
            let ids: Vec<ItemId> = items.into_iter().map(ItemId).collect();
            store.push_items_unchecked(&ids);
        }
        store
    }

    fn scan(store: &RankingStore, query: &[ItemId], theta_raw: u32) -> Vec<RankingId> {
        let q = PositionMap::new(query);
        store
            .ids()
            .filter(|&id| q.distance_to(store.items(id)) <= theta_raw)
            .collect()
    }

    #[test]
    fn partial_remap_degrades_to_empty_delta_lists() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[2, 3, 4].map(ItemId));
        store.push_items_unchecked(&[5, 1, 2].map(ItemId));
        // Items 3 and 4 are missing from the remap: they carry no
        // frequency and no delta-list postings, but the build completes
        // instead of panicking. Semantically the index now believes
        // those items exist in no ranking — a query *containing* an
        // unmapped item may therefore prune candidates that only match
        // through it (in engine use, unmapped query items genuinely are
        // absent from the corpus, so nothing is lost).
        let remap = Arc::new(ItemRemap::from_raw_ids(vec![1, 2, 5]));
        let index = AdaptSearchIndex::build_with_remap(&store, remap, AdaptCostParams::default());
        assert_eq!(index.item_freq(ItemId(1)), 2);
        assert_eq!(index.item_freq(ItemId(2)), 3);
        assert_eq!(index.item_freq(ItemId(3)), 0);
        assert_eq!(index.item_freq(ItemId(4)), 0);
        // Queries of entirely mapped items stay exact: any qualifying
        // overlap necessarily goes through mapped items, and the
        // verification step computes true store distances.
        let mut stats = QueryStats::new();
        for raw in [0u32, 2, 4, 8] {
            let q = [5, 1, 2].map(ItemId);
            let mut got = index.search(&store, &q, raw, &mut stats);
            got.sort_unstable();
            assert_eq!(got, scan(&store, &q, raw), "raw={raw}");
        }
    }

    #[test]
    fn adaptsearch_equals_scan() {
        let store = random_store(400, 7, 60, 77);
        let index = AdaptSearchIndex::build(&store);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..15 {
            let base = rng.random_range(0..400u32);
            let mut q: Vec<ItemId> = store.items(RankingId(base)).to_vec();
            q.swap(0, 3);
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let mut got = index.search(&store, &q, raw, &mut stats);
                let mut expect = scan(&store, &q, raw);
                got.sort_unstable();
                expect.sort_unstable();
                assert_eq!(got, expect, "θ={theta}");
            }
        }
    }

    #[test]
    fn shared_scratch_search_equals_fresh_scratch() {
        let store = random_store(300, 6, 50, 41);
        let index = AdaptSearchIndex::build(&store);
        let mut shared = QueryScratch::new();
        for seed in 0..15u64 {
            let mut q: Vec<ItemId> = store.items(RankingId((seed * 11 % 300) as u32)).to_vec();
            q.swap(0, (seed % 5) as usize + 1);
            let raw = raw_threshold(0.1 * (seed % 4) as f64, 6);
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut got = Vec::new();
            index.search_into(
                &store,
                &q,
                raw,
                Kernel::default(),
                &mut shared,
                &mut s1,
                &mut got,
            );
            let mut expect = index.search(&store, &q, raw, &mut s2);
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect, "seed {seed}");
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn prefix_probing_scans_fewer_postings_than_full_index() {
        let store = random_store(600, 10, 100, 99);
        let index = AdaptSearchIndex::build(&store);
        let q: Vec<ItemId> = store.items(RankingId(11)).to_vec();
        let raw = raw_threshold(0.1, 10);
        let mut stats = QueryStats::new();
        let _ = index.search(&store, &q, raw, &mut stats);
        let full: u64 = q.iter().map(|&i| index.item_freq(i) as u64).sum();
        assert!(
            stats.entries_scanned < full,
            "prefix probing ({}) must beat scanning all k lists ({full})",
            stats.entries_scanned
        );
    }

    #[test]
    fn exact_search_uses_maximal_filtering() {
        // θ = 0 ⇒ c = k ⇒ prefix length ℓ with strong count filter; all
        // returned rankings equal the query.
        let store = random_store(300, 6, 50, 55);
        let index = AdaptSearchIndex::build(&store);
        let q: Vec<ItemId> = store.items(RankingId(8)).to_vec();
        let mut stats = QueryStats::new();
        let got = index.search(&store, &q, 0, &mut stats);
        assert!(got.contains(&RankingId(8)));
        for id in got {
            assert_eq!(store.items(id), q.as_slice());
        }
    }

    #[test]
    fn cost_model_prefers_small_scan_volume() {
        let store = random_store(500, 8, 70, 31);
        let index = AdaptSearchIndex::build(&store);
        let q: Vec<ItemId> = store.items(RankingId(0)).to_vec();
        let mut qsorted = Vec::new();
        index.reorder_query_into(&q, &mut qsorted);
        // S(ℓ) grows with prefix length.
        let c = 4usize;
        let mut prev = 0u64;
        for ell in 1..=c {
            let s = index.scan_volume(&qsorted, 8 - c + ell);
            assert!(s >= prev);
            prev = s;
        }
        let ell = index.choose_ell(&qsorted, c);
        assert!((1..=c).contains(&ell));
    }

    #[test]
    fn every_order_and_kernel_combination_equals_scan() {
        let store = random_store(400, 7, 60, 123);
        let remap = Arc::new(ItemRemap::build(&store));
        let by_id = AdaptSearchIndex::build_with_remap_ordered(
            &store,
            remap.clone(),
            AdaptCostParams::default(),
            PostingOrder::Id,
        );
        let ordered = AdaptSearchIndex::build_with_remap_ordered(
            &store,
            remap,
            AdaptCostParams::default(),
            PostingOrder::SuffixBound,
        );
        assert_eq!(by_id.order(), PostingOrder::Id);
        assert_eq!(ordered.order(), PostingOrder::SuffixBound);
        let mut scratch = QueryScratch::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let base = rng.random_range(0..400u32);
            let mut q: Vec<ItemId> = store.items(RankingId(base)).to_vec();
            q.swap(1, 4);
            for theta in [0.0, 0.1, 0.2, 0.4] {
                let raw = raw_threshold(theta, 7);
                let mut expect = scan(&store, &q, raw);
                expect.sort_unstable();
                for index in [&by_id, &ordered] {
                    for kernel in [Kernel::Scalar, Kernel::Simd] {
                        let mut stats = QueryStats::new();
                        let mut got = Vec::new();
                        index.search_into(
                            &store,
                            &q,
                            raw,
                            kernel,
                            &mut scratch,
                            &mut stats,
                            &mut got,
                        );
                        got.sort_unstable();
                        assert_eq!(
                            got,
                            expect,
                            "order {} kernel {kernel} θ={theta}",
                            index.order()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn suffix_bound_probe_skips_postings_without_losing_results() {
        let store = random_store(500, 10, 90, 321);
        let remap = Arc::new(ItemRemap::build(&store));
        let by_id = AdaptSearchIndex::build_with_remap_ordered(
            &store,
            remap.clone(),
            AdaptCostParams::default(),
            PostingOrder::Id,
        );
        let ordered = AdaptSearchIndex::build_with_remap_ordered(
            &store,
            remap,
            AdaptCostParams::default(),
            PostingOrder::SuffixBound,
        );
        let raw = raw_threshold(0.05, 10);
        let mut scratch = QueryScratch::new();
        let mut skipped_any = false;
        for seed in 0..8u64 {
            let mut q: Vec<ItemId> = store.items(RankingId((seed * 31 % 500) as u32)).to_vec();
            q.swap(0, 2);
            let (mut s_id, mut s_sb) = (QueryStats::new(), QueryStats::new());
            let (mut got_id, mut got_sb) = (Vec::new(), Vec::new());
            by_id.search_into(
                &store,
                &q,
                raw,
                Kernel::Scalar,
                &mut scratch,
                &mut s_id,
                &mut got_id,
            );
            ordered.search_into(
                &store,
                &q,
                raw,
                Kernel::Simd,
                &mut scratch,
                &mut s_sb,
                &mut got_sb,
            );
            got_id.sort_unstable();
            got_sb.sort_unstable();
            assert_eq!(got_id, got_sb, "seed {seed}");
            // The window partitions the unordered probe volume exactly.
            assert_eq!(
                s_sb.entries_scanned + s_sb.postings_skipped,
                s_id.entries_scanned,
                "seed {seed}"
            );
            skipped_any |= s_sb.postings_skipped > 0;
        }
        assert!(skipped_any, "tight θ must window away some delta postings");
    }

    #[test]
    fn ordered_parts_round_trip_validates_rank_plane() {
        let store = random_store(200, 6, 50, 777);
        let remap = Arc::new(ItemRemap::build(&store));
        let ordered = AdaptSearchIndex::build_with_remap_ordered(
            &store,
            remap.clone(),
            AdaptCostParams::default(),
            PostingOrder::SuffixBound,
        );
        let parts = ordered.export_parts();
        assert_eq!(parts.ranks.len(), parts.ids.len());
        let back = AdaptSearchIndex::from_parts(parts.clone(), remap.clone()).expect("round trip");
        assert_eq!(back.order(), PostingOrder::SuffixBound);
        assert_eq!(back.ranks, ordered.ranks);
        assert_eq!(back.ids, ordered.ids);
        // Tampering with the rank plane is rejected, not repaired.
        let mut bad = parts.clone();
        if let Some(w) = (0..bad.pos_offsets.len() - 1)
            .find(|&w| bad.pos_offsets[w + 1] as usize - bad.pos_offsets[w] as usize >= 2)
        {
            let s = bad.pos_offsets[w] as usize;
            bad.ranks.swap(s, s + 1);
            bad.ids.swap(s, s + 1);
            assert!(AdaptSearchIndex::from_parts(bad, remap.clone()).is_err());
        } else {
            panic!("store too small to exercise a multi-entry run");
        }
        // A spurious rank plane on an id-ordered index is rejected too.
        let by_id = AdaptSearchIndex::build_with_remap_ordered(
            &store,
            remap.clone(),
            AdaptCostParams::default(),
            PostingOrder::Id,
        );
        let mut spurious = by_id.export_parts();
        assert!(spurious.ranks.is_empty());
        spurious.ranks = vec![0; spurious.ids.len()];
        assert!(AdaptSearchIndex::from_parts(spurious, remap).is_err());
    }

    #[test]
    fn disjoint_query_returns_empty() {
        let store = random_store(100, 5, 30, 3);
        let index = AdaptSearchIndex::build(&store);
        let q: Vec<ItemId> = (500..505u32).map(ItemId).collect();
        let mut stats = QueryStats::new();
        assert!(index.search(&store, &q, 8, &mut stats).is_empty());
    }
}
