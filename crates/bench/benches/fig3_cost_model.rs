//! Criterion bench for Figure 3: evaluating the analytical cost model
//! (model construction and a full θC sweep must be cheap enough to run
//! at query-planning time).

use criterion::{criterion_group, criterion_main, Criterion};
use ranksim_bench::{fig3, Bench, ExpConfig, Family};

fn bench_cost_model(c: &mut Criterion) {
    let cfg = ExpConfig::small();
    let nyt = Bench::load(&cfg, Family::Nyt, 10);
    let yago = Bench::load(&cfg, Family::Yago, 10);
    let mut g = c.benchmark_group("fig3_cost_model");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("nyt_sweep_theta_c", |b| {
        b.iter(|| std::hint::black_box(fig3(&nyt, 0.2, false)))
    });
    g.bench_function("yago_sweep_theta_c", |b| {
        b.iter(|| std::hint::black_box(fig3(&yago, 0.2, false)))
    });
    g.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
