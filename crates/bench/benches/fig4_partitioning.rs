//! Criterion bench for the Section 4.1 construction step: BK-subtree
//! partitioning (the paper's Figure 1 scheme) vs Chávez–Navarro random
//! medoids, across representative θC settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksim_bench::{Bench, ExpConfig, Family};
use ranksim_metricspace::{BkPartitioner, RandomMedoidPartitioner};
use ranksim_rankings::raw_threshold;

fn bench_partitioning(c: &mut Criterion) {
    let cfg = ExpConfig::small();
    let bench = Bench::load(&cfg, Family::Nyt, 10);
    let store = bench.store();

    let mut g = c.benchmark_group("fig4_partitioning");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for theta_c in [0.05f64, 0.3, 0.5] {
        let raw_c = raw_threshold(theta_c, 10);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("bk_subtrees_theta_c_{theta_c}")),
            &raw_c,
            |b, &raw_c| {
                b.iter(|| {
                    std::hint::black_box(BkPartitioner::partition(store, raw_c).num_partitions())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("random_medoids_theta_c_{theta_c}")),
            &raw_c,
            |b, &raw_c| {
                b.iter(|| {
                    std::hint::black_box(
                        RandomMedoidPartitioner::new(17)
                            .partition(store, raw_c)
                            .num_partitions(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
