//! Criterion bench for Figure 5: M-tree vs BK-tree range queries on the
//! NYT-like corpus (k = 10, θ = 0.1).

use criterion::{criterion_group, criterion_main, Criterion};
use ranksim_bench::{Bench, ExpConfig, Family};
use ranksim_metricspace::{query_pairs, BkTree, MTree, VpTree};
use ranksim_rankings::{raw_threshold, QueryStats};

fn bench_metric_trees(c: &mut Criterion) {
    let cfg = ExpConfig::small();
    let bench = Bench::load(&cfg, Family::Nyt, 10);
    let store = bench.store();
    let raw = raw_threshold(0.1, 10);
    let bk = BkTree::build(store);
    let mtree = MTree::build(store);
    let vp = VpTree::build(store, 5);
    let queries: Vec<_> = bench
        .queries
        .iter()
        .take(20)
        .map(|q| query_pairs(q))
        .collect();

    let mut g = c.benchmark_group("fig5_metric_trees");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("bk_tree", |b| {
        b.iter(|| {
            let mut stats = QueryStats::new();
            let mut n = 0;
            for q in &queries {
                n += bk.range_query(store, q, raw, &mut stats).len();
            }
            std::hint::black_box(n)
        })
    });
    g.bench_function("m_tree", |b| {
        b.iter(|| {
            let mut stats = QueryStats::new();
            let mut n = 0;
            for q in &queries {
                n += mtree.range_query(store, q, raw, &mut stats).len();
            }
            std::hint::black_box(n)
        })
    });
    g.bench_function("vp_tree", |b| {
        b.iter(|| {
            let mut stats = QueryStats::new();
            let mut n = 0;
            for q in &queries {
                n += vp.range_query(store, q, raw, &mut stats).len();
            }
            std::hint::black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_metric_trees);
criterion_main!(benches);
