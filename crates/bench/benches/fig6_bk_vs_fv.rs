//! Criterion bench for Figure 6: BK-tree vs the plain inverted index
//! (F&V) on the NYT-like corpus (k = 10, θ = 0.1).

use criterion::{criterion_group, criterion_main, Criterion};
use ranksim_bench::{Bench, ExpConfig, Family};
use ranksim_invindex::{fv, PlainInvertedIndex};
use ranksim_metricspace::{query_pairs, BkTree};
use ranksim_rankings::{raw_threshold, QueryStats};

fn bench_bk_vs_fv(c: &mut Criterion) {
    let cfg = ExpConfig::small();
    let bench = Bench::load(&cfg, Family::Nyt, 10);
    let store = bench.store();
    let raw = raw_threshold(0.1, 10);
    let bk = BkTree::build(store);
    let index = PlainInvertedIndex::build(store);
    let queries: Vec<_> = bench.queries.iter().take(20).cloned().collect();

    let mut g = c.benchmark_group("fig6_bk_vs_fv");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("bk_tree", |b| {
        b.iter(|| {
            let mut stats = QueryStats::new();
            let mut n = 0;
            for q in &queries {
                n += bk
                    .range_query(store, &query_pairs(q), raw, &mut stats)
                    .len();
            }
            std::hint::black_box(n)
        })
    });
    g.bench_function("fv_inverted_index", |b| {
        b.iter(|| {
            let mut stats = QueryStats::new();
            let mut n = 0;
            for q in &queries {
                n += fv::filter_validate(&index, store, q, raw, &mut stats).len();
            }
            std::hint::black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bk_vs_fv);
criterion_main!(benches);
