//! Criterion bench for Figure 7: coarse-index query time at three
//! representative θC settings (under-, well-, and over-coarsened).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksim_bench::{Bench, ExpConfig, Family};
use ranksim_core::CoarseIndex;
use ranksim_rankings::{raw_threshold, QueryStats};

fn bench_coarse_sweep(c: &mut Criterion) {
    let cfg = ExpConfig::small();
    let bench = Bench::load(&cfg, Family::Nyt, 10);
    let store = bench.store();
    let theta = raw_threshold(0.2, 10);
    let queries: Vec<_> = bench.queries.iter().take(20).cloned().collect();

    let mut g = c.benchmark_group("fig7_coarse_sweep");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for theta_c in [0.05f64, 0.3, 0.7] {
        let index = CoarseIndex::build(store, raw_threshold(theta_c, 10));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("theta_c_{theta_c}")),
            &index,
            |b, index| {
                b.iter(|| {
                    let mut stats = QueryStats::new();
                    let mut n = 0;
                    for q in &queries {
                        n += index.query(store, q, theta, false, &mut stats).len();
                    }
                    std::hint::black_box(n)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_coarse_sweep);
criterion_main!(benches);
