//! Criterion bench for Figure 9: the all-algorithm comparison on the
//! Yago-like corpus (k = 10, θ = 0.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ranksim_bench::{ComparisonSetup, ExpConfig, Family, Technique};

fn bench_algorithms(c: &mut Criterion) {
    let cfg = ExpConfig::small();
    let setup = ComparisonSetup::build(&cfg, Family::Yago, 10, &[0.1]);
    let mut g = c.benchmark_group("fig9_algorithms_yago");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for tech in Technique::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(tech.name().replace(['&', '+', ' '], "_")),
            &tech,
            |b, &tech| b.iter(|| std::hint::black_box(setup.measure(tech, 0.1).results)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
