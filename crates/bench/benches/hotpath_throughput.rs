//! `hotpath_throughput` — measures the CSR-postings + reusable-scratch
//! hot path against the pre-refactor baseline and emits
//! `BENCH_hotpath.json`.
//!
//! The baseline re-implements, verbatim, the original query hot path this
//! repository shipped before the CSR refactor: per-item `FxHashMap<ItemId,
//! Vec<_>>` postings, a hashmap-backed `PositionMap` rebuilt per query,
//! and a fresh `FxHashSet` candidate set / cursor vectors per query. The
//! CSR arm runs the same workload through `Engine::query_into` with one
//! reused `QueryScratch` and result buffer. Both arms are verified to
//! return identical result sets before anything is timed.
//!
//! On top of the legacy-vs-CSR comparison, a **kernel grid** times the
//! same workload through three engine configurations per algorithm:
//!
//! | arm | posting order | distance kernel |
//! |---|---|---|
//! | `scalar` | insertion (`Id`) | [`Kernel::Scalar`] — the oracle |
//! | `simd` | insertion (`Id`) | [`Kernel::Simd`] |
//! | `suffix-bound` | [`PostingOrder::SuffixBound`] | [`Kernel::Simd`] |
//!
//! All arms are verified result-set-identical before timing, and the
//! suffix-bound arm's early-termination counters (posting-window skip
//! rate, validation abort rate) land in the artifact. When
//! `RANKSIM_HOTPATH_SPEEDUP_MIN` is set, the run fails (exit 1) unless
//! the best kernelized arm beats the scalar oracle by that factor on
//! F&V or ListMerge — the CI smoke step pins it.
//!
//! Workload: NYT-like corpus (default n = 50 000, k = 10, θ = 0.2) —
//! override with `RANKSIM_NYT_N` / `RANKSIM_QUERIES`; the CI smoke step
//! runs the `ExpConfig::small()` scale through those variables. Reported
//! numbers are the mean of `RANKSIM_HOTPATH_ROUNDS` (default 5)
//! alternating rounds, in ms per 1000 queries.
//!
//! Output: `BENCH_hotpath.json` at the workspace root (override via
//! `RANKSIM_HOTPATH_OUT`), recording both the baseline and the CSR number
//! per algorithm so the perf trajectory accumulates in-repo.

use std::time::Instant;

use ranksim_bench::{Bench, ExpConfig, Family};
use ranksim_core::engine::{Algorithm, Engine, EngineBuilder};
use ranksim_invindex::{Posting, PostingOrder};
use ranksim_rankings::hash::{fx_map_with_capacity, fx_set_with_capacity, FxHashMap};
use ranksim_rankings::{
    one_side_total, raw_threshold, ExecStats, ItemId, Kernel, PositionMap, QueryStats, RankingId,
    RankingStore,
};

/// The pre-refactor `PlainInvertedIndex`: one heap-allocated `Vec` per
/// distinct item behind a hash map.
struct LegacyPlainIndex {
    lists: FxHashMap<ItemId, Vec<RankingId>>,
}

impl LegacyPlainIndex {
    fn build(store: &RankingStore) -> Self {
        let mut lists: FxHashMap<ItemId, Vec<RankingId>> = fx_map_with_capacity(1024);
        for id in store.ids() {
            for &item in store.items(id) {
                lists.entry(item).or_default().push(id);
            }
        }
        LegacyPlainIndex { lists }
    }

    /// The original F&V: fresh hash-set candidate union, hashmap-backed
    /// `PositionMap` validation, fresh output vector — all per query.
    fn filter_validate(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
    ) -> Vec<RankingId> {
        let mut candidates = fx_set_with_capacity::<RankingId>(64);
        for &item in query {
            if let Some(list) = self.lists.get(&item) {
                candidates.extend(list.iter().copied());
            }
        }
        let qmap = PositionMap::new(query);
        let mut out = Vec::new();
        for id in candidates {
            if qmap.distance_to(store.items(id)) <= theta_raw {
                out.push(id);
            }
        }
        out
    }
}

/// The pre-refactor `AugmentedInvertedIndex` plus the original ListMerge.
struct LegacyAugmentedIndex {
    lists: FxHashMap<ItemId, Vec<Posting>>,
}

impl LegacyAugmentedIndex {
    fn build(store: &RankingStore) -> Self {
        let mut lists: FxHashMap<ItemId, Vec<Posting>> = fx_map_with_capacity(1024);
        for id in store.ids() {
            for (rank, &item) in store.items(id).iter().enumerate() {
                lists.entry(item).or_default().push(Posting {
                    id,
                    rank: rank as u32,
                });
            }
        }
        LegacyAugmentedIndex { lists }
    }

    fn list_merge(&self, store: &RankingStore, query: &[ItemId], theta_raw: u32) -> Vec<RankingId> {
        let k = store.k() as u32;
        let t_k = one_side_total(store.k());
        let lists: Vec<&[Posting]> = query
            .iter()
            .map(|item| self.lists.get(item).map(|v| v.as_slice()).unwrap_or(&[]))
            .collect();
        let mut cursors = vec![0usize; lists.len()];
        let mut out = Vec::new();
        loop {
            let mut min_id: Option<RankingId> = None;
            for (li, &c) in cursors.iter().enumerate() {
                if let Some(p) = lists[li].get(c) {
                    if min_id.map(|m| p.id < m).unwrap_or(true) {
                        min_id = Some(p.id);
                    }
                }
            }
            let Some(id) = min_id else { break };
            let mut exact = 0u32;
            let mut q_side = 0u32;
            let mut tau_side = 0u32;
            for (li, cursor) in cursors.iter_mut().enumerate() {
                if let Some(p) = lists[li].get(*cursor) {
                    if p.id == id {
                        let q_rank = li as u32;
                        exact += p.rank.abs_diff(q_rank);
                        q_side += k - q_rank;
                        tau_side += k - p.rank;
                        *cursor += 1;
                    }
                }
            }
            let dist = exact + (t_k - q_side) + (t_k - tau_side);
            if dist <= theta_raw {
                out.push(id);
            }
        }
        out
    }
}

/// ms per 1000 queries for one full pass of `f` over the workload.
fn time_pass(queries: &[Vec<ItemId>], scale_to_1000: f64, mut f: impl FnMut(&[ItemId])) -> f64 {
    let start = Instant::now();
    for q in queries {
        f(q);
    }
    start.elapsed().as_secs_f64() * 1e3 * scale_to_1000
}

struct Comparison {
    name: &'static str,
    baseline_ms: f64,
    csr_ms: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.csr_ms
    }
}

/// One algorithm's row of the kernel grid: mean ms per 1000 queries for
/// the scalar oracle, the SIMD kernel and the suffix-bound-ordered +
/// SIMD configuration, plus the suffix-bound arm's early-termination
/// counters.
struct KernelRow {
    name: &'static str,
    scalar_ms: f64,
    simd_ms: f64,
    suffix_ms: f64,
    exec: ExecStats,
}

impl KernelRow {
    fn simd_speedup(&self) -> f64 {
        self.scalar_ms / self.simd_ms
    }

    fn suffix_speedup(&self) -> f64 {
        self.scalar_ms / self.suffix_ms
    }

    /// Fraction of validations the suffix-bound kernel aborted early.
    fn abort_rate(&self) -> f64 {
        let calls = self.exec.distance_calls;
        if calls == 0 {
            return 0.0;
        }
        self.exec.validations_pruned as f64 / calls as f64
    }

    /// Fraction of posting entries bypassed by rank-window scans.
    fn skip_rate(&self) -> f64 {
        let total = self.exec.postings_scanned + self.exec.postings_skipped;
        if total == 0 {
            return 0.0;
        }
        self.exec.postings_skipped as f64 / total as f64
    }
}

/// Measures one kernel-grid arm in isolation: a verification pass per
/// algorithm against the precomputed oracle result sets (doubling as
/// warmup and as the [`ExecStats`] source), then `rounds` consecutive
/// timed passes per algorithm. Keeping each arm's passes back-to-back —
/// instead of round-robining the arms — stops the engines from evicting
/// each other's postings between timed passes.
fn measure_arm(
    engine: &Engine,
    queries: &[Vec<ItemId>],
    oracles: &[[Vec<RankingId>; 2]],
    theta_raw: u32,
    scale_to_1000: f64,
    rounds: usize,
    label: &str,
) -> [(f64, ExecStats); 2] {
    let mut scratch = engine.scratch();
    let mut stats = QueryStats::new();
    let mut out = Vec::new();
    let mut cells = [(0.0, ExecStats::default()), (0.0, ExecStats::default())];
    for (ai, alg) in [Algorithm::Fv, Algorithm::ListMerge]
        .into_iter()
        .enumerate()
    {
        for (q, oracle) in queries.iter().zip(oracles) {
            let trace =
                engine.query_into_traced(alg, q, theta_raw, &mut scratch, &mut stats, &mut out);
            cells[ai].1.merge(&trace.exec);
            out.sort_unstable();
            assert_eq!(&out, &oracle[ai], "{alg} {label} arm disagrees with legacy");
        }
        for _ in 0..rounds {
            cells[ai].0 += time_pass(queries, scale_to_1000, |q| {
                engine.query_into(alg, q, theta_raw, &mut scratch, &mut stats, &mut out);
                std::hint::black_box(out.len());
            });
        }
        cells[ai].0 /= rounds as f64;
    }
    cells
}

fn main() {
    let cfg = ExpConfig::from_env();
    let theta = 0.2f64;
    let k = 10usize;
    let rounds: usize = std::env::var("RANKSIM_HOTPATH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    eprintln!(
        "# hotpath_throughput: NYT-like n={} k={k} θ={theta}, {} queries, {rounds} rounds",
        cfg.nyt_n, cfg.queries
    );
    let bench = Bench::load(&cfg, Family::Nyt, k);
    let store = bench.store();
    let raw = raw_threshold(theta, k);

    let legacy_plain = LegacyPlainIndex::build(store);
    let legacy_augmented = LegacyAugmentedIndex::build(store);
    let engine = EngineBuilder::new(store.clone())
        .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
        .build();
    let mut scratch = engine.scratch();
    let mut out: Vec<RankingId> = Vec::new();
    let mut stats = QueryStats::new();

    // Oracle result sets from the legacy arms, computed once: every
    // engine arm — CSR default and each kernel-grid configuration — is
    // checked against these before it is timed.
    let oracles: Vec<[Vec<RankingId>; 2]> = bench
        .queries
        .iter()
        .map(|q| {
            let mut fv = legacy_plain.filter_validate(store, q, raw);
            fv.sort_unstable();
            [fv, legacy_augmented.list_merge(store, q, raw)]
        })
        .collect();

    // Correctness gate: the CSR arm must agree before anything is timed.
    for (q, oracle) in bench.queries.iter().zip(&oracles) {
        for (alg, expect) in [Algorithm::Fv, Algorithm::ListMerge]
            .into_iter()
            .zip(oracle)
        {
            engine.query_into(alg, q, raw, &mut scratch, &mut stats, &mut out);
            out.sort_unstable();
            assert_eq!(&out, expect, "{alg} CSR arm disagrees with legacy");
        }
    }

    // Alternate the arms per round so drift hits both equally; report the
    // mean over rounds.
    let mut fv = Comparison {
        name: "fv",
        baseline_ms: 0.0,
        csr_ms: 0.0,
    };
    let mut lm = Comparison {
        name: "listmerge",
        baseline_ms: 0.0,
        csr_ms: 0.0,
    };
    for _ in 0..rounds {
        fv.baseline_ms += time_pass(&bench.queries, bench.scale_to_1000, |q| {
            std::hint::black_box(legacy_plain.filter_validate(store, q, raw).len());
        });
        fv.csr_ms += time_pass(&bench.queries, bench.scale_to_1000, |q| {
            engine.query_into(Algorithm::Fv, q, raw, &mut scratch, &mut stats, &mut out);
            std::hint::black_box(out.len());
        });
        lm.baseline_ms += time_pass(&bench.queries, bench.scale_to_1000, |q| {
            std::hint::black_box(legacy_augmented.list_merge(store, q, raw).len());
        });
        lm.csr_ms += time_pass(&bench.queries, bench.scale_to_1000, |q| {
            engine.query_into(
                Algorithm::ListMerge,
                q,
                raw,
                &mut scratch,
                &mut stats,
                &mut out,
            );
            std::hint::black_box(out.len());
        });
    }
    for c in [&mut fv, &mut lm] {
        c.baseline_ms /= rounds as f64;
        c.csr_ms /= rounds as f64;
    }

    // Kernel grid: scalar oracle, SIMD kernel, suffix-bound order + SIMD
    // kernel — each arm measured in isolation (its engine is built, its
    // passes run back-to-back, then it is dropped). `engine` (the CSR
    // arm above) doubles as the `simd` arm: insertion order + SIMD
    // kernel is the engine default.
    let scalar_cells = {
        let engine_scalar = EngineBuilder::new(store.clone())
            .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
            .kernel(Kernel::Scalar)
            .posting_order(PostingOrder::Id)
            .build();
        measure_arm(
            &engine_scalar,
            &bench.queries,
            &oracles,
            raw,
            bench.scale_to_1000,
            rounds,
            "scalar",
        )
    };
    let simd_cells = measure_arm(
        &engine,
        &bench.queries,
        &oracles,
        raw,
        bench.scale_to_1000,
        rounds,
        "simd",
    );
    let suffix_cells = {
        let engine_suffix = EngineBuilder::new(store.clone())
            .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
            .kernel(Kernel::Simd)
            .posting_order(PostingOrder::SuffixBound)
            .build();
        measure_arm(
            &engine_suffix,
            &bench.queries,
            &oracles,
            raw,
            bench.scale_to_1000,
            rounds,
            "suffix-bound",
        )
    };
    let kernel_rows = [
        KernelRow {
            name: "fv",
            scalar_ms: scalar_cells[0].0,
            simd_ms: simd_cells[0].0,
            suffix_ms: suffix_cells[0].0,
            exec: suffix_cells[0].1,
        },
        KernelRow {
            name: "listmerge",
            scalar_ms: scalar_cells[1].0,
            simd_ms: simd_cells[1].0,
            suffix_ms: suffix_cells[1].0,
            exec: suffix_cells[1].1,
        },
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"hotpath_throughput\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"family\": \"nyt-like\", \"n\": {}, \"k\": {k}, \"theta\": {theta}, \"queries\": {}, \"rounds\": {rounds}}},\n",
        cfg.nyt_n, cfg.queries
    ));
    json.push_str("  \"units\": \"ms per 1000 queries\",\n");
    json.push_str("  \"baseline\": \"pre-CSR hashmap postings + per-query allocations\",\n");
    for c in [&fv, &lm] {
        json.push_str(&format!(
            "  \"{}\": {{\"baseline_ms_per_1000q\": {:.3}, \"csr_ms_per_1000q\": {:.3}, \"mean_speedup\": {:.3}}},\n",
            c.name,
            c.baseline_ms,
            c.csr_ms,
            c.speedup(),
        ));
    }
    json.push_str("  \"kernels\": {\n");
    for (i, row) in kernel_rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\"scalar_ms_per_1000q\": {:.3}, \"simd_ms_per_1000q\": {:.3}, \"suffix_bound_ms_per_1000q\": {:.3}, \"simd_speedup_vs_scalar\": {:.3}, \"suffix_bound_speedup_vs_scalar\": {:.3}, \"early_termination\": {{\"validation_abort_rate\": {:.4}, \"posting_skip_rate\": {:.4}}}}}{}\n",
            row.name,
            row.scalar_ms,
            row.simd_ms,
            row.suffix_ms,
            row.simd_speedup(),
            row.suffix_speedup(),
            row.abort_rate(),
            row.skip_rate(),
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    let out_path = std::env::var("RANKSIM_HOTPATH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").to_string()
    });
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");

    println!("{json}");
    println!(
        "F&V:       {:8.2} -> {:8.2} ms/1000q  ({:.2}x)",
        fv.baseline_ms,
        fv.csr_ms,
        fv.speedup()
    );
    println!(
        "ListMerge: {:8.2} -> {:8.2} ms/1000q  ({:.2}x)",
        lm.baseline_ms,
        lm.csr_ms,
        lm.speedup()
    );
    for row in &kernel_rows {
        println!(
            "{:<10} scalar {:8.2}  simd {:8.2} ({:.2}x)  suffix-bound {:8.2} ({:.2}x)  abort {:.1}%  skip {:.1}%",
            row.name,
            row.scalar_ms,
            row.simd_ms,
            row.simd_speedup(),
            row.suffix_ms,
            row.suffix_speedup(),
            100.0 * row.abort_rate(),
            100.0 * row.skip_rate(),
        );
    }
    eprintln!("# wrote {out_path}");

    // Self-enforced regression floor: the best kernelized arm (SIMD or
    // suffix-bound + SIMD) must beat the scalar oracle by the configured
    // factor on at least one algorithm (CI pins
    // `RANKSIM_HOTPATH_SPEEDUP_MIN`).
    if let Some(min) = std::env::var("RANKSIM_HOTPATH_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let best = kernel_rows
            .iter()
            .map(|r| r.simd_speedup().max(r.suffix_speedup()))
            .fold(f64::NEG_INFINITY, f64::max);
        if best < min {
            eprintln!(
                "FAIL: best kernel speedup over the scalar oracle {best:.3}x is below \
                 the RANKSIM_HOTPATH_SPEEDUP_MIN floor {min:.3}x"
            );
            std::process::exit(1);
        }
        eprintln!("# speedup floor satisfied: {best:.3}x >= {min:.3}x");
    }
}
