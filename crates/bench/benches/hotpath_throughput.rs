//! `hotpath_throughput` — measures the CSR-postings + reusable-scratch
//! hot path against the pre-refactor baseline and emits
//! `BENCH_hotpath.json`.
//!
//! The baseline re-implements, verbatim, the original query hot path this
//! repository shipped before the CSR refactor: per-item `FxHashMap<ItemId,
//! Vec<_>>` postings, a hashmap-backed `PositionMap` rebuilt per query,
//! and a fresh `FxHashSet` candidate set / cursor vectors per query. The
//! CSR arm runs the same workload through `Engine::query_into` with one
//! reused `QueryScratch` and result buffer. Both arms are verified to
//! return identical result sets before anything is timed.
//!
//! Workload: NYT-like corpus (default n = 50 000, k = 10, θ = 0.2) —
//! override with `RANKSIM_NYT_N` / `RANKSIM_QUERIES`; the CI smoke step
//! runs the `ExpConfig::small()` scale through those variables. Reported
//! numbers are the mean of `RANKSIM_HOTPATH_ROUNDS` (default 5)
//! alternating rounds, in ms per 1000 queries.
//!
//! Output: `BENCH_hotpath.json` at the workspace root (override via
//! `RANKSIM_HOTPATH_OUT`), recording both the baseline and the CSR number
//! per algorithm so the perf trajectory accumulates in-repo.

use std::time::Instant;

use ranksim_bench::{Bench, ExpConfig, Family};
use ranksim_core::engine::{Algorithm, EngineBuilder};
use ranksim_invindex::Posting;
use ranksim_rankings::hash::{fx_map_with_capacity, fx_set_with_capacity, FxHashMap};
use ranksim_rankings::{
    one_side_total, raw_threshold, ItemId, PositionMap, QueryStats, RankingId, RankingStore,
};

/// The pre-refactor `PlainInvertedIndex`: one heap-allocated `Vec` per
/// distinct item behind a hash map.
struct LegacyPlainIndex {
    lists: FxHashMap<ItemId, Vec<RankingId>>,
}

impl LegacyPlainIndex {
    fn build(store: &RankingStore) -> Self {
        let mut lists: FxHashMap<ItemId, Vec<RankingId>> = fx_map_with_capacity(1024);
        for id in store.ids() {
            for &item in store.items(id) {
                lists.entry(item).or_default().push(id);
            }
        }
        LegacyPlainIndex { lists }
    }

    /// The original F&V: fresh hash-set candidate union, hashmap-backed
    /// `PositionMap` validation, fresh output vector — all per query.
    fn filter_validate(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
    ) -> Vec<RankingId> {
        let mut candidates = fx_set_with_capacity::<RankingId>(64);
        for &item in query {
            if let Some(list) = self.lists.get(&item) {
                candidates.extend(list.iter().copied());
            }
        }
        let qmap = PositionMap::new(query);
        let mut out = Vec::new();
        for id in candidates {
            if qmap.distance_to(store.items(id)) <= theta_raw {
                out.push(id);
            }
        }
        out
    }
}

/// The pre-refactor `AugmentedInvertedIndex` plus the original ListMerge.
struct LegacyAugmentedIndex {
    lists: FxHashMap<ItemId, Vec<Posting>>,
}

impl LegacyAugmentedIndex {
    fn build(store: &RankingStore) -> Self {
        let mut lists: FxHashMap<ItemId, Vec<Posting>> = fx_map_with_capacity(1024);
        for id in store.ids() {
            for (rank, &item) in store.items(id).iter().enumerate() {
                lists.entry(item).or_default().push(Posting {
                    id,
                    rank: rank as u32,
                });
            }
        }
        LegacyAugmentedIndex { lists }
    }

    fn list_merge(&self, store: &RankingStore, query: &[ItemId], theta_raw: u32) -> Vec<RankingId> {
        let k = store.k() as u32;
        let t_k = one_side_total(store.k());
        let lists: Vec<&[Posting]> = query
            .iter()
            .map(|item| self.lists.get(item).map(|v| v.as_slice()).unwrap_or(&[]))
            .collect();
        let mut cursors = vec![0usize; lists.len()];
        let mut out = Vec::new();
        loop {
            let mut min_id: Option<RankingId> = None;
            for (li, &c) in cursors.iter().enumerate() {
                if let Some(p) = lists[li].get(c) {
                    if min_id.map(|m| p.id < m).unwrap_or(true) {
                        min_id = Some(p.id);
                    }
                }
            }
            let Some(id) = min_id else { break };
            let mut exact = 0u32;
            let mut q_side = 0u32;
            let mut tau_side = 0u32;
            for (li, cursor) in cursors.iter_mut().enumerate() {
                if let Some(p) = lists[li].get(*cursor) {
                    if p.id == id {
                        let q_rank = li as u32;
                        exact += p.rank.abs_diff(q_rank);
                        q_side += k - q_rank;
                        tau_side += k - p.rank;
                        *cursor += 1;
                    }
                }
            }
            let dist = exact + (t_k - q_side) + (t_k - tau_side);
            if dist <= theta_raw {
                out.push(id);
            }
        }
        out
    }
}

/// ms per 1000 queries for one full pass of `f` over the workload.
fn time_pass(queries: &[Vec<ItemId>], scale_to_1000: f64, mut f: impl FnMut(&[ItemId])) -> f64 {
    let start = Instant::now();
    for q in queries {
        f(q);
    }
    start.elapsed().as_secs_f64() * 1e3 * scale_to_1000
}

struct Comparison {
    name: &'static str,
    baseline_ms: f64,
    csr_ms: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.csr_ms
    }
}

fn main() {
    let cfg = ExpConfig::from_env();
    let theta = 0.2f64;
    let k = 10usize;
    let rounds: usize = std::env::var("RANKSIM_HOTPATH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    eprintln!(
        "# hotpath_throughput: NYT-like n={} k={k} θ={theta}, {} queries, {rounds} rounds",
        cfg.nyt_n, cfg.queries
    );
    let bench = Bench::load(&cfg, Family::Nyt, k);
    let store = bench.store();
    let raw = raw_threshold(theta, k);

    let legacy_plain = LegacyPlainIndex::build(store);
    let legacy_augmented = LegacyAugmentedIndex::build(store);
    let engine = EngineBuilder::new(store.clone())
        .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
        .build();
    let mut scratch = engine.scratch();
    let mut out: Vec<RankingId> = Vec::new();
    let mut stats = QueryStats::new();

    // Correctness gate: both arms must agree before anything is timed.
    for q in &bench.queries {
        let mut legacy = legacy_plain.filter_validate(store, q, raw);
        engine.query_into(Algorithm::Fv, q, raw, &mut scratch, &mut stats, &mut out);
        let mut csr = out.clone();
        legacy.sort_unstable();
        csr.sort_unstable();
        assert_eq!(legacy, csr, "F&V arms disagree");
        let legacy_lm = legacy_augmented.list_merge(store, q, raw);
        engine.query_into(
            Algorithm::ListMerge,
            q,
            raw,
            &mut scratch,
            &mut stats,
            &mut out,
        );
        assert_eq!(legacy_lm, out, "ListMerge arms disagree");
    }

    // Alternate the arms per round so drift hits both equally; report the
    // mean over rounds.
    let mut fv = Comparison {
        name: "fv",
        baseline_ms: 0.0,
        csr_ms: 0.0,
    };
    let mut lm = Comparison {
        name: "listmerge",
        baseline_ms: 0.0,
        csr_ms: 0.0,
    };
    for _ in 0..rounds {
        fv.baseline_ms += time_pass(&bench.queries, bench.scale_to_1000, |q| {
            std::hint::black_box(legacy_plain.filter_validate(store, q, raw).len());
        });
        fv.csr_ms += time_pass(&bench.queries, bench.scale_to_1000, |q| {
            engine.query_into(Algorithm::Fv, q, raw, &mut scratch, &mut stats, &mut out);
            std::hint::black_box(out.len());
        });
        lm.baseline_ms += time_pass(&bench.queries, bench.scale_to_1000, |q| {
            std::hint::black_box(legacy_augmented.list_merge(store, q, raw).len());
        });
        lm.csr_ms += time_pass(&bench.queries, bench.scale_to_1000, |q| {
            engine.query_into(
                Algorithm::ListMerge,
                q,
                raw,
                &mut scratch,
                &mut stats,
                &mut out,
            );
            std::hint::black_box(out.len());
        });
    }
    for c in [&mut fv, &mut lm] {
        c.baseline_ms /= rounds as f64;
        c.csr_ms /= rounds as f64;
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"hotpath_throughput\",\n");
    json.push_str(&format!(
        "  \"workload\": {{\"family\": \"nyt-like\", \"n\": {}, \"k\": {k}, \"theta\": {theta}, \"queries\": {}, \"rounds\": {rounds}}},\n",
        cfg.nyt_n, cfg.queries
    ));
    json.push_str("  \"units\": \"ms per 1000 queries\",\n");
    json.push_str("  \"baseline\": \"pre-CSR hashmap postings + per-query allocations\",\n");
    for (i, c) in [&fv, &lm].iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{\"baseline_ms_per_1000q\": {:.3}, \"csr_ms_per_1000q\": {:.3}, \"mean_speedup\": {:.3}}}{}\n",
            c.name,
            c.baseline_ms,
            c.csr_ms,
            c.speedup(),
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str("}\n");

    let out_path = std::env::var("RANKSIM_HOTPATH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").to_string()
    });
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");

    println!("{json}");
    println!(
        "F&V:       {:8.2} -> {:8.2} ms/1000q  ({:.2}x)",
        fv.baseline_ms,
        fv.csr_ms,
        fv.speedup()
    );
    println!(
        "ListMerge: {:8.2} -> {:8.2} ms/1000q  ({:.2}x)",
        lm.baseline_ms,
        lm.csr_ms,
        lm.speedup()
    );
    eprintln!("# wrote {out_path}");
}
