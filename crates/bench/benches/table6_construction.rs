//! Criterion bench for Table 6: index construction times on a scaled
//! NYT-like corpus (k = 10).

use criterion::{criterion_group, criterion_main, Criterion};
use ranksim_adaptsearch::AdaptSearchIndex;
use ranksim_bench::{Bench, ExpConfig, Family};
use ranksim_core::CoarseIndex;
use ranksim_invindex::{AugmentedInvertedIndex, PlainInvertedIndex};
use ranksim_metricspace::{BkTree, MTree};
use ranksim_rankings::raw_threshold;

fn bench_construction(c: &mut Criterion) {
    let cfg = ExpConfig::small();
    let bench = Bench::load(&cfg, Family::Nyt, 10);
    let store = bench.store();
    let mut g = c.benchmark_group("table6_construction");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("plain_inverted_index", |b| {
        b.iter(|| std::hint::black_box(PlainInvertedIndex::build(store).num_items()))
    });
    g.bench_function("augmented_inverted_index", |b| {
        b.iter(|| std::hint::black_box(AugmentedInvertedIndex::build(store).num_items()))
    });
    g.bench_function("delta_inverted_index", |b| {
        b.iter(|| std::hint::black_box(AdaptSearchIndex::build(store).indexed()))
    });
    g.bench_function("bk_tree", |b| {
        b.iter(|| std::hint::black_box(BkTree::build(store).len()))
    });
    g.bench_function("m_tree", |b| {
        b.iter(|| std::hint::black_box(MTree::build(store).len()))
    });
    g.bench_function("coarse_index", |b| {
        b.iter(|| {
            std::hint::black_box(CoarseIndex::build(store, raw_threshold(0.5, 10)).num_partitions())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
