//! `repro` — regenerates every table and figure of the EDBT 2015
//! evaluation as text reports.
//!
//! ```sh
//! cargo run -p ranksim-bench --release --bin repro -- all
//! cargo run -p ranksim-bench --release --bin repro -- fig8
//! RANKSIM_NYT_N=100000 cargo run -p ranksim-bench --release --bin repro -- fig7
//! # paper scale (NYT 1M rankings) through the sharded engine:
//! cargo run -p ranksim-bench --release --bin repro -- --scale paper shard
//! # cost-model planner vs the per-configuration oracle, restricted set:
//! cargo run -p ranksim-bench --release --bin repro -- --algorithms fv,listmerge,coarse planner
//! # A/B the position-compare kernels (results are bit-identical):
//! cargo run -p ranksim-bench --release --bin repro -- --kernel scalar fig8
//! ```
//!
//! `--scale small|default|paper` picks the corpus-size baseline;
//! `--algorithms a,b,c` feeds the planner's candidate set (paper names or
//! lax spellings: `fv`, `F&V+Drop`, `blocked_prune`, …); `--kernel
//! scalar|simd` selects the distance kernel the experiment engines run
//! (default `simd`); `RANKSIM_*` environment variables still override
//! individual knobs.

use ranksim_bench::*;
use ranksim_core::engine::Algorithm;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // The shard-worker body runs before any config parsing or banner:
    // a worker process is a service spawned by `repro distributed`'s
    // router (or any external RemoteShardedEngine), not an experiment.
    if args.first().map(String::as_str) == Some("shard-worker") {
        match ranksim_core::serve_from_env() {
            Ok(true) => return,
            Ok(false) => {
                eprintln!(
                    "shard-worker is spawned by the distributed router and needs \
                     RANKSIM_REMOTE_SNAPSHOT / RANKSIM_REMOTE_SOCKET set"
                );
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("shard-worker failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut base = ExpConfig::default_scale();
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        let Some(name) = args.get(pos + 1) else {
            eprintln!("--scale needs a value: small | default | paper");
            std::process::exit(2);
        };
        base = match ExpConfig::named_scale(name) {
            Some(cfg) => cfg,
            None => {
                eprintln!("unknown scale '{name}'; expected small | default | paper");
                std::process::exit(2);
            }
        };
        args.drain(pos..=pos + 1);
    }
    if let Some(pos) = args.iter().position(|a| a == "--kernel") {
        let Some(value) = args.get(pos + 1) else {
            eprintln!("--kernel needs a value: scalar | simd");
            std::process::exit(2);
        };
        match parse_kernel_flag(value) {
            Ok(kernel) => base.kernel = kernel,
            Err(e) => {
                eprintln!("--kernel: {e}");
                std::process::exit(2);
            }
        }
        args.drain(pos..=pos + 1);
    }
    let mut algorithms: Option<Vec<Algorithm>> = None;
    if let Some(pos) = args.iter().position(|a| a == "--algorithms") {
        let Some(list) = args.get(pos + 1) else {
            eprintln!("--algorithms needs a comma-separated list, e.g. fv,listmerge,coarse");
            std::process::exit(2);
        };
        match parse_algorithms_flag(list) {
            Ok(list) => algorithms = Some(list),
            Err(e) => {
                eprintln!("--algorithms: {e}");
                std::process::exit(2);
            }
        }
        args.drain(pos..=pos + 1);
    }
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    if algorithms.is_some() && what != "planner" {
        eprintln!("--algorithms feeds the planner's candidate set and only applies to the 'planner' experiment (got '{what}')");
        std::process::exit(2);
    }
    let cfg = base.with_env_overrides();
    eprintln!(
        "# config: nyt_n={} yago_n={} queries={} kernel={} (override via RANKSIM_NYT_N / RANKSIM_YAGO_N / RANKSIM_QUERIES / RANKSIM_KERNEL)",
        cfg.nyt_n, cfg.yago_n, cfg.queries, cfg.kernel
    );
    let t0 = std::time::Instant::now();
    match what {
        "verify" => run_verify(&cfg),
        "fig3" => run_fig3(&cfg),
        "fig5" => run_fig56(&cfg, true),
        "fig6" => run_fig56(&cfg, false),
        "fig7" => run_fig7(&cfg),
        "table5" => run_table5(&cfg),
        "fig8" => run_fig89(&cfg, Family::Nyt),
        "fig9" => run_fig89(&cfg, Family::Yago),
        "fig10" => run_fig10(&cfg),
        "table6" => run_table6(&cfg),
        "ablation" => run_ablation(&cfg),
        "shard" => run_shard(&cfg, t0),
        "planner" => run_planner(&cfg, algorithms),
        "churn" => run_churn_cmd(&cfg, t0),
        "serve" => run_serve_cmd(&cfg, t0),
        "recovery" => run_recovery_cmd(&cfg),
        "persist" => run_persist_cmd(&cfg, t0),
        "distributed" => run_distributed_cmd(&cfg, t0),
        "all" => {
            run_verify(&cfg);
            run_fig3(&cfg);
            run_fig56(&cfg, true);
            run_fig56(&cfg, false);
            run_fig7(&cfg);
            run_table5(&cfg);
            run_fig89(&cfg, Family::Nyt);
            run_fig89(&cfg, Family::Yago);
            run_fig10(&cfg);
            run_table6(&cfg);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected one of: verify fig3 fig5 fig6 fig7 table5 fig8 fig9 fig10 table6 ablation shard planner churn serve recovery persist distributed all"
            );
            std::process::exit(2);
        }
    }
    eprintln!("# total wall time: {:.1?}", t0.elapsed());
}

/// The sharded paper-scale experiment: streams the NYT-family corpus
/// into S per-shard engines, runs a work-stealing batch, prints the
/// per-shard memory/balance report and writes `BENCH_shard.json`
/// (path override: `RANKSIM_SHARD_JSON`). Optional self-enforced
/// budgets make it a CI guard: `RANKSIM_SHARD_MEM_BUDGET_MB` fails the
/// run when the total index footprint exceeds the budget, and
/// `RANKSIM_SHARD_TIME_BUDGET_S` bounds the end-to-end wall clock.
fn run_shard(cfg: &ExpConfig, t0: std::time::Instant) {
    let rc = ShardRunConfig::from_env();
    println!(
        "== sharded engine: NYT-family n={}, S={}, {} threads, {} at θ={} ==",
        cfg.nyt_n,
        rc.shards,
        if rc.threads == 0 {
            "all".to_string()
        } else {
            rc.threads.to_string()
        },
        rc.algorithm,
        rc.theta
    );
    let report = run_sharded(cfg, Family::Nyt, rc);
    println!(
        "generate+route: {:.2}s   build: {:.2}s   batch ({} queries): {:.2}s ({:.1} ms/1000q)",
        report.generate_s,
        report.build_s,
        report.queries,
        report.query_s,
        report.ms_per_1000q()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "shard", "rankings", "heap bytes", "heap MB"
    );
    for (s, (&size, &bytes)) in report
        .shard_sizes
        .iter()
        .zip(&report.shard_heap_bytes)
        .enumerate()
    {
        println!(
            "{s:>6} {size:>12} {bytes:>14} {:>12.1}",
            bytes as f64 / (1024.0 * 1024.0)
        );
    }
    let total_mb = report.total_heap_bytes() as f64 / (1024.0 * 1024.0);
    println!(
        "total: {total_mb:.1} MB across {} shards; worker shares: {:?}; {} results",
        report.shard_sizes.len(),
        report.worker_queries,
        report.results
    );

    let json_path =
        std::env::var("RANKSIM_SHARD_JSON").unwrap_or_else(|_| "BENCH_shard.json".into());
    std::fs::write(&json_path, report.to_json()).expect("write shard report JSON");
    println!("report written to {json_path}");

    let budget_env = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<f64>().ok());
    if let Some(budget_mb) = budget_env("RANKSIM_SHARD_MEM_BUDGET_MB") {
        if total_mb > budget_mb {
            eprintln!("MEMORY BUDGET EXCEEDED: {total_mb:.1} MB > {budget_mb:.1} MB");
            std::process::exit(1);
        }
        println!("memory budget ok: {total_mb:.1} MB <= {budget_mb:.1} MB");
    }
    if let Some(budget_s) = budget_env("RANKSIM_SHARD_TIME_BUDGET_S") {
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > budget_s {
            eprintln!("TIME BUDGET EXCEEDED: {elapsed:.1}s > {budget_s:.1}s");
            std::process::exit(1);
        }
        println!("time budget ok: {elapsed:.1}s <= {budget_s:.1}s");
    }
}

/// The live-corpus churn experiment: a 90/10 read/write mix against the
/// mutable engine, reporting read latency and memory before the mix,
/// during it, on the tombstone-laden engine, and after `Engine::compact`
/// — written to `BENCH_churn.json` (path override: `RANKSIM_CHURN_JSON`).
/// `RANKSIM_CHURN_TIME_BUDGET_S` turns the run into a CI guard bounding
/// the end-to-end wall clock.
fn run_churn_cmd(cfg: &ExpConfig, t0: std::time::Instant) {
    let rc = ChurnRunConfig::from_env(cfg);
    println!(
        "== live-corpus churn: NYT-family n={}, {} ops at {}% writes, {} at θ={} ==",
        cfg.nyt_n,
        rc.ops,
        (rc.write_fraction * 100.0).round(),
        rc.algorithm,
        rc.theta
    );
    let report = run_churn(cfg, rc);
    println!(
        "build: {:.2}s   mixed phase: {} reads / {} inserts / {} removes",
        report.build_s, report.reads, report.inserts, report.removes
    );
    println!("{:>22} {:>16} {:>12}", "phase", "read ms/1000q", "heap MB");
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    println!(
        "{:>22} {:>16.1} {:>12.1}",
        "pristine",
        report.baseline_ms_per_1000q,
        mb(report.heap_before_bytes)
    );
    println!(
        "{:>22} {:>16.1} {:>12}",
        "during churn", report.churn_read_ms_per_1000q, "-"
    );
    println!(
        "{:>22} {:>16.1} {:>12.1}",
        "post-churn (tombstoned)",
        report.post_churn_ms_per_1000q,
        mb(report.heap_after_churn_bytes)
    );
    println!(
        "{:>22} {:>16.1} {:>12.1}",
        "post-compaction",
        report.post_compact_ms_per_1000q,
        mb(report.heap_after_compact_bytes)
    );
    println!(
        "writes: {:.1} µs/op; compaction: {:.2}s folded {} delta rankings + {} tombstones; live: {}",
        report.churn_write_us_per_op,
        report.compact_s,
        report.delta_len,
        report.tombstones,
        report.live_len
    );

    let json_path =
        std::env::var("RANKSIM_CHURN_JSON").unwrap_or_else(|_| "BENCH_churn.json".into());
    std::fs::write(&json_path, report.to_json()).expect("write churn report JSON");
    println!("report written to {json_path}");

    if let Some(budget_s) = std::env::var("RANKSIM_CHURN_TIME_BUDGET_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > budget_s {
            eprintln!("TIME BUDGET EXCEEDED: {elapsed:.1}s > {budget_s:.1}s");
            std::process::exit(1);
        }
        println!("time budget ok: {elapsed:.1}s <= {budget_s:.1}s");
    }
}

/// The concurrent serving experiment: closed-loop clients drive a
/// 90/10 read/write mix against the RCU [`ranksim_core::SnapshotEngine`]
/// through the admission-controlled batching dispatcher, with a full
/// compaction forced mid-run — written to `BENCH_serve.json` (path
/// override: `RANKSIM_SERVE_JSON`). Self-enforced CI budgets:
/// `RANKSIM_SERVE_P99_BUDGET_MS` fails the run when the p99 read
/// latency (overall or during the forced compaction) exceeds the
/// budget, and `RANKSIM_SERVE_TIME_BUDGET_S` bounds the wall clock.
fn run_serve_cmd(cfg: &ExpConfig, t0: std::time::Instant) {
    let rc = serve::ServeRunConfig::from_env();
    println!(
        "== snapshot serving: NYT-family n={}, {} clients / {} batch threads, {:.0}% writes, {} at θ={} for {:.0}s ==",
        cfg.nyt_n,
        rc.clients,
        rc.batch_threads,
        rc.write_fraction * 100.0,
        rc.algorithm,
        rc.theta,
        rc.duration_s
    );
    let report = serve::run_serve(cfg, rc);
    println!(
        "throughput: {:.0} reads/s + {:.0} writes/s ({} reads, {} writes, {} shed, {} remove misses)",
        report.read_qps, report.write_qps, report.reads, report.writes, report.shed, report.remove_misses
    );
    println!(
        "{:>24} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "latency (µs)", "count", "p50", "p99", "p999", "max"
    );
    let row = |name: &str, l: &serve::LatencyUs| {
        println!(
            "{:>24} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            name, l.count, l.p50, l.p99, l.p999, l.max
        );
    };
    row("read", &report.read_latency);
    row("read (compacting)", &report.read_latency_during_compaction);
    row("write", &report.write_latency);
    println!(
        "forced compaction: {:.2}s to full publication; {} generations abandoned to stragglers; {} batch failures; live: {}",
        report.compact_s, report.abandoned_generations, report.batch_failures, report.final_live_len
    );

    let json_path =
        std::env::var("RANKSIM_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&json_path, report.to_json()).expect("write serve report JSON");
    println!("report written to {json_path}");

    let budget_env = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<f64>().ok());
    if let Some(budget_ms) = budget_env("RANKSIM_SERVE_P99_BUDGET_MS") {
        let worst_p99_ms = report
            .read_latency
            .p99
            .max(report.read_latency_during_compaction.p99)
            / 1000.0;
        if worst_p99_ms > budget_ms {
            eprintln!("P99 BUDGET EXCEEDED: {worst_p99_ms:.2} ms > {budget_ms:.2} ms");
            std::process::exit(1);
        }
        println!(
            "p99 budget ok: {worst_p99_ms:.2} ms <= {budget_ms:.2} ms (incl. during compaction)"
        );
    }
    if let Some(budget_s) = budget_env("RANKSIM_SERVE_TIME_BUDGET_S") {
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > budget_s {
            eprintln!("TIME BUDGET EXCEEDED: {elapsed:.1}s > {budget_s:.1}s");
            std::process::exit(1);
        }
        println!("time budget ok: {elapsed:.1}s <= {budget_s:.1}s");
    }
}

/// The durability experiment: the identical write sequence through the
/// WAL-backed [`ranksim_core::SnapshotEngine`] under every sync policy
/// (µs per acknowledged write), then cold
/// [`ranksim_core::SnapshotEngine::recover`] timed against logs of
/// increasing length — written to `BENCH_recovery.json` (path override:
/// `RANKSIM_RECOVERY_JSON`). `RANKSIM_RECOVERY_TIME_BUDGET_S` turns the
/// run into a CI guard that fails when the *slowest single recovery*
/// exceeds the budget.
fn run_recovery_cmd(cfg: &ExpConfig) {
    let rc = recovery::RecoveryRunConfig::from_env(cfg);
    println!(
        "== durability: NYT-family n={}, {} writes; group commit = {} ops / {} ms ==",
        cfg.nyt_n, rc.ops, rc.group_max_ops, rc.group_max_delay_ms
    );
    let report = recovery::run_recovery(cfg, rc);
    println!(
        "{:>18} {:>14} {:>14}",
        "sync policy", "µs/write", "WAL bytes"
    );
    for c in &report.policy_costs {
        println!("{:>18} {:>14.2} {:>14}", c.arm, c.us_per_op, c.wal_bytes);
    }
    println!(
        "{:>12} {:>14} {:>12} {:>14}",
        "log records", "log bytes", "recover s", "records/s"
    );
    for p in &report.points {
        println!(
            "{:>12} {:>14} {:>12.4} {:>14.0}",
            p.ops, p.wal_bytes, p.recover_s, p.ops_per_s
        );
    }

    let json_path =
        std::env::var("RANKSIM_RECOVERY_JSON").unwrap_or_else(|_| "BENCH_recovery.json".into());
    std::fs::write(&json_path, report.to_json()).expect("write recovery report JSON");
    println!("report written to {json_path}");

    if let Some(budget_s) = std::env::var("RANKSIM_RECOVERY_TIME_BUDGET_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let worst = report.worst_recover_s();
        if worst > budget_s {
            eprintln!("RECOVERY TIME BUDGET EXCEEDED: {worst:.2}s > {budget_s:.2}s");
            std::process::exit(1);
        }
        println!("recovery time budget ok: {worst:.2}s <= {budget_s:.2}s");
    }
}

/// The distributed-serving experiment: snapshot-spawned worker
/// processes behind the exact fan-out/merge router, measuring pruned
/// fan-out, protocol overhead vs the in-process engine, and
/// kill-a-worker recovery — written to `BENCH_distributed.json`, with
/// a self-enforced `RANKSIM_DIST_TIME_BUDGET_S` wall-clock budget.
fn run_distributed_cmd(cfg: &ExpConfig, t0: std::time::Instant) {
    let rc = distributed::DistRunConfig::from_env();
    println!(
        "== distributed serving: NYT-family n={}, S={} worker processes, {} at θ={} ==",
        cfg.nyt_n, rc.shards, rc.algorithm, rc.theta
    );
    let exe = std::env::current_exe().expect("own binary path");
    let worker = ranksim_core::WorkerSpec::new(exe).arg("shard-worker");
    let report = distributed::run_distributed(cfg, rc, worker);
    println!(
        "build: {:.2}s   save: {:.2}s   launch {} workers: {:.2}s",
        report.build_s, report.save_s, report.workers, report.launch_s
    );
    println!(
        "throughput ({} queries): in-process {:.0} q/s, distributed {:.0} q/s ({:.0}% of in-process)",
        report.queries,
        report.inproc_qps,
        report.dist_qps,
        report.relative_throughput() * 100.0
    );
    println!(
        "fan-out: broadcast {} requests, sent {}, pruned {} ({:.1}% reduction)",
        report.broadcast_fanout(),
        report.stats.fanout_sent,
        report.stats.fanout_pruned,
        report.fanout_reduction() * 100.0
    );
    if report.config.kill_worker {
        println!(
            "failover: SIGKILLed worker detected + respawned + reanswered in {:.1} ms",
            report.kill_recovery_ms
        );
    }

    let json_path =
        std::env::var("RANKSIM_DIST_JSON").unwrap_or_else(|_| "BENCH_distributed.json".into());
    std::fs::write(&json_path, report.to_json()).expect("write distributed report JSON");
    println!("report written to {json_path}");

    if let Some(budget_s) = std::env::var("RANKSIM_DIST_TIME_BUDGET_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > budget_s {
            eprintln!("DISTRIBUTED TIME BUDGET EXCEEDED: {elapsed:.1}s > {budget_s:.1}s");
            std::process::exit(1);
        }
        println!("time budget ok: {elapsed:.1}s <= {budget_s:.1}s");
    }
}

/// The persistence experiment: full index build timed against re-opening
/// the same engine from its `RSSN` snapshot (checksum-verified and
/// trusting), with every answer self-checked bit-identical — written to
/// `BENCH_persist.json` (path override: `RANKSIM_PERSIST_JSON`).
/// `RANKSIM_PERSIST_TIME_BUDGET_S` turns the run into a CI guard
/// bounding the end-to-end wall clock; at `n ≥ 200k` the run itself
/// asserts the verified open is ≥10× faster than the rebuild.
fn run_persist_cmd(cfg: &ExpConfig, t0: std::time::Instant) {
    let rc = persist::PersistRunConfig::from_env(cfg);
    println!(
        "== persistence: NYT-family n={}, equivalence over {} queries ==",
        cfg.nyt_n, rc.check_queries
    );
    let report = persist::run_persist(cfg, rc);
    let mb = report.snapshot_bytes as f64 / (1024.0 * 1024.0);
    println!(
        "build: {:.2}s   save: {:.2}s ({mb:.1} MB, {:.0} MB/s)",
        report.build_s, report.save_s, report.save_mb_per_s
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10}",
        "open mode", "open s", "MB/s", "speedup"
    );
    for (name, c) in [("verify", &report.verify), ("trust", &report.trust)] {
        println!(
            "{:>14} {:>10.3} {:>10.0} {:>9.1}x",
            name, c.open_s, c.mb_per_s, c.speedup
        );
    }
    println!(
        "answers: {} (query, θ, algorithm) cells bit-identical across both opens",
        report.checked_cells
    );

    let json_path =
        std::env::var("RANKSIM_PERSIST_JSON").unwrap_or_else(|_| "BENCH_persist.json".into());
    std::fs::write(&json_path, report.to_json()).expect("write persist report JSON");
    println!("report written to {json_path}");

    if let Some(budget_s) = std::env::var("RANKSIM_PERSIST_TIME_BUDGET_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > budget_s {
            eprintln!("TIME BUDGET EXCEEDED: {elapsed:.1}s > {budget_s:.1}s");
            std::process::exit(1);
        }
        println!("time budget ok: {elapsed:.1}s <= {budget_s:.1}s");
    }
}

/// The planner sweep: `Algorithm::Auto` (cost model + online
/// recalibration) against every fixed candidate and the per-cell oracle
/// across (corpus size × θ), printing per-algorithm win rates and the
/// planner's regret, and writing `BENCH_planner.json` (path override:
/// `RANKSIM_PLANNER_JSON`). `RANKSIM_PLANNER_REGRET_BUDGET` (a fraction,
/// e.g. `0.15`) turns the run into a CI guard that fails when the
/// sweep-wide regret vs oracle-best exceeds the budget.
fn run_planner(cfg: &ExpConfig, algorithms: Option<Vec<Algorithm>>) {
    let rc = PlannerRunConfig::from_env(cfg, algorithms);
    println!(
        "== planner sweep: NYT-family, k=10, {} candidates, sizes {:?}, θ {:?} ==",
        rc.candidates.len(),
        rc.sizes,
        rc.thetas
    );
    let report = run_planner_sweep(cfg, &rc);
    println!(
        "{:>8} {:>6} {:>12} {:>20} {:>12} {:>8}  picks",
        "n", "θ", "auto ms", "oracle", "oracle ms", "regret"
    );
    for r in &report.rows {
        let picks: Vec<String> = r
            .picks
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(a, n)| format!("{a}:{n}"))
            .collect();
        println!(
            "{:>8} {:>6.2} {:>12.2} {:>20} {:>12.2} {:>7.1}%  {}",
            r.n,
            r.theta,
            r.auto_ms,
            r.oracle.name(),
            r.oracle_ms,
            r.regret() * 100.0,
            picks.join(" ")
        );
    }
    let overall = report.overall_regret();
    println!("win rates:");
    for (alg, w) in report.win_rate() {
        println!("  {:<20} {:>6.1}%", alg.name(), w * 100.0);
    }
    println!("overall regret vs oracle-best: {:.1}%", overall * 100.0);

    let json_path =
        std::env::var("RANKSIM_PLANNER_JSON").unwrap_or_else(|_| "BENCH_planner.json".into());
    std::fs::write(&json_path, report.to_json()).expect("write planner report JSON");
    println!("report written to {json_path}");

    if let Some(budget) = std::env::var("RANKSIM_PLANNER_REGRET_BUDGET")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if overall > budget {
            eprintln!(
                "REGRET BUDGET EXCEEDED: {:.1}% > {:.1}%",
                overall * 100.0,
                budget * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "regret budget ok: {:.1}% <= {:.1}%",
            overall * 100.0,
            budget * 100.0
        );
    }
}

fn run_verify(cfg: &ExpConfig) {
    println!("== verify: all algorithms agree before anything is timed ==");
    let thetas = [0.0, 0.1, 0.2, 0.3];
    for family in [Family::Nyt, Family::Yago] {
        let mut small = *cfg;
        small.nyt_n = small.nyt_n.min(5000);
        small.yago_n = small.yago_n.min(5000);
        let setup = ComparisonSetup::build(&small, family, 10, &thetas);
        let checked = verify(&setup, &thetas);
        println!(
            "{:<5}: {checked} (query, θ) pairs consistent across all 8 algorithms",
            family.name()
        );
    }
    println!();
}

fn run_fig3(cfg: &ExpConfig) {
    println!("== Figure 3: modeled cost for varying θC (k=10, θ=0.2) ==");
    for family in [Family::Nyt, Family::Yago] {
        let bench = Bench::load(cfg, family, 10);
        let (rows, opt) = fig3(&bench, 0.2, true);
        println!("-- {} rankings, k=10, θ=0.2 --", family.name());
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            "θC", "filter", "validate", "overall(+)"
        );
        for r in rows {
            println!(
                "{:>6.2} {:>14.2} {:>14.2} {:>14.2}",
                r.theta_c,
                r.filter_ms,
                r.validate_ms,
                r.filter_ms + r.validate_ms
            );
        }
        println!("model-optimal θC = {opt:.2}\n");
    }
}

fn run_fig56(cfg: &ExpConfig, fig5: bool) {
    let (title, structures): (&str, Vec<Structure>) = if fig5 {
        (
            "Figure 5: M-tree vs BK-tree (NYT)",
            vec![Structure::BkTree, Structure::MTree, Structure::VpTree],
        )
    } else {
        (
            "Figure 6: BK-tree vs inverted index / F&V (NYT)",
            vec![Structure::BkTree, Structure::Fv],
        )
    };
    println!("== {title} ==");
    println!("-- (a) θ=0.1, varying k — seconds per 1000 queries --");
    let ks = [5usize, 10, 15, 20, 25];
    let by_k = sweep_k(cfg, Family::Nyt, &structures, &ks, 0.1);
    print!("{:>10}", "k");
    for (s, _) in &by_k {
        print!(" {:>12}", s.name());
    }
    println!();
    for (i, &k) in ks.iter().enumerate() {
        print!("{k:>10}");
        for (_, pts) in &by_k {
            print!(" {:>12.3}", pts[i].seconds);
        }
        println!();
    }
    println!("-- (b) k=10, varying θ — seconds per 1000 queries --");
    let thetas = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3];
    let by_t = sweep_theta(cfg, Family::Nyt, &structures, 10, &thetas);
    print!("{:>10}", "θ");
    for (s, _) in &by_t {
        print!(" {:>12}", s.name());
    }
    println!();
    for (i, &t) in thetas.iter().enumerate() {
        print!("{t:>10.2}");
        for (_, pts) in &by_t {
            print!(" {:>12.3}", pts[i].seconds);
        }
        println!();
    }
    println!();
}

const THETA_C_GRID: [f64; 13] = [
    0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8,
];

fn run_fig7(cfg: &ExpConfig) {
    println!("== Figure 7: measured filter/validation time vs θC (k=10, θ=0.2) ==");
    for family in [Family::Nyt, Family::Yago] {
        let bench = Bench::load(cfg, family, 10);
        let rows = fig7_sweep(&bench, 0.2, &THETA_C_GRID);
        let (model_rows, model_opt) = fig3(&bench, 0.2, true);
        let _ = model_rows;
        println!("-- {} — ms per 1000 queries --", family.name());
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "θC", "filter", "validation", "overall", "partitions"
        );
        for r in &rows {
            println!(
                "{:>6.2} {:>12.2} {:>12.2} {:>12.2} {:>12}",
                r.theta_c,
                r.filter_ms,
                r.validate_ms,
                r.filter_ms + r.validate_ms,
                r.partitions
            );
        }
        let nearest = rows
            .iter()
            .min_by(|a, b| {
                (a.theta_c - model_opt)
                    .abs()
                    .total_cmp(&(b.theta_c - model_opt).abs())
            })
            .unwrap();
        println!(
            "model-chosen θC = {model_opt:.2} -> measured {:.2} ms (marker ▫ in the paper's plot)\n",
            nearest.filter_ms + nearest.validate_ms
        );
    }
}

fn run_table5(cfg: &ExpConfig) {
    println!("== Table 5: measured-best vs model-chosen θC (k=10) — ms per 1000 queries ==");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "data", "θ", "best θC", "model θC", "best ms", "model ms", "gap ms"
    );
    for family in [Family::Nyt, Family::Yago] {
        let bench = Bench::load(cfg, family, 10);
        for row in table5(&bench, &[0.1, 0.2, 0.3], &THETA_C_GRID) {
            println!(
                "{:>6} {:>6.1} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>8.2}",
                family.name(),
                row.theta,
                row.best_theta_c,
                row.model_theta_c,
                row.best_ms,
                row.model_ms,
                row.gap_ms()
            );
        }
    }
    println!();
}

fn run_fig89(cfg: &ExpConfig, family: Family) {
    let fig = if family == Family::Nyt { 8 } else { 9 };
    println!(
        "== Figure {fig}: algorithm comparison ({}) — ms per 1000 queries ==",
        family.name()
    );
    let thetas = [0.0, 0.1, 0.2, 0.3];
    for k in [10usize, 20] {
        let setup = ComparisonSetup::build(cfg, family, k, &thetas);
        println!("-- k={k}; Coarse θC=0.5, Coarse+Drop θC=0.06 --");
        print!("{:<20}", "algorithm");
        for t in thetas {
            print!(" {:>10}", format!("θ={t}"));
        }
        println!();
        for tech in Technique::ALL {
            print!("{:<20}", tech.name());
            for &t in &thetas {
                let cell = setup.measure(tech, t);
                print!(" {:>10.1}", cell.time_ms);
            }
            println!();
        }
    }
    println!();
}

fn run_fig10(cfg: &ExpConfig) {
    println!("== Figure 10: distance function calls (thousands, whole workload scaled to 1000 queries) ==");
    let thetas = [0.0, 0.1, 0.2, 0.3];
    let dfc_techs = [
        Technique::Engine(ranksim_core::engine::Algorithm::Fv),
        Technique::Engine(ranksim_core::engine::Algorithm::FvDrop),
        Technique::Engine(ranksim_core::engine::Algorithm::BlockedPruneDrop),
        Technique::Engine(ranksim_core::engine::Algorithm::Coarse),
        Technique::Engine(ranksim_core::engine::Algorithm::CoarseDrop),
        Technique::MinimalFv,
    ];
    for family in [Family::Nyt, Family::Yago] {
        for k in [10usize, 20] {
            let setup = ComparisonSetup::build(cfg, family, k, &thetas);
            let scale = 1000.0 / cfg.queries as f64;
            println!("-- {}, k={k} --", family.name());
            print!("{:<20}", "algorithm");
            for t in thetas {
                print!(" {:>10}", format!("θ={t}"));
            }
            println!();
            for tech in dfc_techs {
                print!("{:<20}", tech.name());
                for &t in &thetas {
                    let cell = setup.measure(tech, t);
                    print!(" {:>10.1}", cell.dfc as f64 * scale / 1000.0);
                }
                println!();
            }
        }
    }
    println!();
}

fn run_table6(cfg: &ExpConfig) {
    println!("== Table 6: index size and construction time (k=10) ==");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12}",
        "index", "NYT MB", "Yago MB", "NYT sec", "Yago sec"
    );
    let nyt = Bench::load(cfg, Family::Nyt, 10);
    let yago = Bench::load(cfg, Family::Yago, 10);
    let rows_nyt = table6(&nyt);
    let rows_yago = table6(&yago);
    for (a, b) in rows_nyt.iter().zip(&rows_yago) {
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>12.2} {:>12.2}",
            a.index, a.size_mb, b.size_mb, a.construction_s, b.construction_s
        );
    }
    println!();
}

fn run_ablation(cfg: &ExpConfig) {
    println!("== Ablations: design choices behind the paper's heuristics (k=10, θ=0.2) ==");
    for family in [Family::Nyt, Family::Yago] {
        let bench = Bench::load(cfg, family, 10);
        println!("-- {} — Lemma 2 list-selection policy --", family.name());
        println!("{:<36} {:>12} {:>12}", "arm", "ms/1000q", "DFC");
        for row in ablation_drop_policy(&bench, 0.2) {
            println!("{:<36} {:>12.1} {:>12}", row.arm, row.time_ms, row.dfc);
        }
        println!(
            "-- {} — coarse-index partitioning scheme (θC=0.3) --",
            family.name()
        );
        println!("{:<64} {:>12} {:>12}", "arm", "ms/1000q", "DFC");
        for row in ablation_partitioner(&bench, 0.2, 0.3) {
            println!("{:<64} {:>12.1} {:>12}", row.arm, row.time_ms, row.dfc);
        }
    }
    println!();
}
