//! The distributed-serving experiment (`repro distributed`): what the
//! process boundary costs, what medoid pruning saves, and how fast the
//! router heals from a dead worker.
//!
//! The run streams an NYT-family corpus into a medoid-routed
//! [`ShardedEngine`], saves it as a sharded `RSSN` snapshot, and
//! launches a [`RemoteShardedEngine`] over it — one worker process per
//! shard, spawned from the snapshot (the hidden `repro shard-worker`
//! subcommand is the worker body). Three measurements:
//!
//! 1. **Fan-out reduction** — threshold queries at the configured θ,
//!    counting `(query, worker)` requests actually sent against the
//!    broadcast fan-out `queries × workers`; the difference is what
//!    the pivot/radius bound pruned.
//! 2. **Scaling vs in-process** — the identical serial query loop
//!    through the in-process `ShardedEngine` and through the router,
//!    reported as queries/s each; the gap is protocol + syscall cost.
//! 3. **Kill-a-worker recovery** — one worker is SIGKILLed and the
//!    next broadcast query is timed end to end: death detection (EOF),
//!    respawn from the snapshot, reissue, merge.
//!
//! The run self-checks: every distributed answer — threshold and
//! top-k, before and after the kill — is asserted bit-identical to the
//! in-process engine, so a wrong merge fails the benchmark rather than
//! producing pretty numbers.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ranksim_core::engine::Algorithm;
use ranksim_core::shard::{ShardStrategy, ShardedEngine, ShardedEngineBuilder};
use ranksim_core::{save_sharded, RemoteOptions, RemoteShardedEngine, RemoteStats, WorkerSpec};
use ranksim_datasets::{perturb_ranking, ClusteredZipfGenerator, PerturbParams};
use ranksim_rankings::{raw_threshold, ItemId, QueryStats};

use crate::ExpConfig;

/// Configuration of one `repro distributed` run.
#[derive(Debug, Clone, Copy)]
pub struct DistRunConfig {
    /// Shard count = worker-process count (`RANKSIM_DIST_SHARDS`).
    pub shards: usize,
    /// Normalized query threshold θ of the measured loop.
    pub theta: f64,
    /// The algorithm every worker runs.
    pub algorithm: Algorithm,
    /// Whether to SIGKILL a worker and measure the healing query
    /// (`RANKSIM_DIST_KILL`, default on).
    pub kill_worker: bool,
}

impl DistRunConfig {
    /// Defaults plus environment overrides.
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        DistRunConfig {
            shards: get("RANKSIM_DIST_SHARDS", 4).max(1),
            theta: 0.1,
            algorithm: Algorithm::Fv,
            kill_worker: get("RANKSIM_DIST_KILL", 1) != 0,
        }
    }
}

/// Everything one distributed run measured (the
/// `BENCH_distributed.json` artifact).
#[derive(Debug, Clone)]
pub struct DistBenchReport {
    /// Dataset name.
    pub dataset: String,
    /// Corpus size.
    pub n: usize,
    /// Ranking size.
    pub k: usize,
    /// Worker processes launched (present shards).
    pub workers: usize,
    /// Queries in the measured loop.
    pub queries: usize,
    /// Sharded build time (s).
    pub build_s: f64,
    /// Sharded snapshot save time (s).
    pub save_s: f64,
    /// Worker fleet spawn + handshake time (s).
    pub launch_s: f64,
    /// Serial in-process queries/s over the identical loop.
    pub inproc_qps: f64,
    /// Serial distributed queries/s over the identical loop.
    pub dist_qps: f64,
    /// Router fan-out counters over the measured loop.
    pub stats: RemoteStats,
    /// Per-worker `(shard, live, pivot balls, max radius)` bounds.
    pub worker_bounds: Vec<(usize, u32, usize, u32)>,
    /// Router counters of the kill/heal arm (deaths, respawns).
    pub heal_stats: RemoteStats,
    /// End-to-end healing time of the post-SIGKILL query (ms; 0 when
    /// the kill arm is disabled).
    pub kill_recovery_ms: f64,
    /// The run configuration.
    pub config: DistRunConfig,
}

impl DistBenchReport {
    /// Broadcast fan-out: what every query would cost without pruning.
    pub fn broadcast_fanout(&self) -> u64 {
        self.queries as u64 * self.workers as u64
    }

    /// Fraction of the broadcast fan-out the pivot/radius bound saved.
    pub fn fanout_reduction(&self) -> f64 {
        let broadcast = self.broadcast_fanout();
        if broadcast == 0 {
            return 0.0;
        }
        self.stats.fanout_pruned as f64 / broadcast as f64
    }

    /// Distributed throughput as a fraction of in-process throughput.
    pub fn relative_throughput(&self) -> f64 {
        if self.inproc_qps <= 0.0 {
            return 0.0;
        }
        self.dist_qps / self.inproc_qps
    }

    /// Renders the report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"distributed\",\n");
        s.push_str(&format!(
            "  \"workload\": {{\"dataset\": \"{}\", \"n\": {}, \"k\": {}, \"queries\": {}, \"theta\": {}, \"algorithm\": \"{}\"}},\n",
            self.dataset, self.n, self.k, self.queries, self.config.theta, self.config.algorithm
        ));
        s.push_str(&format!(
            "  \"shards\": {}, \"workers\": {},\n",
            self.config.shards, self.workers
        ));
        s.push_str(&format!(
            "  \"build_s\": {:.3}, \"save_s\": {:.3}, \"launch_s\": {:.3},\n",
            self.build_s, self.save_s, self.launch_s
        ));
        s.push_str(&format!(
            "  \"inproc_qps\": {:.1}, \"dist_qps\": {:.1}, \"relative_throughput\": {:.3},\n",
            self.inproc_qps,
            self.dist_qps,
            self.relative_throughput()
        ));
        s.push_str(&format!(
            "  \"fanout\": {{\"broadcast\": {}, \"sent\": {}, \"pruned\": {}, \"reduction\": {:.3}}},\n",
            self.broadcast_fanout(),
            self.stats.fanout_sent,
            self.stats.fanout_pruned,
            self.fanout_reduction()
        ));
        s.push_str(&format!(
            "  \"worker_bounds\": [{}],\n",
            self.worker_bounds
                .iter()
                .map(|(s, live, balls, r)| format!(
                    "{{\"shard\": {s}, \"live\": {live}, \"pivots\": {balls}, \"max_radius\": {r}}}"
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "  \"failover\": {{\"killed\": {}, \"worker_deaths\": {}, \"respawns\": {}, \"hedges\": {}, \"recovery_ms\": {:.2}}}\n",
            self.config.kill_worker,
            self.heal_stats.worker_deaths,
            self.heal_stats.respawns,
            self.heal_stats.hedges,
            self.kill_recovery_ms
        ));
        s.push_str("}\n");
        s
    }
}

/// Streams the corpus into a medoid-routed sharded engine (medoid
/// routing gives the pivot/radius bound clustered shards to prune).
fn build_sharded(
    cfg: &ExpConfig,
    rc: DistRunConfig,
    k: usize,
) -> (ShardedEngine, Vec<Vec<ItemId>>, String, usize) {
    let params = ranksim_datasets::nyt_like_params(cfg.nyt_n, k, cfg.seed);
    let n = params.n;
    let domain = params.domain;
    let dataset = params.name.clone();
    let generator = ClusteredZipfGenerator::new(params);
    let mut builder = ShardedEngineBuilder::new(k, rc.shards, ShardStrategy::Medoid)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .kernel(cfg.kernel)
        .algorithms(&[rc.algorithm]);
    let stride = (n / cfg.queries.max(1)).max(1);
    let mut bases: Vec<Vec<ItemId>> = Vec::with_capacity(cfg.queries);
    let mut i = 0usize;
    generator.for_each(|items| {
        if i % stride == 0 && bases.len() < cfg.queries {
            bases.push(items.to_vec());
        }
        builder.push_ranking(items);
        i += 1;
    });
    let mut rng = StdRng::seed_from_u64(cfg.seed + 7);
    let perturb = PerturbParams {
        max_swaps: 3,
        replace_prob: 0.5,
    };
    for q in &mut bases {
        perturb_ranking(q, domain, perturb, &mut rng);
    }
    (builder.build(), bases, dataset, n)
}

/// The distributed experiment (see the module docs). `worker` is how
/// the router starts each shard process — the `repro` binary passes
/// itself with the hidden `shard-worker` subcommand.
pub fn run_distributed(cfg: &ExpConfig, rc: DistRunConfig, worker: WorkerSpec) -> DistBenchReport {
    let k = 10usize;
    let t_build = Instant::now();
    let (sharded, queries, dataset, n) = build_sharded(cfg, rc, k);
    let build_s = t_build.elapsed().as_secs_f64();
    let raw = raw_threshold(rc.theta, k);

    let dir = std::env::temp_dir().join(format!("ranksim-dist-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let t_save = Instant::now();
    save_sharded(&dir, &sharded).expect("save sharded snapshot");
    let save_s = t_save.elapsed().as_secs_f64();

    let t_launch = Instant::now();
    let mut remote = RemoteShardedEngine::launch(&dir, worker, RemoteOptions::default())
        .expect("launch shard workers");
    let launch_s = t_launch.elapsed().as_secs_f64();

    // --- Arm 1: in-process oracle + baseline throughput --------------
    let mut scratch = sharded.scratch();
    let mut qstats = QueryStats::new();
    let t_in = Instant::now();
    let oracle: Vec<_> = queries
        .iter()
        .map(|q| sharded.query_items(rc.algorithm, q, raw, &mut scratch, &mut qstats))
        .collect();
    let inproc_s = t_in.elapsed().as_secs_f64();

    // --- Arm 2: the identical loop through the worker fleet ----------
    let t_dist = Instant::now();
    for (q, expect) in queries.iter().zip(&oracle) {
        let got = remote
            .query_threshold(rc.algorithm, q, raw)
            .expect("distributed threshold query");
        assert_eq!(&got, expect, "distributed answer diverged from in-process");
    }
    let dist_s = t_dist.elapsed().as_secs_f64();
    let loop_stats = remote.take_stats();

    let worker_bounds: Vec<(usize, u32, usize, u32)> = remote
        .worker_hellos()
        .map(|h| (h.shard as usize, h.live, h.bounds.len(), h.max_radius()))
        .collect();

    // --- Arm 3: SIGKILL one worker, time the healing query -----------
    let mut kill_recovery_ms = 0.0;
    let mut heal_stats = RemoteStats::default();
    if rc.kill_worker && !queries.is_empty() {
        assert!(remote.kill_worker(0), "shard 0 has a worker to kill");
        // Top-k broadcasts, so the dead worker cannot be pruned around:
        // the query below *must* detect the death, respawn, reissue.
        let expect = sharded.query_topk(&queries[0], 10, &mut scratch, &mut qstats);
        let t_kill = Instant::now();
        let got = remote
            .query_topk(&queries[0], 10)
            .expect("healing query after SIGKILL");
        kill_recovery_ms = t_kill.elapsed().as_secs_f64() * 1e3;
        assert_eq!(got, expect, "post-respawn answer diverged");
        heal_stats = remote.take_stats();
        assert!(heal_stats.worker_deaths >= 1, "the SIGKILL went undetected");
        assert!(
            heal_stats.respawns >= 1,
            "the dead worker was never respawned"
        );
    }

    let workers = remote.num_workers();
    drop(remote);
    let _ = std::fs::remove_dir_all(&dir);

    DistBenchReport {
        dataset,
        n,
        k,
        workers,
        queries: queries.len(),
        build_s,
        save_s,
        launch_s,
        inproc_qps: queries.len() as f64 / inproc_s.max(1e-9),
        dist_qps: queries.len() as f64 / dist_s.max(1e-9),
        stats: loop_stats,
        worker_bounds,
        heal_stats,
        kill_recovery_ms,
        config: rc,
    }
}
