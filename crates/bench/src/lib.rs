//! Experiment harness: one function per table/figure of the paper's
//! evaluation (Section 7). The `repro` binary prints the same rows and
//! series the paper reports; the criterion benches reuse the same
//! experiment code for statistically solid spot measurements.
//!
//! Scaling knobs (environment variables, all optional):
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `RANKSIM_NYT_N` | NYT-like corpus size | 50 000 |
//! | `RANKSIM_YAGO_N` | Yago-like corpus size | 25 000 |
//! | `RANKSIM_QUERIES` | queries measured per configuration | 200 |
//!
//! Wall-clock numbers are always reported **scaled to 1000 queries** like
//! the paper's plots, independent of `RANKSIM_QUERIES`.

pub mod distributed;
pub mod persist;
pub mod recovery;
pub mod serve;

use std::time::{Duration, Instant};

use ranksim_adaptsearch::AdaptSearchIndex;
use ranksim_core::engine::{Algorithm, Engine, EngineBuilder};
use ranksim_core::{CalibratedCosts, CoarseIndex, CostModel, ShardStrategy, ShardedEngineBuilder};
use ranksim_datasets::{nyt_like, workload, yago_like, Dataset, WorkloadParams};
use ranksim_invindex::{
    AugmentedInvertedIndex, BlockedInvertedIndex, MinimalFv, PlainInvertedIndex,
};
use ranksim_metricspace::{query_pairs, BkPartitioner, BkTree, MTree, VpTree};
use ranksim_rankings::{
    raw_threshold, ItemId, Kernel, QueryScratch, QueryStats, RankingId, RankingStore,
};

/// Experiment scaling configuration (from the environment).
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// NYT-like corpus size.
    pub nyt_n: usize,
    /// Yago-like corpus size.
    pub yago_n: usize,
    /// Number of measured queries per configuration.
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Position-compare kernel the experiment engines run (`repro
    /// --kernel scalar|simd`, or `RANKSIM_KERNEL`). Results are
    /// bit-identical across kernels; only speed differs.
    pub kernel: Kernel,
}

impl ExpConfig {
    /// Reads the configuration from the environment on top of the
    /// laptop-budget defaults.
    pub fn from_env() -> Self {
        Self::default_scale().with_env_overrides()
    }

    /// Environment variables override the fields of `self` (the scale
    /// baseline picked by the `repro` bin's `--scale` flag).
    pub fn with_env_overrides(self) -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        ExpConfig {
            nyt_n: get("RANKSIM_NYT_N", self.nyt_n),
            yago_n: get("RANKSIM_YAGO_N", self.yago_n),
            queries: get("RANKSIM_QUERIES", self.queries),
            seed: self.seed,
            kernel: std::env::var("RANKSIM_KERNEL")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.kernel),
        }
    }

    /// The laptop-budget default scale (NYT n = 50k).
    pub fn default_scale() -> Self {
        ExpConfig {
            nyt_n: 50_000,
            yago_n: 25_000,
            queries: 200,
            seed: 42,
            kernel: Kernel::Simd,
        }
    }

    /// A small configuration for criterion spot benches and smoke tests.
    pub fn small() -> Self {
        ExpConfig {
            nyt_n: 8_000,
            yago_n: 6_000,
            queries: 50,
            seed: 42,
            kernel: Kernel::Simd,
        }
    }

    /// The paper's experiment scale: the NYT corpus has 1M rankings and
    /// Yago 25k; plots report times per 1000 queries. Only the sharded
    /// engine path is expected to handle this on CI-class hardware —
    /// see `repro --scale paper shard`.
    pub fn paper() -> Self {
        ExpConfig {
            nyt_n: 1_000_000,
            yago_n: 25_000,
            queries: 1000,
            seed: 42,
            kernel: Kernel::Simd,
        }
    }

    /// Resolves a `--scale` name (`small`, `default`, `paper`).
    pub fn named_scale(name: &str) -> Option<Self> {
        match name {
            "small" => Some(Self::small()),
            "default" => Some(Self::default_scale()),
            "paper" => Some(Self::paper()),
            _ => None,
        }
    }
}

/// Which dataset family an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Skewed, heavily clustered (web-search result lists).
    Nyt,
    /// Near-uniform, lightly clustered (knowledge-base entity rankings).
    Yago,
}

impl Family {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Nyt => "NYT",
            Family::Yago => "Yago",
        }
    }
}

/// A loaded dataset plus its derived query workload.
pub struct Bench {
    /// The dataset.
    pub ds: Dataset,
    /// The query rankings.
    pub queries: Vec<Vec<ItemId>>,
    /// Queries-per-1000 scale factor for reporting.
    pub scale_to_1000: f64,
}

impl Bench {
    /// Generates a dataset of `family` at ranking size `k` with its
    /// workload.
    pub fn load(cfg: &ExpConfig, family: Family, k: usize) -> Bench {
        let ds = match family {
            Family::Nyt => nyt_like(cfg.nyt_n, k, cfg.seed),
            Family::Yago => yago_like(cfg.yago_n, k, cfg.seed + 1),
        };
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: cfg.queries,
                seed: cfg.seed + 7,
                ..Default::default()
            },
        );
        Bench {
            ds,
            scale_to_1000: 1000.0 / cfg.queries as f64,
            queries: wl.queries,
        }
    }

    /// The corpus store.
    pub fn store(&self) -> &RankingStore {
        &self.ds.store
    }
}

/// Milliseconds (f64) of a duration.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Times `f` over all queries, returning (duration, stats, total results).
pub fn time_queries<F: FnMut(&[ItemId], &mut QueryStats) -> usize>(
    queries: &[Vec<ItemId>],
    mut f: F,
) -> (Duration, QueryStats, usize) {
    let mut stats = QueryStats::new();
    let mut results = 0usize;
    let start = Instant::now();
    for q in queries {
        results += f(q, &mut stats);
    }
    (start.elapsed(), stats, results)
}

// ---------------------------------------------------------------------
// Figure 3: modeled cost curves
// ---------------------------------------------------------------------

/// One point of the Figure 3 model curve.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Normalized θ_C.
    pub theta_c: f64,
    /// Modeled filter cost (ms / 1000 queries).
    pub filter_ms: f64,
    /// Modeled validation cost (ms / 1000 queries).
    pub validate_ms: f64,
}

/// Figure 3: the theoretical filter/validate/overall cost for varying
/// θ_C (k = 10, θ = 0.2). Returns the curve and the model-optimal θ_C.
pub fn fig3(bench: &Bench, theta: f64, calibrated: bool) -> (Vec<Fig3Row>, f64) {
    let k = bench.store().k();
    let costs = if calibrated {
        CalibratedCosts::measure(k)
    } else {
        CalibratedCosts::nominal(k)
    };
    let model = CostModel::from_store(bench.store(), 60_000, 11, costs);
    let theta_raw = raw_threshold(theta, k);
    let to_ms = 1000.0 / 1e6; // ns/query -> ms/1000 queries
    let mut rows = Vec::new();
    let mut tc = 0.0;
    while tc <= 0.8 + 1e-9 {
        let b = model.breakdown(theta_raw, raw_threshold(tc, k));
        rows.push(Fig3Row {
            theta_c: tc,
            filter_ms: b.filter * to_ms,
            validate_ms: b.validate * to_ms,
        });
        tc += 0.05;
    }
    let opt = model.optimal_theta_c_normalized(theta);
    (rows, opt)
}

// ---------------------------------------------------------------------
// Figures 5 & 6: metric trees vs the inverted index
// ---------------------------------------------------------------------

/// Seconds per 1000 queries for one structure at one configuration.
#[derive(Debug, Clone, Copy)]
pub struct TimedPoint {
    /// The swept parameter (k or θ).
    pub x: f64,
    /// Seconds per 1000 queries.
    pub seconds: f64,
}

/// Which structure Figures 5/6 time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Structure {
    /// Burkhard–Keller tree.
    BkTree,
    /// M-tree.
    MTree,
    /// VP-tree (ablation extra, not in the paper's figure).
    VpTree,
    /// Plain inverted index with F&V.
    Fv,
}

impl Structure {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Structure::BkTree => "BK-tree",
            Structure::MTree => "M-tree",
            Structure::VpTree => "VP-tree",
            Structure::Fv => "F&V",
        }
    }
}

/// Times `structure` on `bench` at normalized threshold `theta`.
pub fn time_structure(bench: &Bench, structure: Structure, theta: f64) -> f64 {
    let store = bench.store();
    let raw = raw_threshold(theta, store.k());
    let run = |f: &mut dyn FnMut(&[ItemId], &mut QueryStats) -> usize| {
        let (d, _, _) = time_queries(&bench.queries, f);
        ms(d) / 1e3 * bench.scale_to_1000
    };
    match structure {
        Structure::BkTree => {
            let t = BkTree::build(store);
            run(&mut |q, s| t.range_query(store, &query_pairs(q), raw, s).len())
        }
        Structure::MTree => {
            let t = MTree::build(store);
            run(&mut |q, s| t.range_query(store, &query_pairs(q), raw, s).len())
        }
        Structure::VpTree => {
            let t = VpTree::build(store, 5);
            run(&mut |q, s| t.range_query(store, &query_pairs(q), raw, s).len())
        }
        Structure::Fv => {
            let idx = PlainInvertedIndex::build(store);
            run(&mut |q, s| ranksim_invindex::fv::filter_validate(&idx, store, q, raw, s).len())
        }
    }
}

/// Figure 5/6 sweep (a): vary k at fixed θ.
pub fn sweep_k(
    cfg: &ExpConfig,
    family: Family,
    structures: &[Structure],
    ks: &[usize],
    theta: f64,
) -> Vec<(Structure, Vec<TimedPoint>)> {
    let mut out: Vec<(Structure, Vec<TimedPoint>)> =
        structures.iter().map(|&s| (s, Vec::new())).collect();
    for &k in ks {
        let bench = Bench::load(cfg, family, k);
        for (si, &s) in structures.iter().enumerate() {
            let secs = time_structure(&bench, s, theta);
            out[si].1.push(TimedPoint {
                x: k as f64,
                seconds: secs,
            });
        }
    }
    out
}

/// Figure 5/6 sweep (b): vary θ at fixed k. Each structure is built once
/// and queried at every θ.
pub fn sweep_theta(
    cfg: &ExpConfig,
    family: Family,
    structures: &[Structure],
    k: usize,
    thetas: &[f64],
) -> Vec<(Structure, Vec<TimedPoint>)> {
    let bench = Bench::load(cfg, family, k);
    let store = bench.store();
    let queries = &bench.queries;
    structures
        .iter()
        .map(|&s| {
            // Build once, then time the query batch per threshold.
            let mut run_at: Box<dyn FnMut(u32) -> Duration> = match s {
                Structure::BkTree => {
                    let t = BkTree::build(store);
                    Box::new(move |raw| {
                        time_queries(queries, |q, st| {
                            t.range_query(store, &query_pairs(q), raw, st).len()
                        })
                        .0
                    })
                }
                Structure::MTree => {
                    let t = MTree::build(store);
                    Box::new(move |raw| {
                        time_queries(queries, |q, st| {
                            t.range_query(store, &query_pairs(q), raw, st).len()
                        })
                        .0
                    })
                }
                Structure::VpTree => {
                    let t = VpTree::build(store, 5);
                    Box::new(move |raw| {
                        time_queries(queries, |q, st| {
                            t.range_query(store, &query_pairs(q), raw, st).len()
                        })
                        .0
                    })
                }
                Structure::Fv => {
                    let idx = PlainInvertedIndex::build(store);
                    Box::new(move |raw| {
                        time_queries(queries, |q, st| {
                            ranksim_invindex::fv::filter_validate(&idx, store, q, raw, st).len()
                        })
                        .0
                    })
                }
            };
            let pts = thetas
                .iter()
                .map(|&t| TimedPoint {
                    x: t,
                    seconds: ms(run_at(raw_threshold(t, k))) / 1e3 * bench.scale_to_1000,
                })
                .collect();
            (s, pts)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 7 + Table 5: measured coarse-index sweep and model accuracy
// ---------------------------------------------------------------------

/// One measured point of the Figure 7 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Normalized θ_C.
    pub theta_c: f64,
    /// Measured filtering time (ms / 1000 queries).
    pub filter_ms: f64,
    /// Measured validation time (ms / 1000 queries).
    pub validate_ms: f64,
    /// Partitions in the index at this θ_C.
    pub partitions: usize,
}

/// Sweeps θ_C, measuring the coarse index's filter and validation phases
/// separately (k = 10 in the paper; uses the bench's k). The BK-tree is
/// built once and re-partitioned per θ_C.
pub fn fig7_sweep(bench: &Bench, theta: f64, theta_cs: &[f64]) -> Vec<Fig7Row> {
    let store = bench.store();
    let k = store.k();
    let theta_raw = raw_threshold(theta, k);
    let tree = BkTree::build(store);
    theta_cs
        .iter()
        .map(|&tc| {
            let part = BkPartitioner::partition_tree(tree.clone(), raw_threshold(tc, k));
            let index = CoarseIndex::from_partitioning(store, part);
            let mut filter_time = Duration::ZERO;
            let mut validate_time = Duration::ZERO;
            let mut stats = QueryStats::new();
            let mut scratch = QueryScratch::new();
            let mut filtered = Vec::new();
            let mut results = Vec::new();
            for q in &bench.queries {
                let t0 = Instant::now();
                filtered.clear();
                index.filter_into(
                    store,
                    q,
                    theta_raw,
                    false,
                    Kernel::default(),
                    &mut scratch,
                    &mut stats,
                    &mut filtered,
                );
                filter_time += t0.elapsed();
                let t1 = Instant::now();
                results.clear();
                index.validate_with(
                    store,
                    q,
                    theta_raw,
                    &filtered,
                    &mut scratch,
                    &mut stats,
                    &mut results,
                );
                validate_time += t1.elapsed();
            }
            Fig7Row {
                theta_c: tc,
                filter_ms: ms(filter_time) * bench.scale_to_1000,
                validate_ms: ms(validate_time) * bench.scale_to_1000,
                partitions: index.num_partitions(),
            }
        })
        .collect()
}

/// Table 5 row: gap between the measured-best θ_C and the model-chosen
/// θ_C, in ms per 1000 queries.
#[derive(Debug, Clone, Copy)]
pub struct Table5Row {
    /// Query threshold θ.
    pub theta: f64,
    /// θ_C minimizing the measured total time.
    pub best_theta_c: f64,
    /// The model's choice.
    pub model_theta_c: f64,
    /// Measured total at the best θ_C.
    pub best_ms: f64,
    /// Measured total at the model θ_C.
    pub model_ms: f64,
}

impl Table5Row {
    /// |measured(model θ_C) − measured(best θ_C)|.
    pub fn gap_ms(&self) -> f64 {
        (self.model_ms - self.best_ms).abs()
    }
}

/// Table 5: model-accuracy check over several query thresholds.
pub fn table5(bench: &Bench, thetas: &[f64], theta_cs: &[f64]) -> Vec<Table5Row> {
    let k = bench.store().k();
    let costs = CalibratedCosts::measure(k);
    let model = CostModel::from_store(bench.store(), 60_000, 11, costs);
    thetas
        .iter()
        .map(|&theta| {
            let rows = fig7_sweep(bench, theta, theta_cs);
            let total = |r: &Fig7Row| r.filter_ms + r.validate_ms;
            let best = rows
                .iter()
                .min_by(|a, b| total(a).total_cmp(&total(b)))
                .expect("non-empty sweep");
            let model_tc = model.optimal_theta_c_normalized(theta);
            // Measure at the grid point closest to the model's choice.
            let model_row = rows
                .iter()
                .min_by(|a, b| {
                    (a.theta_c - model_tc)
                        .abs()
                        .total_cmp(&(b.theta_c - model_tc).abs())
                })
                .expect("non-empty sweep");
            Table5Row {
                theta,
                best_theta_c: best.theta_c,
                model_theta_c: model_tc,
                best_ms: total(best),
                model_ms: total(model_row),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 8, 9, 10: the all-algorithm comparison
// ---------------------------------------------------------------------

/// The nine techniques of the comparison figures (the eight ad-hoc
/// algorithms plus the Minimal F&V oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// One of the engine's ad-hoc algorithms.
    Engine(Algorithm),
    /// The workload-materialized oracle.
    MinimalFv,
}

impl Technique {
    /// All techniques in the paper's legend order.
    pub const ALL: [Technique; 9] = [
        Technique::Engine(Algorithm::Fv),
        Technique::Engine(Algorithm::ListMerge),
        Technique::Engine(Algorithm::AdaptSearch),
        Technique::MinimalFv,
        Technique::Engine(Algorithm::Coarse),
        Technique::Engine(Algorithm::CoarseDrop),
        Technique::Engine(Algorithm::BlockedPrune),
        Technique::Engine(Algorithm::BlockedPruneDrop),
        Technique::Engine(Algorithm::FvDrop),
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Engine(a) => a.name(),
            Technique::MinimalFv => "Minimal F&V",
        }
    }
}

/// Measurement of one technique at one (k, θ) configuration.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonCell {
    /// ms per 1000 queries.
    pub time_ms: f64,
    /// Distance-function calls over the measured workload (Figure 10).
    pub dfc: u64,
    /// Total results returned.
    pub results: usize,
}

/// The Figure 8/9/10 engine bundle for one dataset and k.
pub struct ComparisonSetup {
    /// The engine with all ad-hoc indexes (Coarse at θ_C = 0.5,
    /// Coarse+Drop at θ_C = 0.06 — the paper's settings).
    pub engine: Engine,
    bench: Bench,
    oracles: Vec<(f64, MinimalFv)>,
}

impl ComparisonSetup {
    /// Builds every index for `family` at ranking size `k`.
    pub fn build(cfg: &ExpConfig, family: Family, k: usize, thetas: &[f64]) -> Self {
        let bench = Bench::load(cfg, family, k);
        let engine = EngineBuilder::new(bench.ds.store.clone())
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .kernel(cfg.kernel)
            .build();
        let oracles = thetas
            .iter()
            .map(|&t| {
                let raw = raw_threshold(t, k);
                let wl: Vec<(Vec<ItemId>, u32)> =
                    bench.queries.iter().map(|q| (q.clone(), raw)).collect();
                (t, MinimalFv::build(engine.store(), &wl))
            })
            .collect();
        ComparisonSetup {
            engine,
            bench,
            oracles,
        }
    }

    /// Measures one technique at normalized threshold `theta`.
    pub fn measure(&self, technique: Technique, theta: f64) -> ComparisonCell {
        let store = self.engine.store();
        let raw = raw_threshold(theta, store.k());
        let (d, stats, results) = match technique {
            Technique::Engine(alg) => {
                let mut scratch = self.engine.scratch();
                let mut out = Vec::new();
                time_queries(&self.bench.queries, |q, s| {
                    self.engine
                        .query_into(alg, q, raw, &mut scratch, s, &mut out);
                    out.len()
                })
            }
            Technique::MinimalFv => {
                let oracle = &self
                    .oracles
                    .iter()
                    .find(|(t, _)| (*t - theta).abs() < 1e-9)
                    .expect("oracle built for θ")
                    .1;
                let mut qi = 0usize;
                time_queries(&self.bench.queries, |q, s| {
                    let r = oracle.query(store, qi, q, raw, s).len();
                    qi += 1;
                    r
                })
            }
        };
        ComparisonCell {
            time_ms: ms(d) * self.bench.scale_to_1000,
            dfc: stats.distance_calls,
            results,
        }
    }
}

// ---------------------------------------------------------------------
// Table 6: index sizes and construction times
// ---------------------------------------------------------------------

/// One Table 6 row.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Index name as in the paper.
    pub index: &'static str,
    /// Size in MB (structure + the complete rankings, as in the paper).
    pub size_mb: f64,
    /// Construction time in seconds.
    pub construction_s: f64,
}

/// Table 6: builds each index once and reports size and build time
/// (θ_C = 0.5 for the coarse index, as in the paper).
pub fn table6(bench: &Bench) -> Vec<Table6Row> {
    let store = bench.store();
    let base = store.heap_bytes();
    let mb = |b: usize| (b + base) as f64 / (1024.0 * 1024.0);
    let mut rows = Vec::new();

    let t = Instant::now();
    let plain = PlainInvertedIndex::build(store);
    rows.push(Table6Row {
        index: "Plain Inverted Index",
        size_mb: mb(plain.heap_bytes()),
        construction_s: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    let aug = AugmentedInvertedIndex::build(store);
    let blocked = BlockedInvertedIndex::build(store);
    rows.push(Table6Row {
        index: "Augmented Inverted Index",
        size_mb: mb(aug.heap_bytes() + blocked.heap_bytes()),
        construction_s: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    let adapt = AdaptSearchIndex::build(store);
    rows.push(Table6Row {
        index: "Delta Inverted Index",
        size_mb: mb(adapt.heap_bytes()),
        construction_s: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    let bk = BkTree::build(store);
    rows.push(Table6Row {
        index: "BK-tree",
        size_mb: mb(bk.heap_bytes()),
        construction_s: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    let mtree = MTree::build(store);
    rows.push(Table6Row {
        index: "M-tree",
        size_mb: mb(mtree.heap_bytes()),
        construction_s: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    let coarse = CoarseIndex::build(store, raw_threshold(0.5, store.k()));
    rows.push(Table6Row {
        index: "Coarse Index",
        size_mb: mb(coarse.heap_bytes()),
        construction_s: t.elapsed().as_secs_f64(),
    });

    rows
}

// ---------------------------------------------------------------------
// Sharded paper-scale experiment
// ---------------------------------------------------------------------

/// Configuration of one sharded run (the `repro shard` experiment).
#[derive(Debug, Clone, Copy)]
pub struct ShardRunConfig {
    /// Shard count `S`.
    pub shards: usize,
    /// Worker threads for the work-stealing batch driver (0 = all cores).
    pub threads: usize,
    /// Normalized query threshold θ.
    pub theta: f64,
    /// The algorithm every shard runs.
    pub algorithm: Algorithm,
    /// Shard-routing strategy.
    pub strategy: ShardStrategy,
}

impl ShardRunConfig {
    /// Defaults: S = 8, all cores, θ = 0.1, F&V, hash routing —
    /// overridable via `RANKSIM_SHARDS` / `RANKSIM_THREADS`.
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        ShardRunConfig {
            shards: get("RANKSIM_SHARDS", 8).max(1),
            threads: get("RANKSIM_THREADS", 0),
            theta: 0.1,
            algorithm: Algorithm::Fv,
            strategy: ShardStrategy::Hash,
        }
    }
}

/// Everything one sharded run measured.
#[derive(Debug, Clone)]
pub struct ShardRunReport {
    /// Dataset name.
    pub dataset: String,
    /// Corpus size.
    pub n: usize,
    /// Ranking size.
    pub k: usize,
    /// Worker threads actually configured.
    pub threads: usize,
    /// Streaming corpus generation + routing time (s).
    pub generate_s: f64,
    /// Per-shard index construction time (s).
    pub build_s: f64,
    /// Batch wall time (s).
    pub query_s: f64,
    /// Queries processed.
    pub queries: usize,
    /// Total results over the batch.
    pub results: usize,
    /// Rankings per shard.
    pub shard_sizes: Vec<usize>,
    /// Heap bytes per shard (store + indexes).
    pub shard_heap_bytes: Vec<usize>,
    /// Queries each work-stealing worker claimed.
    pub worker_queries: Vec<u64>,
    /// Merged query stats.
    pub stats: QueryStats,
    /// The run configuration.
    pub config: ShardRunConfig,
}

impl ShardRunReport {
    /// Total heap bytes across shards.
    pub fn total_heap_bytes(&self) -> usize {
        self.shard_heap_bytes.iter().sum()
    }

    /// ms per 1000 queries, like the paper's plots.
    pub fn ms_per_1000q(&self) -> f64 {
        self.query_s * 1e3 * 1000.0 / self.queries.max(1) as f64
    }

    /// Renders the report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let join = |v: &[usize]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"shard_scale\",\n");
        s.push_str(&format!(
            "  \"workload\": {{\"dataset\": \"{}\", \"n\": {}, \"k\": {}, \"queries\": {}, \"theta\": {}, \"algorithm\": \"{}\"}},\n",
            self.dataset, self.n, self.k, self.queries, self.config.theta, self.config.algorithm
        ));
        s.push_str(&format!(
            "  \"shards\": {}, \"threads\": {}, \"strategy\": \"{:?}\",\n",
            self.config.shards, self.threads, self.config.strategy
        ));
        s.push_str(&format!(
            "  \"generate_s\": {:.3}, \"build_s\": {:.3}, \"query_s\": {:.3}, \"ms_per_1000q\": {:.3},\n",
            self.generate_s,
            self.build_s,
            self.query_s,
            self.ms_per_1000q()
        ));
        s.push_str(&format!(
            "  \"total_heap_mb\": {:.1},\n",
            self.total_heap_bytes() as f64 / (1024.0 * 1024.0)
        ));
        s.push_str(&format!(
            "  \"shard_sizes\": [{}],\n",
            join(&self.shard_sizes)
        ));
        s.push_str(&format!(
            "  \"shard_heap_bytes\": [{}],\n",
            join(&self.shard_heap_bytes)
        ));
        s.push_str(&format!(
            "  \"worker_queries\": [{}],\n",
            self.worker_queries
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "  \"results\": {}, \"distance_calls\": {}, \"lists_accessed\": {}\n",
            self.results, self.stats.distance_calls, self.stats.lists_accessed
        ));
        s.push_str("}\n");
        s
    }
}

/// Streams a `family` corpus of `cfg` scale shard-by-shard into a
/// [`ShardedEngine`] (no monolithic store is ever materialized), derives
/// a query workload from evenly strided base rankings sampled during the
/// stream, and measures a work-stealing batch run.
pub fn run_sharded(cfg: &ExpConfig, family: Family, rc: ShardRunConfig) -> ShardRunReport {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ranksim_datasets::{perturb_ranking, ClusteredZipfGenerator, PerturbParams};

    let k = 10usize;
    let params = match family {
        Family::Nyt => ranksim_datasets::nyt_like_params(cfg.nyt_n, k, cfg.seed),
        Family::Yago => ranksim_datasets::yago_like_params(cfg.yago_n, k, cfg.seed + 1),
    };
    let n = params.n;
    let domain = params.domain;
    let dataset = params.name.clone();
    let generator = ClusteredZipfGenerator::new(params);

    // Stream the corpus into the shard builder; every stride-th ranking
    // doubles as a query base (the paper draws queries from the data
    // distribution).
    let mut builder = ShardedEngineBuilder::new(k, rc.shards, rc.strategy)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .kernel(cfg.kernel)
        .algorithms(&[rc.algorithm]);
    let stride = (n / cfg.queries.max(1)).max(1);
    let mut bases: Vec<Vec<ItemId>> = Vec::with_capacity(cfg.queries);
    let mut i = 0usize;
    let t0 = Instant::now();
    generator.for_each(|items| {
        if i % stride == 0 && bases.len() < cfg.queries {
            bases.push(items.to_vec());
        }
        builder.push_ranking(items);
        i += 1;
    });
    let generate_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sharded = builder.build();
    let build_s = t1.elapsed().as_secs_f64();

    let mut rng = StdRng::seed_from_u64(cfg.seed + 7);
    let perturb = PerturbParams {
        max_swaps: 3,
        replace_prob: 0.5,
    };
    let mut queries = bases;
    for q in &mut queries {
        perturb_ranking(q, domain, perturb, &mut rng);
    }

    let raw = raw_threshold(rc.theta, k);
    let t2 = Instant::now();
    let (results, reports) = sharded.query_batch_reported(rc.algorithm, &queries, raw, rc.threads);
    let query_s = t2.elapsed().as_secs_f64();

    ShardRunReport {
        dataset,
        n,
        k,
        threads: reports.len(),
        generate_s,
        build_s,
        query_s,
        queries: queries.len(),
        results: results.iter().map(|r| r.len()).sum(),
        shard_sizes: sharded.shard_sizes(),
        shard_heap_bytes: sharded.shard_heap_bytes(),
        worker_queries: reports.iter().map(|r| r.queries).collect(),
        stats: ranksim_core::merge_reports(&reports),
        config: rc,
    }
}

// ---------------------------------------------------------------------
// Live-corpus churn experiment (repro churn)
// ---------------------------------------------------------------------

/// Configuration of one `repro churn` run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnRunConfig {
    /// Fraction of operations that are writes (default 0.1 — the 90/10
    /// read/write mix; `RANKSIM_CHURN_WRITE_PCT` in percent).
    pub write_fraction: f64,
    /// Total mixed operations (default `n / 2`; `RANKSIM_CHURN_OPS`).
    pub ops: usize,
    /// Normalized query threshold θ of every read.
    pub theta: f64,
    /// The algorithm reads run (default `Auto`: the planner keeps
    /// working over a drifting corpus).
    pub algorithm: Algorithm,
}

impl ChurnRunConfig {
    /// Defaults plus environment overrides.
    pub fn from_env(cfg: &ExpConfig) -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        ChurnRunConfig {
            write_fraction: get("RANKSIM_CHURN_WRITE_PCT", 10).min(90) as f64 / 100.0,
            ops: get("RANKSIM_CHURN_OPS", cfg.nyt_n / 2).max(100),
            theta: 0.1,
            algorithm: Algorithm::Auto,
        }
    }
}

/// Everything one churn run measured (the `BENCH_churn.json` artifact):
/// read latency and memory through the corpus lifecycle — pristine,
/// under the mixed read/write phase, tombstone-laden, and after the
/// compaction pass folded the overlay into fresh arenas.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Dataset name.
    pub dataset: String,
    /// Initial corpus size.
    pub n: usize,
    /// Ranking size.
    pub k: usize,
    /// Mixed operations executed.
    pub ops: usize,
    /// Reads / inserts / removes within the mixed phase.
    pub reads: usize,
    /// Inserts within the mixed phase.
    pub inserts: usize,
    /// Removes within the mixed phase.
    pub removes: usize,
    /// Initial index construction time (s).
    pub build_s: f64,
    /// Pristine read latency (ms / 1000 queries).
    pub baseline_ms_per_1000q: f64,
    /// Read latency *during* the mixed phase (ms / 1000 reads; writes
    /// excluded from the numerator's count, included in the wall time of
    /// their own measurement).
    pub churn_read_ms_per_1000q: f64,
    /// Write latency during the mixed phase (µs / write).
    pub churn_write_us_per_op: f64,
    /// Read latency on the tombstone-laden engine after the mixed phase.
    pub post_churn_ms_per_1000q: f64,
    /// Read latency after [`Engine::compact`].
    pub post_compact_ms_per_1000q: f64,
    /// Compaction wall time (s).
    pub compact_s: f64,
    /// Engine heap before the mixed phase.
    pub heap_before_bytes: usize,
    /// Engine heap right after the mixed phase (overlay + tombstones).
    pub heap_after_churn_bytes: usize,
    /// Engine heap after compaction.
    pub heap_after_compact_bytes: usize,
    /// Delta-overlay size and base tombstones at compaction time.
    pub delta_len: usize,
    /// Base tombstones at compaction time.
    pub tombstones: usize,
    /// Live corpus size at the end.
    pub live_len: usize,
    /// The run configuration.
    pub config: ChurnRunConfig,
}

impl ChurnReport {
    /// Renders the report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"churn\",\n");
        s.push_str(&format!(
            "  \"workload\": {{\"dataset\": \"{}\", \"n\": {}, \"k\": {}, \"theta\": {}, \"algorithm\": \"{}\", \"write_fraction\": {}}},\n",
            self.dataset, self.n, self.k, self.config.theta, self.config.algorithm, self.config.write_fraction
        ));
        s.push_str(&format!(
            "  \"ops\": {}, \"reads\": {}, \"inserts\": {}, \"removes\": {},\n",
            self.ops, self.reads, self.inserts, self.removes
        ));
        s.push_str(&format!(
            "  \"build_s\": {:.3}, \"compact_s\": {:.3},\n",
            self.build_s, self.compact_s
        ));
        s.push_str(&format!(
            "  \"read_ms_per_1000q\": {{\"baseline\": {:.3}, \"during_churn\": {:.3}, \"post_churn\": {:.3}, \"post_compact\": {:.3}}},\n",
            self.baseline_ms_per_1000q,
            self.churn_read_ms_per_1000q,
            self.post_churn_ms_per_1000q,
            self.post_compact_ms_per_1000q
        ));
        s.push_str(&format!(
            "  \"write_us_per_op\": {:.3},\n",
            self.churn_write_us_per_op
        ));
        s.push_str(&format!(
            "  \"heap_bytes\": {{\"before\": {}, \"after_churn\": {}, \"after_compact\": {}}},\n",
            self.heap_before_bytes, self.heap_after_churn_bytes, self.heap_after_compact_bytes
        ));
        s.push_str(&format!(
            "  \"delta_len\": {}, \"tombstones\": {}, \"live_len\": {}\n",
            self.delta_len, self.tombstones, self.live_len
        ));
        s.push_str("}\n");
        s
    }
}

/// The live-corpus churn experiment: builds the NYT-family engine, then
/// drives a deterministic 90/10 read/write mix (reads = threshold
/// queries through the chosen algorithm, writes = alternating inserts of
/// perturbed rankings and removals of random live ids), measuring read
/// latency and memory before the mix, during it, on the tombstone-laden
/// engine, and after an explicit [`Engine::compact`] — the
/// before/after-compaction comparison `BENCH_churn.json` records.
pub fn run_churn(cfg: &ExpConfig, rc: ChurnRunConfig) -> ChurnReport {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use ranksim_datasets::{perturb_ranking, PerturbParams};

    let bench = Bench::load(cfg, Family::Nyt, 10);
    let k = bench.store().k();
    let n = bench.store().len();
    let domain = bench.ds.params.domain;
    let dataset = bench.ds.params.name.clone();

    let t0 = Instant::now();
    let mut engine = EngineBuilder::new(bench.ds.store)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .kernel(cfg.kernel)
        .algorithms(&[
            rc.algorithm,
            Algorithm::Fv,
            Algorithm::ListMerge,
            Algorithm::Coarse,
        ])
        .compaction_threshold(f64::INFINITY) // phases timed explicitly
        .build();
    let build_s = t0.elapsed().as_secs_f64();
    let heap_before_bytes = engine.heap_bytes();

    let raw = raw_threshold(rc.theta, k);
    let mut scratch = engine.scratch();
    let mut stats = QueryStats::new();
    let mut out = Vec::new();

    // Phase 1: pristine read latency.
    let mut read_cursor = 0usize;
    let timed_reads = |engine: &Engine,
                       scratch: &mut QueryScratch,
                       out: &mut Vec<_>,
                       stats: &mut QueryStats,
                       cursor: &mut usize|
     -> f64 {
        let t = Instant::now();
        for _ in 0..bench.queries.len() {
            let q = &bench.queries[*cursor % bench.queries.len()];
            *cursor += 1;
            engine.query_into(rc.algorithm, q, raw, scratch, stats, out);
        }
        ms(t.elapsed()) * 1000.0 / bench.queries.len() as f64
    };
    let baseline_ms_per_1000q = timed_reads(
        &engine,
        &mut scratch,
        &mut out,
        &mut stats,
        &mut read_cursor,
    );

    // Phase 2: the mixed read/write phase. Writes alternate inserts
    // (perturbed copies of live rankings — the data distribution) and
    // removals of random live ids.
    let mut rng = StdRng::seed_from_u64(cfg.seed + 99);
    let perturb = PerturbParams {
        max_swaps: 3,
        replace_prob: 0.5,
    };
    let (mut reads, mut inserts, mut removes) = (0usize, 0usize, 0usize);
    let mut read_wall = Duration::ZERO;
    let mut write_wall = Duration::ZERO;
    for op in 0..rc.ops {
        let write = rng.random_range(0.0..1.0) < rc.write_fraction;
        if write && op % 2 == 0 {
            // Insert a perturbed copy of a random live ranking.
            let donor = loop {
                let id = RankingId(rng.random_range(0..engine.store().len() as u32));
                if engine.is_live(id) {
                    break id;
                }
            };
            let mut items = engine.store().items(donor).to_vec();
            perturb_ranking(&mut items, domain, perturb, &mut rng);
            let t = Instant::now();
            engine.insert_ranking(&items);
            write_wall += t.elapsed();
            inserts += 1;
        } else if write {
            let victim = loop {
                let id = RankingId(rng.random_range(0..engine.store().len() as u32));
                if engine.is_live(id) {
                    break id;
                }
            };
            let t = Instant::now();
            engine.remove_ranking(victim);
            write_wall += t.elapsed();
            removes += 1;
        } else {
            let q = &bench.queries[read_cursor % bench.queries.len()];
            read_cursor += 1;
            let t = Instant::now();
            engine.query_into(rc.algorithm, q, raw, &mut scratch, &mut stats, &mut out);
            read_wall += t.elapsed();
            reads += 1;
        }
    }
    let churn_read_ms_per_1000q = ms(read_wall) * 1000.0 / reads.max(1) as f64;
    let churn_write_us_per_op = write_wall.as_secs_f64() * 1e6 / (inserts + removes).max(1) as f64;

    // Phase 3: the tombstone-laden engine.
    let delta_len = engine.delta_len();
    let tombstones = engine.base_tombstones();
    let heap_after_churn_bytes = engine.heap_bytes();
    let post_churn_ms_per_1000q = timed_reads(
        &engine,
        &mut scratch,
        &mut out,
        &mut stats,
        &mut read_cursor,
    );

    // Phase 4: compaction, then steady-state again.
    let t = Instant::now();
    engine.compact();
    let compact_s = t.elapsed().as_secs_f64();
    let heap_after_compact_bytes = engine.heap_bytes();
    let post_compact_ms_per_1000q = timed_reads(
        &engine,
        &mut scratch,
        &mut out,
        &mut stats,
        &mut read_cursor,
    );

    ChurnReport {
        dataset,
        n,
        k,
        ops: rc.ops,
        reads,
        inserts,
        removes,
        build_s,
        baseline_ms_per_1000q,
        churn_read_ms_per_1000q,
        churn_write_us_per_op,
        post_churn_ms_per_1000q,
        post_compact_ms_per_1000q,
        compact_s,
        heap_before_bytes,
        heap_after_churn_bytes,
        heap_after_compact_bytes,
        delta_len,
        tombstones,
        live_len: engine.live_len(),
        config: rc,
    }
}

// ---------------------------------------------------------------------
// Planner sweep: Algorithm::Auto vs the per-configuration oracle
// ---------------------------------------------------------------------

/// Configuration of one `repro planner` sweep.
#[derive(Debug, Clone)]
pub struct PlannerRunConfig {
    /// The planner's candidate set (the `--algorithms` flag; defaults to
    /// all eight techniques).
    pub candidates: Vec<Algorithm>,
    /// Normalized query thresholds swept.
    pub thetas: Vec<f64>,
    /// Corpus sizes swept.
    pub sizes: Vec<usize>,
    /// Timed passes per configuration (the median is reported).
    pub rounds: usize,
}

/// Parses the `--algorithms` flag value: a comma-separated list of
/// planner candidates in paper names or lax spellings (`fv`,
/// `F&V+Drop`, `blocked_prune`, …). At least one concrete algorithm is
/// required and `Auto` is rejected — the flag *configures* Auto's
/// candidate set.
pub fn parse_algorithms_flag(list: &str) -> Result<Vec<Algorithm>, String> {
    let parsed: Result<Vec<Algorithm>, _> = list.split(',').map(|s| s.trim().parse()).collect();
    match parsed {
        Ok(algs) if algs.is_empty() => Err("expected at least one algorithm".into()),
        Ok(algs) if algs.contains(&Algorithm::Auto) => {
            Err("Auto cannot be its own candidate; list concrete algorithms".into())
        }
        Ok(algs) => {
            // Dedup (order-preserving): a repeated candidate would get
            // multiple exploration slots and double-count in win rates.
            let mut seen = Vec::new();
            for a in algs {
                if !seen.contains(&a) {
                    seen.push(a);
                }
            }
            Ok(seen)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Parses the `--kernel` flag value: the position-compare kernel every
/// experiment engine runs (`scalar` — the exact oracle — or `simd`).
/// Results are bit-identical across kernels; the flag exists for A/B
/// speed measurement.
pub fn parse_kernel_flag(value: &str) -> Result<Kernel, String> {
    value.trim().parse().map_err(|e| format!("{e}"))
}

impl PlannerRunConfig {
    /// Defaults: all eight candidates, θ ∈ {0.05, 0.1, 0.2, 0.3}, corpus
    /// sizes {n/4, n}, 2 timed rounds (`RANKSIM_PLANNER_ROUNDS`).
    pub fn from_env(cfg: &ExpConfig, candidates: Option<Vec<Algorithm>>) -> Self {
        let rounds = std::env::var("RANKSIM_PLANNER_ROUNDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2usize)
            .max(1);
        PlannerRunConfig {
            candidates: candidates.unwrap_or_else(|| Algorithm::ALL.to_vec()),
            thetas: vec![0.05, 0.1, 0.2, 0.3],
            sizes: vec![(cfg.nyt_n / 4).max(500), cfg.nyt_n],
            rounds,
        }
    }
}

/// One (corpus size, θ) cell of the planner sweep.
#[derive(Debug, Clone)]
pub struct PlannerRow {
    /// Corpus size.
    pub n: usize,
    /// Normalized query threshold.
    pub theta: f64,
    /// Measured ms / 1000 queries per fixed candidate algorithm.
    pub alg_ms: Vec<(Algorithm, f64)>,
    /// Measured ms / 1000 queries for `Auto` (planning + dispatch
    /// overhead included), after four recalibration warm-up passes.
    pub auto_ms: f64,
    /// The best fixed algorithm of this cell (the oracle).
    pub oracle: Algorithm,
    /// The oracle's time.
    pub oracle_ms: f64,
    /// Planner picks per algorithm over the measured pass.
    pub picks: Vec<(Algorithm, u64)>,
    /// Sum of planner-predicted costs over the measured pass (calibrated ns).
    pub predicted_ns: f64,
    /// Sum of measured executor runtimes over the measured pass (ns).
    pub actual_ns: f64,
}

impl PlannerRow {
    /// `auto / oracle − 1`: how much slower Auto was than the
    /// best-in-hindsight fixed choice (negative when per-query switching
    /// beats every fixed algorithm).
    pub fn regret(&self) -> f64 {
        self.auto_ms / self.oracle_ms.max(1e-9) - 1.0
    }
}

/// Everything one planner sweep measured (the `BENCH_planner.json`
/// artifact).
#[derive(Debug, Clone)]
pub struct PlannerReport {
    /// Dataset family name.
    pub dataset: String,
    /// Ranking size.
    pub k: usize,
    /// Queries per configuration.
    pub queries: usize,
    /// The candidate set in effect.
    pub candidates: Vec<Algorithm>,
    /// One row per (corpus size, θ).
    pub rows: Vec<PlannerRow>,
}

impl PlannerReport {
    /// Time-weighted sweep-wide regret: `Σ auto / Σ oracle − 1`.
    pub fn overall_regret(&self) -> f64 {
        let auto: f64 = self.rows.iter().map(|r| r.auto_ms).sum();
        let oracle: f64 = self.rows.iter().map(|r| r.oracle_ms).sum();
        auto / oracle.max(1e-9) - 1.0
    }

    /// Fraction of planner picks per algorithm across the whole sweep.
    pub fn win_rate(&self) -> Vec<(Algorithm, f64)> {
        let mut totals: Vec<(Algorithm, u64)> =
            self.candidates.iter().map(|&a| (a, 0u64)).collect();
        let mut all = 0u64;
        for row in &self.rows {
            for &(alg, n) in &row.picks {
                if let Some(t) = totals.iter_mut().find(|(a, _)| *a == alg) {
                    t.1 += n;
                }
                all += n;
            }
        }
        totals
            .into_iter()
            .map(|(a, n)| (a, n as f64 / all.max(1) as f64))
            .collect()
    }

    /// Renders the report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"planner_sweep\",\n");
        s.push_str(&format!(
            "  \"workload\": {{\"dataset\": \"{}\", \"k\": {}, \"queries\": {}}},\n",
            self.dataset, self.k, self.queries
        ));
        s.push_str(&format!(
            "  \"candidates\": [{}],\n",
            self.candidates
                .iter()
                .map(|a| format!("\"{a}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "  \"overall_regret\": {:.4},\n",
            self.overall_regret()
        ));
        s.push_str(&format!(
            "  \"win_rate\": {{{}}},\n",
            self.win_rate()
                .iter()
                .map(|(a, w)| format!("\"{a}\": {w:.4}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"n\": {}, \"theta\": {}, \"auto_ms\": {:.3}, \"oracle\": \"{}\", \
                 \"oracle_ms\": {:.3}, \"regret\": {:.4}, \"predicted_ns\": {:.0}, \
                 \"actual_ns\": {:.0}, \"alg_ms\": {{{}}}, \"picks\": {{{}}}}}{}\n",
                r.n,
                r.theta,
                r.auto_ms,
                r.oracle,
                r.oracle_ms,
                r.regret(),
                r.predicted_ns,
                r.actual_ns,
                r.alg_ms
                    .iter()
                    .map(|(a, m)| format!("\"{a}\": {m:.3}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                r.picks
                    .iter()
                    .map(|(a, n)| format!("\"{a}\": {n}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The `repro planner` sweep: for every (corpus size, θ) it interleaves
/// timed passes of each fixed candidate algorithm with `Algorithm::Auto`
/// (after four recalibration warm-up passes over the workload) and
/// reports per-technique medians, per-cell win-rates, and the planner's
/// regret against the best-in-hindsight fixed algorithm. Each engine
/// carries the real measured machine calibration, so the planner runs
/// exactly as a production caller would see it.
pub fn run_planner_sweep(cfg: &ExpConfig, rc: &PlannerRunConfig) -> PlannerReport {
    let k = 10usize;
    let mut rows = Vec::new();
    for &n in &rc.sizes {
        let mut sized = *cfg;
        sized.nyt_n = n;
        let bench = Bench::load(&sized, Family::Nyt, k);
        let mut selected = rc.candidates.clone();
        selected.push(Algorithm::Auto);
        let engine = EngineBuilder::new(bench.ds.store.clone())
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .kernel(cfg.kernel)
            .algorithms(&selected)
            .build();
        let mut scratch = engine.scratch();
        let mut out = Vec::new();
        for &theta in &rc.thetas {
            let raw = raw_threshold(theta, k);
            let mut run_pass = |alg: Algorithm| -> (Duration, ranksim_core::PlanStats) {
                let mut plan = ranksim_core::PlanStats::new();
                let mut stats = QueryStats::new();
                let start = Instant::now();
                for q in &bench.queries {
                    let trace =
                        engine.query_into_traced(alg, q, raw, &mut scratch, &mut stats, &mut out);
                    plan.record(&trace);
                }
                (start.elapsed(), plan)
            };
            // Warm-up passes drain this θ-bucket's exploration phase and
            // recalibrate its level estimates from measured runtimes;
            // the measured rounds then reflect the planner's steady
            // state.
            for _ in 0..4 {
                let _ = run_pass(Algorithm::Auto);
            }
            // Measured rounds interleave every fixed arm with Auto so
            // environmental drift (CPU frequency, noisy neighbours)
            // spreads evenly instead of systematically taxing whichever
            // technique happens to run last; medians per technique are
            // then comparable, and symmetric between the arms and Auto.
            // Round 0 is an untimed warm round: it gives every *fixed*
            // arm the same warmed start Auto already got from its
            // recalibration passes.
            let mut arm_rounds: Vec<Vec<Duration>> = vec![Vec::new(); rc.candidates.len()];
            let mut auto_rounds: Vec<(Duration, ranksim_core::PlanStats)> = Vec::new();
            for round in 0..=rc.rounds {
                for (ai, &alg) in rc.candidates.iter().enumerate() {
                    let d = run_pass(alg).0;
                    if round > 0 {
                        arm_rounds[ai].push(d);
                    }
                }
                let r = run_pass(Algorithm::Auto);
                if round > 0 {
                    auto_rounds.push(r);
                }
            }
            // Lower median: well-defined for even round counts and
            // applied identically to the arms and Auto.
            let median = |mut ds: Vec<Duration>| -> Duration {
                ds.sort_unstable();
                ds[(ds.len() - 1) / 2]
            };
            let alg_ms: Vec<(Algorithm, f64)> = rc
                .candidates
                .iter()
                .zip(arm_rounds)
                .map(|(&alg, ds)| (alg, ms(median(ds)) * bench.scale_to_1000))
                .collect();
            auto_rounds.sort_unstable_by_key(|&(d, _)| d);
            let (auto_d, plan) = auto_rounds.swap_remove((auto_rounds.len() - 1) / 2);
            let auto_ms = ms(auto_d) * bench.scale_to_1000;
            let &(oracle, oracle_ms) = alg_ms
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty candidate set");
            rows.push(PlannerRow {
                n,
                theta,
                alg_ms: alg_ms.clone(),
                auto_ms,
                oracle,
                oracle_ms,
                picks: rc
                    .candidates
                    .iter()
                    .map(|&a| (a, plan.picks_of(a)))
                    .collect(),
                predicted_ns: plan.predicted_ns,
                actual_ns: plan.actual_ns,
            });
        }
    }
    PlannerReport {
        dataset: "NYT".into(),
        k,
        queries: cfg.queries,
        candidates: rc.candidates.clone(),
        rows,
    }
}

// ---------------------------------------------------------------------
// Verification sweep
// ---------------------------------------------------------------------

/// Asserts that all techniques return identical result sets on the given
/// bench (run before timing anything). Returns the number of checked
/// (query, θ) pairs.
pub fn verify(setup: &ComparisonSetup, thetas: &[f64]) -> usize {
    let store = setup.engine.store();
    let mut checked = 0usize;
    let mut scratch = setup.engine.scratch();
    for (qi, q) in setup.bench.queries.iter().enumerate().take(25) {
        for &theta in thetas {
            let raw = raw_threshold(theta, store.k());
            let mut stats = QueryStats::new();
            let mut expect =
                setup
                    .engine
                    .query_items(Algorithm::Fv, q, raw, &mut scratch, &mut stats);
            expect.sort_unstable();
            for alg in Algorithm::ALL {
                let mut got = setup
                    .engine
                    .query_items(alg, q, raw, &mut scratch, &mut stats);
                got.sort_unstable();
                assert_eq!(got, expect, "{alg} disagrees at θ={theta}, query {qi}");
            }
            checked += 1;
        }
    }
    checked
}

// ---------------------------------------------------------------------
// Ablations (not in the paper; validate DESIGN.md's design choices)
// ---------------------------------------------------------------------

/// Result of one ablation arm.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Arm name.
    pub arm: String,
    /// ms per 1000 queries.
    pub time_ms: f64,
    /// Distance-function calls over the workload.
    pub dfc: u64,
}

/// Ablation A — Lemma 2 list-selection policy: dropping the *longest*
/// lists (the paper's heuristic) vs naively keeping the first `k − ω`
/// query positions vs keeping all lists.
pub fn ablation_drop_policy(bench: &Bench, theta: f64) -> Vec<AblationRow> {
    use ranksim_invindex::drop::omega;
    use ranksim_invindex::fv;
    let store = bench.store();
    let k = store.k();
    let raw = raw_threshold(theta, k);
    let index = PlainInvertedIndex::build(store);
    let mut rows = Vec::new();

    let (d, stats, _) = time_queries(&bench.queries, |q, s| {
        fv::filter_validate(&index, store, q, raw, s).len()
    });
    rows.push(AblationRow {
        arm: "keep all lists (F&V)".into(),
        time_ms: ms(d) * bench.scale_to_1000,
        dfc: stats.distance_calls,
    });

    let (d, stats, _) = time_queries(&bench.queries, |q, s| {
        fv::filter_validate_drop(&index, store, q, raw, s).len()
    });
    rows.push(AblationRow {
        arm: "drop longest lists (paper)".into(),
        time_ms: ms(d) * bench.scale_to_1000,
        dfc: stats.distance_calls,
    });

    // Naive positional policy: keep query positions 0..max(1, k−ω) —
    // the prefix always contains position 0 < ω, so Lemma 2 still holds.
    let (d, stats, _) = time_queries(&bench.queries, |q, s| {
        let w = omega(k, raw);
        let keep: Vec<usize> = (0..(k - w).max(1)).collect();
        fv::filter_validate_positions(&index, store, q, &keep, raw, s).len()
    });
    rows.push(AblationRow {
        arm: "drop trailing positions (naive)".into(),
        time_ms: ms(d) * bench.scale_to_1000,
        dfc: stats.distance_calls,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithms_flag_parses_lax_spellings_and_rejects_bad_input() {
        assert_eq!(
            parse_algorithms_flag("fv, listmerge ,Coarse+Drop").unwrap(),
            vec![Algorithm::Fv, Algorithm::ListMerge, Algorithm::CoarseDrop]
        );
        assert_eq!(
            parse_algorithms_flag("F&V+Drop,blocked_prune_drop").unwrap(),
            vec![Algorithm::FvDrop, Algorithm::BlockedPruneDrop]
        );
        assert!(parse_algorithms_flag("fv,unknown")
            .unwrap_err()
            .contains("unknown algorithm 'unknown'"));
        assert!(
            parse_algorithms_flag("auto").is_err(),
            "Auto is not a candidate"
        );
        assert!(parse_algorithms_flag("").is_err());
    }

    #[test]
    fn kernel_flag_parses_both_kernels_and_rejects_bad_input() {
        assert_eq!(parse_kernel_flag("scalar").unwrap(), Kernel::Scalar);
        assert_eq!(parse_kernel_flag("simd").unwrap(), Kernel::Simd);
        assert_eq!(parse_kernel_flag(" SIMD ").unwrap(), Kernel::Simd);
        let err = parse_kernel_flag("avx512").unwrap_err();
        assert!(err.contains("avx512"), "error names the bad value: {err}");
        assert!(parse_kernel_flag("").is_err());
    }

    #[test]
    fn exp_config_defaults_to_the_simd_kernel() {
        assert_eq!(ExpConfig::default_scale().kernel, Kernel::Simd);
        assert_eq!(ExpConfig::small().kernel, Kernel::Simd);
        assert_eq!(ExpConfig::paper().kernel, Kernel::Simd);
    }

    #[test]
    fn table6_sizes_account_for_headers_and_structures_exactly() {
        let mut cfg = ExpConfig::small();
        cfg.nyt_n = 1500;
        cfg.queries = 5;
        let bench = Bench::load(&cfg, Family::Nyt, 10);
        let rows = table6(&bench);
        assert_eq!(rows.len(), 6);
        let base_mb = bench.store().heap_bytes() as f64 / (1024.0 * 1024.0);
        for r in &rows {
            assert!(
                r.size_mb > base_mb,
                "{} must include the store base plus the structure",
                r.index
            );
        }
        // The plain row reports exactly the CSR index's heap_bytes (index
        // header + offsets array + postings array + remap) on top of the
        // store — the exact accounting the heap_bytes fix introduced.
        let plain = PlainInvertedIndex::build(bench.store());
        let expect_mb =
            (plain.heap_bytes() + bench.store().heap_bytes()) as f64 / (1024.0 * 1024.0);
        assert!(
            (rows[0].size_mb - expect_mb).abs() < 1e-9,
            "Table 6 plain row {} != exact heap_bytes {}",
            rows[0].size_mb,
            expect_mb
        );
        // The exact count covers the header and one slot per (ranking,
        // item) posting, which the old hashmap accounting undercounted.
        assert!(
            plain.heap_bytes()
                >= std::mem::size_of::<PlainInvertedIndex>()
                    + bench.store().len() * bench.store().k() * 4
        );
    }
}

/// Ablation B — partitioning scheme behind the coarse index: shared
/// BK-subtrees (the paper's Figure 1 design, zero extra distance calls)
/// vs Chávez–Navarro random medoids with per-partition BK-trees.
pub fn ablation_partitioner(bench: &Bench, theta: f64, theta_c: f64) -> Vec<AblationRow> {
    use ranksim_metricspace::RandomMedoidPartitioner;
    let store = bench.store();
    let k = store.k();
    let raw = raw_threshold(theta, k);
    let raw_c = raw_threshold(theta_c, k);
    let mut rows = Vec::new();

    for (name, index) in [
        (
            "BK-subtree partitions (paper)",
            CoarseIndex::build(store, raw_c),
        ),
        (
            "random-medoid partitions",
            CoarseIndex::from_partitioning(
                store,
                RandomMedoidPartitioner::new(17).partition(store, raw_c),
            ),
        ),
    ] {
        let build_dfc = index.build_stats().distance_calls;
        let (d, stats, _) = time_queries(&bench.queries, |q, s| {
            index.query(store, q, raw, false, s).len()
        });
        rows.push(AblationRow {
            arm: format!(
                "{name} ({} partitions, {build_dfc} build DFC)",
                index.num_partitions()
            ),
            time_ms: ms(d) * bench.scale_to_1000,
            dfc: stats.distance_calls,
        });
    }
    rows
}
