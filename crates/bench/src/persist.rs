//! The persistence experiment (`repro persist`): what a warm cold-start
//! from an `RSSN` snapshot buys over rebuilding every index from the
//! raw corpus.
//!
//! Three measurements over the NYT-family corpus:
//!
//! 1. **Build vs open** — the full index build
//!    ([`EngineBuilder::build`]: partitioning, every inverted index,
//!    the BK-tree) is timed against [`ranksim_core::load_engine`]
//!    re-opening the same engine from its snapshot, in both
//!    [`LoadMode::Verify`] (per-section CRC) and [`LoadMode::Trust`]
//!    (structural checks only). The headline number is the open/build
//!    speedup; at paper scale (`n ≥ 200k`) the run *asserts* the
//!    verified open is at least 10× faster than the rebuild.
//! 2. **Snapshot bandwidth** — bytes on disk and MB/s for the save and
//!    for both open modes, which separates CRC cost from I/O + cast
//!    cost.
//! 3. **Answer equivalence** — the loaded engines answer a slice of the
//!    workload through every algorithm (plus `Auto` and top-k) and
//!    every answer is asserted bit-identical to the built engine's, so
//!    a silently wrong load fails the benchmark run rather than
//!    producing pretty numbers.

use std::time::Instant;

use ranksim_core::engine::{Algorithm, Engine, EngineBuilder};
use ranksim_core::{load_engine, save_engine, LoadMode, SnapshotMeta};
use ranksim_rankings::{raw_threshold, QueryStats};

use crate::{Bench, ExpConfig, Family};

/// Configuration of one `repro persist` run.
#[derive(Debug, Clone, Copy)]
pub struct PersistRunConfig {
    /// Queries of the workload used for the equivalence self-check
    /// (`RANKSIM_PERSIST_CHECK_QUERIES`; default min(queries, 50)).
    pub check_queries: usize,
    /// Open/build speedup the run demands once `n` reaches
    /// [`PersistRunConfig::speedup_floor_n`].
    pub min_speedup: f64,
    /// Corpus size from which `min_speedup` is enforced.
    pub speedup_floor_n: usize,
}

impl PersistRunConfig {
    /// Defaults plus environment overrides.
    pub fn from_env(cfg: &ExpConfig) -> Self {
        let check = std::env::var("RANKSIM_PERSIST_CHECK_QUERIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| cfg.queries.min(50));
        PersistRunConfig {
            check_queries: check.max(1),
            min_speedup: 10.0,
            speedup_floor_n: 200_000,
        }
    }
}

/// One timed open of the snapshot.
#[derive(Debug, Clone, Copy)]
pub struct OpenCost {
    /// Wall seconds for [`ranksim_core::load_engine`].
    pub open_s: f64,
    /// Snapshot bytes divided by `open_s`.
    pub mb_per_s: f64,
    /// Build time divided by `open_s`.
    pub speedup: f64,
}

/// Everything one persistence run measured (the `BENCH_persist.json`
/// artifact).
#[derive(Debug, Clone)]
pub struct PersistBenchReport {
    /// Dataset name.
    pub dataset: String,
    /// Corpus size.
    pub n: usize,
    /// Ranking size.
    pub k: usize,
    /// Full index build (every structure + BK-tree), seconds.
    pub build_s: f64,
    /// [`ranksim_core::save_engine`] wall seconds.
    pub save_s: f64,
    /// Snapshot size on disk.
    pub snapshot_bytes: u64,
    /// Save bandwidth, MB/s.
    pub save_mb_per_s: f64,
    /// The checksum-verified open.
    pub verify: OpenCost,
    /// The structural-checks-only open.
    pub trust: OpenCost,
    /// `(query, θ, algorithm)` cells asserted bit-identical, per loaded
    /// engine.
    pub checked_cells: usize,
    /// The run configuration.
    pub config: PersistRunConfig,
}

impl PersistBenchReport {
    /// Renders the report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"persist\",\n");
        s.push_str(&format!(
            "  \"workload\": {{\"dataset\": \"{}\", \"n\": {}, \"k\": {}}},\n",
            self.dataset, self.n, self.k
        ));
        s.push_str(&format!("  \"build_s\": {:.4},\n", self.build_s));
        s.push_str(&format!(
            "  \"save\": {{\"s\": {:.4}, \"bytes\": {}, \"mb_per_s\": {:.1}}},\n",
            self.save_s, self.snapshot_bytes, self.save_mb_per_s
        ));
        for (name, c) in [("open_verify", &self.verify), ("open_trust", &self.trust)] {
            s.push_str(&format!(
                "  \"{name}\": {{\"s\": {:.4}, \"mb_per_s\": {:.1}, \"speedup\": {:.1}}},\n",
                c.open_s, c.mb_per_s, c.speedup
            ));
        }
        s.push_str(&format!("  \"checked_cells\": {}\n", self.checked_cells));
        s.push_str("}\n");
        s
    }
}

/// Builds the full-fat engine the experiment snapshots: every inverted
/// index, both coarse indexes at the paper's settings, and the top-k
/// BK-tree — the worst case for a cold rebuild.
fn build_full(bench: &Bench) -> Engine {
    EngineBuilder::new(bench.ds.store.clone())
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .topk_tree(true)
        .build()
}

/// Asserts `loaded` answers a workload slice bit-identically to
/// `built`: every algorithm plus `Auto` at three thresholds, plus exact
/// top-k. Returns the number of compared cells.
fn assert_equivalent(
    built: &Engine,
    loaded: &Engine,
    bench: &Bench,
    check_queries: usize,
) -> usize {
    let k = built.store().k();
    let mut algorithms: Vec<Algorithm> = Algorithm::ALL.to_vec();
    algorithms.push(Algorithm::Auto);
    let mut sb = built.scratch();
    let mut sl = loaded.scratch();
    let mut stats = QueryStats::new();
    let mut cells = 0usize;
    for q in bench.queries.iter().take(check_queries) {
        for theta in [0.1, 0.2, 0.3] {
            let raw = raw_threshold(theta, k);
            for &alg in &algorithms {
                let mut a = built.query_items(alg, q, raw, &mut sb, &mut stats);
                let mut b = loaded.query_items(alg, q, raw, &mut sl, &mut stats);
                if alg == Algorithm::Auto {
                    // Auto recalibrates from measured wall times, so the
                    // two planners may legitimately pick different
                    // executors, which emit the same ids in a different
                    // order. The answer *set* must still be identical.
                    a.sort_unstable();
                    b.sort_unstable();
                }
                assert_eq!(a, b, "loaded engine diverged: {alg:?} θ={theta}");
                cells += 1;
            }
        }
        let a = built.query_topk(q, 10, &mut sb, &mut stats);
        let b = loaded.query_topk(q, 10, &mut sl, &mut stats);
        assert_eq!(a, b, "loaded engine diverged on top-k");
        cells += 1;
    }
    cells
}

/// The persistence experiment (see the module docs).
pub fn run_persist(cfg: &ExpConfig, rc: PersistRunConfig) -> PersistBenchReport {
    let bench = Bench::load(cfg, Family::Nyt, 10);
    let n = bench.store().len();
    let k = bench.store().k();
    let path = std::env::temp_dir().join(format!("ranksim-persist-{}.rssn", std::process::id()));

    let t = Instant::now();
    let built = build_full(&bench);
    let build_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let snapshot_bytes =
        save_engine(&path, &built, SnapshotMeta::default()).expect("save benchmark snapshot");
    let save_s = t.elapsed().as_secs_f64();
    let mb = snapshot_bytes as f64 / (1024.0 * 1024.0);

    let mut checked_cells = 0usize;
    let mut open = |mode: LoadMode| -> OpenCost {
        let t = Instant::now();
        let (loaded, meta) = load_engine(&path, mode).expect("open benchmark snapshot");
        let open_s = t.elapsed().as_secs_f64();
        assert_eq!(meta, SnapshotMeta::default());
        assert_eq!(loaded.live_len(), built.live_len());
        checked_cells += assert_equivalent(&built, &loaded, &bench, rc.check_queries);
        OpenCost {
            open_s,
            mb_per_s: mb / open_s.max(1e-9),
            speedup: build_s / open_s.max(1e-9),
        }
    };
    let verify = open(LoadMode::Verify);
    let trust = open(LoadMode::Trust);
    let _ = std::fs::remove_file(&path);

    if n >= rc.speedup_floor_n {
        assert!(
            verify.speedup >= rc.min_speedup,
            "verified open must be ≥{}× faster than the rebuild at n={n} \
             (build {build_s:.2}s, open {:.2}s = {:.1}×)",
            rc.min_speedup,
            verify.open_s,
            verify.speedup
        );
    }

    PersistBenchReport {
        dataset: bench.ds.params.name.clone(),
        n,
        k,
        build_s,
        save_s,
        snapshot_bytes,
        save_mb_per_s: mb / save_s.max(1e-9),
        verify,
        trust,
        checked_cells,
        config: rc,
    }
}
