//! The durability experiment (`repro recovery`): what crash safety
//! costs on the write path, and what it buys back at recovery time.
//!
//! Two measurements, both against the WAL-backed
//! [`SnapshotEngine`](ranksim_core::SnapshotEngine) over the NYT-family
//! corpus:
//!
//! 1. **Sync-policy write cost** — the identical write sequence is
//!    driven through an engine with no WAL (the baseline), then under
//!    [`SyncPolicy::PerOp`], `GroupCommit` and `SyncPolicy::None`,
//!    reporting µs per acknowledged write. The gap between the baseline
//!    and `None` is the codec + append cost; the gap to `PerOp` is the
//!    price of an fsync per acknowledgment.
//! 2. **Recovery time vs log length** — logs of increasing length are
//!    written, then [`SnapshotEngine::recover`] is timed cold: scan,
//!    checksum, decode and replay. Recovery must scale linearly in the
//!    log, which is what the per-point ops/s column shows.
//!
//! The run self-checks: every recovery's `applied` count, truncation
//! and resulting live-corpus size are asserted against the op sequence
//! it was given, so a silently wrong recovery fails the benchmark run
//! rather than producing pretty numbers.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksim_core::engine::{Algorithm, Engine, EngineBuilder};
use ranksim_core::{SnapshotEngine, SyncPolicy};
use ranksim_datasets::{perturb_ranking, PerturbParams};
use ranksim_rankings::{ItemId, RankingId};

use crate::{Bench, ExpConfig, Family};

/// Configuration of one `repro recovery` run.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryRunConfig {
    /// Writes in the measured sequence (`RANKSIM_RECOVERY_OPS`;
    /// default `nyt_n / 10`, at least 1000). The recovery sweep times
    /// logs of a quarter, half and the full length.
    pub ops: usize,
    /// Group-commit window used for the `GroupCommit` arm.
    pub group_max_ops: u32,
    /// Group-commit max delay in milliseconds.
    pub group_max_delay_ms: u64,
}

impl RecoveryRunConfig {
    /// Defaults plus environment overrides.
    pub fn from_env(cfg: &ExpConfig) -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        RecoveryRunConfig {
            ops: get("RANKSIM_RECOVERY_OPS", (cfg.nyt_n / 10).max(1000)),
            group_max_ops: 64,
            group_max_delay_ms: 5,
        }
    }
}

/// One write of the deterministic sequence (3:1 inserts to removes, so
/// the corpus grows and removes always target a live id).
enum WriteOp {
    Insert(Vec<ItemId>),
    Remove(RankingId),
}

/// Write cost of one durability arm.
#[derive(Debug, Clone)]
pub struct PolicyCost {
    /// Arm label (`no_wal`, `wal_none`, `wal_group_commit`, `wal_per_op`).
    pub arm: String,
    /// Microseconds per acknowledged write (including the final sync).
    pub us_per_op: f64,
    /// Final WAL size in bytes (0 for the no-WAL baseline).
    pub wal_bytes: u64,
}

/// One point of the recovery-time sweep.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPoint {
    /// Log length in records.
    pub ops: u64,
    /// Log length in bytes.
    pub wal_bytes: u64,
    /// Cold recovery wall time (scan + checksum + decode + replay), s.
    pub recover_s: f64,
    /// Records replayed per second.
    pub ops_per_s: f64,
}

/// Everything one recovery run measured (the `BENCH_recovery.json`
/// artifact).
#[derive(Debug, Clone)]
pub struct RecoveryBenchReport {
    /// Dataset name.
    pub dataset: String,
    /// Base corpus size.
    pub n: usize,
    /// Ranking size.
    pub k: usize,
    /// Writes in the measured sequence.
    pub ops: usize,
    /// Write cost per durability arm.
    pub policy_costs: Vec<PolicyCost>,
    /// Recovery time at increasing log lengths.
    pub points: Vec<RecoveryPoint>,
    /// The run configuration.
    pub config: RecoveryRunConfig,
}

impl RecoveryBenchReport {
    /// The slowest measured recovery (the CI budget's subject).
    pub fn worst_recover_s(&self) -> f64 {
        self.points.iter().map(|p| p.recover_s).fold(0.0, f64::max)
    }

    /// Renders the report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"recovery\",\n");
        s.push_str(&format!(
            "  \"workload\": {{\"dataset\": \"{}\", \"n\": {}, \"k\": {}, \"ops\": {}}},\n",
            self.dataset, self.n, self.k, self.ops
        ));
        s.push_str(&format!(
            "  \"group_commit\": {{\"max_ops\": {}, \"max_delay_ms\": {}}},\n",
            self.config.group_max_ops, self.config.group_max_delay_ms
        ));
        s.push_str(&format!(
            "  \"write_us_per_op\": {{{}}},\n",
            self.policy_costs
                .iter()
                .map(|c| format!("\"{}\": {:.3}", c.arm, c.us_per_op))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "  \"wal_bytes\": {{{}}},\n",
            self.policy_costs
                .iter()
                .map(|c| format!("\"{}\": {}", c.arm, c.wal_bytes))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"recovery\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"ops\": {}, \"wal_bytes\": {}, \"recover_s\": {:.4}, \"ops_per_s\": {:.0}}}{}\n",
                p.ops,
                p.wal_bytes,
                p.recover_s,
                p.ops_per_s,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "  ],\n  \"worst_recover_s\": {:.4}\n",
            self.worst_recover_s()
        ));
        s.push_str("}\n");
        s
    }
}

/// Derives the deterministic write sequence: inserts of perturbed
/// copies of live rankings (the data distribution) against removals of
/// random live ids, 3:1.
fn derive_writes(bench: &Bench, ops: usize, seed: u64) -> Vec<WriteOp> {
    let store = bench.store();
    let domain = bench.ds.params.domain;
    let mut rng = StdRng::seed_from_u64(seed);
    let perturb = PerturbParams {
        max_swaps: 3,
        replace_prob: 0.5,
    };
    // Live tracking mirrors what every arm will replay.
    let mut live: Vec<u32> = (0..store.len() as u32).collect();
    let mut next_id = store.len() as u32;
    let mut writes = Vec::with_capacity(ops);
    for _ in 0..ops {
        if rng.random_range(0..4u32) < 3 || live.len() < 16 {
            let donor = live[rng.random_range(0..live.len())];
            let mut items = if (donor as usize) < store.len() && store.is_live(RankingId(donor)) {
                store.items(RankingId(donor)).to_vec()
            } else {
                // Donor was inserted during the sequence; synthesize
                // from the domain instead of tracking every payload.
                let mut v = Vec::with_capacity(store.k());
                while v.len() < store.k() {
                    let cand = ItemId(rng.random_range(0..domain));
                    if !v.contains(&cand) {
                        v.push(cand);
                    }
                }
                v
            };
            perturb_ranking(&mut items, domain, perturb, &mut rng);
            live.push(next_id);
            next_id += 1;
            writes.push(WriteOp::Insert(items));
        } else {
            let slot = rng.random_range(0..live.len());
            let victim = live.swap_remove(slot);
            writes.push(WriteOp::Remove(RankingId(victim)));
        }
    }
    writes
}

fn build_base(bench: &Bench) -> Engine {
    EngineBuilder::new(bench.ds.store.clone())
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .algorithms(&[Algorithm::Fv])
        .compaction_threshold(f64::INFINITY) // pure write-path timings
        .build()
}

/// Applies `writes[..len]` through `service`, returning µs per op
/// (wall time including the final WAL sync).
fn apply_writes(service: &SnapshotEngine, writes: &[WriteOp], len: usize) -> f64 {
    let t = Instant::now();
    for w in &writes[..len] {
        match w {
            WriteOp::Insert(items) => {
                service.insert_ranking(items);
            }
            WriteOp::Remove(id) => {
                assert!(service.remove_ranking(*id), "removes target live ids");
            }
        }
    }
    service.sync_wal().expect("final sync");
    t.elapsed().as_secs_f64() * 1e6 / len.max(1) as f64
}

/// Live-corpus size after `writes[..len]` on a base of `n` rankings.
fn expected_live(n: usize, writes: &[WriteOp], len: usize) -> usize {
    let removes = writes[..len]
        .iter()
        .filter(|w| matches!(w, WriteOp::Remove(_)))
        .count();
    n + (len - removes) - removes
}

/// The recovery experiment (see the module docs).
pub fn run_recovery(cfg: &ExpConfig, rc: RecoveryRunConfig) -> RecoveryBenchReport {
    let bench = Bench::load(cfg, Family::Nyt, 10);
    let n = bench.store().len();
    let k = bench.store().k();
    let writes = derive_writes(&bench, rc.ops, cfg.seed + 1300);
    let wal_path =
        std::env::temp_dir().join(format!("ranksim-recovery-{}.wal", std::process::id()));

    // --- Arm 1: sync-policy write cost over the identical sequence ---
    let group = SyncPolicy::GroupCommit {
        max_ops: rc.group_max_ops,
        max_delay: std::time::Duration::from_millis(rc.group_max_delay_ms),
    };
    let mut policy_costs = Vec::new();
    {
        let service = SnapshotEngine::new(build_base(&bench));
        let us = apply_writes(&service, &writes, rc.ops);
        policy_costs.push(PolicyCost {
            arm: "no_wal".into(),
            us_per_op: us,
            wal_bytes: 0,
        });
    }
    for (arm, policy) in [
        ("wal_none", SyncPolicy::None),
        ("wal_group_commit", group),
        ("wal_per_op", SyncPolicy::PerOp),
    ] {
        let service = SnapshotEngine::with_wal(build_base(&bench), &wal_path, policy)
            .expect("create bench WAL");
        let us = apply_writes(&service, &writes, rc.ops);
        let wal_bytes = service.wal_bytes().expect("WAL-backed engine");
        assert!(
            service.health().is_healthy(),
            "write arm '{arm}' left the engine unhealthy"
        );
        policy_costs.push(PolicyCost {
            arm: arm.into(),
            us_per_op: us,
            wal_bytes,
        });
    }

    // --- Arm 2: recovery time vs log length ---
    let mut points = Vec::new();
    for len in [rc.ops / 4, rc.ops / 2, rc.ops] {
        let len = len.max(1);
        {
            let service = SnapshotEngine::with_wal(build_base(&bench), &wal_path, SyncPolicy::None)
                .expect("create sweep WAL");
            apply_writes(&service, &writes, len);
        }
        let wal_bytes = std::fs::metadata(&wal_path)
            .expect("sweep WAL exists")
            .len();
        let base = build_base(&bench);
        let t = Instant::now();
        let (recovered, report) = SnapshotEngine::recover(base, &wal_path, SyncPolicy::None)
            .expect("recover the sweep WAL");
        let recover_s = t.elapsed().as_secs_f64();
        assert_eq!(report.applied, len as u64, "every record must replay");
        assert_eq!(report.truncated_bytes, 0, "clean log has no torn tail");
        assert_eq!(
            recovered.snapshot().live_len(),
            expected_live(n, &writes, len),
            "recovered live-corpus size at log length {len}"
        );
        points.push(RecoveryPoint {
            ops: len as u64,
            wal_bytes,
            recover_s,
            ops_per_s: len as f64 / recover_s.max(1e-9),
        });
    }
    let _ = std::fs::remove_file(&wal_path);

    RecoveryBenchReport {
        dataset: bench.ds.params.name.clone(),
        n,
        k,
        ops: rc.ops,
        policy_costs,
        points,
        config: rc,
    }
}
