//! `repro serve`: a concurrent query service over [`SnapshotEngine`].
//!
//! This is the serving front-end the snapshot layer exists for
//! (library/bin split: everything lives here, the `repro` binary is a
//! thin driver). Two front doors share one spine:
//!
//! * an **in-process closed-loop load generator** (the measured mode):
//!   `clients` threads each submit a read, wait for the reply, record
//!   the end-to-end latency, and go again — with a configured fraction
//!   of operations going to the writer API instead;
//! * a **local TCP socket** ([`serve_socket`]) speaking a line
//!   protocol (`Q`/`I`/`D`), for driving the service from outside the
//!   process. Socket input is untrusted: rankings are validated with
//!   the non-panicking [`ranksim_rankings::validate_items`] and bad
//!   requests get an `ERR` line instead of a worker panic.
//!
//! The spine is [`ServeCore`]: a bounded request queue with
//! **admission control** (submissions beyond `queue_capacity` are shed
//! immediately — the client gets `Shed`, the queue never grows without
//! bound) and a dispatcher thread that drains up to `batch_max`
//! waiting requests at a time, pins **one snapshot** for the whole
//! drain, groups the requests by threshold, and runs each group
//! through the engine's existing work-stealing batch driver
//! ([`ranksim_core::engine::Engine::query_batch_reported`]). Writes
//! bypass the queue and go straight to the snapshot engine's writer
//! API — that is safe by construction, the whole point of the RCU
//! layer.
//!
//! Mid-run, the driver forces a full [`SnapshotEngine::compact`] and
//! tags every read completed while the rebuild is in flight: the
//! `during_compaction` percentile block in `BENCH_serve.json` is the
//! direct evidence for "readers never block on writers".
//!
//! The spine is hardened for unattended operation:
//!
//! * every read carries a **deadline** (`read_budget`): requests that
//!   expire in the queue or are not started by the batch driver before
//!   the budget elapses fail individually with
//!   [`ReadReply::TimedOut`] (socket: a `TIMEOUT` line) instead of
//!   holding their client hostage;
//! * the engine runs on a **write-ahead log** (see
//!   [`ranksim_core::wal`]); graceful shutdown drains the admission
//!   queue and syncs the WAL, so an orderly exit loses nothing;
//! * the dispatcher polls [`SnapshotEngine::health`] every drain —
//!   publisher death or a WAL failure is reported (and surfaced in
//!   `BENCH_serve.json`) instead of silently serving ever-staler
//!   snapshots;
//! * the socket front door bounds line length, rejects non-UTF-8 and
//!   oversized frames with `ERR`, and hangs up on idle connections.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::{Bench, ExpConfig, Family};
use ranksim_core::engine::{Algorithm, EngineBuilder};
use ranksim_core::{SnapshotEngine, SyncPolicy, WalError};
use ranksim_datasets::{perturb_ranking, PerturbParams};
use ranksim_rankings::{raw_threshold, validate_items, ItemId, RankingId};

/// Configuration of one `repro serve` run.
#[derive(Debug, Clone, Copy)]
pub struct ServeRunConfig {
    /// Closed-loop client threads (`RANKSIM_SERVE_CLIENTS`, default 4).
    pub clients: usize,
    /// Worker threads of the batch dispatcher
    /// (`RANKSIM_SERVE_THREADS`, default 2).
    pub batch_threads: usize,
    /// Measured wall time in seconds (`RANKSIM_SERVE_SECS`, default 3).
    pub duration_s: f64,
    /// Fraction of client operations that are writes
    /// (`RANKSIM_SERVE_WRITE_PCT` in percent, default 10 — the 90/10
    /// mix).
    pub write_fraction: f64,
    /// Normalized threshold θ of every read.
    pub theta: f64,
    /// The algorithm reads run (default `Auto`).
    pub algorithm: Algorithm,
    /// Admission-control bound: reads waiting in the queue beyond this
    /// are shed (`RANKSIM_SERVE_QUEUE`, default 1024).
    pub queue_capacity: usize,
    /// Most requests coalesced into one batch-driver call
    /// (`RANKSIM_SERVE_BATCH`, default 64).
    pub batch_max: usize,
    /// Per-read deadline in milliseconds, enqueue to start-of-execution
    /// (`RANKSIM_SERVE_BUDGET_MS`, default 2000). Expired reads get
    /// [`ReadReply::TimedOut`].
    pub read_budget_ms: u64,
    /// Socket connections idle longer than this many seconds are hung
    /// up on (`RANKSIM_SERVE_IDLE_S`, default 60).
    pub idle_timeout_s: u64,
}

impl ServeRunConfig {
    /// Defaults plus environment overrides.
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        ServeRunConfig {
            clients: get("RANKSIM_SERVE_CLIENTS", 4).max(1),
            batch_threads: get("RANKSIM_SERVE_THREADS", 2).max(1),
            duration_s: get("RANKSIM_SERVE_SECS", 3).max(1) as f64,
            write_fraction: get("RANKSIM_SERVE_WRITE_PCT", 10).min(90) as f64 / 100.0,
            theta: 0.1,
            algorithm: Algorithm::Auto,
            queue_capacity: get("RANKSIM_SERVE_QUEUE", 1024).max(1),
            batch_max: get("RANKSIM_SERVE_BATCH", 64).max(1),
            read_budget_ms: get("RANKSIM_SERVE_BUDGET_MS", 2000).max(1) as u64,
            idle_timeout_s: get("RANKSIM_SERVE_IDLE_S", 60).max(1) as u64,
        }
    }
}

/// A read request in flight: the query, its threshold, when it was
/// admitted (for the deadline), and the reply channel the submitting
/// front-end blocks on.
struct ReadRequest {
    query: Vec<ItemId>,
    theta_raw: u32,
    enqueued: Instant,
    reply: SyncSender<ReadReply>,
}

/// The dispatcher's answer to one admitted read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadReply {
    /// The result set.
    Done(Vec<RankingId>),
    /// The read's deadline elapsed before execution started (in the
    /// queue, or claimed past the batch deadline). It failed
    /// individually; the rest of its batch completed.
    TimedOut,
}

/// Why a read submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the queue was at capacity.
    Shed,
    /// The service is shutting down.
    Stopped,
}

/// The serving spine: the snapshot engine, the bounded read queue, and
/// the dispatch/shedding counters. Shared (via `Arc`) between the
/// front-ends and the dispatcher thread.
pub struct ServeCore {
    engine: SnapshotEngine,
    queue: Mutex<VecDeque<ReadRequest>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    batch_max: usize,
    batch_threads: usize,
    algorithm: Algorithm,
    read_budget: Duration,
    stop: AtomicBool,
    /// Reads shed by admission control.
    pub shed: AtomicU64,
    /// Batched queries whose worker panicked (empty result returned).
    pub batch_failures: AtomicU64,
    /// Reads that missed their deadline ([`ReadReply::TimedOut`]).
    pub timeouts: AtomicU64,
    /// Set by the dispatcher when [`SnapshotEngine::health`] first
    /// reports an unhealthy engine (publisher death / WAL failure).
    pub unhealthy: AtomicBool,
}

impl ServeCore {
    /// Wraps a snapshot engine in the serving spine.
    pub fn new(engine: SnapshotEngine, rc: &ServeRunConfig) -> Self {
        ServeCore {
            engine,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: rc.queue_capacity,
            batch_max: rc.batch_max,
            batch_threads: rc.batch_threads,
            algorithm: rc.algorithm,
            read_budget: Duration::from_millis(rc.read_budget_ms),
            stop: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            batch_failures: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            unhealthy: AtomicBool::new(false),
        }
    }

    /// The wrapped snapshot engine (writer API + snapshots).
    pub fn engine(&self) -> &SnapshotEngine {
        &self.engine
    }

    /// Submits a read; the returned channel yields a [`ReadReply`] once
    /// the dispatcher has served (or timed out) it. Sheds instead of
    /// queueing past the capacity bound.
    pub fn submit_read(
        &self,
        query: Vec<ItemId>,
        theta_raw: u32,
    ) -> Result<Receiver<ReadReply>, SubmitError> {
        if self.stop.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        let (tx, rx) = sync_channel(1);
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.queue_capacity {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Shed);
            }
            q.push_back(ReadRequest {
                query,
                theta_raw,
                enqueued: Instant::now(),
                reply: tx,
            });
        }
        self.queue_cv.notify_one();
        Ok(rx)
    }

    /// Stops the dispatcher once the queue drains; pending requests
    /// are still served, later submissions get `Stopped`.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.queue_cv.notify_all();
    }

    /// Graceful-shutdown epilogue: forces the WAL to stable storage.
    /// Call after [`ServeCore::shutdown`] **and** after joining the
    /// dispatcher thread, so everything the dispatcher drained — and
    /// every writer-API call — is on disk before the process exits.
    pub fn sync_wal(&self) -> Result<(), WalError> {
        self.engine.sync_wal()
    }

    /// The dispatcher loop (run it on its own thread): drains up to
    /// `batch_max` waiting reads, pins one snapshot for the drain,
    /// groups by threshold, and answers each group through the
    /// work-stealing batch driver. Returns when [`ServeCore::shutdown`]
    /// was called and the queue is empty.
    ///
    /// Deadlines are enforced in two places: a request that already
    /// expired while queued is answered [`ReadReply::TimedOut`] without
    /// execution, and each batch-driver call runs under
    /// [`ranksim_core::engine::Engine::query_batch_deadline`] so a
    /// slow batch times out its unstarted tail individually instead of
    /// stalling every queued request behind it.
    pub fn dispatch_loop(&self) {
        let mut drained: Vec<ReadRequest> = Vec::new();
        loop {
            {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                while q.is_empty() && !self.stop.load(Ordering::Acquire) {
                    q = self.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                }
                if q.is_empty() {
                    return; // stopped and drained
                }
                let take = q.len().min(self.batch_max);
                drained.extend(q.drain(..take));
            }

            // Liveness check once per drain: a dead publisher or failed
            // WAL is latched for the operator; reads keep being served
            // from the last published generation either way.
            if !self.unhealthy.load(Ordering::Relaxed) && !self.engine.health().is_healthy() {
                self.unhealthy.store(true, Ordering::Relaxed);
            }

            // One frozen world for the whole coalesced batch: every
            // request in it sees the same consistent corpus, and the
            // batch driver's workers share it without synchronization.
            let snapshot = self.engine.snapshot();
            let drain_start = Instant::now();

            // Requests whose deadline already passed in the queue fail
            // now, without burning batch capacity on them.
            let mut expired = 0u64;
            drained.retain(|req| {
                if drain_start.duration_since(req.enqueued) >= self.read_budget {
                    let _ = req.reply.send(ReadReply::TimedOut);
                    expired += 1;
                    false
                } else {
                    true
                }
            });
            if expired > 0 {
                self.timeouts.fetch_add(expired, Ordering::Relaxed);
            }

            // Group by threshold so each batch-driver call runs one θ
            // (requests overwhelmingly share the workload θ; the sort
            // is over at most `batch_max` elements).
            let mut order: Vec<usize> = (0..drained.len()).collect();
            order.sort_unstable_by_key(|&i| drained[i].theta_raw);
            let mut start = 0;
            while start < order.len() {
                let theta = drained[order[start]].theta_raw;
                let mut end = start + 1;
                while end < order.len() && drained[order[end]].theta_raw == theta {
                    end += 1;
                }
                let group = &order[start..end];
                let queries: Vec<Vec<ItemId>> =
                    group.iter().map(|&i| drained[i].query.clone()).collect();
                let (results, reports) = snapshot.query_batch_deadline(
                    self.algorithm,
                    &queries,
                    theta,
                    self.batch_threads,
                    self.read_budget,
                );
                let failed: u64 = reports.iter().map(|r| r.failed).sum();
                if failed > 0 {
                    self.batch_failures.fetch_add(failed, Ordering::Relaxed);
                }
                let timed_out: Vec<usize> = reports
                    .iter()
                    .flat_map(|r| r.timed_out.iter().copied())
                    .collect();
                if !timed_out.is_empty() {
                    self.timeouts
                        .fetch_add(timed_out.len() as u64, Ordering::Relaxed);
                }
                for (gi, (&i, result)) in group.iter().zip(results).enumerate() {
                    let reply = if timed_out.contains(&gi) {
                        ReadReply::TimedOut
                    } else {
                        ReadReply::Done(result)
                    };
                    // A vanished client is its own problem.
                    let _ = drained[i].reply.send(reply);
                }
                start = end;
            }
            drained.clear();
        }
    }
}

/// Latency percentiles in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyUs {
    /// Samples the block summarizes.
    pub count: usize,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Worst observed.
    pub max: f64,
}

impl LatencyUs {
    /// Summarizes raw nanosecond samples (sorts in place).
    pub fn from_ns(samples: &mut Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyUs::default();
        }
        samples.sort_unstable();
        let pct = |p: f64| -> f64 {
            let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
            samples[idx] as f64 / 1_000.0
        };
        LatencyUs {
            count: samples.len(),
            p50: pct(50.0),
            p99: pct(99.0),
            p999: pct(99.9),
            max: *samples.last().unwrap() as f64 / 1_000.0,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \"max\": {:.1}}}",
            self.count, self.p50, self.p99, self.p999, self.max
        )
    }
}

/// Everything one serve run measured (the `BENCH_serve.json` artifact).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Dataset name.
    pub dataset: String,
    /// Corpus size at build.
    pub n: usize,
    /// Ranking size.
    pub k: usize,
    /// Completed reads.
    pub reads: u64,
    /// Completed writes (inserts + removes, including remove misses).
    pub writes: u64,
    /// Reads shed by admission control.
    pub shed: u64,
    /// Removes that lost the race to another client (id already dead).
    pub remove_misses: u64,
    /// Batched queries that failed by worker panic.
    pub batch_failures: u64,
    /// Reads that missed their deadline.
    pub timeouts: u64,
    /// Generations the publisher abandoned to straggler readers.
    pub abandoned_generations: u64,
    /// Final WAL length in bytes (0 when the run was volatile).
    pub wal_bytes: u64,
    /// Whether the engine was healthy (publisher alive, WAL clean) at
    /// the end of the run.
    pub healthy_at_end: bool,
    /// Sustained read throughput (completed reads / wall time).
    pub read_qps: f64,
    /// Sustained write throughput.
    pub write_qps: f64,
    /// End-to-end read latency (enqueue → reply), all reads.
    pub read_latency: LatencyUs,
    /// Read latency for reads completed while the forced compaction
    /// was rebuilding — the reads-never-block-on-writes evidence.
    pub read_latency_during_compaction: LatencyUs,
    /// Writer-API call latency.
    pub write_latency: LatencyUs,
    /// Wall time of the forced mid-run compaction (master apply +
    /// replica publication).
    pub compact_s: f64,
    /// Live corpus size at the end.
    pub final_live_len: usize,
    /// The run configuration.
    pub config: ServeRunConfig,
}

impl ServeReport {
    /// Renders the report as a JSON object (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"serve\",\n");
        s.push_str(&format!(
            "  \"workload\": {{\"dataset\": \"{}\", \"n\": {}, \"k\": {}, \"theta\": {}, \"algorithm\": \"{}\", \"write_fraction\": {}, \"clients\": {}, \"batch_threads\": {}, \"duration_s\": {}, \"queue_capacity\": {}, \"batch_max\": {}}},\n",
            self.dataset,
            self.n,
            self.k,
            self.config.theta,
            self.config.algorithm,
            self.config.write_fraction,
            self.config.clients,
            self.config.batch_threads,
            self.config.duration_s,
            self.config.queue_capacity,
            self.config.batch_max
        ));
        s.push_str(&format!(
            "  \"reads\": {}, \"writes\": {}, \"shed\": {}, \"remove_misses\": {}, \"batch_failures\": {}, \"timeouts\": {}, \"abandoned_generations\": {}, \"wal_bytes\": {}, \"healthy_at_end\": {},\n",
            self.reads,
            self.writes,
            self.shed,
            self.remove_misses,
            self.batch_failures,
            self.timeouts,
            self.abandoned_generations,
            self.wal_bytes,
            self.healthy_at_end
        ));
        s.push_str(&format!(
            "  \"read_qps\": {:.1}, \"write_qps\": {:.1},\n",
            self.read_qps, self.write_qps
        ));
        s.push_str(&format!(
            "  \"read_latency_us\": {},\n",
            self.read_latency.json()
        ));
        s.push_str(&format!(
            "  \"read_latency_during_compaction_us\": {},\n",
            self.read_latency_during_compaction.json()
        ));
        s.push_str(&format!(
            "  \"write_latency_us\": {},\n",
            self.write_latency.json()
        ));
        s.push_str(&format!(
            "  \"compact_s\": {:.3}, \"final_live_len\": {}\n",
            self.compact_s, self.final_live_len
        ));
        s.push_str("}\n");
        s
    }
}

/// What one closed-loop client measured.
#[derive(Default)]
struct ClientTally {
    reads: u64,
    writes: u64,
    remove_misses: u64,
    timeouts: u64,
    read_ns: Vec<u64>,
    read_ns_during_compaction: Vec<u64>,
    write_ns: Vec<u64>,
}

/// The serve experiment: builds the NYT-family engine, wraps it in
/// [`SnapshotEngine`] + [`ServeCore`], drives the closed-loop 90/10
/// read/write mix for the configured duration, and forces a full
/// compaction at the halfway point while the clients keep hammering.
pub fn run_serve(cfg: &ExpConfig, rc: ServeRunConfig) -> ServeReport {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let bench = Bench::load(cfg, Family::Nyt, 10);
    let k = bench.store().k();
    let n = bench.store().len();
    let domain = bench.ds.params.domain;
    let dataset = bench.ds.params.name.clone();
    let queries = &bench.queries;
    let theta_raw = raw_threshold(rc.theta, k);

    let engine = EngineBuilder::new(bench.ds.store)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .kernel(cfg.kernel)
        .algorithms(&[
            rc.algorithm,
            Algorithm::Fv,
            Algorithm::ListMerge,
            Algorithm::Coarse,
        ])
        .compaction_threshold(f64::INFINITY) // compaction is forced mid-run
        .build();
    // Serve durably: every accepted write hits the WAL before it is
    // acknowledged, group-committed so the latency tax stays small.
    let wal_path = std::env::temp_dir().join(format!("ranksim-serve-{}.wal", std::process::id()));
    let policy = SyncPolicy::GroupCommit {
        max_ops: 64,
        max_delay: Duration::from_millis(5),
    };
    let snapshot_engine = SnapshotEngine::with_wal(engine, &wal_path, policy)
        .expect("create the serve run's write-ahead log");
    let core = ServeCore::new(snapshot_engine, &rc);

    let deadline = Instant::now() + Duration::from_secs_f64(rc.duration_s);
    let compact_at = Instant::now() + Duration::from_secs_f64(rc.duration_s / 2.0);
    let compacting = AtomicBool::new(false);
    let perturb = PerturbParams {
        max_swaps: 3,
        replace_prob: 0.5,
    };

    let mut compact_s = 0.0;
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let dispatcher = scope.spawn(|| core.dispatch_loop());
        let clients: Vec<_> = (0..rc.clients)
            .map(|ci| {
                let core = &core;
                let compacting = &compacting;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(cfg.seed + 1000 + ci as u64);
                    let mut tally = ClientTally::default();
                    let mut op = 0usize;
                    while Instant::now() < deadline {
                        op += 1;
                        let write = rng.random_range(0.0..1.0) < rc.write_fraction;
                        if write {
                            let snap = core.engine().snapshot();
                            let victim = loop {
                                let id = RankingId(rng.random_range(0..snap.store().len() as u32));
                                if snap.is_live(id) {
                                    break id;
                                }
                            };
                            let t = Instant::now();
                            if op % 2 == 0 {
                                let mut items = snap.store().items(victim).to_vec();
                                perturb_ranking(&mut items, domain, perturb, &mut rng);
                                core.engine().insert_ranking(&items);
                            } else if !core.engine().remove_ranking(victim) {
                                // Raced another client's remove of the
                                // same (snapshot-stale) victim.
                                tally.remove_misses += 1;
                            }
                            tally.write_ns.push(t.elapsed().as_nanos() as u64);
                            tally.writes += 1;
                        } else {
                            let q = queries[rng.random_range(0..queries.len())].clone();
                            let t = Instant::now();
                            match core.submit_read(q, theta_raw) {
                                Ok(rx) => {
                                    let reply = rx.recv().expect("dispatcher dropped a reply");
                                    let ns = t.elapsed().as_nanos() as u64;
                                    match reply {
                                        ReadReply::Done(_) => {
                                            tally.read_ns.push(ns);
                                            if compacting.load(Ordering::Relaxed) {
                                                tally.read_ns_during_compaction.push(ns);
                                            }
                                            tally.reads += 1;
                                        }
                                        ReadReply::TimedOut => tally.timeouts += 1,
                                    }
                                }
                                Err(SubmitError::Shed) => {
                                    // Back off a touch so a saturated
                                    // queue is not hammered in a spin.
                                    std::thread::yield_now();
                                }
                                Err(SubmitError::Stopped) => break,
                            }
                        }
                    }
                    tally
                })
            })
            .collect();

        // The driver thread: force a compaction at the halfway point
        // while the clients keep going, and time it to full
        // publication (master apply + replica rebuild).
        std::thread::sleep(compact_at.saturating_duration_since(Instant::now()));
        compacting.store(true, Ordering::Relaxed);
        let t = Instant::now();
        core.engine().compact();
        core.engine().flush();
        compact_s = t.elapsed().as_secs_f64();
        compacting.store(false, Ordering::Relaxed);

        let tallies: Vec<ClientTally> = clients
            .into_iter()
            .map(|h| h.join().expect("serve client panicked"))
            .collect();
        // Graceful shutdown: stop admission, let the dispatcher drain
        // the queue, then force the WAL's group-commit window to disk.
        core.shutdown();
        dispatcher.join().expect("serve dispatcher panicked");
        core.sync_wal().expect("sync the serve WAL on shutdown");
        tallies
    });

    let mut read_ns = Vec::new();
    let mut read_ns_dc = Vec::new();
    let mut write_ns = Vec::new();
    let (mut reads, mut writes, mut remove_misses, mut client_timeouts) = (0u64, 0u64, 0u64, 0u64);
    for mut t in tallies {
        reads += t.reads;
        writes += t.writes;
        remove_misses += t.remove_misses;
        client_timeouts += t.timeouts;
        read_ns.append(&mut t.read_ns);
        read_ns_dc.append(&mut t.read_ns_during_compaction);
        write_ns.append(&mut t.write_ns);
    }
    let _ = client_timeouts; // the core's counter is authoritative

    let health = core.engine().health();
    let wal_bytes = core.engine().wal_bytes().unwrap_or(0);
    let report = ServeReport {
        dataset,
        n,
        k,
        reads,
        writes,
        shed: core.shed.load(Ordering::Relaxed),
        remove_misses,
        batch_failures: core.batch_failures.load(Ordering::Relaxed),
        timeouts: core.timeouts.load(Ordering::Relaxed),
        abandoned_generations: core.engine().abandoned_generations(),
        wal_bytes,
        healthy_at_end: health.is_healthy() && !core.unhealthy.load(Ordering::Relaxed),
        read_qps: reads as f64 / rc.duration_s,
        write_qps: writes as f64 / rc.duration_s,
        read_latency: LatencyUs::from_ns(&mut read_ns),
        read_latency_during_compaction: LatencyUs::from_ns(&mut read_ns_dc),
        write_latency: LatencyUs::from_ns(&mut write_ns),
        compact_s,
        final_live_len: core.engine().snapshot().live_len(),
        config: rc,
    };
    // The bench WAL is scratch; a real deployment would keep it.
    drop(core);
    let _ = std::fs::remove_file(&wal_path);
    report
}

// ---------------------------------------------------------------------
// Socket front-end
// ---------------------------------------------------------------------

/// Longest request line the socket front door accepts. A legitimate
/// request is a few hundred bytes (one size-`k` ranking); anything
/// approaching this bound is malformed or hostile, and the read loop
/// must never buffer an attacker-controlled unbounded line.
const MAX_LINE: usize = 64 * 1024;

/// How often the accept loop re-checks [`ServeCore::shutdown`] while
/// no connection is arriving.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// One framing outcome of [`read_frame`].
enum Frame {
    /// A complete line (without its terminator), valid UTF-8.
    Line(String),
    /// A complete line that was not valid UTF-8 (answer `ERR`, keep
    /// the connection — framing is still line-aligned).
    NotUtf8,
    /// The line exceeded [`MAX_LINE`] before a terminator arrived
    /// (answer `ERR` and hang up; the remainder is unbounded).
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated frame with a hard length bound, never
/// buffering more than [`MAX_LINE`] bytes no matter what the peer
/// sends. Split out over `BufRead` so tests can drive it with a
/// cursor instead of a socket.
fn read_frame(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> std::io::Result<Frame> {
    buf.clear();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() {
                return Ok(Frame::Eof);
            }
            // Final unterminated line.
            break;
        }
        if let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..nl]);
            reader.consume(nl + 1);
            if buf.len() > MAX_LINE {
                return Ok(Frame::TooLong);
            }
            break;
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        reader.consume(n);
        if buf.len() > MAX_LINE {
            return Ok(Frame::TooLong);
        }
    }
    match std::str::from_utf8(buf) {
        Ok(s) => Ok(Frame::Line(s.to_string())),
        Err(_) => Ok(Frame::NotUtf8),
    }
}

/// Serves the line protocol on `listener` until [`ServeCore::shutdown`]
/// (one thread per connection; the dispatcher must be running):
///
/// * `Q <theta> <i1,i2,...>` → `R <id1,id2,...>` | `SHED` | `TIMEOUT`
///   | `ERR <why>`
/// * `I <i1,i2,...>` → `OK <id>` | `ERR <why>`
/// * `D <id>` → `OK` | `MISS` | `ERR <why>`
///
/// `theta` is the normalized threshold in `[0, 1]`. All ranking input
/// is validated before it can reach the engine's panicking asserts;
/// frames are length-bounded, non-UTF-8 input gets `ERR`, and a
/// connection idle past the configured timeout is hung up on.
pub fn serve_socket(core: &Arc<ServeCore>, listener: TcpListener) {
    let idle = Duration::from_secs(ServeRunConfig::from_env().idle_timeout_s);
    // Accept in a poll loop: a blocking `accept()` would hold this
    // thread hostage after `shutdown()` until one more peer happened
    // to connect. (If nonblocking mode is unavailable the loop
    // degrades to the blocking behavior.)
    let polling = listener.set_nonblocking(true).is_ok();
    std::thread::scope(|scope| loop {
        if core.stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Connection I/O is blocking (bounded by the idle
                // timeout), whatever mode the listener is in.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let core = Arc::clone(core);
                scope.spawn(move || handle_connection(&core, stream, idle));
            }
            Err(e) if polling && e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => continue,
        }
    });
}

fn handle_connection(core: &ServeCore, stream: TcpStream, idle_timeout: Duration) {
    // An idle peer holds a thread and a file descriptor; bound it.
    let _ = stream.set_read_timeout(Some(idle_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        let response = match read_frame(&mut reader, &mut buf) {
            Ok(Frame::Line(line)) => handle_line(core, line.trim()),
            Ok(Frame::NotUtf8) => "ERR request is not utf-8".to_string(),
            Ok(Frame::TooLong) => {
                // Cannot resync framing on an unbounded line: say why,
                // then hang up.
                let _ = writer.write_all(b"ERR line too long\n");
                return;
            }
            // Idle timeout (WouldBlock/TimedOut, platform-dependent)
            // or a broken peer: hang up either way.
            Ok(Frame::Eof) | Err(_) => return,
        };
        if writer.write_all(response.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
    }
}

/// Parses a comma-separated item list into a validated size-`k`
/// ranking.
fn parse_items(list: &str, k: usize) -> Result<Vec<ItemId>, String> {
    let items: Result<Vec<ItemId>, _> = list
        .split(',')
        .map(|s| s.trim().parse::<u32>().map(ItemId))
        .collect();
    let items = items.map_err(|e| format!("bad item id: {e}"))?;
    validate_items(&items, k).map_err(|e| e.to_string())?;
    Ok(items)
}

/// One request line → one response line (no I/O; unit-testable).
fn handle_line(core: &ServeCore, line: &str) -> String {
    let k = core.engine.snapshot().store().k();
    let mut parts = line.splitn(3, ' ');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("Q"), Some(theta), Some(items)) => {
            let theta: f64 = match theta.parse() {
                Ok(t) if (0.0..=1.0).contains(&t) => t,
                _ => return "ERR theta must be a number in [0, 1]".into(),
            };
            let query = match parse_items(items, k) {
                Ok(q) => q,
                Err(e) => return format!("ERR {e}"),
            };
            match core.submit_read(query, raw_threshold(theta, k)) {
                Ok(rx) => match rx.recv() {
                    Ok(ReadReply::Done(ids)) => {
                        let ids: Vec<String> = ids.iter().map(|id| id.0.to_string()).collect();
                        format!("R {}", ids.join(","))
                    }
                    Ok(ReadReply::TimedOut) => "TIMEOUT".into(),
                    Err(_) => "ERR service stopped".into(),
                },
                Err(SubmitError::Shed) => "SHED".into(),
                Err(SubmitError::Stopped) => "ERR service stopped".into(),
            }
        }
        (Some("I"), Some(items), None) => match parse_items(items, k) {
            // The typed writer API: a WAL fail-stop comes back as ERR,
            // never as a panic inside the connection thread.
            Ok(items) => match core.engine.try_insert_ranking(&items) {
                Ok(id) => format!("OK {}", id.0),
                Err(e) => format!("ERR {e}"),
            },
            Err(e) => format!("ERR {e}"),
        },
        (Some("D"), Some(id), None) => match id.parse::<u32>() {
            Ok(id) => match core.engine.try_remove_ranking(RankingId(id)) {
                Ok(true) => "OK".into(),
                Ok(false) => "MISS".into(),
                Err(e) => format!("ERR {e}"),
            },
            Err(e) => format!("ERR bad ranking id: {e}"),
        },
        _ => "ERR expected Q <theta> <items> | I <items> | D <id>".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::nyt_like;
    use ranksim_rankings::QueryStats;

    fn tiny_core_with_budget(queue_capacity: usize, read_budget_ms: u64) -> ServeCore {
        let ds = nyt_like(200, 8, 11);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let rc = ServeRunConfig {
            clients: 1,
            batch_threads: 1,
            duration_s: 1.0,
            write_fraction: 0.1,
            theta: 0.1,
            algorithm: Algorithm::Fv,
            queue_capacity,
            batch_max: 8,
            read_budget_ms,
            idle_timeout_s: 60,
        };
        ServeCore::new(SnapshotEngine::new(engine), &rc)
    }

    fn tiny_core(queue_capacity: usize) -> ServeCore {
        tiny_core_with_budget(queue_capacity, 2000)
    }

    #[test]
    fn admission_control_sheds_past_capacity() {
        // No dispatcher running: the queue fills and must shed.
        let core = tiny_core(2);
        let q: Vec<ItemId> = core
            .engine()
            .snapshot()
            .store()
            .items(RankingId(0))
            .to_vec();
        assert!(core.submit_read(q.clone(), 10).is_ok());
        assert!(core.submit_read(q.clone(), 10).is_ok());
        assert!(matches!(
            core.submit_read(q.clone(), 10),
            Err(SubmitError::Shed)
        ));
        assert_eq!(core.shed.load(Ordering::Relaxed), 1);
        core.shutdown();
        assert!(matches!(core.submit_read(q, 10), Err(SubmitError::Stopped)));
        // Drain the queue so pending replies do not leak: the
        // dispatcher serves what was admitted, then returns.
        core.dispatch_loop();
    }

    #[test]
    fn dispatcher_answers_match_direct_queries() {
        let core = tiny_core(64);
        let snap = core.engine().snapshot();
        let theta = raw_threshold(0.2, 8);
        std::thread::scope(|scope| {
            let dispatcher = scope.spawn(|| core.dispatch_loop());
            let mut expected_scratch = snap.scratch();
            let mut stats = QueryStats::new();
            for i in 0..20u32 {
                let q: Vec<ItemId> = snap.store().items(RankingId(i * 7 % 200)).to_vec();
                let rx = core.submit_read(q.clone(), theta).expect("admitted");
                let got = match rx.recv().expect("reply") {
                    ReadReply::Done(ids) => ids,
                    ReadReply::TimedOut => panic!("query {i} timed out"),
                };
                let expect =
                    snap.query_items(Algorithm::Fv, &q, theta, &mut expected_scratch, &mut stats);
                assert_eq!(got, expect, "query {i}");
            }
            core.shutdown();
            dispatcher.join().unwrap();
        });
    }

    #[test]
    fn socket_protocol_round_trips() {
        let core = Arc::new(tiny_core(64));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let dispatcher = {
                let core = Arc::clone(&core);
                scope.spawn(move || core.dispatch_loop())
            };
            let server = {
                let core = Arc::clone(&core);
                scope.spawn(move || serve_socket(&core, listener))
            };

            // Scoped so the connection closes (EOF for the handler
            // thread) before the server is asked to wind down.
            {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut send = |line: &str| -> String {
                    let mut s = stream.try_clone().unwrap();
                    s.write_all(line.as_bytes()).unwrap();
                    s.write_all(b"\n").unwrap();
                    let mut response = String::new();
                    reader.read_line(&mut response).unwrap();
                    response.trim_end().to_string()
                };

                // A self-query at θ = 0 must find the ranking itself.
                let items: Vec<String> = core
                    .engine()
                    .snapshot()
                    .store()
                    .items(RankingId(3))
                    .iter()
                    .map(|i| i.0.to_string())
                    .collect();
                let q = items.join(",");
                let r = send(&format!("Q 0.0 {q}"));
                assert!(r.starts_with("R "), "got: {r}");
                assert!(r[2..].split(',').any(|id| id == "3"), "got: {r}");

                // Malformed input degrades to ERR — never a panic.
                assert!(send("Q 0.1 1,2,3").starts_with("ERR"), "wrong length");
                assert!(
                    send("Q 0.1 1,1,2,3,4,5,6,7").starts_with("ERR"),
                    "duplicate"
                );
                assert!(send(&format!("Q 7 {q}")).starts_with("ERR"), "bad theta");
                assert!(send("nonsense").starts_with("ERR"));

                // Insert a fresh ranking, find it, delete it, miss it.
                let fresh = "900,901,902,903,904,905,906,907";
                let r = send(&format!("I {fresh}"));
                assert!(r.starts_with("OK "), "got: {r}");
                let id: u32 = r[3..].parse().unwrap();
                core.engine().flush();
                let r = send(&format!("Q 0.0 {fresh}"));
                assert!(r[2..].split(',').any(|x| x == id.to_string()), "got: {r}");
                assert_eq!(send(&format!("D {id}")), "OK");
                assert_eq!(send(&format!("D {id}")), "MISS");
            }

            core.shutdown();
            dispatcher.join().unwrap();
            // The accept loop polls the stop flag; no nudge connection
            // is needed for the server thread to exit.
            server.join().unwrap();
        });
    }

    #[test]
    fn reads_expired_in_the_queue_get_timeout_not_results() {
        // A 1 ms budget and no dispatcher while requests age: by the
        // time the dispatcher drains them they are long expired.
        let core = tiny_core_with_budget(64, 1);
        let q: Vec<ItemId> = core
            .engine()
            .snapshot()
            .store()
            .items(RankingId(0))
            .to_vec();
        let rx1 = core.submit_read(q.clone(), 10).expect("admitted");
        let rx2 = core.submit_read(q, 10).expect("admitted");
        std::thread::sleep(Duration::from_millis(20));
        core.shutdown();
        core.dispatch_loop();
        assert_eq!(rx1.recv().unwrap(), ReadReply::TimedOut);
        assert_eq!(rx2.recv().unwrap(), ReadReply::TimedOut);
        assert_eq!(core.timeouts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn read_frame_bounds_hostile_input() {
        use std::io::Cursor;
        let mut buf = Vec::new();

        // A normal line round-trips.
        let mut r = Cursor::new(b"Q 0.1 1,2,3\nrest".to_vec());
        match read_frame(&mut r, &mut buf).unwrap() {
            Frame::Line(l) => assert_eq!(l, "Q 0.1 1,2,3"),
            _ => panic!("expected a line"),
        }

        // An endless unterminated line is cut at the bound, not
        // buffered to exhaustion.
        let mut r = Cursor::new(vec![b'x'; MAX_LINE + 100]);
        assert!(matches!(
            read_frame(&mut r, &mut buf).unwrap(),
            Frame::TooLong
        ));

        // A terminated-but-oversized line is also rejected.
        let mut big = vec![b'y'; MAX_LINE + 1];
        big.push(b'\n');
        let mut r = Cursor::new(big);
        assert!(matches!(
            read_frame(&mut r, &mut buf).unwrap(),
            Frame::TooLong
        ));

        // Non-UTF-8 is detected, framing stays aligned.
        let mut r = Cursor::new(b"\xff\xfe\xfd\nQ next\n".to_vec());
        assert!(matches!(
            read_frame(&mut r, &mut buf).unwrap(),
            Frame::NotUtf8
        ));
        match read_frame(&mut r, &mut buf).unwrap() {
            Frame::Line(l) => assert_eq!(l, "Q next"),
            _ => panic!("framing lost alignment after a bad line"),
        }

        // Clean EOF.
        let mut r = Cursor::new(Vec::new());
        assert!(matches!(read_frame(&mut r, &mut buf).unwrap(), Frame::Eof));
    }

    /// One engine shared across all proptest cases: `queue_capacity: 0`
    /// sheds every admitted read instantly, so no dispatcher is needed
    /// and `rx.recv()` inside `handle_line` can never block.
    fn fuzz_core() -> &'static ServeCore {
        static CORE: std::sync::OnceLock<ServeCore> = std::sync::OnceLock::new();
        CORE.get_or_init(|| tiny_core(0))
    }

    /// Every reply `handle_line` may legitimately produce.
    fn known_reply(r: &str) -> bool {
        r.starts_with("ERR")
            || r.starts_with("OK")
            || r.starts_with("R ")
            || r == "SHED"
            || r == "TIMEOUT"
            || r == "MISS"
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        // Structured-ish garbage: a (possibly wrong) verb, a numeric
        // field and a comma-joined item list with printable noise.
        #[test]
        fn handle_line_never_panics_on_structured_garbage(
            verb in proptest::sample::subsequence(
                vec!["Q", "I", "D", "X", "QQ", ""], 1),
            theta in -3.0f64..9.0,
            items in proptest::collection::vec(0u32..1500, 0..12),
            noise in proptest::collection::vec(32u8..127, 0..24),
        ) {
            let items: Vec<String> = items.iter().map(u32::to_string).collect();
            let noise = String::from_utf8(noise).unwrap();
            let line = format!("{} {theta} {}{noise}", verb[0], items.join(","));
            let r = handle_line(fuzz_core(), line.trim());
            prop_assert!(known_reply(&r), "unrecognized response {r:?} to {line:?}");
        }

        // Unstructured byte soup over the printable-ASCII range plus
        // tab (valid UTF-8 by construction; non-UTF-8 is rejected by
        // the framing layer and never reaches handle_line).
        #[test]
        fn handle_line_never_panics_on_byte_soup(
            bytes in proptest::collection::vec(9u8..127, 0..120),
        ) {
            let line = String::from_utf8(bytes).unwrap();
            let r = handle_line(fuzz_core(), line.trim());
            prop_assert!(known_reply(&r), "unrecognized response {r:?} to {line:?}");
        }
    }
}
