//! Batch query processing (the paper's Section 8 outlook, implemented).
//!
//! Two drivers live here:
//!
//! * [`Engine::query_batch`] — the general parallel driver: a
//!   **work-stealing** pool of scoped threads claims queries one at a
//!   time from a shared atomic cursor, so a pathological sub-batch
//!   cannot strand one worker with all the expensive queries the way the
//!   old static equal-chunk split could. Every thread reuses **one**
//!   [`QueryScratch`] for its whole share, so each worker's steady state
//!   is allocation-free (only the per-query result vectors handed back
//!   to the caller are allocated). [`Engine::query_batch_reported`]
//!   additionally exposes one [`WorkerReport`] per worker for balance
//!   diagnostics. The same driver backs
//!   [`crate::shard::ShardedEngine::query_batch`].
//! * [`batch_query`] — the coarse-index-specific sharing scheme: "the
//!   query batch can be partitioned into related medoid rankings to prune
//!   the search space of potential result rankings". Queries are grouped
//!   by greedy leader clustering at radius `ρ`; each group probes the
//!   medoid inverted index **once** through its leader with the doubly
//!   relaxed threshold `θ + θ_C + ρ` (triangle inequality twice: result →
//!   medoid → query → leader), then every member query checks only the
//!   retrieved partitions.
//!
//! Both are bit-identical to processing each query individually.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use crate::coarse::CoarseIndex;
use crate::engine::{Algorithm, Engine};
use crate::planner::PlanStats;
use ranksim_metricspace::query_pairs_into;
use ranksim_rankings::{
    footrule_items, footrule_pairs, ItemId, Kernel, QueryScratch, QueryStats, RankingId,
    RankingStore,
};

/// What one worker of a work-stealing batch run did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerReport {
    /// Work units this worker claimed and processed (including failed
    /// ones): one query in the monolithic driver, one (query, shard)
    /// task in the sharded driver's (query × shard) split.
    pub queries: u64,
    /// The stats accumulated over exactly those queries.
    pub stats: QueryStats,
    /// Planner telemetry accumulated over exactly those queries (all
    /// zero unless the batch ran [`Algorithm::Auto`]): per-algorithm pick
    /// counts plus predicted-vs-actual cost totals.
    pub plan: PlanStats,
    /// Queries whose execution panicked. Each failed query's result set
    /// is empty; the worker caught the unwind and kept draining the
    /// cursor, so one poisoned query never takes down the batch.
    pub failed: u64,
    /// The first panic message this worker observed, if any.
    pub error: Option<String>,
    /// Query indices this worker claimed at or past the batch deadline
    /// and therefore skipped (empty result set; mirrors the per-query
    /// panic containment — a timed-out query fails individually, the
    /// batch completes). Always empty without a deadline.
    pub timed_out: Vec<usize>,
}

/// Folds per-worker reports into one batch-wide [`QueryStats`].
pub fn merge_reports(reports: &[WorkerReport]) -> QueryStats {
    let mut stats = QueryStats::new();
    for r in reports {
        stats.merge(&r.stats);
    }
    stats
}

/// Folds per-worker reports into one batch-wide [`PlanStats`].
pub fn merge_plan_reports(reports: &[WorkerReport]) -> PlanStats {
    let mut plan = PlanStats::new();
    for r in reports {
        plan.merge(&r.plan);
    }
    plan
}

/// The shared work queue of a batch run: an atomic cursor over the query
/// indices `0..total`. Claiming is a single `fetch_add`, so workers that
/// finish cheap queries immediately steal the next pending one — no
/// worker idles while another still holds unstarted work.
struct TaskCursor {
    next: AtomicUsize,
    total: usize,
}

impl TaskCursor {
    fn new(total: usize) -> Self {
        TaskCursor {
            next: AtomicUsize::new(0),
            total,
        }
    }

    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }
}

/// Resolves the worker-thread count: `0` picks the machine's available
/// parallelism; the count never exceeds the number of queries.
fn resolve_threads(threads: usize, num_queries: usize) -> usize {
    let t = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    t.min(num_queries.max(1))
}

/// Extracts a human-readable message from a caught panic payload
/// (`panic!` with a literal yields `&'static str`, with a format string
/// yields `String`; anything else is opaque).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// The work-stealing batch driver shared by [`Engine::query_batch`] and
/// [`crate::shard::ShardedEngine::query_batch`]. `make_worker` builds one
/// per-thread closure (owning that worker's scratch); the closure maps a
/// query index to its result set. Workers rendezvous on a barrier before
/// claiming, then drain the shared cursor; results are reassembled in
/// input order.
///
/// A panicking query is contained to that query: the worker catches the
/// unwind, records it in its [`WorkerReport`] (`failed` / `error`),
/// leaves that query's result set empty, and keeps claiming. Scratch
/// reuse after a mid-query unwind is safe because every query re-arms
/// its epoch structures from scratch-generation stamps before reading
/// them.
///
/// `deadline` bounds the batch's tail: a query *claimed* at or past the
/// deadline is skipped (recorded in [`WorkerReport::timed_out`], empty
/// result set) instead of executed, so one slow batch cannot hold a
/// serving thread hostage much past its budget. The check is at claim
/// time — an already-running query finishes (queries are short; the
/// driver never interrupts one mid-flight).
pub(crate) fn run_stealing<W, F>(
    num_queries: usize,
    threads: usize,
    deadline: Option<Instant>,
    make_worker: W,
) -> (Vec<Vec<RankingId>>, Vec<WorkerReport>)
where
    W: Fn() -> F + Sync,
    F: FnMut(usize, &mut WorkerReport) -> Vec<RankingId>,
{
    if num_queries == 0 {
        return (Vec::new(), Vec::new());
    }
    let threads = resolve_threads(threads, num_queries);
    let cursor = TaskCursor::new(num_queries);
    let barrier = Barrier::new(threads);
    let mut per_worker: Vec<(Vec<(usize, Vec<RankingId>)>, WorkerReport)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let barrier = &barrier;
                    let make_worker = &make_worker;
                    scope.spawn(move || {
                        let mut work = make_worker();
                        let mut report = WorkerReport::default();
                        let mut claimed: Vec<(usize, Vec<RankingId>)> = Vec::new();
                        // All workers start before any claims, so a batch
                        // cannot be drained before late workers exist.
                        barrier.wait();
                        while let Some(qi) = cursor.claim() {
                            if deadline.is_some_and(|d| Instant::now() >= d) {
                                report.queries += 1;
                                report.timed_out.push(qi);
                                continue;
                            }
                            let attempt =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    work(qi, &mut report)
                                }));
                            report.queries += 1;
                            match attempt {
                                Ok(out) => claimed.push((qi, out)),
                                Err(payload) => {
                                    report.failed += 1;
                                    if report.error.is_none() {
                                        report.error = Some(panic_message(payload.as_ref()));
                                    }
                                }
                            }
                        }
                        (claimed, report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // With per-query containment above, a join error means
                    // the worker died outside query execution (e.g. in
                    // `make_worker`); degrade to an error report rather
                    // than poisoning the whole batch.
                    h.join().unwrap_or_else(|payload| {
                        let report = WorkerReport {
                            error: Some(panic_message(payload.as_ref())),
                            ..WorkerReport::default()
                        };
                        (Vec::new(), report)
                    })
                })
                .collect()
        });
    let mut results: Vec<Vec<RankingId>> = Vec::with_capacity(num_queries);
    results.resize_with(num_queries, Vec::new);
    let mut reports = Vec::with_capacity(threads);
    for (claimed, report) in per_worker.drain(..) {
        for (qi, out) in claimed {
            results[qi] = out;
        }
        reports.push(report);
    }
    (results, reports)
}

impl Engine {
    /// Processes `queries` with `algorithm` at one raw threshold across
    /// `threads` work-stealing worker threads (`0` picks the machine's
    /// available parallelism). Returns per-query result sets in input
    /// order plus the merged stats. Every worker reuses one scratch, so
    /// the only steady-state allocations are the returned result vectors.
    pub fn query_batch(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
    ) -> (Vec<Vec<RankingId>>, QueryStats) {
        let (results, reports) = self.query_batch_reported(algorithm, queries, theta_raw, threads);
        (results, merge_reports(&reports))
    }

    /// [`Engine::query_batch`] with one [`WorkerReport`] per worker
    /// instead of pre-merged stats, exposing how evenly the stealing
    /// spread a (possibly skewed) batch.
    pub fn query_batch_reported(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
    ) -> (Vec<Vec<RankingId>>, Vec<WorkerReport>) {
        self.query_batch_inner(algorithm, queries, theta_raw, threads, None)
    }

    /// [`Engine::query_batch_reported`] with a wall-clock `budget`:
    /// queries the pool has not *started* when the budget elapses are
    /// skipped individually — empty result set, index recorded in
    /// [`WorkerReport::timed_out`] — instead of stalling the batch's
    /// caller (a serving loop with its own latency promise) for the
    /// whole remaining tail.
    pub fn query_batch_deadline(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
        budget: Duration,
    ) -> (Vec<Vec<RankingId>>, Vec<WorkerReport>) {
        let deadline = Instant::now() + budget;
        self.query_batch_inner(algorithm, queries, theta_raw, threads, Some(deadline))
    }

    fn query_batch_inner(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
        deadline: Option<Instant>,
    ) -> (Vec<Vec<RankingId>>, Vec<WorkerReport>) {
        run_stealing(queries.len(), threads, deadline, || {
            let mut scratch = QueryScratch::new();
            move |qi: usize, report: &mut WorkerReport| {
                let mut out = Vec::new();
                let trace = self.query_into_traced(
                    algorithm,
                    &queries[qi],
                    theta_raw,
                    &mut scratch,
                    &mut report.stats,
                    &mut out,
                );
                report.plan.record(&trace);
                out
            }
        })
    }
}

/// A batch of queries sharing one threshold.
#[derive(Debug, Clone)]
pub struct QueryBatch<'a> {
    /// The query rankings.
    pub queries: &'a [Vec<ItemId>],
    /// The shared raw query threshold.
    pub theta_raw: u32,
}

/// One leader-clustered group of query indices.
#[derive(Debug, Clone)]
struct Group {
    leader: usize,
    members: Vec<usize>,
}

/// Greedy leader clustering of the queries at radius `rho_raw`.
fn cluster_queries(queries: &[Vec<ItemId>], rho_raw: u32) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    'next: for (qi, q) in queries.iter().enumerate() {
        for g in &mut groups {
            if footrule_items(&queries[g.leader], q) <= rho_raw {
                g.members.push(qi);
                continue 'next;
            }
        }
        groups.push(Group {
            leader: qi,
            members: vec![qi],
        });
    }
    groups
}

/// Processes a batch over the coarse index. Returns per-query result sets
/// in input order. `rho_raw` is the query-clustering radius (0 disables
/// sharing within distinct queries; duplicates still share).
pub fn batch_query(
    index: &CoarseIndex,
    store: &RankingStore,
    batch: &QueryBatch<'_>,
    rho_raw: u32,
    stats: &mut QueryStats,
) -> Vec<Vec<RankingId>> {
    let theta = batch.theta_raw;
    let theta_c = index.theta_c_raw();
    let groups = cluster_queries(batch.queries, rho_raw);
    let mut results: Vec<Vec<RankingId>> = vec![Vec::new(); batch.queries.len()];
    let mut scratch = QueryScratch::new();
    let mut shared: Vec<(u32, u32)> = Vec::new();
    let mut qp: Vec<(ItemId, u32)> = Vec::new();
    let mut tree_stack: Vec<u32> = Vec::new();

    for g in &groups {
        // One shared filter probe through the leader: any partition a
        // member query needs has d(medoid, leader) ≤ θ + θ_C + ρ.
        let leader = &batch.queries[g.leader];
        shared.clear();
        index.filter_into(
            store,
            leader,
            theta.saturating_add(rho_raw),
            false,
            Kernel::default(),
            &mut scratch,
            stats,
            &mut shared,
        );
        for &qi in &g.members {
            let q = &batch.queries[qi];
            query_pairs_into(q, &mut qp);
            let mut out = Vec::new();
            for &(pi, leader_dist) in &shared {
                // Per-member refinement: the member's own medoid distance
                // decides whether the partition is relevant (Lemma 1).
                let medoid = index.partitioning().partitions()[pi as usize].medoid;
                let d = if qi == g.leader {
                    leader_dist
                } else {
                    stats.count_distance();
                    footrule_pairs(&qp, store.sorted_pairs(medoid), store.k())
                };
                if d <= theta + theta_c {
                    index.partitioning().validate_into_with(
                        store,
                        pi as usize,
                        &qp,
                        theta,
                        Some(d),
                        &mut tree_stack,
                        stats,
                        &mut out,
                    );
                }
            }
            results[qi] = out;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::raw_threshold;

    #[test]
    fn batch_results_equal_individual_queries() {
        let ds = nyt_like(900, 10, 55);
        let index = CoarseIndex::build(&ds.store, raw_threshold(0.3, 10));
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 30,
                seed: 8,
                ..Default::default()
            },
        );
        let theta = raw_threshold(0.2, 10);
        for rho in [0u32, 8, 20] {
            let batch = QueryBatch {
                queries: &wl.queries,
                theta_raw: theta,
            };
            let mut stats = QueryStats::new();
            let got = batch_query(&index, &ds.store, &batch, rho, &mut stats);
            for (qi, q) in wl.queries.iter().enumerate() {
                let mut s = QueryStats::new();
                let mut expect = index.query(&ds.store, q, theta, false, &mut s);
                let mut g = got[qi].clone();
                expect.sort_unstable();
                g.sort_unstable();
                assert_eq!(g, expect, "query {qi} at ρ={rho}");
            }
        }
    }

    #[test]
    fn duplicate_queries_share_one_probe() {
        let ds = nyt_like(400, 10, 66);
        let index = CoarseIndex::build(&ds.store, raw_threshold(0.3, 10));
        let q: Vec<ItemId> = ds.store.items(RankingId(7)).to_vec();
        let queries = vec![q.clone(), q.clone(), q];
        let theta = raw_threshold(0.2, 10);
        let batch = QueryBatch {
            queries: &queries,
            theta_raw: theta,
        };
        let mut batched = QueryStats::new();
        let res = batch_query(&index, &ds.store, &batch, 0, &mut batched);
        assert_eq!(res[0], res[1]);
        assert_eq!(res[1], res[2]);
        let mut individual = QueryStats::new();
        for q in &queries {
            let _ = index.query(&ds.store, q, theta, false, &mut individual);
        }
        assert!(
            batched.lists_accessed < individual.lists_accessed,
            "batching must save index probes ({} vs {})",
            batched.lists_accessed,
            individual.lists_accessed
        );
    }

    #[test]
    fn clustering_radius_zero_groups_only_identical() {
        let a: Vec<ItemId> = (0..5u32).map(ItemId).collect();
        let b: Vec<ItemId> = (5..10u32).map(ItemId).collect();
        let groups = cluster_queries(&[a.clone(), b, a], 0);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].members, vec![0, 2]);
    }

    #[test]
    fn query_batch_equals_sequential_for_every_algorithm() {
        let ds = nyt_like(700, 10, 91);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build();
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 24,
                seed: 17,
                ..Default::default()
            },
        );
        let theta = raw_threshold(0.2, 10);
        for alg in Algorithm::ALL {
            for threads in [1usize, 3, 0] {
                let (got, batch_stats) = engine.query_batch(alg, &wl.queries, theta, threads);
                assert_eq!(got.len(), wl.queries.len());
                let mut scratch = engine.scratch();
                let mut seq_stats = QueryStats::new();
                for (qi, q) in wl.queries.iter().enumerate() {
                    let expect = engine.query_items(alg, q, theta, &mut scratch, &mut seq_stats);
                    assert_eq!(got[qi], expect, "{alg} query {qi} at {threads} threads");
                }
                assert_eq!(
                    batch_stats, seq_stats,
                    "{alg}: merged batch stats must equal sequential stats"
                );
            }
        }
    }

    #[test]
    fn panicking_worker_task_fails_alone() {
        // Inject panics directly into the driver: queries 3, 10 and 17
        // die, everything else must complete with correct results and
        // the panics must be visible in the per-worker reports.
        let (results, reports) = run_stealing(20, 4, None, || {
            |qi: usize, _report: &mut WorkerReport| {
                if qi % 7 == 3 {
                    panic!("injected panic on query {qi}");
                }
                vec![RankingId(qi as u32)]
            }
        });
        assert_eq!(results.len(), 20);
        for (qi, out) in results.iter().enumerate() {
            if qi % 7 == 3 {
                assert!(out.is_empty(), "failed query {qi} must yield an empty set");
            } else {
                assert_eq!(out, &vec![RankingId(qi as u32)], "query {qi}");
            }
        }
        assert_eq!(reports.iter().map(|r| r.queries).sum::<u64>(), 20);
        assert_eq!(reports.iter().map(|r| r.failed).sum::<u64>(), 3);
        let msgs: Vec<&String> = reports.iter().filter_map(|r| r.error.as_ref()).collect();
        assert!(!msgs.is_empty(), "at least one worker recorded the panic");
        assert!(msgs
            .iter()
            .all(|m| m.starts_with("injected panic on query")));
    }

    #[test]
    fn query_batch_survives_a_poisoned_query() {
        // A wrong-length query trips the engine's own size assert inside
        // the worker; the batch must degrade (empty result set, error in
        // the report), not abort.
        let ds = nyt_like(300, 10, 5);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 8,
                seed: 3,
                ..Default::default()
            },
        );
        let theta = raw_threshold(0.2, 10);
        let mut queries = wl.queries.clone();
        queries[3].truncate(4);
        let (got, reports) = engine.query_batch_reported(Algorithm::Fv, &queries, theta, 2);
        assert!(got[3].is_empty());
        let mut scratch = engine.scratch();
        let mut s = QueryStats::new();
        for (qi, q) in queries.iter().enumerate() {
            if qi == 3 {
                continue;
            }
            let expect = engine.query_items(Algorithm::Fv, q, theta, &mut scratch, &mut s);
            assert_eq!(got[qi], expect, "query {qi}");
        }
        assert_eq!(reports.iter().map(|r| r.queries).sum::<u64>(), 8);
        assert_eq!(reports.iter().map(|r| r.failed).sum::<u64>(), 1);
        let err = reports
            .iter()
            .find_map(|r| r.error.clone())
            .expect("a worker recorded the panic");
        assert!(err.contains("query size"), "unexpected message: {err}");
    }

    #[test]
    fn an_expired_deadline_times_queries_out_individually() {
        // A deadline already in the past: every query is claimed after
        // it, so every query is skipped — but the batch still returns,
        // with the full index set accounted for in `timed_out`.
        let deadline = Instant::now() - Duration::from_millis(1);
        let (results, reports) = run_stealing(12, 3, Some(deadline), || {
            |qi: usize, _report: &mut WorkerReport| vec![RankingId(qi as u32)]
        });
        assert!(results.iter().all(|r| r.is_empty()));
        assert_eq!(reports.iter().map(|r| r.queries).sum::<u64>(), 12);
        assert_eq!(reports.iter().map(|r| r.failed).sum::<u64>(), 0);
        let mut skipped: Vec<usize> = reports
            .iter()
            .flat_map(|r| r.timed_out.iter().copied())
            .collect();
        skipped.sort_unstable();
        assert_eq!(skipped, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn a_slow_query_lets_the_rest_complete_and_times_out_the_tail() {
        // Query 0 burns past the deadline on one worker; the second
        // worker drains what it can before the deadline. Whatever is
        // claimed late is timed out, never silently dropped: every
        // index is either answered or in `timed_out`.
        let deadline = Instant::now() + Duration::from_millis(30);
        let (results, reports) = run_stealing(10, 2, Some(deadline), || {
            |qi: usize, _report: &mut WorkerReport| {
                if qi == 0 {
                    std::thread::sleep(Duration::from_millis(80));
                }
                vec![RankingId(qi as u32)]
            }
        });
        // The slow query itself started before the deadline: it
        // completes (claim-time check only, no mid-flight interrupt).
        assert_eq!(results[0], vec![RankingId(0)]);
        let timed_out: Vec<usize> = reports
            .iter()
            .flat_map(|r| r.timed_out.iter().copied())
            .collect();
        for qi in 1..10 {
            if timed_out.contains(&qi) {
                assert!(results[qi].is_empty(), "timed-out query {qi} has results");
            } else {
                assert_eq!(results[qi], vec![RankingId(qi as u32)], "query {qi}");
            }
        }
        assert_eq!(reports.iter().map(|r| r.queries).sum::<u64>(), 10);
    }

    #[test]
    fn query_batch_deadline_with_a_generous_budget_matches_query_batch() {
        let ds = nyt_like(300, 10, 77);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 12,
                seed: 9,
                ..Default::default()
            },
        );
        let theta = raw_threshold(0.2, 10);
        let (plain, _) = engine.query_batch(Algorithm::Fv, &wl.queries, theta, 2);
        let (with_deadline, reports) = engine.query_batch_deadline(
            Algorithm::Fv,
            &wl.queries,
            theta,
            2,
            Duration::from_secs(60),
        );
        assert_eq!(with_deadline, plain);
        assert!(reports.iter().all(|r| r.timed_out.is_empty()));
    }

    #[test]
    fn query_batch_handles_empty_batch() {
        let ds = nyt_like(100, 10, 2);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let (res, stats) = engine.query_batch(Algorithm::Fv, &[], 10, 4);
        assert!(res.is_empty());
        assert_eq!(stats, QueryStats::new());
    }
}
