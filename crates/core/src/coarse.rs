//! The coarse hybrid index (paper Section 4).
//!
//! Construction: partition the corpus at radius `θ_C` with the BK-subtree
//! partitioner (Figure 1) and put only the partition medoids into an
//! inverted index. Querying (Algorithm 1): retrieve medoids within the
//! *relaxed* threshold `θ + θ_C` through plain F&V — optionally with
//! Lemma 2 list dropping (`Coarse+Drop`) — then validate each hit
//! partition against the original `θ` through its BK-subtrees.
//!
//! Lemma 1 (no false negatives): a result `τ` with `d(τ, q) ≤ θ` lives in
//! a partition whose medoid satisfies `d(τ_m, q) ≤ d(τ_m, τ) + d(τ, q) ≤
//! θ_C + θ`, so the relaxed filter retrieves its partition. Medoids with
//! zero query overlap are invisible to the inverted index, which is safe
//! exactly while `θ + θ_C < d_max` (their distance is then provably above
//! the relaxed threshold); beyond that the index falls back to a medoid
//! scan, preserving correctness at degraded speed.
//!
//! Both phases run through the reusable [`QueryScratch`]: the filter
//! reuses the F&V epoch structures, the validation reuses the sorted
//! query-pair buffer and the BK traversal stack — zero heap allocations
//! per steady-state query.

use std::sync::Arc;

use ranksim_invindex::fv::filter_validate_relaxed_into;
use ranksim_invindex::PlainInvertedIndex;
use ranksim_metricspace::{query_pairs_into, BkPartitioner, Partitioning};
use ranksim_rankings::{
    footrule_pairs, ExecStats, ItemId, ItemRemap, Kernel, QueryExecutor, QueryScratch, QueryStats,
    RankingId, RankingStore,
};

/// Construction-time statistics (Table 6 reporting).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoarseBuildStats {
    /// Footrule evaluations spent building the BK-tree / partitions.
    pub distance_calls: u64,
    /// Number of partitions (= medoids in the inverted index).
    pub num_partitions: usize,
}

/// The coarse hybrid index.
///
/// Supports a live corpus: [`CoarseIndex::insert`] appends a ranking to
/// the covering partition (preserving the Lemma 1 radius invariant) or
/// opens a fresh partition whose medoid is kept in a linearly-scanned
/// overlay next to the CSR medoid index; removals need no index
/// operation at all — tombstoned members are filtered at emission and a
/// tombstoned medoid keeps representing its partition with frozen
/// content, so every triangle-inequality bound stays exact.
#[derive(Debug, Clone)]
pub struct CoarseIndex {
    theta_c_raw: u32,
    partitioning: Partitioning,
    medoid_index: PlainInvertedIndex,
    /// `medoid_to_partition[ranking] = partition` for medoids,
    /// `u32::MAX` otherwise — a flat array instead of a hash map, sized by
    /// the corpus.
    medoid_to_partition: Vec<u32>,
    /// Medoids of partitions opened after the build — invisible to the
    /// CSR medoid index, so the filter phase scans them linearly (they
    /// are few until the next rebuild folds them in).
    extra_medoids: Vec<(RankingId, u32)>,
    build: CoarseBuildStats,
}

impl CoarseIndex {
    /// Builds the index at partitioning radius `theta_c_raw` using the
    /// BK-subtree partitioner.
    pub fn build(store: &RankingStore, theta_c_raw: u32) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), theta_c_raw)
    }

    /// Builds the index at radius `theta_c_raw` against a shared corpus
    /// remap.
    pub fn build_with_remap(store: &RankingStore, remap: Arc<ItemRemap>, theta_c_raw: u32) -> Self {
        let partitioning = BkPartitioner::partition(store, theta_c_raw);
        Self::from_partitioning_with_remap(store, remap, partitioning)
    }

    /// Builds the index from an existing partitioning (any scheme whose
    /// partitions respect the radius guarantee works).
    pub fn from_partitioning(store: &RankingStore, partitioning: Partitioning) -> Self {
        Self::from_partitioning_with_remap(store, Arc::new(ItemRemap::build(store)), partitioning)
    }

    /// Builds the index from an existing partitioning and a shared remap.
    pub fn from_partitioning_with_remap(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        partitioning: Partitioning,
    ) -> Self {
        let mut medoids: Vec<(RankingId, u32)> = partitioning
            .medoids()
            .enumerate()
            .map(|(pi, m)| (m, pi as u32))
            .collect();
        medoids.sort_unstable_by_key(|&(m, _)| m);
        let medoid_index =
            PlainInvertedIndex::build_with_remap(store, remap, medoids.iter().map(|&(m, _)| m));
        let mut medoid_to_partition = vec![u32::MAX; store.len()];
        for (m, pi) in medoids {
            medoid_to_partition[m.index()] = pi;
        }
        let build = CoarseBuildStats {
            distance_calls: partitioning.build_distance_calls,
            num_partitions: partitioning.num_partitions(),
        };
        CoarseIndex {
            theta_c_raw: partitioning.theta_c_raw(),
            partitioning,
            medoid_index,
            medoid_to_partition,
            extra_medoids: Vec::new(),
            build,
        }
    }

    /// Appends ranking `id` — the incremental insert path. Joins the
    /// nearest partition whose medoid lies within `θ_C` (ties to the
    /// lowest partition index), or opens a fresh single-member partition
    /// with `id` as an overlay medoid. Either way the radius invariant
    /// behind Lemma 1 is preserved, so query results stay exact.
    pub fn insert(&mut self, store: &RankingStore, id: RankingId) {
        let pairs = store.sorted_pairs(id);
        let k = store.k();
        let mut best: Option<(usize, u32)> = None;
        for (pi, p) in self.partitioning.partitions().iter().enumerate() {
            let d = footrule_pairs(pairs, store.sorted_pairs(p.medoid), k);
            if d <= self.theta_c_raw && best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((pi, d));
            }
        }
        if id.index() >= self.medoid_to_partition.len() {
            self.medoid_to_partition.resize(store.len(), u32::MAX);
        }
        match best {
            Some((pi, _)) => self.partitioning.insert_member(store, pi, id),
            None => {
                let pi = self.partitioning.push_partition(id) as u32;
                self.extra_medoids.push((id, pi));
                self.medoid_to_partition[id.index()] = pi;
            }
        }
    }

    /// Number of overlay medoids awaiting the next rebuild.
    pub fn extra_medoid_len(&self) -> usize {
        self.extra_medoids.len()
    }

    /// The partitioning radius in raw Footrule units.
    pub fn theta_c_raw(&self) -> u32 {
        self.theta_c_raw
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitioning.num_partitions()
    }

    /// Construction statistics.
    pub fn build_stats(&self) -> CoarseBuildStats {
        self.build
    }

    /// The underlying partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// **Filtering phase** (Algorithm 1, line 1): the partitions whose
    /// medoid lies within `θ + θ_C` of the query, with the medoid
    /// distances already computed.
    pub fn filter(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        drop_lists: bool,
        stats: &mut QueryStats,
    ) -> Vec<(u32, u32)> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.filter_into(
            store,
            query,
            theta_raw,
            drop_lists,
            Kernel::default(),
            &mut scratch,
            stats,
            &mut out,
        );
        out
    }

    /// Scratch-reusing filtering phase; appends `(partition, medoid
    /// distance)` pairs to `out`. `kernel` selects the position-compare
    /// kernel for the medoid validations (both kernels are exact for
    /// in-threshold medoids, so the filtered set is identical).
    #[allow(clippy::too_many_arguments)]
    pub fn filter_into(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        drop_lists: bool,
        kernel: Kernel,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<(u32, u32)>,
    ) {
        let relaxed = theta_raw.saturating_add(self.theta_c_raw);
        if relaxed >= store.max_distance() {
            // Inverted-index retrieval incomplete: scan the medoids.
            query_pairs_into(query, &mut scratch.qp);
            for (pi, p) in self.partitioning.partitions().iter().enumerate() {
                stats.count_distance();
                let d = footrule_pairs(&scratch.qp, store.sorted_pairs(p.medoid), store.k());
                if d <= relaxed {
                    out.push((pi as u32, d));
                }
            }
            return;
        }
        let mut hits = std::mem::take(&mut scratch.hits);
        hits.clear();
        filter_validate_relaxed_into(
            &self.medoid_index,
            store,
            query,
            relaxed,
            drop_lists,
            kernel,
            scratch,
            stats,
            &mut hits,
        );
        out.extend(
            hits.iter()
                .map(|&(medoid, d)| (self.medoid_to_partition[medoid.index()], d)),
        );
        scratch.hits = hits;
        // Overlay medoids (partitions opened since the build) are not in
        // the CSR index: scan them linearly against the relaxed bound.
        if !self.extra_medoids.is_empty() {
            query_pairs_into(query, &mut scratch.qp);
            for &(m, pi) in &self.extra_medoids {
                stats.count_distance();
                let d = footrule_pairs(&scratch.qp, store.sorted_pairs(m), store.k());
                if d <= relaxed {
                    out.push((pi, d));
                }
            }
        }
    }

    /// **Validation phase** (Algorithm 1, lines 2–4): runs the original
    /// threshold through each retrieved partition's BK-subtrees.
    pub fn validate(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        filtered: &[(u32, u32)],
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.validate_with(
            store,
            query,
            theta_raw,
            filtered,
            &mut scratch,
            stats,
            &mut out,
        );
        out
    }

    /// Scratch-reusing validation phase; appends results to `out`.
    #[allow(clippy::too_many_arguments)]
    pub fn validate_with(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        filtered: &[(u32, u32)],
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let QueryScratch { qp, tree_stack, .. } = scratch;
        query_pairs_into(query, qp);
        let out_start = out.len();
        for &(pi, medoid_dist) in filtered {
            self.partitioning.validate_into_with(
                store,
                pi as usize,
                qp,
                theta_raw,
                Some(medoid_dist),
                tree_stack,
                stats,
                out,
            );
        }
        stats.results += (out.len() - out_start) as u64;
    }

    /// Full query: `Coarse` (`drop_lists = false`) or `Coarse+Drop`.
    pub fn query(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        drop_lists: bool,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.query_into(
            store,
            query,
            theta_raw,
            drop_lists,
            Kernel::default(),
            &mut scratch,
            stats,
            &mut out,
        );
        out
    }

    /// Scratch-reusing full query; appends results to `out`.
    #[allow(clippy::too_many_arguments)]
    pub fn query_into(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        drop_lists: bool,
        kernel: Kernel,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let mut filtered = std::mem::take(&mut scratch.filtered);
        filtered.clear();
        self.filter_into(
            store,
            query,
            theta_raw,
            drop_lists,
            kernel,
            scratch,
            stats,
            &mut filtered,
        );
        self.validate_with(store, query, theta_raw, &filtered, scratch, stats, out);
        scratch.filtered = filtered;
    }

    /// Approximate heap footprint in bytes (Table 6's "Coarse Index" row:
    /// partition trees plus the medoid inverted index).
    pub fn heap_bytes(&self) -> usize {
        self.partitioning.heap_bytes()
            + self.medoid_index.heap_bytes()
            + self.medoid_to_partition.capacity() * std::mem::size_of::<u32>()
            + self.extra_medoids.capacity() * std::mem::size_of::<(RankingId, u32)>()
    }

    /// Decomposes the index into its flat persistence form (overlay
    /// medoids split into id/partition planes).
    pub(crate) fn export_parts(&self) -> CoarseIndexParts {
        CoarseIndexParts {
            theta_c_raw: self.theta_c_raw,
            partitioning: self.partitioning.export_parts(),
            medoid_index: self.medoid_index.export_parts(),
            medoid_to_partition: self.medoid_to_partition.clone(),
            extra_medoid_ids: self.extra_medoids.iter().map(|&(m, _)| m.0).collect(),
            extra_medoid_partitions: self.extra_medoids.iter().map(|&(_, pi)| pi).collect(),
        }
    }

    /// Rebuilds the index from its flat persistence form against the
    /// corpus remap (build statistics reset; partition count recomputed).
    pub(crate) fn from_parts(
        parts: CoarseIndexParts,
        remap: Arc<ItemRemap>,
    ) -> Result<Self, String> {
        let partitioning = Partitioning::from_parts(parts.partitioning)?;
        let medoid_index = PlainInvertedIndex::from_parts(parts.medoid_index, remap)?;
        let np = partitioning.num_partitions() as u32;
        if let Some(&bad) = parts
            .medoid_to_partition
            .iter()
            .find(|&&pi| pi != u32::MAX && pi >= np)
        {
            return Err(format!("medoid maps to out-of-range partition {bad}"));
        }
        if parts.extra_medoid_ids.len() != parts.extra_medoid_partitions.len() {
            return Err("overlay medoid planes disagree in length".into());
        }
        if let Some(&bad) = parts.extra_medoid_partitions.iter().find(|&&pi| pi >= np) {
            return Err(format!(
                "overlay medoid maps to out-of-range partition {bad}"
            ));
        }
        let build = CoarseBuildStats {
            distance_calls: 0,
            num_partitions: partitioning.num_partitions(),
        };
        Ok(CoarseIndex {
            theta_c_raw: parts.theta_c_raw,
            partitioning,
            medoid_index,
            medoid_to_partition: parts.medoid_to_partition,
            extra_medoids: parts
                .extra_medoid_ids
                .into_iter()
                .map(RankingId)
                .zip(parts.extra_medoid_partitions)
                .collect(),
            build,
        })
    }
}

/// Flat persistence form of a [`CoarseIndex`].
#[derive(Debug, Clone)]
pub(crate) struct CoarseIndexParts {
    pub theta_c_raw: u32,
    pub partitioning: ranksim_metricspace::PartitioningParts,
    pub medoid_index: ranksim_invindex::PlainIndexParts,
    pub medoid_to_partition: Vec<u32>,
    pub extra_medoid_ids: Vec<u32>,
    pub extra_medoid_partitions: Vec<u32>,
}

/// [`QueryExecutor`] running the coarse hybrid path (`Coarse` or, with
/// `drop_lists`, `Coarse+Drop`) over a shared coarse index — the
/// metric-space side of the engine's executor table.
pub struct CoarseExecutor {
    index: Arc<CoarseIndex>,
    drop_lists: bool,
    kernel: Kernel,
}

impl CoarseExecutor {
    /// Wraps a shared coarse index; `drop_lists` selects `Coarse+Drop`.
    pub fn new(index: Arc<CoarseIndex>, drop_lists: bool) -> Self {
        Self::with_kernel(index, drop_lists, Kernel::default())
    }

    /// Like [`CoarseExecutor::new`] with an explicit distance kernel for
    /// the medoid-filter validations.
    pub fn with_kernel(index: Arc<CoarseIndex>, drop_lists: bool, kernel: Kernel) -> Self {
        CoarseExecutor {
            index,
            drop_lists,
            kernel,
        }
    }
}

impl QueryExecutor for CoarseExecutor {
    fn name(&self) -> &'static str {
        if self.drop_lists {
            "Coarse+Drop"
        } else {
            "Coarse"
        }
    }

    fn execute(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> ExecStats {
        let before = *stats;
        self.index.query_into(
            store,
            query,
            theta_raw,
            self.drop_lists,
            self.kernel,
            scratch,
            stats,
            out,
        );
        ExecStats::since(&before, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_metricspace::{linear_scan, query_pairs};
    use ranksim_rankings::raw_threshold;

    fn check_against_scan(theta_c: f64, thetas: &[f64]) {
        let ds = nyt_like(1200, 10, 21);
        let store = &ds.store;
        let index = CoarseIndex::build(store, raw_threshold(theta_c, 10));
        let wl = workload(
            store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 15,
                seed: 77,
                ..Default::default()
            },
        );
        let mut scratch = QueryScratch::new();
        for q in &wl.queries {
            let qp = query_pairs(q);
            for &theta in thetas {
                let raw = raw_threshold(theta, 10);
                let mut s1 = QueryStats::new();
                let mut s2 = QueryStats::new();
                let mut s3 = QueryStats::new();
                let mut expect = linear_scan(store, &qp, raw, &mut s1);
                let mut got = index.query(store, q, raw, false, &mut s2);
                // The drop arm reuses one scratch across the whole sweep.
                let mut got_drop = Vec::new();
                index.query_into(
                    store,
                    q,
                    raw,
                    true,
                    Kernel::default(),
                    &mut scratch,
                    &mut s3,
                    &mut got_drop,
                );
                expect.sort_unstable();
                got.sort_unstable();
                got_drop.sort_unstable();
                assert_eq!(got, expect, "Coarse θ={theta} θC={theta_c}");
                assert_eq!(got_drop, expect, "Coarse+Drop θ={theta} θC={theta_c}");
            }
        }
    }

    #[test]
    fn coarse_equals_scan_small_theta_c() {
        check_against_scan(0.06, &[0.0, 0.1, 0.2, 0.3]);
    }

    #[test]
    fn coarse_equals_scan_paper_theta_c() {
        check_against_scan(0.5, &[0.0, 0.1, 0.2, 0.3]);
    }

    #[test]
    fn coarse_handles_infeasible_relaxed_threshold() {
        // θ + θC ≥ d_max triggers the medoid-scan fallback; results must
        // still be exact.
        check_against_scan(0.8, &[0.3]);
    }

    #[test]
    fn incremental_inserts_and_tombstones_stay_exact() {
        // The append/tombstone path of the coarse index: post-build
        // inserts join covering partitions or open overlay-medoid
        // partitions, removals tombstone members and medoids alike, and
        // every query keeps matching the live-corpus linear scan — at
        // feasible thresholds (CSR + overlay scan) and through the
        // medoid-scan fallback.
        let ds = nyt_like(800, 10, 31);
        let mut store = ds.store;
        let mut index = CoarseIndex::build(&store, raw_threshold(0.3, 10));
        let base_partitions = index.num_partitions();
        // Near-duplicates (join partitions) and far-out rankings (open
        // overlay partitions).
        for i in 0..60u32 {
            let id = if i % 2 == 0 {
                let donor = RankingId(i);
                let mut items: Vec<ItemId> = store.items(donor).to_vec();
                items.swap(0, 9);
                store.push_items_unchecked(&items)
            } else {
                let base = 1_000_000 + i * 10;
                let items: Vec<ItemId> = (0..10).map(|j| ItemId(base + j)).collect();
                store.push_items_unchecked(&items)
            };
            index.insert(&store, id);
        }
        assert!(index.extra_medoid_len() > 0, "far inserts open partitions");
        assert!(index.num_partitions() >= base_partitions);
        // Tombstone old members, a likely medoid, and a fresh insert.
        for v in [0u32, 5, 17, 801, 803] {
            assert!(store.remove(RankingId(v)));
        }
        let mut scratch = QueryScratch::new();
        for qid in [2u32, 444, 805, 859] {
            let q: Vec<ItemId> = store.items(RankingId(qid)).to_vec();
            let qp = query_pairs(&q);
            for theta in [0.0, 0.15, 0.3, 0.6] {
                let raw = raw_threshold(theta, 10);
                let mut s1 = QueryStats::new();
                let mut s2 = QueryStats::new();
                let mut expect = linear_scan(&store, &qp, raw, &mut s1);
                let mut got = Vec::new();
                index.query_into(
                    &store,
                    &q,
                    raw,
                    false,
                    Kernel::default(),
                    &mut scratch,
                    &mut s2,
                    &mut got,
                );
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, expect, "qid={qid} θ={theta}");
            }
        }
    }

    #[test]
    fn theta_c_zero_degenerates_to_plain_fv() {
        // Every non-duplicate ranking becomes its own medoid.
        let ds = nyt_like(500, 10, 5);
        let index = CoarseIndex::build(&ds.store, 0);
        assert!(index.num_partitions() <= 500);
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 5,
                seed: 3,
                ..Default::default()
            },
        );
        for q in &wl.queries {
            let raw = raw_threshold(0.2, 10);
            let qp = query_pairs(q);
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut expect = linear_scan(&ds.store, &qp, raw, &mut s1);
            let mut got = index.query(&ds.store, q, raw, false, &mut s2);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn larger_theta_c_means_fewer_medoids() {
        let ds = nyt_like(1000, 10, 9);
        let mut prev = usize::MAX;
        for theta_c in [0.0, 0.1, 0.3, 0.5] {
            let idx = CoarseIndex::build(&ds.store, raw_threshold(theta_c, 10));
            assert!(idx.num_partitions() <= prev);
            prev = idx.num_partitions();
        }
    }

    #[test]
    fn filter_distances_are_exact_medoid_distances() {
        let ds = nyt_like(800, 10, 13);
        let index = CoarseIndex::build(&ds.store, raw_threshold(0.3, 10));
        let q: Vec<ItemId> = ds.store.items(RankingId(17)).to_vec();
        let qp = query_pairs(&q);
        let mut stats = QueryStats::new();
        for (pi, d) in index.filter(&ds.store, &q, raw_threshold(0.2, 10), false, &mut stats) {
            let medoid = index.partitioning().partitions()[pi as usize].medoid;
            let truth = footrule_pairs(&qp, ds.store.sorted_pairs(medoid), 10);
            assert_eq!(d, truth);
        }
    }

    #[test]
    fn exact_duplicate_partitions_save_distance_calls() {
        // Figure 10's Coarse effect: exact duplicates of the medoid are
        // reported from the BK edge-0 subtree; they cost tree traversal
        // but the medoid itself is never re-evaluated in validation.
        let mut store = RankingStore::new(4);
        for _ in 0..50 {
            store.push_items_unchecked(&[1, 2, 3, 4].map(ItemId));
        }
        let index = CoarseIndex::build(&store, 8);
        assert_eq!(index.num_partitions(), 1);
        let q: Vec<ItemId> = [1u32, 2, 3, 4].map(ItemId).to_vec();
        let mut stats = QueryStats::new();
        let res = index.query(&store, &q, 0, false, &mut stats);
        assert_eq!(res.len(), 50);
        // Filter evaluates the medoid once; validation walks the 49-node
        // duplicate chain — 50 total, never more than one per ranking.
        assert!(stats.distance_calls <= 50, "DFC = {}", stats.distance_calls);
    }
}
