//! Machine-cost calibration.
//!
//! The paper brings the filter and validation estimates to a common unit
//! by pre-measuring the runtime of a single Footrule computation,
//! `Cost_footrule(k)`, and of merging postings lists, `Cost_merge(k,
//! size)` (modelled here as a per-posting cost). [`CalibratedCosts::measure`]
//! performs those micro-measurements on the current machine; a fixed
//! [`CalibratedCosts::nominal`] variant keeps unit tests deterministic.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksim_rankings::hash::fx_set_with_capacity;
use ranksim_rankings::{ItemId, PositionMap};

/// Calibrated machine primitives, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct CalibratedCosts {
    /// One Footrule evaluation at the calibrated `k`.
    pub footrule_ns: f64,
    /// Streaming one posting through the filtering merge.
    pub merge_posting_ns: f64,
}

impl CalibratedCosts {
    /// Fixed nominal costs (a 2010s-class core): deterministic for tests.
    /// The *ratio* footrule : posting ≈ 10 : 1 is what shapes the curve.
    pub fn nominal(k: usize) -> Self {
        CalibratedCosts {
            footrule_ns: 12.0 * k as f64,
            merge_posting_ns: 8.0,
        }
    }

    /// Micro-measures both primitives for rankings of size `k`.
    pub fn measure(k: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(0xCA11B);

        // Footrule: PositionMap vs random candidates, averaged.
        let q: Vec<ItemId> = (0..k as u32).map(ItemId).collect();
        let qmap = PositionMap::new(&q);
        let candidates: Vec<Vec<ItemId>> = (0..64)
            .map(|_| {
                let mut c: Vec<ItemId> = Vec::with_capacity(k);
                while c.len() < k {
                    let cand = ItemId(rng.random_range(0..(4 * k) as u32));
                    if !c.contains(&cand) {
                        c.push(cand);
                    }
                }
                c
            })
            .collect();
        let iters = 200_000usize;
        let mut acc = 0u64;
        let start = Instant::now();
        for i in 0..iters {
            acc = acc.wrapping_add(qmap.distance_to(&candidates[i & 63]) as u64);
        }
        let footrule_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        std::hint::black_box(acc);

        // Merge: hash-union of k synthetic postings lists.
        let list_len = 2000usize;
        let lists: Vec<Vec<u32>> = (0..k)
            .map(|li| {
                (0..list_len)
                    .map(|j| (j * k + li) as u32 % (list_len as u32 * 2))
                    .collect()
            })
            .collect();
        let rounds = 50usize;
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..rounds {
            let mut set = fx_set_with_capacity::<u32>(list_len * 2);
            for l in &lists {
                set.extend(l.iter().copied());
            }
            sink = sink.wrapping_add(set.len());
        }
        let total_postings = (rounds * k * list_len) as f64;
        let merge_posting_ns = start.elapsed().as_nanos() as f64 / total_postings;
        std::hint::black_box(sink);

        CalibratedCosts {
            footrule_ns: footrule_ns.max(1.0),
            merge_posting_ns: merge_posting_ns.max(0.1),
        }
    }

    /// [`CalibratedCosts::measure`] with a process-wide per-`k` cache:
    /// the micro-measurement runs once per ranking size and every later
    /// engine (or shard) build reuses the result. Within one process the
    /// returned costs are therefore stable, which keeps planner decisions
    /// reproducible across engines built in the same run.
    pub fn measured_cached(k: usize) -> Self {
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<Vec<(usize, CalibratedCosts)>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
        let mut guard = cache.lock().expect("calibration cache poisoned");
        if let Some(&(_, costs)) = guard.iter().find(|&&(ck, _)| ck == k) {
            return costs;
        }
        let costs = Self::measure(k);
        guard.push((k, costs));
        costs
    }

    /// `Cost_merge(k, size)`: merging `k` lists of `size` postings each.
    pub fn merge_cost(&self, k: usize, size: f64) -> f64 {
        self.merge_posting_ns * k as f64 * size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_ratio_is_sane() {
        let c = CalibratedCosts::nominal(10);
        assert!(c.footrule_ns > c.merge_posting_ns);
        assert!(c.merge_cost(10, 100.0) > 0.0);
    }

    #[test]
    fn measured_costs_are_positive_and_ordered() {
        let c = CalibratedCosts::measure(10);
        assert!(c.footrule_ns >= 1.0);
        assert!(c.merge_posting_ns >= 0.1);
        assert!(
            c.footrule_ns > c.merge_posting_ns,
            "one distance evaluation must cost more than streaming one posting \
             (footrule {} ns vs posting {} ns)",
            c.footrule_ns,
            c.merge_posting_ns
        );
    }
}
