//! Empirical CDF of pairwise Footrule distances.
//!
//! The cost model's only distributional input: `P[X ≤ x]` for the distance
//! `X` between two random corpus rankings. Estimated from a seeded sample
//! of pairs (exact enumeration is `O(n²)` and unnecessary).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksim_rankings::{footrule_pairs, RankingId, RankingStore};

/// Histogram-backed empirical distance CDF.
#[derive(Debug, Clone)]
pub struct DistanceCdf {
    /// `counts[d]` = observed pairs at distance exactly `d` (`0..=d_max`).
    counts: Vec<u64>,
    total: u64,
}

impl DistanceCdf {
    /// Estimates the CDF from `num_pairs` random (unequal) pairs of
    /// **live** rankings. On a pristine store this draws the exact RNG
    /// stream it always did; on a mutated corpus tombstoned slots are
    /// excluded from the sample — the refresh path of the planner's
    /// corpus statistics.
    pub fn sample(store: &RankingStore, num_pairs: usize, seed: u64) -> Self {
        let live: Vec<RankingId> = store.live_ids().collect();
        assert!(live.len() >= 2, "need at least two live rankings");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; store.max_distance() as usize + 1];
        let n = live.len() as u32;
        let k = store.k();
        for _ in 0..num_pairs {
            let a = rng.random_range(0..n);
            let mut b = rng.random_range(0..n);
            while b == a {
                b = rng.random_range(0..n);
            }
            let d = footrule_pairs(
                store.sorted_pairs(live[a as usize]),
                store.sorted_pairs(live[b as usize]),
                k,
            );
            counts[d as usize] += 1;
        }
        DistanceCdf {
            counts,
            total: num_pairs as u64,
        }
    }

    /// Exact CDF over all live pairs (tests only; `O(n²)`).
    pub fn exhaustive(store: &RankingStore) -> Self {
        let mut counts = vec![0u64; store.max_distance() as usize + 1];
        let mut total = 0u64;
        let k = store.k();
        let live: Vec<RankingId> = store.live_ids().collect();
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                let d = footrule_pairs(store.sorted_pairs(a), store.sorted_pairs(b), k);
                counts[d as usize] += 1;
                total += 1;
            }
        }
        DistanceCdf { counts, total }
    }

    /// `P[X ≤ d]` (clamped beyond the histogram).
    pub fn p_leq(&self, d: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let d = (d as usize).min(self.counts.len() - 1);
        let below: u64 = self.counts[..=d].iter().sum();
        below as f64 / self.total as f64
    }

    /// The largest representable distance.
    pub fn d_max(&self) -> u32 {
        (self.counts.len() - 1) as u32
    }

    /// Number of sampled pairs.
    pub fn samples(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::nyt_like;

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let ds = nyt_like(800, 8, 1);
        let cdf = DistanceCdf::sample(&ds.store, 20_000, 7);
        let mut prev = 0.0;
        for d in 0..=cdf.d_max() {
            let p = cdf.p_leq(d);
            assert!(p >= prev && (0.0..=1.0).contains(&p));
            prev = p;
        }
        assert!((cdf.p_leq(cdf.d_max()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_tracks_exhaustive() {
        let ds = nyt_like(300, 8, 2);
        let exact = DistanceCdf::exhaustive(&ds.store);
        let approx = DistanceCdf::sample(&ds.store, 40_000, 3);
        for d in (0..=exact.d_max()).step_by(8) {
            assert!(
                (exact.p_leq(d) - approx.p_leq(d)).abs() < 0.03,
                "d={d}: exact {:.4} vs sampled {:.4}",
                exact.p_leq(d),
                approx.p_leq(d)
            );
        }
    }

    #[test]
    fn p_leq_is_a_probability_everywhere() {
        // Bounds in [0, 1] for every representable distance, for queries
        // beyond the histogram (clamped), and for both estimators.
        let ds = nyt_like(400, 6, 9);
        for cdf in [
            DistanceCdf::exhaustive(&ds.store),
            DistanceCdf::sample(&ds.store, 5_000, 13),
        ] {
            for d in 0..=cdf.d_max() {
                let p = cdf.p_leq(d);
                assert!((0.0..=1.0).contains(&p), "P[X ≤ {d}] = {p}");
            }
            assert_eq!(cdf.p_leq(cdf.d_max()), 1.0);
            assert_eq!(cdf.p_leq(u32::MAX), 1.0, "clamped beyond d_max");
            assert!(cdf.samples() > 0);
        }
    }

    #[test]
    fn duplicate_only_corpus_puts_all_mass_at_zero() {
        use ranksim_rankings::{ItemId, RankingStore};
        let mut store = RankingStore::new(4);
        for _ in 0..20 {
            store.push_items_unchecked(&[1, 2, 3, 4].map(ItemId));
        }
        let cdf = DistanceCdf::exhaustive(&store);
        assert_eq!(cdf.p_leq(0), 1.0);
    }

    #[test]
    fn clustered_data_has_low_distance_mass() {
        // The NYT-like generator plants near-duplicates: there must be
        // measurable probability mass well below d_max/2.
        let ds = nyt_like(600, 10, 3);
        let cdf = DistanceCdf::sample(&ds.store, 30_000, 5);
        assert!(cdf.p_leq(cdf.d_max() / 4) > 0.01);
    }
}
