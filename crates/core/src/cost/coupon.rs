//! Expected medoid count via the batched coupon-collector argument
//! (paper Section 5, Equations 1–2) plus a numerically robust variant.
//!
//! Random-medoid partitioning picks medoids one after another; each medoid
//! absorbs the unassigned rankings within radius `θ_C` — in expectation a
//! "package" of `p = P[X ≤ θ_C] · n` coupons per pick, with the medoid
//! itself always fresh. The paper models the expected number of picks as
//!
//! ```text
//! h(n, i, p) = 1                         if i mod p = 0     (the medoid)
//!            = (n − (i mod p)) / (n − i) otherwise          (Eq. 1)
//!
//! M(n, θ_C) = (1/p) · Σ_{i=0}^{n−1} h(n, i, p)              (Eq. 2)
//! ```
//!
//! **Deviation note** (documented in DESIGN.md): Eq. 2 inherits the
//! classical coupon-collector tail — the last distinct coupons cost
//! `Θ(n)` draws each — so for small packages (`1 < p ≪ n`, the
//! near-uniform Yago regime) the sum approaches `n·H_n` and `M` exceeds
//! `n`, which is physically impossible for medoids (every pick is an
//! unassigned ranking). In the real Chávez–Navarro process the expected
//! *fresh* coverage of one pick is `1 + (u − 1)·P[X ≤ θ_C]` when `u`
//! rankings remain unassigned, giving the recurrence
//! `u' = (u − 1)(1 − P)` whose iteration count is
//! [`expected_medoids`]. Both estimates agree in the paper's large-package
//! regime (validated by a unit test); the recurrence stays sane everywhere
//! and is what [`crate::CostModel`] uses. [`expected_medoids_eq2`] is the
//! paper's formula, verbatim, for comparison.

/// Equation 1: expected draws to advance from the `i`-th to the
/// `(i+1)`-th distinct coupon with package size `p`.
pub fn h(n: usize, i: usize, p: usize) -> f64 {
    debug_assert!(p >= 1 && i < n);
    if i.is_multiple_of(p) {
        1.0
    } else {
        (n - (i % p)) as f64 / (n - i) as f64
    }
}

/// Equation 2 verbatim: expected medoids by the batched coupon collector,
/// clamped to the physically possible `[1, n]`.
pub fn expected_medoids_eq2(n: usize, p_capture: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let p = ((p_capture * n as f64).round() as usize).clamp(1, n);
    let sum: f64 = (0..n).map(|i| h(n, i, p)).sum();
    (sum / p as f64).clamp(1.0, n as f64)
}

/// Expected medoids via the unassigned-mass recurrence `u' = (u−1)(1−P)`
/// (see module docs): each pick removes the medoid plus, in expectation,
/// a `P[X ≤ θ_C]` fraction of the other unassigned rankings.
pub fn expected_medoids(n: usize, p_capture: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let q = p_capture.clamp(0.0, 1.0);
    if q <= f64::EPSILON {
        return n as f64;
    }
    let mut u = n as f64;
    let mut m = 0u64;
    while u >= 0.5 && (m as usize) < n {
        u = (u - 1.0) * (1.0 - q);
        m += 1;
    }
    (m as f64).clamp(1.0, n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_capture_gives_one_medoid() {
        assert!((expected_medoids(1000, 1.0) - 1.0).abs() < 1e-9);
        assert!((expected_medoids_eq2(1000, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capture_gives_n_medoids() {
        assert!((expected_medoids(500, 0.0) - 500.0).abs() < 1e-9);
        assert!((expected_medoids_eq2(500, 0.0) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn medoid_count_decreases_with_capture_probability() {
        let n = 2000;
        let mut prev = f64::INFINITY;
        for pc in [0.0, 0.0005, 0.001, 0.01, 0.05, 0.2, 0.5, 1.0] {
            let m = expected_medoids(n, pc);
            assert!(m <= prev + 1e-9, "M must be non-increasing in P[X≤θC]");
            assert!((1.0..=n as f64).contains(&m));
            prev = m;
        }
    }

    #[test]
    fn medoid_count_is_monotone_in_corpus_size() {
        // At fixed capture probability, more rankings can only require
        // more medoids (both estimators).
        for pc in [0.01, 0.1, 0.5] {
            let mut prev = 0.0;
            let mut prev_eq2 = 0.0;
            for n in [10usize, 100, 1000, 10_000] {
                let m = expected_medoids(n, pc);
                let m_eq2 = expected_medoids_eq2(n, pc);
                assert!(m + 1e-9 >= prev, "P={pc} n={n}: {m} < {prev}");
                assert!(m_eq2 + 1e-9 >= prev_eq2, "Eq2 P={pc} n={n}");
                prev = m;
                prev_eq2 = m_eq2;
            }
        }
    }

    #[test]
    fn eq1_h_is_one_exactly_at_package_boundaries() {
        // Eq. 1: a fresh medoid pick costs exactly one draw; intermediate
        // coupons cost at least one draw in expectation.
        let (n, p) = (100usize, 10usize);
        for i in 0..n {
            let v = h(n, i, p);
            if i % p == 0 {
                assert_eq!(v, 1.0, "i={i}");
            } else {
                assert!(v >= 1.0, "i={i}: h={v} below 1 draw");
            }
        }
    }

    #[test]
    fn recurrence_discriminates_in_small_package_regime() {
        // The regime where Eq. 2 saturates at n: the recurrence must still
        // order the estimates by capture probability.
        let n = 10_000;
        let a = expected_medoids(n, 0.0002);
        let b = expected_medoids(n, 0.001);
        let c = expected_medoids(n, 0.005);
        assert!(a > b && b > c, "a={a} b={b} c={c}");
        assert!(c < n as f64 * 0.25);
    }

    #[test]
    fn eq2_and_recurrence_agree_for_large_packages() {
        // The paper's NYT regime: meaningful capture probability.
        for (n, pc) in [(50_000usize, 0.2f64), (20_000, 0.4), (100_000, 0.1)] {
            let eq2 = expected_medoids_eq2(n, pc);
            let rec = expected_medoids(n, pc);
            let ratio = eq2 / rec;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "n={n} P={pc}: eq2 {eq2:.1} vs recurrence {rec:.1}"
            );
        }
    }

    #[test]
    fn half_capture_sanity() {
        let m = expected_medoids(10_000, 0.5);
        assert!((2.0..30.0).contains(&m), "M = {m}");
        let m2 = expected_medoids_eq2(10_000, 0.5);
        assert!((2.0..60.0).contains(&m2), "Eq2 M = {m2}");
    }

    #[test]
    fn prediction_matches_random_partitioner() {
        // Empirical validation on a corpus with genuine cluster structure:
        // predict via the corpus's own distance CDF, compare with the
        // actual Chávez–Navarro construction (averaged over seeds). The
        // corpus uses many small clusters so the model's homogeneity
        // assumption (capture probability independent of the medoid)
        // roughly holds; for a handful of huge clusters the expectation
        // model under-counts, which is inherent to the paper's derivation.
        use crate::cost::cdf::DistanceCdf;
        use ranksim_datasets::{ClusteredZipfGenerator, GeneratorParams};
        use ranksim_metricspace::RandomMedoidPartitioner;

        let ds = ClusteredZipfGenerator::new(GeneratorParams {
            name: "coupon-validation".into(),
            n: 400,
            k: 8,
            domain: 600,
            zipf_s: 0.8,
            num_seeds: 50,
            cluster_fraction: 0.6,
            max_swaps: 2,
            replace_prob: 0.3,
            seed: 9,
        })
        .generate();
        let cdf = DistanceCdf::exhaustive(&ds.store);
        for theta_c in [8u32, 20, 36] {
            let predicted = expected_medoids(ds.store.len(), cdf.p_leq(theta_c));
            let mut actual = 0.0;
            let runs = 5;
            for seed in 0..runs {
                actual += RandomMedoidPartitioner::new(seed)
                    .partition(&ds.store, theta_c)
                    .num_partitions() as f64;
            }
            actual /= runs as f64;
            let ratio = predicted / actual;
            assert!(
                (0.25..=4.0).contains(&ratio),
                "θC={theta_c}: predicted {predicted:.1} vs actual {actual:.1}"
            );
        }
    }
}
