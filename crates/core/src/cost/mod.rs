//! The analytical cost model of the coarse index (paper Section 5).
//!
//! The model is "assumption-lean": it needs only
//!
//! * the CDF of pairwise Footrule distances ([`cdf::DistanceCdf`],
//!   estimated from a sample),
//! * the Zipf exponent `s` of item popularity (estimated from the corpus),
//! * two calibrated machine primitives: the runtime of one Footrule
//!   evaluation and of merging one posting
//!   ([`calibrate::CalibratedCosts`]).
//!
//! From these it derives the expected medoid count `M(n, θ_C)` via a
//! batched coupon-collector argument ([`coupon`]), the expected inverted-
//! index list length over the medoids, and finally the filtering and
//! validation costs whose sum the tuner minimizes ([`model::CostModel`]).

pub mod calibrate;
pub mod cdf;
pub mod coupon;
pub mod model;
