//! The combined cost model and sweet-spot tuner (paper Section 5,
//! Table 3, Figure 3).

use crate::cost::calibrate::CalibratedCosts;
use crate::cost::cdf::DistanceCdf;
use crate::cost::coupon::expected_medoids;
use ranksim_datasets::estimate_zipf_s;
use ranksim_rankings::{max_distance, raw_threshold, RankingStore};

/// Predicted filtering / validation / total cost at one `θ_C` (in
/// calibrated nanoseconds; only relative magnitudes matter for tuning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Querying the medoid inverted index (Table 3, "find medoids").
    pub filter: f64,
    /// Validating the retrieved partitions (Table 3, "validation").
    pub validate: f64,
}

impl CostBreakdown {
    /// Total modeled cost.
    pub fn total(&self) -> f64 {
        self.filter + self.validate
    }
}

/// The coarse index's analytical cost model.
///
/// Inputs (all estimated from the corpus, no ground truth needed):
/// pairwise-distance CDF, item-popularity Zipf exponent `s`, domain size
/// `v`, corpus size `n`, ranking size `k`, and two calibrated machine
/// primitives.
#[derive(Debug, Clone)]
pub struct CostModel {
    n: usize,
    k: usize,
    v: f64,
    s: f64,
    cdf: DistanceCdf,
    costs: CalibratedCosts,
}

impl CostModel {
    /// Builds the model from a corpus: samples the distance CDF
    /// (`cdf_pairs` pairs), estimates `s` by log-log regression, and uses
    /// the supplied machine costs.
    pub fn from_store(
        store: &RankingStore,
        cdf_pairs: usize,
        seed: u64,
        costs: CalibratedCosts,
    ) -> Self {
        let cdf = DistanceCdf::sample(store, cdf_pairs, seed);
        let s = estimate_zipf_s(store).max(0.0);
        let v = count_distinct_items(store) as f64;
        CostModel {
            n: store.live_len(),
            k: store.k(),
            v,
            s,
            cdf,
            costs,
        }
    }

    /// Builds the model from explicit components (tests, what-if analyses).
    pub fn from_parts(
        n: usize,
        k: usize,
        v: f64,
        s: f64,
        cdf: DistanceCdf,
        costs: CalibratedCosts,
    ) -> Self {
        CostModel {
            n,
            k,
            v,
            s,
            cdf,
            costs,
        }
    }

    /// Estimated Zipf exponent.
    pub fn zipf_s(&self) -> f64 {
        self.s
    }

    /// The distance CDF in use.
    pub fn cdf(&self) -> &DistanceCdf {
        &self.cdf
    }

    /// Expected number of medoids `M(n, θ_C)` (Eq. 2).
    pub fn expected_medoids(&self, theta_c_raw: u32) -> f64 {
        expected_medoids(self.n, self.cdf.p_leq(theta_c_raw))
    }

    /// Expected distinct items `E[v′]` among `m` medoids (Eq. 6):
    /// `v (1 − (1 − k/v)^M)`.
    pub fn expected_distinct_items(&self, m: f64) -> f64 {
        let ratio = (1.0 - self.k as f64 / self.v).max(0.0);
        (self.v * (1.0 - ratio.powf(m))).max(1.0)
    }

    /// Expected medoid-index list length (Eq. 5):
    /// `Σ_i M · f(i; s, v′)² = M · H_{v′,2s} / H_{v′,s}²`.
    pub fn expected_list_len(&self, m: f64) -> f64 {
        let v_prime = self.expected_distinct_items(m).round().max(1.0) as u64;
        let h_s = generalized_harmonic(v_prime, self.s);
        let h_2s = generalized_harmonic(v_prime, 2.0 * self.s);
        m * h_2s / (h_s * h_s)
    }

    /// The Table 3 cost combination at thresholds `θ` (query) and `θ_C`
    /// (partitioning), both in raw Footrule units.
    pub fn breakdown(&self, theta_raw: u32, theta_c_raw: u32) -> CostBreakdown {
        let m = self.expected_medoids(theta_c_raw);
        let len = self.expected_list_len(m);
        let k = self.k;
        // Find medoids: merge k index lists, then evaluate the distance of
        // each retrieved medoid against θ + θ_C.
        let filter = self.costs.merge_cost(k, len) + k as f64 * len * self.costs.footrule_ns;
        // Validate retrieved rankings: E[candidates] = P[X ≤ θ+θC] · n
        // (Eq. 4), each checked with one Footrule evaluation.
        let relaxed = theta_raw + theta_c_raw;
        let validate = self.n as f64 * self.cdf.p_leq(relaxed) * self.costs.footrule_ns;
        CostBreakdown { filter, validate }
    }

    /// Grid-searches `θ_C` (even raw values in `[0, grid_max]`) for the
    /// minimum total modeled cost at query threshold `θ`. Returns the raw
    /// `θ_C`. `grid_max` defaults to `0.8 · d_max` when `None`, matching
    /// the paper's swept range.
    pub fn optimal_theta_c(&self, theta_raw: u32, grid_max: Option<u32>) -> u32 {
        let d_max = max_distance(self.k);
        let hi = grid_max.unwrap_or((0.8 * d_max as f64) as u32);
        let mut best = (0u32, f64::INFINITY);
        let mut tc = 0u32;
        while tc <= hi {
            // Only θ + θ_C < d_max keeps the inverted-index retrieval
            // complete (Section 4.2); skip infeasible settings.
            if theta_raw + tc < d_max {
                let cost = self.breakdown(theta_raw, tc).total();
                if cost < best.1 {
                    best = (tc, cost);
                }
            }
            tc += 2;
        }
        best.0
    }

    /// Convenience: optimal `θ_C` for a normalized query threshold.
    pub fn optimal_theta_c_normalized(&self, theta: f64) -> f64 {
        let raw = self.optimal_theta_c(raw_threshold(theta, self.k), None);
        raw as f64 / max_distance(self.k) as f64
    }
}

/// `H_{v,s} = Σ_{i=1}^{v} i^{−s}`.
fn generalized_harmonic(v: u64, s: f64) -> f64 {
    (1..=v).map(|i| 1.0 / (i as f64).powf(s)).sum()
}

fn count_distinct_items(store: &RankingStore) -> usize {
    use ranksim_rankings::hash::FxHashSet;
    let mut set = FxHashSet::default();
    for id in store.live_ids() {
        set.extend(store.items(id).iter().copied());
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::{nyt_like, yago_like};

    fn model(n: usize) -> CostModel {
        let ds = nyt_like(n, 10, 4);
        CostModel::from_store(&ds.store, 30_000, 9, CalibratedCosts::nominal(10))
    }

    #[test]
    fn harmonic_special_cases() {
        assert!((generalized_harmonic(1, 0.5) - 1.0).abs() < 1e-12);
        // s = 0 ⇒ H = v.
        assert!((generalized_harmonic(100, 0.0) - 100.0).abs() < 1e-9);
        // s = 1, v = 4 ⇒ 1 + 1/2 + 1/3 + 1/4.
        assert!((generalized_harmonic(4, 1.0) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn filter_cost_decreases_validate_increases_in_theta_c() {
        let m = model(3000);
        let theta = raw_threshold(0.2, 10);
        let mut prev_filter = f64::INFINITY;
        let mut prev_validate = 0.0;
        for tc in (0..=80u32).step_by(8) {
            let b = m.breakdown(theta, tc);
            assert!(
                b.filter <= prev_filter + 1e-6,
                "filter cost must fall with θC"
            );
            assert!(
                b.validate >= prev_validate - 1e-6,
                "validation cost must rise with θC"
            );
            prev_filter = b.filter;
            prev_validate = b.validate;
        }
    }

    #[test]
    fn optimum_is_interior_on_clustered_data() {
        // Figure 3's shape: overall cost dips between the extremes.
        let m = model(3000);
        let theta = raw_threshold(0.2, 10);
        let opt = m.optimal_theta_c(theta, None);
        let cost_opt = m.breakdown(theta, opt).total();
        let cost_zero = m.breakdown(theta, 0).total();
        assert!(cost_opt <= cost_zero, "optimum can't lose to θC = 0");
        assert!(opt + theta < max_distance(10), "optimum must stay feasible");
    }

    #[test]
    fn expected_values_are_finite_and_bounded() {
        let m = model(2000);
        for tc in (0..=80u32).step_by(4) {
            let med = m.expected_medoids(tc);
            assert!((1.0..=2000.0).contains(&med));
            let v = m.expected_distinct_items(med);
            assert!(v >= 1.0 && v.is_finite());
            let len = m.expected_list_len(med);
            assert!(len.is_finite() && len >= 0.0);
            assert!(
                len <= med + 1e-9,
                "a list cannot exceed the number of indexed medoids"
            );
        }
    }

    #[test]
    fn crossover_sanity_at_extreme_thetas() {
        let m = model(2000);
        let d_max = max_distance(10);

        // θ at the top of the scale: only θ_C = 0 keeps θ + θ_C < d_max
        // feasible, so the tuner must return exactly 0.
        let opt_hi = m.optimal_theta_c(d_max - 1, None);
        assert_eq!(opt_hi, 0, "near-d_max θ leaves no feasible coarsening");

        // θ = 0: every grid point is feasible; the choice must beat (or
        // tie) both extremes of its own objective.
        let opt_lo = m.optimal_theta_c(0, None);
        let cost_opt = m.breakdown(0, opt_lo).total();
        let grid_hi = (0.8 * d_max as f64) as u32 & !1;
        assert!(cost_opt <= m.breakdown(0, 0).total() + 1e-9);
        assert!(cost_opt <= m.breakdown(0, grid_hi).total() + 1e-9);

        // Breakdown components stay finite and non-negative at both ends.
        for (theta, tc) in [(0u32, 0u32), (0, grid_hi), (d_max - 1, 0)] {
            let b = m.breakdown(theta, tc);
            assert!(b.filter.is_finite() && b.filter >= 0.0);
            assert!(b.validate.is_finite() && b.validate >= 0.0);
            assert!(b.total() >= b.filter.max(b.validate));
        }
    }

    #[test]
    fn optimal_theta_c_normalized_stays_in_unit_interval() {
        let m = model(1500);
        for theta in [0.0, 0.1, 0.3, 0.6, 0.9] {
            let tc = m.optimal_theta_c_normalized(theta);
            assert!((0.0..=1.0).contains(&tc), "θ={theta}: θ_C={tc}");
        }
    }

    #[test]
    fn skew_estimates_differ_between_datasets() {
        let nyt = nyt_like(3000, 10, 4);
        let yago = yago_like(3000, 10, 4);
        let m1 = CostModel::from_store(&nyt.store, 10_000, 1, CalibratedCosts::nominal(10));
        let m2 = CostModel::from_store(&yago.store, 10_000, 1, CalibratedCosts::nominal(10));
        assert!(m1.zipf_s() > m2.zipf_s());
    }
}
