//! The unified query engine: every algorithm of the paper's evaluation
//! behind one executor table, with a cost-model planner picking the sweet
//! spot per query.
//!
//! [`Engine`] owns the corpus and the index structures; [`Algorithm`]
//! names the paper's processing techniques (Section 7, "Algorithms under
//! Investigation") minus `Minimal F&V`, which is a workload-dependent
//! oracle rather than an ad-hoc index (see
//! [`ranksim_invindex::MinimalFv`]) — plus [`Algorithm::Auto`], which
//! lets the calibrated cost model choose the technique per `(query, θ)`
//! (the paper's Sections 8–9 outlook, implemented in
//! [`crate::planner::Planner`]).
//!
//! Dispatch is **not** a central `match` anymore: each algorithm is a
//! [`QueryExecutor`] living next to its index structure
//! (`ranksim-invindex`, `ranksim-adaptsearch`, the coarse path in this
//! crate), and the engine holds one executor per built structure in a
//! dense table. [`Engine::query_into`] resolves `Auto` through the
//! planner, runs the chosen executor, and feeds the measured runtime back
//! for online recalibration.
//!
//! All indexes share one corpus-wide [`ItemRemap`], and every query
//! threads a caller-owned [`QueryScratch`] through
//! [`Engine::query_items`] / [`Engine::query_into`] — the latter writes
//! into a reusable result buffer and performs **zero** heap allocations
//! once scratch and buffer are warmed up, planner included.
//! [`EngineBuilder::algorithms`] restricts construction to the index
//! structures the selected algorithms need and doubles as the planner's
//! candidate set when [`Algorithm::Auto`] is selected.

use std::sync::Arc;
use std::time::Instant;

use crate::coarse::{CoarseExecutor, CoarseIndex, CoarseIndexParts};
use crate::cost::calibrate::CalibratedCosts;
use crate::planner::{Planner, PlannerSaved};
use ranksim_adaptsearch::{
    AdaptCostParams, AdaptIndexParts, AdaptSearchExecutor, AdaptSearchIndex,
};
use ranksim_invindex::{
    AugmentedIndexParts, AugmentedInvertedIndex, BlockedIndexParts, BlockedInvertedIndex,
    BlockedPruneExecutor, FvDropExecutor, FvExecutor, ListMergeExecutor, PlainIndexParts,
    PlainInvertedIndex, PostingOrder,
};
use ranksim_metricspace::{knn_bktree, knn_linear, query_pairs_into, BkTree, BkTreeParts};
use ranksim_rankings::{
    footrule_pairs, raw_threshold, validate_items, ExecStats, ItemId, ItemRemap, Kernel,
    QueryExecutor, QueryScratch, QueryStats, Ranking, RankingError, RankingId, RankingStore,
    RemapParts, StoreParts,
};

/// Process-wide generation source: every engine build, compaction and
/// mutation draws a fresh stamp, so a [`QueryScratch`] moving between
/// engines (or across a mutation on one engine) always observes a
/// generation change and invalidates its residual buffers.
static GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn next_generation() -> u64 {
    GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
}

/// The query-processing techniques of the paper's evaluation, plus
/// cost-model-driven automatic selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Filter & validate over the plain inverted index (baseline).
    Fv,
    /// F&V with Lemma 2 list dropping.
    FvDrop,
    /// Merge of id-sorted augmented lists with on-the-fly aggregation
    /// (threshold-agnostic baseline).
    ListMerge,
    /// Blocked access with NRA-style pruning.
    BlockedPrune,
    /// Blocked access with pruning and list dropping.
    BlockedPruneDrop,
    /// The coarse hybrid index.
    Coarse,
    /// The coarse hybrid index with list dropping in the filter phase.
    CoarseDrop,
    /// The AdaptSearch competitor (adaptive prefix filtering).
    AdaptSearch,
    /// Per-query selection among the engine's candidate set by the
    /// calibrated cost model (see [`crate::planner::Planner`]).
    Auto,
}

impl Algorithm {
    /// Number of concrete (dispatchable) algorithms.
    pub const COUNT: usize = 8;

    /// All concrete algorithms, in the paper's presentation order
    /// (`Auto` is a selection policy, not a ninth technique).
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Fv,
        Algorithm::ListMerge,
        Algorithm::AdaptSearch,
        Algorithm::Coarse,
        Algorithm::CoarseDrop,
        Algorithm::BlockedPrune,
        Algorithm::BlockedPruneDrop,
        Algorithm::FvDrop,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Fv => "F&V",
            Algorithm::FvDrop => "F&V+Drop",
            Algorithm::ListMerge => "ListMerge",
            Algorithm::BlockedPrune => "Blocked+Prune",
            Algorithm::BlockedPruneDrop => "Blocked+Prune+Drop",
            Algorithm::Coarse => "Coarse",
            Algorithm::CoarseDrop => "Coarse+Drop",
            Algorithm::AdaptSearch => "AdaptSearch",
            Algorithm::Auto => "Auto",
        }
    }

    /// Stable dense index of a concrete algorithm (`None` for `Auto`);
    /// the coordinate of every per-algorithm table — executor slots,
    /// planner corrections, batch pick counters.
    pub fn dense_index(self) -> Option<usize> {
        match self {
            Algorithm::Fv => Some(0),
            Algorithm::FvDrop => Some(1),
            Algorithm::ListMerge => Some(2),
            Algorithm::BlockedPrune => Some(3),
            Algorithm::BlockedPruneDrop => Some(4),
            Algorithm::Coarse => Some(5),
            Algorithm::CoarseDrop => Some(6),
            Algorithm::AdaptSearch => Some(7),
            Algorithm::Auto => None,
        }
    }

    /// Inverse of [`Algorithm::dense_index`].
    pub fn from_dense_index(index: usize) -> Option<Algorithm> {
        match index {
            0 => Some(Algorithm::Fv),
            1 => Some(Algorithm::FvDrop),
            2 => Some(Algorithm::ListMerge),
            3 => Some(Algorithm::BlockedPrune),
            4 => Some(Algorithm::BlockedPruneDrop),
            5 => Some(Algorithm::Coarse),
            6 => Some(Algorithm::CoarseDrop),
            7 => Some(Algorithm::AdaptSearch),
            _ => None,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error of [`Algorithm::from_str`]: the input named no known algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    input: String,
}

impl std::fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown algorithm '{}'; expected one of: {}, Auto",
            self.input,
            Algorithm::ALL.map(|a| a.name()).join(", ")
        )
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl std::str::FromStr for Algorithm {
    type Err = ParseAlgorithmError;

    /// Parses the paper display names (round-tripping [`Algorithm`]'s
    /// `Display`) case-insensitively, ignoring the `&`/`+`/`-`/`_`/space
    /// separators: `"F&V+Drop"`, `"fv-drop"` and `"FVDROP"` all parse to
    /// [`Algorithm::FvDrop`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        let all = Algorithm::ALL.iter().copied().chain([Algorithm::Auto]);
        for a in all {
            let canon: String = a
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .map(|c| c.to_ascii_lowercase())
                .collect();
            if norm == canon {
                return Ok(a);
            }
        }
        Err(ParseAlgorithmError {
            input: s.to_string(),
        })
    }
}

/// What one [`Engine::query_into_traced`] call did: the executor that
/// ran (the planner's pick under `Auto`), its instrumented counters, and
/// the predicted/measured costs feeding the recalibration loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTrace {
    /// The concrete algorithm that executed.
    pub algorithm: Algorithm,
    /// Whether the planner chose it (`Auto`) or the caller named it.
    pub planned: bool,
    /// Counter deltas of exactly this execution.
    pub exec: ExecStats,
    /// The planner's predicted cost in calibrated ns (0 when not
    /// planned or the planner was degenerate).
    pub predicted_ns: f64,
    /// Measured executor wall time in ns (0 when not planned).
    pub actual_ns: f64,
}

/// Everything the engine needs to (re)build its index structures — the
/// builder's knobs, retained by the engine so [`Engine::compact`] can
/// reconstruct the exact same configuration over the compacted corpus.
#[derive(Clone)]
struct EngineConfig {
    coarse_theta_c: f64,
    coarse_theta_c_drop: Option<f64>,
    selected: Option<Vec<Algorithm>>,
    topk_tree: bool,
    calibrated: Option<CalibratedCosts>,
    /// Auto-compaction trigger: compact once base tombstones exceed this
    /// fraction of the base live size (`f64::INFINITY` disables).
    compact_tombstone_fraction: f64,
    /// Planner corpus-statistics refresh budget in mutations.
    planner_refresh_budget: usize,
    /// Position-compare kernel every distance-dominated executor runs
    /// (see [`Kernel`]; default [`Kernel::Simd`] — results are
    /// bit-identical across kernels, only counters and speed differ).
    kernel: Kernel,
    /// Build-time ordering of the CSR posting slices (see
    /// [`PostingOrder`]; default [`PostingOrder::Id`], the classic
    /// layout — `SuffixBound` enables threshold-window scans).
    posting_order: PostingOrder,
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    store: RankingStore,
    config: EngineConfig,
}

impl EngineBuilder {
    /// Starts from a corpus.
    pub fn new(store: RankingStore) -> Self {
        EngineBuilder {
            store,
            config: EngineConfig {
                coarse_theta_c: 0.5,
                coarse_theta_c_drop: None,
                selected: None,
                topk_tree: false,
                calibrated: None,
                compact_tombstone_fraction: 0.5,
                planner_refresh_budget: 1024,
                kernel: Kernel::default(),
                posting_order: PostingOrder::default(),
            },
        }
    }

    /// Selects the position-compare kernel for every distance-dominated
    /// executor (default [`Kernel::Simd`]). Result sets are bit-identical
    /// across kernels; only speed and the pruning counters differ.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Selects the build-time ordering of the CSR posting slices (default
    /// [`PostingOrder::Id`], the classic layout). `SuffixBound` sorts
    /// each per-item slice by `(rank, id)` so scans window to the
    /// `|rank − q_rank| ≤ θ` band; result sets are bit-identical, only
    /// the scan counters differ.
    pub fn posting_order(mut self, order: PostingOrder) -> Self {
        self.config.posting_order = order;
        self
    }

    /// Tombstone fraction of the base corpus at which a removal triggers
    /// an automatic [`Engine::compact`] (default 0.5 — compact once half
    /// the base is dead; `f64::INFINITY` disables auto-compaction and
    /// leaves compaction fully to the caller).
    pub fn compaction_threshold(mut self, tombstone_fraction: f64) -> Self {
        self.config.compact_tombstone_fraction = tombstone_fraction;
        self
    }

    /// Mutation budget after which the planner's sampled corpus
    /// statistics (distance CDF, Zipf skew, coarse cost tables) are
    /// refreshed at mutation time (default 1024; posting-length counts
    /// track every mutation exactly regardless).
    pub fn planner_refresh_budget(mut self, mutations: usize) -> Self {
        self.config.planner_refresh_budget = mutations.max(1);
        self
    }

    /// Additionally builds a corpus-wide BK-tree accelerating
    /// [`Engine::query_topk`]. Off by default: threshold queries never
    /// touch it, and [`Engine::query_topk`] falls back to an exact linear
    /// scan when the tree is absent.
    pub fn topk_tree(mut self, build_tree: bool) -> Self {
        self.config.topk_tree = build_tree;
        self
    }

    /// Normalized partitioning threshold `θ_C` for the `Coarse` index
    /// (paper default for the comparison figures: 0.5).
    pub fn coarse_threshold(mut self, theta_c: f64) -> Self {
        self.config.coarse_theta_c = theta_c;
        self
    }

    /// Separate `θ_C` for `Coarse+Drop` (the paper measured 0.06 as
    /// optimal there). Defaults to the `Coarse` threshold when unset.
    pub fn coarse_drop_threshold(mut self, theta_c: f64) -> Self {
        self.config.coarse_theta_c_drop = Some(theta_c);
        self
    }

    /// Restricts construction to the index structures the given
    /// algorithms need (single-algorithm benches skip the other builds
    /// entirely); [`EngineBuilder::build`] without this call keeps the
    /// build-everything default, which also arms the planner with all
    /// eight techniques.
    ///
    /// When the list contains [`Algorithm::Auto`], the *concrete*
    /// algorithms in the list become the planner's candidate set (all
    /// eight when `Auto` stands alone) and the planner is built alongside
    /// the indexes; without `Auto` in a restricted list no planner is
    /// built and `Auto` queries panic.
    pub fn algorithms(mut self, algorithms: &[Algorithm]) -> Self {
        self.config.selected = Some(algorithms.to_vec());
        self
    }

    /// Overrides the calibrated machine primitives the planner prices
    /// executors with (defaults to a cached micro-measurement of this
    /// machine; fixed [`CalibratedCosts::nominal`] values keep tests
    /// deterministic).
    pub fn calibrated_costs(mut self, costs: CalibratedCosts) -> Self {
        self.config.calibrated = Some(costs);
        self
    }

    /// Builds the selected index structures (all of them by default),
    /// their executors, and — for the default build or when
    /// [`Algorithm::Auto`] was selected — the cost-model planner.
    pub fn build(self) -> Engine {
        let EngineBuilder { store, config } = self;
        let remap = Arc::new(ItemRemap::build(&store));
        let parts = build_parts(&store, &config, remap.clone());
        let delta_pos = vec![0u32; store.len()];
        let base_live_at_build = store.live_len();
        Engine {
            store,
            remap,
            plain: parts.plain,
            augmented: parts.augmented,
            blocked: parts.blocked,
            adapt: parts.adapt,
            coarse: parts.coarse,
            coarse_drop: parts.coarse_drop,
            tree: parts.tree,
            executors: parts.executors,
            planner: parts.planner,
            config,
            generation: next_generation(),
            delta: Vec::new(),
            delta_pos,
            base_dead: 0,
            base_live_at_build,
        }
    }
}

/// The engine's index structures, executors and planner, built over the
/// store's **live** rankings — shared between [`EngineBuilder::build`]
/// and [`Engine::compact`].
struct EngineParts {
    plain: Option<Arc<PlainInvertedIndex>>,
    augmented: Option<Arc<AugmentedInvertedIndex>>,
    blocked: Option<Arc<BlockedInvertedIndex>>,
    adapt: Option<Arc<AdaptSearchIndex>>,
    coarse: Option<Arc<CoarseIndex>>,
    coarse_drop: Option<Arc<CoarseIndex>>,
    tree: Option<BkTree>,
    executors: Vec<Option<Box<dyn QueryExecutor>>>,
    planner: Option<Planner>,
}

fn build_parts(store: &RankingStore, config: &EngineConfig, remap: Arc<ItemRemap>) -> EngineParts {
    let k = store.k();
    // Resolve the candidate set and whether the planner is wanted.
    let (candidates, want_auto) = match &config.selected {
        None => (Algorithm::ALL.to_vec(), true),
        Some(sel) => {
            let auto = sel.contains(&Algorithm::Auto);
            let concrete: Vec<Algorithm> = Algorithm::ALL
                .iter()
                .copied()
                .filter(|a| sel.contains(a))
                .collect();
            let concrete = if auto && concrete.is_empty() {
                Algorithm::ALL.to_vec()
            } else {
                concrete
            };
            (concrete, auto)
        }
    };
    let want = |a: Algorithm| candidates.contains(&a);
    let order = config.posting_order;
    let plain = (want(Algorithm::Fv) || want(Algorithm::FvDrop)).then(|| {
        Arc::new(PlainInvertedIndex::build_with_remap_ordered(
            store,
            remap.clone(),
            store.live_ids(),
            order,
        ))
    });
    let augmented = want(Algorithm::ListMerge).then(|| {
        Arc::new(AugmentedInvertedIndex::build_with_remap_ordered(
            store,
            remap.clone(),
            store.live_ids(),
            order,
        ))
    });
    // The blocked layout is already rank-major by construction; the
    // posting order applies to the flat CSR layouts only.
    let blocked = (want(Algorithm::BlockedPrune) || want(Algorithm::BlockedPruneDrop)).then(|| {
        Arc::new(BlockedInvertedIndex::build_with_remap(
            store,
            remap.clone(),
            store.live_ids(),
        ))
    });
    let adapt = want(Algorithm::AdaptSearch).then(|| {
        Arc::new(AdaptSearchIndex::build_with_remap_ordered(
            store,
            remap.clone(),
            AdaptCostParams::default(),
            order,
        ))
    });
    let coarse_theta = raw_threshold(config.coarse_theta_c, k);
    let drop_theta = config
        .coarse_theta_c_drop
        .map(|t| raw_threshold(t, k))
        .unwrap_or(coarse_theta);
    // `CoarseDrop` falls back to the shared coarse index when its θ_C
    // matches; a separately tuned index is built otherwise.
    let need_shared_coarse =
        want(Algorithm::Coarse) || (want(Algorithm::CoarseDrop) && drop_theta == coarse_theta);
    let coarse = need_shared_coarse.then(|| {
        Arc::new(CoarseIndex::build_with_remap(
            store,
            remap.clone(),
            coarse_theta,
        ))
    });
    let coarse_drop = (want(Algorithm::CoarseDrop) && drop_theta != coarse_theta).then(|| {
        Arc::new(CoarseIndex::build_with_remap(
            store,
            remap.clone(),
            drop_theta,
        ))
    });
    let tree = config.topk_tree.then(|| BkTree::build(store));
    let executors = build_executor_table(
        &plain,
        &augmented,
        &blocked,
        &adapt,
        &coarse,
        &coarse_drop,
        config.kernel,
    );

    let planner = want_auto.then(|| {
        let costs = config
            .calibrated
            .unwrap_or_else(|| CalibratedCosts::measured_cached(k));
        Planner::build(
            store,
            remap.clone(),
            candidates.clone(),
            costs,
            coarse_theta,
            drop_theta,
            config.posting_order,
        )
    });

    EngineParts {
        plain,
        augmented,
        blocked,
        adapt,
        coarse,
        coarse_drop,
        tree,
        executors,
        planner,
    }
}

/// Assembles the executor table over a set of built index structures:
/// one executor per structure, indexed by [`Algorithm::dense_index`].
/// Selecting `FvDrop` also makes the plain index (hence `Fv`) available,
/// matching the pre-executor dispatch semantics exactly. Shared between
/// [`build_parts`] and [`Engine::fork`] (executors are not `Clone`, but
/// they are cheap wrappers over the `Arc`-shared indexes).
fn build_executor_table(
    plain: &Option<Arc<PlainInvertedIndex>>,
    augmented: &Option<Arc<AugmentedInvertedIndex>>,
    blocked: &Option<Arc<BlockedInvertedIndex>>,
    adapt: &Option<Arc<AdaptSearchIndex>>,
    coarse: &Option<Arc<CoarseIndex>>,
    coarse_drop: &Option<Arc<CoarseIndex>>,
    kernel: Kernel,
) -> Vec<Option<Box<dyn QueryExecutor>>> {
    let mut executors: Vec<Option<Box<dyn QueryExecutor>>> =
        (0..Algorithm::COUNT).map(|_| None).collect();
    let slot = |a: Algorithm| a.dense_index().expect("concrete algorithm");
    if let Some(p) = plain {
        executors[slot(Algorithm::Fv)] = Some(Box::new(FvExecutor::with_kernel(p.clone(), kernel)));
        executors[slot(Algorithm::FvDrop)] =
            Some(Box::new(FvDropExecutor::with_kernel(p.clone(), kernel)));
    }
    if let Some(a) = augmented {
        executors[slot(Algorithm::ListMerge)] = Some(Box::new(ListMergeExecutor::new(a.clone())));
    }
    if let Some(b) = blocked {
        executors[slot(Algorithm::BlockedPrune)] = Some(Box::new(
            BlockedPruneExecutor::with_kernel(b.clone(), false, kernel),
        ));
        executors[slot(Algorithm::BlockedPruneDrop)] = Some(Box::new(
            BlockedPruneExecutor::with_kernel(b.clone(), true, kernel),
        ));
    }
    if let Some(a) = adapt {
        executors[slot(Algorithm::AdaptSearch)] = Some(Box::new(AdaptSearchExecutor::with_kernel(
            a.clone(),
            kernel,
        )));
    }
    if let Some(c) = coarse {
        executors[slot(Algorithm::Coarse)] = Some(Box::new(CoarseExecutor::with_kernel(
            c.clone(),
            false,
            kernel,
        )));
    }
    if let Some(c) = coarse_drop.as_ref().or(coarse.as_ref()) {
        executors[slot(Algorithm::CoarseDrop)] = Some(Box::new(CoarseExecutor::with_kernel(
            c.clone(),
            true,
            kernel,
        )));
    }
    executors
}

/// Flat persistence form of an [`EngineConfig`]: the build knobs as
/// plain scalars (`compact_tombstone_fraction` may be `f64::INFINITY`,
/// so the codec carries its raw bits; algorithms travel as dense slots
/// with `u32::MAX` standing in for `Auto`).
#[derive(Debug, Clone)]
pub(crate) struct EngineConfigParts {
    pub coarse_theta_c: f64,
    pub coarse_theta_c_drop: Option<f64>,
    /// Dense slots ([`Algorithm::dense_index`]); `u32::MAX` = `Auto`.
    pub selected: Option<Vec<u32>>,
    pub topk_tree: bool,
    pub calibrated: Option<(f64, f64)>,
    pub compact_tombstone_fraction: f64,
    pub planner_refresh_budget: u64,
    /// [`Kernel::to_tag`] of the configured distance kernel.
    pub kernel: u32,
    /// [`PostingOrder::to_tag`] of the configured posting order.
    pub posting_order: u32,
}

/// Sentinel slot encoding [`Algorithm::Auto`] in a persisted candidate
/// list (`Auto` has no dense index).
const AUTO_SLOT: u32 = u32::MAX;

/// Everything `crate::persist` needs to write an engine snapshot and
/// rebuild the engine from one: the corpus and remap, the build config,
/// every built index structure in its flat parts form, the planner's
/// learned state, and the mutation overlay. Executors and the generation
/// stamp are deliberately absent — both are derived at assembly time.
#[derive(Debug, Clone)]
pub(crate) struct EnginePersistParts {
    pub store: StoreParts,
    pub remap: RemapParts,
    pub config: EngineConfigParts,
    pub plain: Option<PlainIndexParts>,
    pub augmented: Option<AugmentedIndexParts>,
    pub blocked: Option<BlockedIndexParts>,
    pub adapt: Option<AdaptIndexParts>,
    pub coarse: Option<CoarseIndexParts>,
    pub coarse_drop: Option<CoarseIndexParts>,
    pub tree: Option<BkTreeParts>,
    pub planner: Option<PlannerSaved>,
    pub delta: Vec<u32>,
    pub delta_pos: Vec<u32>,
    pub base_dead: u64,
    pub base_live_at_build: u64,
}

/// The all-algorithms query engine.
pub struct Engine {
    store: RankingStore,
    remap: Arc<ItemRemap>,
    plain: Option<Arc<PlainInvertedIndex>>,
    augmented: Option<Arc<AugmentedInvertedIndex>>,
    blocked: Option<Arc<BlockedInvertedIndex>>,
    adapt: Option<Arc<AdaptSearchIndex>>,
    coarse: Option<Arc<CoarseIndex>>,
    /// Separately tuned coarse index for `CoarseDrop`, if configured.
    coarse_drop: Option<Arc<CoarseIndex>>,
    /// Corpus-wide BK-tree for top-k queries (built on request).
    tree: Option<BkTree>,
    /// One executor per built index structure, indexed by
    /// [`Algorithm::dense_index`].
    executors: Vec<Option<Box<dyn QueryExecutor>>>,
    /// The cost-model planner behind [`Algorithm::Auto`] (present on
    /// default builds and whenever `Auto` was selected).
    planner: Option<Planner>,
    /// Build configuration, retained so [`Engine::compact`] rebuilds the
    /// same structures.
    config: EngineConfig,
    /// Corpus generation: a process-unique stamp drawn afresh on every
    /// build, mutation and compaction; queries push it into the scratch
    /// (see [`QueryScratch::ensure_generation`]).
    generation: u64,
    /// The delta overlay: live ranking ids inserted since the last
    /// (re)build, not yet part of any base index structure. Every
    /// threshold query validates them linearly and exactly against the
    /// store; compaction folds them into fresh arenas.
    delta: Vec<RankingId>,
    /// `delta_pos[id] = position in delta + 1` (0 = not in the delta),
    /// sized by the store's id space — O(1) delta removal.
    delta_pos: Vec<u32>,
    /// Rankings of the *base* (indexed at the last build) tombstoned
    /// since — the lazy-tombstone count the compaction trigger watches.
    base_dead: usize,
    /// Live corpus size at the last (re)build.
    base_live_at_build: usize,
}

fn require<T>(index: &Option<Arc<T>>, algorithm: Algorithm) -> &T {
    index.as_deref().unwrap_or_else(|| {
        panic!(
            "index for {algorithm} was not built; include it in EngineBuilder::algorithms \
             or build the engine with the default build-everything configuration"
        )
    })
}

impl Engine {
    /// The corpus.
    pub fn store(&self) -> &RankingStore {
        &self.store
    }

    /// The corpus-wide item remap shared by all index structures.
    pub fn remap(&self) -> &Arc<ItemRemap> {
        &self.remap
    }

    /// The coarse index (for `Coarse`). Panics if it was not built.
    pub fn coarse_index(&self) -> &CoarseIndex {
        require(&self.coarse, Algorithm::Coarse)
    }

    /// The cost-model planner behind [`Algorithm::Auto`], if built.
    pub fn planner(&self) -> Option<&Planner> {
        self.planner.as_ref()
    }

    /// The configured position-compare kernel.
    pub fn kernel(&self) -> Kernel {
        self.config.kernel
    }

    /// The configured CSR posting-slice ordering.
    pub fn posting_order(&self) -> PostingOrder {
        self.config.posting_order
    }

    /// The executor registered for a concrete algorithm. Panics with the
    /// same diagnostic the old enum dispatch produced when the backing
    /// index was not built.
    fn executor(&self, algorithm: Algorithm) -> &dyn QueryExecutor {
        let slot = algorithm
            .dense_index()
            .expect("Auto is resolved by the planner before dispatch");
        self.executors[slot].as_deref().unwrap_or_else(|| {
            panic!(
                "index for {algorithm} was not built; include it in EngineBuilder::algorithms \
                 or build the engine with the default build-everything configuration"
            )
        })
    }

    /// A fresh scratch for this engine's queries; reuse it across queries
    /// to keep the hot path allocation-free.
    pub fn scratch(&self) -> QueryScratch {
        QueryScratch::new()
    }

    /// An independent copy of this engine for snapshot publication: the
    /// store, overlay and planner state are cloned by value, the
    /// immutable index structures are shared by `Arc`, and the executor
    /// table is rebuilt over those shared structures. The fork draws a
    /// fresh generation stamp, so a [`QueryScratch`] moving between the
    /// original and the fork always re-arms its epoch structures.
    pub(crate) fn fork(&self) -> Engine {
        Engine {
            store: self.store.clone(),
            remap: self.remap.clone(),
            plain: self.plain.clone(),
            augmented: self.augmented.clone(),
            blocked: self.blocked.clone(),
            adapt: self.adapt.clone(),
            coarse: self.coarse.clone(),
            coarse_drop: self.coarse_drop.clone(),
            tree: self.tree.clone(),
            executors: build_executor_table(
                &self.plain,
                &self.augmented,
                &self.blocked,
                &self.adapt,
                &self.coarse,
                &self.coarse_drop,
                self.config.kernel,
            ),
            planner: self.planner.as_ref().map(Planner::fork),
            config: self.config.clone(),
            generation: next_generation(),
            delta: self.delta.clone(),
            delta_pos: self.delta_pos.clone(),
            base_dead: self.base_dead,
            base_live_at_build: self.base_live_at_build,
        }
    }

    /// Decomposes the engine into its flat persistence form (see
    /// [`EnginePersistParts`]); the inverse of
    /// [`Engine::from_persist_parts`].
    pub(crate) fn export_persist_parts(&self) -> EnginePersistParts {
        let encode_alg = |a: &Algorithm| a.dense_index().map_or(AUTO_SLOT, |s| s as u32);
        EnginePersistParts {
            store: self.store.export_parts(),
            remap: self.remap.export_parts(),
            config: EngineConfigParts {
                coarse_theta_c: self.config.coarse_theta_c,
                coarse_theta_c_drop: self.config.coarse_theta_c_drop,
                selected: self
                    .config
                    .selected
                    .as_ref()
                    .map(|sel| sel.iter().map(encode_alg).collect()),
                topk_tree: self.config.topk_tree,
                calibrated: self
                    .config
                    .calibrated
                    .map(|c| (c.footrule_ns, c.merge_posting_ns)),
                compact_tombstone_fraction: self.config.compact_tombstone_fraction,
                planner_refresh_budget: self.config.planner_refresh_budget as u64,
                kernel: self.config.kernel.to_tag(),
                posting_order: self.config.posting_order.to_tag(),
            },
            plain: self.plain.as_ref().map(|i| i.export_parts()),
            augmented: self.augmented.as_ref().map(|i| i.export_parts()),
            blocked: self.blocked.as_ref().map(|i| i.export_parts()),
            adapt: self.adapt.as_ref().map(|i| i.export_parts()),
            coarse: self.coarse.as_ref().map(|i| i.export_parts()),
            coarse_drop: self.coarse_drop.as_ref().map(|i| i.export_parts()),
            tree: self.tree.as_ref().map(|t| t.export_parts()),
            planner: self.planner.as_ref().map(|p| p.to_saved()),
            delta: self.delta.iter().map(|id| id.0).collect(),
            delta_pos: self.delta_pos.clone(),
            base_dead: self.base_dead as u64,
            base_live_at_build: self.base_live_at_build as u64,
        }
    }

    /// Reassembles an engine from its flat persistence form: rebuilds
    /// every structure through its validating `from_parts`, re-links the
    /// shared remap, restores the planner warm, rebuilds the executor
    /// table over the reloaded structures and draws a **fresh**
    /// generation stamp (scratches from before the restart must re-arm).
    /// Errors name the inconsistency; they never panic on hostile input.
    pub(crate) fn from_persist_parts(parts: EnginePersistParts) -> Result<Engine, String> {
        let store = RankingStore::from_parts(parts.store)?;
        let remap = Arc::new(ItemRemap::from_parts(parts.remap)?);
        let k = store.k() as u32;
        let check_k = |parts_k: u32, what: &str| -> Result<(), String> {
            if parts_k != k {
                return Err(format!("{what} k {parts_k} disagrees with the store k {k}"));
            }
            Ok(())
        };
        if let Some(p) = &parts.plain {
            check_k(p.k, "plain index")?;
        }
        if let Some(a) = &parts.augmented {
            check_k(a.k, "augmented index")?;
        }
        if let Some(b) = &parts.blocked {
            check_k(b.k, "blocked index")?;
        }
        if let Some(a) = &parts.adapt {
            check_k(a.k, "adaptsearch index")?;
        }
        let plain = parts
            .plain
            .map(|p| PlainInvertedIndex::from_parts(p, remap.clone()))
            .transpose()?
            .map(Arc::new);
        let augmented = parts
            .augmented
            .map(|p| AugmentedInvertedIndex::from_parts(p, remap.clone()))
            .transpose()?
            .map(Arc::new);
        let blocked = parts
            .blocked
            .map(|p| BlockedInvertedIndex::from_parts(p, remap.clone()))
            .transpose()?
            .map(Arc::new);
        let adapt = parts
            .adapt
            .map(|p| AdaptSearchIndex::from_parts(p, remap.clone()))
            .transpose()?
            .map(Arc::new);
        let coarse = parts
            .coarse
            .map(|p| CoarseIndex::from_parts(p, remap.clone()))
            .transpose()?
            .map(Arc::new);
        let coarse_drop = parts
            .coarse_drop
            .map(|p| CoarseIndex::from_parts(p, remap.clone()))
            .transpose()?
            .map(Arc::new);
        let tree = parts.tree.map(BkTree::from_parts).transpose()?;
        if let Some(s) = &parts.planner {
            check_k(s.k, "planner")?;
        }
        let posting_order = PostingOrder::from_tag(parts.config.posting_order)?;
        let planner = parts
            .planner
            .map(|s| Planner::from_saved(s, remap.clone(), posting_order))
            .transpose()?;
        let decode_alg = |slot: u32| -> Result<Algorithm, String> {
            if slot == AUTO_SLOT {
                return Ok(Algorithm::Auto);
            }
            Algorithm::from_dense_index(slot as usize)
                .ok_or_else(|| format!("config algorithm slot {slot} names no algorithm"))
        };
        let selected = parts
            .config
            .selected
            .map(|sel| sel.iter().map(|&s| decode_alg(s)).collect::<Result<_, _>>())
            .transpose()?;
        let config = EngineConfig {
            coarse_theta_c: parts.config.coarse_theta_c,
            coarse_theta_c_drop: parts.config.coarse_theta_c_drop,
            selected,
            topk_tree: parts.config.topk_tree,
            calibrated: parts.config.calibrated.map(|(f, m)| CalibratedCosts {
                footrule_ns: f,
                merge_posting_ns: m,
            }),
            compact_tombstone_fraction: parts.config.compact_tombstone_fraction,
            planner_refresh_budget: (parts.config.planner_refresh_budget as usize).max(1),
            kernel: Kernel::from_tag(parts.config.kernel)?,
            posting_order,
        };
        // The mutation overlay must describe this store exactly: the
        // position table spans the id space, every delta entry is a live
        // ranking, and table and list point at each other consistently.
        if parts.delta_pos.len() != store.len() {
            return Err(format!(
                "delta position table length {} != store id space {}",
                parts.delta_pos.len(),
                store.len()
            ));
        }
        let delta: Vec<RankingId> = parts.delta.iter().map(|&id| RankingId(id)).collect();
        for (pos, &id) in delta.iter().enumerate() {
            if id.index() >= store.len() {
                return Err(format!("delta entry {id:?} is outside the store id space"));
            }
            if !store.is_live(id) {
                return Err(format!("delta entry {id:?} is not live in the store"));
            }
            if parts.delta_pos[id.index()] != (pos + 1) as u32 {
                return Err(format!(
                    "delta position table disagrees with delta entry {pos}"
                ));
            }
        }
        let listed = parts.delta_pos.iter().filter(|&&p| p > 0).count();
        if listed != delta.len() {
            return Err(format!(
                "delta position table lists {listed} rankings but the delta holds {}",
                delta.len()
            ));
        }
        let executors = build_executor_table(
            &plain,
            &augmented,
            &blocked,
            &adapt,
            &coarse,
            &coarse_drop,
            config.kernel,
        );
        Ok(Engine {
            store,
            remap,
            plain,
            augmented,
            blocked,
            adapt,
            coarse,
            coarse_drop,
            tree,
            executors,
            planner,
            config,
            generation: next_generation(),
            delta,
            delta_pos: parts.delta_pos,
            base_dead: parts.base_dead as usize,
            base_live_at_build: parts.base_live_at_build as usize,
        })
    }

    // --- live-corpus mutation API -----------------------------------

    /// Number of live rankings (the corpus queries run against).
    pub fn live_len(&self) -> usize {
        self.store.live_len()
    }

    /// Whether ranking `id` is live.
    pub fn is_live(&self, id: RankingId) -> bool {
        self.store.is_live(id)
    }

    /// Rankings in the delta overlay (inserted since the last build or
    /// compaction, served by exact linear validation).
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Base rankings tombstoned since the last build or compaction.
    pub fn base_tombstones(&self) -> usize {
        self.base_dead
    }

    /// The corpus generation stamp (changes on every mutation and
    /// compaction; see [`QueryScratch::ensure_generation`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Pre-reserves every mutation-side arena (store rows, delta overlay,
    /// id tables) for `n` further insertions, pinning the allocation
    /// points of [`Engine::insert_ranking`] / [`Engine::remove_ranking`]
    /// to arena growth only: after this call, the next `n` mutations
    /// perform zero heap allocations on an engine without a top-k tree
    /// and planner (tree node arenas and the planner's statistic refresh
    /// have their own growth points).
    pub fn reserve_mutations(&mut self, n: usize) {
        self.store.reserve_rankings(n);
        self.delta.reserve(n);
        self.delta_pos.reserve(n);
    }

    /// Inserts a ranking into the live corpus, returning its (fresh,
    /// monotonically increasing) id. The ranking lands in the delta
    /// overlay — every algorithm sees it immediately via exact linear
    /// validation, the top-k tree absorbs it natively — and is folded
    /// into the CSR arenas by the next [`Engine::compact`]. Items must be
    /// `k` pairwise-distinct ids.
    pub fn insert_ranking(&mut self, items: &[ItemId]) -> RankingId {
        Self::validate_items(items, self.store.k());
        let id = self.store.push_items_unchecked(items);
        self.register_insert(id);
        id
    }

    /// Re-inserts a ranking **at a released id** (one removed before the
    /// last compaction, see [`RankingStore::release_removed_slots`]) —
    /// the id-stable re-insertion path. Panics when `id` is not a
    /// released slot: live or still-quarantined content is frozen for
    /// the index structures and must never be overwritten.
    pub fn insert_ranking_at(&mut self, id: RankingId, items: &[ItemId]) {
        Self::validate_items(items, self.store.k());
        self.store.insert_items_at_unchecked(id, items);
        self.register_insert(id);
    }

    /// Tombstones ranking `id`: it disappears from every query result
    /// immediately (emission-time filtering; postings and tree nodes stay
    /// until compaction) and its slot is quarantined for reuse after the
    /// next compaction. Triggers an automatic [`Engine::compact`] once
    /// base tombstones exceed the configured fraction. Returns `false`
    /// when `id` was not live.
    pub fn remove_ranking(&mut self, id: RankingId) -> bool {
        if !self.store.remove(id) {
            return false;
        }
        if let Some(planner) = &mut self.planner {
            planner.note_remove(self.store.items(id));
        }
        let dp = self.delta_pos[id.index()];
        if dp > 0 {
            // Delta entries leave the overlay outright — nothing else
            // references them... except an absorbed top-k tree node,
            // which the store's quarantine keeps sound either way.
            let pos = (dp - 1) as usize;
            self.delta.swap_remove(pos);
            self.delta_pos[id.index()] = 0;
            if pos < self.delta.len() {
                self.delta_pos[self.delta[pos].index()] = (pos + 1) as u32;
            }
        } else {
            self.base_dead += 1;
        }
        self.after_mutation();
        let threshold = self.config.compact_tombstone_fraction;
        if threshold.is_finite()
            && self.base_dead as f64 > threshold * self.base_live_at_build.max(1) as f64
        {
            self.compact();
        }
        true
    }

    /// Rebuilds every index arena in place over the live corpus: releases
    /// quarantined slots, reclaims trailing storage, grows the shared
    /// [`ItemRemap`] with the delta overlay's items (surviving items keep
    /// their dense ids), reconstructs the selected index structures, the
    /// executor table and the planner with the retained build
    /// configuration, and clears the overlay/tombstone state. Ranking ids
    /// are stable across compaction; released ids become available to
    /// [`Engine::insert_ranking_at`].
    /// (The id space is deliberately **not** truncated: a fresh insert
    /// must never silently collide with a previously assigned id, so
    /// `insert_ranking` stays monotone and only `insert_ranking_at`
    /// can repopulate released slots.)
    pub fn compact(&mut self) {
        self.store.release_removed_slots();
        let remap = Arc::new(
            self.remap.grown(
                self.delta
                    .iter()
                    .flat_map(|&id| self.store.items(id).iter().copied()),
            ),
        );
        let parts = build_parts(&self.store, &self.config, remap.clone());
        self.remap = remap;
        self.plain = parts.plain;
        self.augmented = parts.augmented;
        self.blocked = parts.blocked;
        self.adapt = parts.adapt;
        self.coarse = parts.coarse;
        self.coarse_drop = parts.coarse_drop;
        self.tree = parts.tree;
        self.executors = parts.executors;
        self.planner = parts.planner;
        self.delta.clear();
        self.delta_pos.clear();
        self.delta_pos.resize(self.store.len(), 0);
        self.base_dead = 0;
        self.base_live_at_build = self.store.live_len();
        self.generation = next_generation();
    }

    fn validate_items(items: &[ItemId], k: usize) {
        // Shared with the serving front-end's non-panicking validation;
        // the engine keeps its historical assert semantics (and messages)
        // for direct API misuse.
        match validate_items(items, k) {
            Ok(()) => {}
            Err(RankingError::WrongLength { .. }) => {
                panic!("ranking size must match the corpus k")
            }
            Err(RankingError::DuplicateItem(a)) => {
                panic!("duplicate item {a} in inserted ranking")
            }
            Err(e) => panic!("{e}"),
        }
    }

    fn register_insert(&mut self, id: RankingId) {
        if self.delta_pos.len() < self.store.len() {
            self.delta_pos.resize(self.store.len(), 0);
        }
        self.delta.push(id);
        self.delta_pos[id.index()] = self.delta.len() as u32;
        if let Some(tree) = &mut self.tree {
            tree.insert(&self.store, id);
        }
        if let Some(planner) = &mut self.planner {
            planner.note_insert(self.store.items(id));
        }
        self.after_mutation();
    }

    fn after_mutation(&mut self) {
        self.generation = next_generation();
        if let Some(planner) = &mut self.planner {
            if planner.pending_mutations() >= self.config.planner_refresh_budget {
                planner.refresh_corpus_stats(&self.store);
            }
        }
    }

    /// Applies the live-corpus overlay to an executor's output: drops
    /// tombstoned base rankings (their postings are filtered lazily at
    /// emission) and validates every delta ranking exactly against the
    /// query. No-ops — and costs nothing — on a pristine engine.
    fn apply_mutation_overlay(
        &self,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        if self.base_dead > 0 {
            let before = out.len();
            out.retain(|&id| self.store.is_live(id));
            stats.results = stats.results.saturating_sub((before - out.len()) as u64);
        }
        if !self.delta.is_empty() {
            query_pairs_into(query, &mut scratch.qp);
            let k = self.store.k();
            let start = out.len();
            for &id in &self.delta {
                stats.count_distance();
                if footrule_pairs(&scratch.qp, self.store.sorted_pairs(id), k) <= theta_raw {
                    out.push(id);
                }
            }
            stats.results += (out.len() - start) as u64;
        }
    }

    /// Runs `algorithm` for a query ranking at normalized threshold
    /// `theta ∈ [0, 1]` (convenience wrapper allocating its own scratch).
    pub fn query(
        &self,
        algorithm: Algorithm,
        query: &Ranking,
        theta: f64,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut scratch = self.scratch();
        self.query_items(
            algorithm,
            query.items(),
            raw_threshold(theta, self.store.k()),
            &mut scratch,
            stats,
        )
    }

    /// Runs `algorithm` for raw query items at a raw threshold, reusing
    /// the caller's scratch.
    pub fn query_items(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut out = Vec::new();
        self.query_into(algorithm, query, theta_raw, scratch, stats, &mut out);
        out
    }

    /// Runs `algorithm` into a caller-owned result buffer (cleared
    /// first). With a warmed-up scratch and buffer, steady-state calls
    /// perform zero heap allocations — [`Algorithm::Auto`] included.
    pub fn query_into(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let _ = self.query_into_traced(algorithm, query, theta_raw, scratch, stats, out);
    }

    /// [`Engine::query_into`] returning the [`QueryTrace`]: which
    /// executor ran (the planner's pick under [`Algorithm::Auto`]), its
    /// instrumented [`ExecStats`], and the predicted/measured costs. The
    /// batch drivers accumulate these into per-worker reports.
    pub fn query_into_traced(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> QueryTrace {
        assert_eq!(
            query.len(),
            self.store.k(),
            "query size must match the corpus ranking size"
        );
        out.clear();
        scratch.ensure_generation(self.generation);
        let trace = if algorithm == Algorithm::Auto {
            let planner = self.planner.as_ref().unwrap_or_else(|| {
                panic!(
                    "planner for Auto was not built; include Algorithm::Auto in \
                     EngineBuilder::algorithms or build the engine with the default \
                     build-everything configuration"
                )
            });
            let decision = planner.plan(query, theta_raw, scratch);
            let start = Instant::now();
            let exec = self.executor(decision.algorithm).execute(
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            );
            let actual_ns = start.elapsed().as_nanos() as f64;
            planner.record_exec(&decision, actual_ns, &exec);
            QueryTrace {
                algorithm: decision.algorithm,
                planned: true,
                exec,
                predicted_ns: decision.predicted_ns,
                actual_ns,
            }
        } else {
            let exec = self.executor(algorithm).execute(
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            );
            QueryTrace {
                algorithm,
                planned: false,
                exec,
                predicted_ns: 0.0,
                actual_ns: 0.0,
            }
        };
        self.apply_mutation_overlay(query, theta_raw, scratch, stats, out);
        trace
    }

    /// Cost-model-selected query ([`Algorithm::Auto`] shorthand): runs
    /// the predicted-cheapest candidate executor and returns which
    /// concrete algorithm the planner picked.
    pub fn query_auto(
        &self,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> Algorithm {
        self.query_into_traced(Algorithm::Auto, query, theta_raw, scratch, stats, out)
            .algorithm
    }

    /// The `neighbours` corpus rankings nearest to `query`, as ascending
    /// `(distance, id)` pairs. Exact and fully deterministic: the result
    /// is the lexicographically smallest set of `(distance, id)` pairs,
    /// so ties at the last distance resolve to the smallest ids — the
    /// invariant [`crate::shard::ShardedEngine`] relies on to merge
    /// per-shard answers bit-identically. Uses the BK-tree when
    /// [`EngineBuilder::topk_tree`] built one, otherwise an exact linear
    /// scan.
    pub fn query_topk(
        &self,
        query: &[ItemId],
        neighbours: usize,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<(u32, RankingId)> {
        assert_eq!(
            query.len(),
            self.store.k(),
            "query size must match the corpus ranking size"
        );
        if self.store.live_len() == 0 || neighbours == 0 {
            return Vec::new();
        }
        scratch.ensure_generation(self.generation);
        query_pairs_into(query, &mut scratch.qp);
        // Both paths track the live corpus natively: the BK-tree absorbs
        // every insert (`register_insert`) and skips tombstoned nodes at
        // offer time; the linear scan enumerates live ids directly.
        match &self.tree {
            Some(tree) => knn_bktree(tree, &self.store, &scratch.qp, neighbours, stats),
            None => knn_linear(&self.store, &scratch.qp, neighbours, stats),
        }
    }

    /// Heap footprint of the engine: the corpus store plus every built
    /// index structure (and the planner's tables). Per-structure
    /// footprints are exact and each includes the (shared) remap it
    /// holds, matching Table 6's build-each-structure-alone accounting.
    pub fn heap_bytes(&self) -> usize {
        self.store.heap_bytes()
            + self.plain.as_ref().map_or(0, |i| i.heap_bytes())
            + self.augmented.as_ref().map_or(0, |i| i.heap_bytes())
            + self.blocked.as_ref().map_or(0, |i| i.heap_bytes())
            + self.adapt.as_ref().map_or(0, |i| i.heap_bytes())
            + self.coarse.as_ref().map_or(0, |i| i.heap_bytes())
            + self.coarse_drop.as_ref().map_or(0, |i| i.heap_bytes())
            + self.tree.as_ref().map_or(0, |t| t.heap_bytes())
            + self.planner.as_ref().map_or(0, |p| p.heap_bytes())
            + self.delta.capacity() * std::mem::size_of::<RankingId>()
            + self.delta_pos.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::PositionMap;

    #[test]
    fn all_algorithms_agree_on_all_thresholds() {
        let ds = nyt_like(1000, 10, 33);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build();
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 10,
                seed: 5,
                ..Default::default()
            },
        );
        let mut scratch = engine.scratch();
        for q in &wl.queries {
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 10);
                let qmap = PositionMap::new(q);
                let mut expect: Vec<RankingId> = engine
                    .store()
                    .ids()
                    .filter(|&id| qmap.distance_to(engine.store().items(id)) <= raw)
                    .collect();
                expect.sort_unstable();
                for alg in Algorithm::ALL {
                    let mut stats = QueryStats::new();
                    let mut got = engine.query_items(alg, q, raw, &mut scratch, &mut stats);
                    got.sort_unstable();
                    assert_eq!(got, expect, "{alg} disagrees at θ={theta}");
                }
                // Auto routes through one of the above and must agree too.
                let mut stats = QueryStats::new();
                let mut got = engine.query_items(Algorithm::Auto, q, raw, &mut scratch, &mut stats);
                got.sort_unstable();
                assert_eq!(got, expect, "Auto disagrees at θ={theta}");
            }
        }
    }

    #[test]
    fn restricted_engine_builds_only_what_it_needs() {
        let ds = nyt_like(400, 10, 7);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
            .build();
        assert!(engine.plain.is_some());
        assert!(engine.augmented.is_some());
        assert!(engine.blocked.is_none());
        assert!(engine.adapt.is_none());
        assert!(engine.coarse.is_none());
        assert!(
            engine.planner.is_none(),
            "no planner without Auto in a restricted build"
        );
        // The selected algorithms agree with each other.
        let q: Vec<ItemId> = engine.store().items(RankingId(3)).to_vec();
        let raw = raw_threshold(0.2, 10);
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let mut a = engine.query_items(Algorithm::Fv, &q, raw, &mut scratch, &mut stats);
        let mut b = engine.query_items(Algorithm::ListMerge, &q, raw, &mut scratch, &mut stats);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(a.contains(&RankingId(3)));
    }

    #[test]
    fn auto_in_restricted_build_scopes_the_candidate_set() {
        let ds = nyt_like(400, 10, 19);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Auto, Algorithm::Fv, Algorithm::Coarse])
            .calibrated_costs(CalibratedCosts::nominal(10))
            .build();
        let planner = engine.planner().expect("Auto builds the planner");
        assert_eq!(planner.candidates(), &[Algorithm::Fv, Algorithm::Coarse]);
        assert!(engine.plain.is_some());
        assert!(engine.coarse.is_some());
        assert!(engine.augmented.is_none());
        assert!(engine.blocked.is_none());
        let q: Vec<ItemId> = engine.store().items(RankingId(1)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let mut out = Vec::new();
        let chosen = engine.query_auto(
            &q,
            raw_threshold(0.1, 10),
            &mut scratch,
            &mut stats,
            &mut out,
        );
        assert!(matches!(chosen, Algorithm::Fv | Algorithm::Coarse));
        assert!(out.contains(&RankingId(1)));
    }

    #[test]
    fn auto_alone_arms_all_eight_candidates() {
        let ds = nyt_like(300, 10, 23);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Auto])
            .calibrated_costs(CalibratedCosts::nominal(10))
            .build();
        assert_eq!(engine.planner().unwrap().candidates(), &Algorithm::ALL);
        for alg in Algorithm::ALL {
            // Every executor must be registered.
            let _ = engine.executor(alg);
        }
    }

    #[test]
    fn restricted_coarse_drop_shares_index_on_equal_theta_c() {
        let ds = nyt_like(300, 10, 8);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::CoarseDrop])
            .build();
        assert!(engine.coarse.is_some(), "shared index backs CoarseDrop");
        assert!(engine.coarse_drop.is_none());
        let q: Vec<ItemId> = engine.store().items(RankingId(0)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let got = engine.query_items(Algorithm::CoarseDrop, &q, 0, &mut scratch, &mut stats);
        assert!(got.contains(&RankingId(0)));
    }

    #[test]
    #[should_panic(expected = "index for Blocked+Prune was not built")]
    fn missing_index_panics_with_algorithm_name() {
        let ds = nyt_like(100, 10, 1);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let q: Vec<ItemId> = engine.store().items(RankingId(0)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::BlockedPrune, &q, 10, &mut scratch, &mut stats);
    }

    #[test]
    #[should_panic(expected = "planner for Auto was not built")]
    fn auto_without_planner_panics_with_guidance() {
        let ds = nyt_like(100, 10, 2);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let q: Vec<ItemId> = engine.store().items(RankingId(0)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::Auto, &q, 10, &mut scratch, &mut stats);
    }

    #[test]
    fn topk_tree_and_linear_scan_agree_exactly() {
        let ds = nyt_like(800, 10, 19);
        let domain = ds.params.domain;
        let with_tree = EngineBuilder::new(ds.store.clone())
            .algorithms(&[Algorithm::Fv])
            .topk_tree(true)
            .build();
        let without = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        assert!(with_tree.tree.is_some());
        assert!(without.tree.is_none());
        let wl = workload(
            with_tree.store(),
            domain,
            WorkloadParams {
                num_queries: 8,
                seed: 4,
                ..Default::default()
            },
        );
        let mut s1 = with_tree.scratch();
        let mut s2 = without.scratch();
        for q in &wl.queries {
            for kn in [1usize, 5, 25, 2000] {
                let mut st = QueryStats::new();
                let a = with_tree.query_topk(q, kn, &mut s1, &mut st);
                let b = without.query_topk(q, kn, &mut s2, &mut st);
                assert_eq!(a, b, "kn={kn}");
                assert_eq!(a.len(), kn.min(800));
                assert!(
                    a.windows(2).all(|w| w[0] < w[1]),
                    "strictly ascending pairs"
                );
            }
        }
        // k = 0 and the trivial self-query edge.
        let mut st = QueryStats::new();
        assert!(with_tree
            .query_topk(&wl.queries[0], 0, &mut s1, &mut st)
            .is_empty());
    }

    #[test]
    fn mutations_track_the_live_corpus_across_every_algorithm() {
        let ds = nyt_like(600, 10, 47);
        let mut engine = EngineBuilder::new(ds.store.clone())
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .topk_tree(true)
            .calibrated_costs(CalibratedCosts::nominal(10))
            .compaction_threshold(f64::INFINITY)
            .build();
        // Mutate: remove a spread of base rankings, insert perturbed and
        // brand-new ones (new items included).
        for id in (0..600u32).step_by(7) {
            assert!(engine.remove_ranking(RankingId(id)));
        }
        for i in 0..80u32 {
            if i % 2 == 0 {
                let donor = RankingId(i * 3 + 1);
                let mut items: Vec<ItemId> = engine.store().items(donor).to_vec();
                items.swap(2, 7);
                engine.insert_ranking(&items);
            } else {
                let base = 900_000 + i * 12;
                let items: Vec<ItemId> = (0..10).map(|j| ItemId(base + j)).collect();
                engine.insert_ranking(&items);
            }
        }
        assert_eq!(engine.delta_len(), 80);
        assert!(engine.base_tombstones() > 0);
        let check = |engine: &Engine| {
            let mut scratch = engine.scratch();
            for qid in [1u32, 300, 601, 660] {
                let q: Vec<ItemId> = engine.store().items(RankingId(qid)).to_vec();
                let qmap = PositionMap::new(&q);
                for theta in [0.0, 0.15, 0.3] {
                    let raw = raw_threshold(theta, 10);
                    let mut expect: Vec<RankingId> = engine
                        .store()
                        .live_ids()
                        .filter(|&id| qmap.distance_to(engine.store().items(id)) <= raw)
                        .collect();
                    expect.sort_unstable();
                    for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
                        let mut stats = QueryStats::new();
                        let mut got = engine.query_items(alg, &q, raw, &mut scratch, &mut stats);
                        got.sort_unstable();
                        assert_eq!(got, expect, "{alg} diverged at θ={theta} qid={qid}");
                    }
                }
            }
        };
        check(&engine);
        // Compaction folds the overlay in and keeps every answer.
        let live_before = engine.live_len();
        engine.compact();
        assert_eq!(engine.delta_len(), 0);
        assert_eq!(engine.base_tombstones(), 0);
        assert_eq!(engine.live_len(), live_before);
        check(&engine);
        // Released ids accept id-stable re-insertions.
        let freed = engine.store().first_free_slot().expect("released slots");
        engine.insert_ranking_at(freed, &ds.store.items(freed).to_vec());
        assert!(engine.is_live(freed));
        check(&engine);
    }

    #[test]
    fn removal_past_threshold_triggers_auto_compaction() {
        let ds = nyt_like(300, 10, 11);
        let mut engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .compaction_threshold(0.25)
            .build();
        let mut compacted = false;
        for id in 0..120u32 {
            engine.remove_ranking(RankingId(id));
            if engine.base_tombstones() == 0 {
                compacted = true;
                break;
            }
        }
        assert!(compacted, "auto-compaction never fired below 40% dead");
        assert!(engine.store().free_len() > 0, "slots were released");
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let q: Vec<ItemId> = engine.store().items(RankingId(200)).to_vec();
        let got = engine.query_items(Algorithm::Fv, &q, 0, &mut scratch, &mut stats);
        assert!(got.contains(&RankingId(200)));
    }

    #[test]
    #[should_panic(expected = "duplicate item")]
    fn insert_rejects_duplicate_items() {
        let ds = nyt_like(50, 10, 3);
        let mut engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let items: Vec<ItemId> = (0..9).map(ItemId).chain([ItemId(0)]).collect();
        engine.insert_ranking(&items);
    }

    #[test]
    #[should_panic(expected = "not free")]
    fn insert_at_live_id_panics() {
        let ds = nyt_like(50, 10, 4);
        let mut engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let items: Vec<ItemId> = (100..110).map(ItemId).collect();
        engine.insert_ranking_at(RankingId(0), &items);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::CoarseDrop.name(), "Coarse+Drop");
        assert_eq!(
            Algorithm::BlockedPruneDrop.to_string(),
            "Blocked+Prune+Drop"
        );
        assert_eq!(Algorithm::ALL.len(), 8);
        assert_eq!(Algorithm::Auto.to_string(), "Auto");
    }

    #[test]
    fn from_str_round_trips_display_and_accepts_lax_spellings() {
        for a in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
            let parsed: Algorithm = a.name().parse().expect("display name parses");
            assert_eq!(parsed, a, "round trip of {}", a.name());
        }
        assert_eq!("fv".parse::<Algorithm>().unwrap(), Algorithm::Fv);
        assert_eq!("FV-DROP".parse::<Algorithm>().unwrap(), Algorithm::FvDrop);
        assert_eq!(
            "blocked_prune_drop".parse::<Algorithm>().unwrap(),
            Algorithm::BlockedPruneDrop
        );
        assert_eq!(
            "coarse drop".parse::<Algorithm>().unwrap(),
            Algorithm::CoarseDrop
        );
        assert_eq!("auto".parse::<Algorithm>().unwrap(), Algorithm::Auto);
        let err = "nope".parse::<Algorithm>().unwrap_err();
        assert!(err.to_string().contains("unknown algorithm 'nope'"));
    }

    #[test]
    fn dense_indexes_are_a_permutation_of_the_slots() {
        let mut seen = [false; Algorithm::COUNT];
        for a in Algorithm::ALL {
            let i = a.dense_index().expect("concrete algorithms have slots");
            assert!(!seen[i], "slot {i} assigned twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(Algorithm::Auto.dense_index(), None);
    }

    #[test]
    fn traced_queries_report_the_executed_algorithm_and_exec_stats() {
        let ds = nyt_like(500, 10, 3);
        let engine = EngineBuilder::new(ds.store)
            .calibrated_costs(CalibratedCosts::nominal(10))
            .build();
        let q: Vec<ItemId> = engine.store().items(RankingId(7)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let mut out = Vec::new();
        let raw = raw_threshold(0.2, 10);
        let t =
            engine.query_into_traced(Algorithm::Fv, &q, raw, &mut scratch, &mut stats, &mut out);
        assert_eq!(t.algorithm, Algorithm::Fv);
        assert!(!t.planned);
        assert!(t.exec.postings_scanned > 0);
        assert!(t.exec.distance_calls > 0);
        assert_eq!(t.predicted_ns, 0.0);
        let t =
            engine.query_into_traced(Algorithm::Auto, &q, raw, &mut scratch, &mut stats, &mut out);
        assert!(t.planned);
        assert!(
            t.algorithm.dense_index().is_some(),
            "Auto resolves to a concrete algorithm"
        );
        assert!(t.predicted_ns > 0.0);
        assert!(t.actual_ns > 0.0);
    }

    #[test]
    #[should_panic(expected = "query size")]
    fn wrong_query_size_panics() {
        let ds = nyt_like(100, 10, 1);
        let engine = EngineBuilder::new(ds.store).build();
        let q: Vec<ItemId> = (0..5u32).map(ItemId).collect();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::Fv, &q, 10, &mut scratch, &mut stats);
    }
}
