//! The unified query engine: every algorithm of the paper's evaluation
//! behind one dispatch enum.
//!
//! [`Engine`] owns the corpus and the index structures; [`Algorithm`]
//! names the paper's processing techniques (Section 7, "Algorithms under
//! Investigation") minus `Minimal F&V`, which is a workload-dependent
//! oracle rather than an ad-hoc index (see
//! [`ranksim_invindex::MinimalFv`]).
//!
//! All indexes share one corpus-wide [`ItemRemap`], and every query
//! threads a caller-owned [`QueryScratch`] through
//! [`Engine::query_items`] / [`Engine::query_into`] — the latter writes
//! into a reusable result buffer and performs **zero** heap allocations
//! once scratch and buffer are warmed up. [`EngineBuilder::algorithms`]
//! restricts construction to the index structures the selected algorithms
//! need.

use std::sync::Arc;

use crate::coarse::CoarseIndex;
use ranksim_adaptsearch::{AdaptCostParams, AdaptSearchIndex};
use ranksim_invindex::{
    blocked_prune, fv, listmerge, AugmentedInvertedIndex, BlockedInvertedIndex, PlainInvertedIndex,
};
use ranksim_metricspace::{knn_bktree, knn_linear, query_pairs_into, BkTree};
use ranksim_rankings::{
    raw_threshold, ItemId, ItemRemap, QueryScratch, QueryStats, Ranking, RankingId, RankingStore,
};

/// The query-processing techniques of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Filter & validate over the plain inverted index (baseline).
    Fv,
    /// F&V with Lemma 2 list dropping.
    FvDrop,
    /// Merge of id-sorted augmented lists with on-the-fly aggregation
    /// (threshold-agnostic baseline).
    ListMerge,
    /// Blocked access with NRA-style pruning.
    BlockedPrune,
    /// Blocked access with pruning and list dropping.
    BlockedPruneDrop,
    /// The coarse hybrid index.
    Coarse,
    /// The coarse hybrid index with list dropping in the filter phase.
    CoarseDrop,
    /// The AdaptSearch competitor (adaptive prefix filtering).
    AdaptSearch,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Fv,
        Algorithm::ListMerge,
        Algorithm::AdaptSearch,
        Algorithm::Coarse,
        Algorithm::CoarseDrop,
        Algorithm::BlockedPrune,
        Algorithm::BlockedPruneDrop,
        Algorithm::FvDrop,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Fv => "F&V",
            Algorithm::FvDrop => "F&V+Drop",
            Algorithm::ListMerge => "ListMerge",
            Algorithm::BlockedPrune => "Blocked+Prune",
            Algorithm::BlockedPruneDrop => "Blocked+Prune+Drop",
            Algorithm::Coarse => "Coarse",
            Algorithm::CoarseDrop => "Coarse+Drop",
            Algorithm::AdaptSearch => "AdaptSearch",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    store: RankingStore,
    coarse_theta_c: f64,
    coarse_theta_c_drop: Option<f64>,
    selected: Option<Vec<Algorithm>>,
    topk_tree: bool,
}

impl EngineBuilder {
    /// Starts from a corpus.
    pub fn new(store: RankingStore) -> Self {
        EngineBuilder {
            store,
            coarse_theta_c: 0.5,
            coarse_theta_c_drop: None,
            selected: None,
            topk_tree: false,
        }
    }

    /// Additionally builds a corpus-wide BK-tree accelerating
    /// [`Engine::query_topk`]. Off by default: threshold queries never
    /// touch it, and [`Engine::query_topk`] falls back to an exact linear
    /// scan when the tree is absent.
    pub fn topk_tree(mut self, build_tree: bool) -> Self {
        self.topk_tree = build_tree;
        self
    }

    /// Normalized partitioning threshold `θ_C` for the `Coarse` index
    /// (paper default for the comparison figures: 0.5).
    pub fn coarse_threshold(mut self, theta_c: f64) -> Self {
        self.coarse_theta_c = theta_c;
        self
    }

    /// Separate `θ_C` for `Coarse+Drop` (the paper measured 0.06 as
    /// optimal there). Defaults to the `Coarse` threshold when unset.
    pub fn coarse_drop_threshold(mut self, theta_c: f64) -> Self {
        self.coarse_theta_c_drop = Some(theta_c);
        self
    }

    /// Restricts construction to the index structures the given
    /// algorithms need (single-algorithm benches skip the other builds
    /// entirely); [`EngineBuilder::build`] without this call keeps the
    /// build-everything default.
    pub fn algorithms(mut self, algorithms: &[Algorithm]) -> Self {
        self.selected = Some(algorithms.to_vec());
        self
    }

    /// Builds the selected index structures (all of them by default).
    pub fn build(self) -> Engine {
        let k = self.store.k();
        let want = |a: Algorithm| self.selected.as_ref().map_or(true, |s| s.contains(&a));
        let remap = Arc::new(ItemRemap::build(&self.store));
        let plain = (want(Algorithm::Fv) || want(Algorithm::FvDrop)).then(|| {
            PlainInvertedIndex::build_with_remap(&self.store, remap.clone(), self.store.ids())
        });
        let augmented = want(Algorithm::ListMerge).then(|| {
            AugmentedInvertedIndex::build_with_remap(&self.store, remap.clone(), self.store.ids())
        });
        let blocked =
            (want(Algorithm::BlockedPrune) || want(Algorithm::BlockedPruneDrop)).then(|| {
                BlockedInvertedIndex::build_with_remap(&self.store, remap.clone(), self.store.ids())
            });
        let adapt = want(Algorithm::AdaptSearch).then(|| {
            AdaptSearchIndex::build_with_remap(
                &self.store,
                remap.clone(),
                AdaptCostParams::default(),
            )
        });
        let coarse_theta = raw_threshold(self.coarse_theta_c, k);
        let drop_theta = self
            .coarse_theta_c_drop
            .map(|t| raw_threshold(t, k))
            .unwrap_or(coarse_theta);
        // `CoarseDrop` falls back to the shared coarse index when its θ_C
        // matches; a separately tuned index is built otherwise.
        let need_shared_coarse =
            want(Algorithm::Coarse) || (want(Algorithm::CoarseDrop) && drop_theta == coarse_theta);
        let coarse = need_shared_coarse
            .then(|| CoarseIndex::build_with_remap(&self.store, remap.clone(), coarse_theta));
        let coarse_drop = (want(Algorithm::CoarseDrop) && drop_theta != coarse_theta)
            .then(|| CoarseIndex::build_with_remap(&self.store, remap.clone(), drop_theta));
        let tree = self.topk_tree.then(|| BkTree::build(&self.store));
        Engine {
            store: self.store,
            remap,
            plain,
            augmented,
            blocked,
            adapt,
            coarse,
            coarse_drop,
            tree,
        }
    }
}

/// The all-algorithms query engine.
pub struct Engine {
    store: RankingStore,
    remap: Arc<ItemRemap>,
    plain: Option<PlainInvertedIndex>,
    augmented: Option<AugmentedInvertedIndex>,
    blocked: Option<BlockedInvertedIndex>,
    adapt: Option<AdaptSearchIndex>,
    coarse: Option<CoarseIndex>,
    /// Separately tuned coarse index for `CoarseDrop`, if configured.
    coarse_drop: Option<CoarseIndex>,
    /// Corpus-wide BK-tree for top-k queries (built on request).
    tree: Option<BkTree>,
}

fn require<'a, T>(index: &'a Option<T>, algorithm: Algorithm) -> &'a T {
    index.as_ref().unwrap_or_else(|| {
        panic!(
            "index for {algorithm} was not built; include it in EngineBuilder::algorithms \
             or build the engine with the default build-everything configuration"
        )
    })
}

impl Engine {
    /// The corpus.
    pub fn store(&self) -> &RankingStore {
        &self.store
    }

    /// The corpus-wide item remap shared by all index structures.
    pub fn remap(&self) -> &Arc<ItemRemap> {
        &self.remap
    }

    /// The coarse index (for `Coarse`). Panics if it was not built.
    pub fn coarse_index(&self) -> &CoarseIndex {
        require(&self.coarse, Algorithm::Coarse)
    }

    /// A fresh scratch for this engine's queries; reuse it across queries
    /// to keep the hot path allocation-free.
    pub fn scratch(&self) -> QueryScratch {
        QueryScratch::new()
    }

    /// Runs `algorithm` for a query ranking at normalized threshold
    /// `theta ∈ [0, 1]` (convenience wrapper allocating its own scratch).
    pub fn query(
        &self,
        algorithm: Algorithm,
        query: &Ranking,
        theta: f64,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut scratch = self.scratch();
        self.query_items(
            algorithm,
            query.items(),
            raw_threshold(theta, self.store.k()),
            &mut scratch,
            stats,
        )
    }

    /// Runs `algorithm` for raw query items at a raw threshold, reusing
    /// the caller's scratch.
    pub fn query_items(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut out = Vec::new();
        self.query_into(algorithm, query, theta_raw, scratch, stats, &mut out);
        out
    }

    /// Runs `algorithm` into a caller-owned result buffer (cleared
    /// first). With a warmed-up scratch and buffer, steady-state calls
    /// perform zero heap allocations.
    pub fn query_into(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        assert_eq!(
            query.len(),
            self.store.k(),
            "query size must match the corpus ranking size"
        );
        out.clear();
        match algorithm {
            Algorithm::Fv => fv::filter_validate_into(
                require(&self.plain, algorithm),
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            ),
            Algorithm::FvDrop => fv::filter_validate_drop_into(
                require(&self.plain, algorithm),
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            ),
            Algorithm::ListMerge => listmerge::list_merge_into(
                require(&self.augmented, algorithm),
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            ),
            Algorithm::BlockedPrune => blocked_prune::blocked_prune_into(
                require(&self.blocked, algorithm),
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            ),
            Algorithm::BlockedPruneDrop => blocked_prune::blocked_prune_drop_into(
                require(&self.blocked, algorithm),
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            ),
            Algorithm::Coarse => require(&self.coarse, algorithm).query_into(
                &self.store,
                query,
                theta_raw,
                false,
                scratch,
                stats,
                out,
            ),
            Algorithm::CoarseDrop => self
                .coarse_drop
                .as_ref()
                .unwrap_or_else(|| require(&self.coarse, algorithm))
                .query_into(&self.store, query, theta_raw, true, scratch, stats, out),
            Algorithm::AdaptSearch => require(&self.adapt, algorithm).search_into(
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            ),
        }
    }

    /// The `neighbours` corpus rankings nearest to `query`, as ascending
    /// `(distance, id)` pairs. Exact and fully deterministic: the result
    /// is the lexicographically smallest set of `(distance, id)` pairs,
    /// so ties at the last distance resolve to the smallest ids — the
    /// invariant [`crate::shard::ShardedEngine`] relies on to merge
    /// per-shard answers bit-identically. Uses the BK-tree when
    /// [`EngineBuilder::topk_tree`] built one, otherwise an exact linear
    /// scan.
    pub fn query_topk(
        &self,
        query: &[ItemId],
        neighbours: usize,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<(u32, RankingId)> {
        assert_eq!(
            query.len(),
            self.store.k(),
            "query size must match the corpus ranking size"
        );
        if self.store.is_empty() || neighbours == 0 {
            return Vec::new();
        }
        query_pairs_into(query, &mut scratch.qp);
        match &self.tree {
            Some(tree) => knn_bktree(tree, &self.store, &scratch.qp, neighbours, stats),
            None => knn_linear(&self.store, &scratch.qp, neighbours, stats),
        }
    }

    /// Heap footprint of the engine: the corpus store plus every built
    /// index structure. Per-structure footprints are exact and each
    /// includes the (shared) remap it holds, matching Table 6's
    /// build-each-structure-alone accounting.
    pub fn heap_bytes(&self) -> usize {
        self.store.heap_bytes()
            + self.plain.as_ref().map_or(0, |i| i.heap_bytes())
            + self.augmented.as_ref().map_or(0, |i| i.heap_bytes())
            + self.blocked.as_ref().map_or(0, |i| i.heap_bytes())
            + self.adapt.as_ref().map_or(0, |i| i.heap_bytes())
            + self.coarse.as_ref().map_or(0, |i| i.heap_bytes())
            + self.coarse_drop.as_ref().map_or(0, |i| i.heap_bytes())
            + self.tree.as_ref().map_or(0, |t| t.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::PositionMap;

    #[test]
    fn all_algorithms_agree_on_all_thresholds() {
        let ds = nyt_like(1000, 10, 33);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build();
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 10,
                seed: 5,
                ..Default::default()
            },
        );
        let mut scratch = engine.scratch();
        for q in &wl.queries {
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 10);
                let qmap = PositionMap::new(q);
                let mut expect: Vec<RankingId> = engine
                    .store()
                    .ids()
                    .filter(|&id| qmap.distance_to(engine.store().items(id)) <= raw)
                    .collect();
                expect.sort_unstable();
                for alg in Algorithm::ALL {
                    let mut stats = QueryStats::new();
                    let mut got = engine.query_items(alg, q, raw, &mut scratch, &mut stats);
                    got.sort_unstable();
                    assert_eq!(got, expect, "{alg} disagrees at θ={theta}");
                }
            }
        }
    }

    #[test]
    fn restricted_engine_builds_only_what_it_needs() {
        let ds = nyt_like(400, 10, 7);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
            .build();
        assert!(engine.plain.is_some());
        assert!(engine.augmented.is_some());
        assert!(engine.blocked.is_none());
        assert!(engine.adapt.is_none());
        assert!(engine.coarse.is_none());
        // The selected algorithms agree with each other.
        let q: Vec<ItemId> = engine.store().items(RankingId(3)).to_vec();
        let raw = raw_threshold(0.2, 10);
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let mut a = engine.query_items(Algorithm::Fv, &q, raw, &mut scratch, &mut stats);
        let mut b = engine.query_items(Algorithm::ListMerge, &q, raw, &mut scratch, &mut stats);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(a.contains(&RankingId(3)));
    }

    #[test]
    fn restricted_coarse_drop_shares_index_on_equal_theta_c() {
        let ds = nyt_like(300, 10, 8);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::CoarseDrop])
            .build();
        assert!(engine.coarse.is_some(), "shared index backs CoarseDrop");
        assert!(engine.coarse_drop.is_none());
        let q: Vec<ItemId> = engine.store().items(RankingId(0)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let got = engine.query_items(Algorithm::CoarseDrop, &q, 0, &mut scratch, &mut stats);
        assert!(got.contains(&RankingId(0)));
    }

    #[test]
    #[should_panic(expected = "index for Blocked+Prune was not built")]
    fn missing_index_panics_with_algorithm_name() {
        let ds = nyt_like(100, 10, 1);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let q: Vec<ItemId> = engine.store().items(RankingId(0)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::BlockedPrune, &q, 10, &mut scratch, &mut stats);
    }

    #[test]
    fn topk_tree_and_linear_scan_agree_exactly() {
        let ds = nyt_like(800, 10, 19);
        let domain = ds.params.domain;
        let with_tree = EngineBuilder::new(ds.store.clone())
            .algorithms(&[Algorithm::Fv])
            .topk_tree(true)
            .build();
        let without = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        assert!(with_tree.tree.is_some());
        assert!(without.tree.is_none());
        let wl = workload(
            with_tree.store(),
            domain,
            WorkloadParams {
                num_queries: 8,
                seed: 4,
                ..Default::default()
            },
        );
        let mut s1 = with_tree.scratch();
        let mut s2 = without.scratch();
        for q in &wl.queries {
            for kn in [1usize, 5, 25, 2000] {
                let mut st = QueryStats::new();
                let a = with_tree.query_topk(q, kn, &mut s1, &mut st);
                let b = without.query_topk(q, kn, &mut s2, &mut st);
                assert_eq!(a, b, "kn={kn}");
                assert_eq!(a.len(), kn.min(800));
                assert!(
                    a.windows(2).all(|w| w[0] < w[1]),
                    "strictly ascending pairs"
                );
            }
        }
        // k = 0 and the trivial self-query edge.
        let mut st = QueryStats::new();
        assert!(with_tree
            .query_topk(&wl.queries[0], 0, &mut s1, &mut st)
            .is_empty());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::CoarseDrop.name(), "Coarse+Drop");
        assert_eq!(
            Algorithm::BlockedPruneDrop.to_string(),
            "Blocked+Prune+Drop"
        );
        assert_eq!(Algorithm::ALL.len(), 8);
    }

    #[test]
    #[should_panic(expected = "query size")]
    fn wrong_query_size_panics() {
        let ds = nyt_like(100, 10, 1);
        let engine = EngineBuilder::new(ds.store).build();
        let q: Vec<ItemId> = (0..5u32).map(ItemId).collect();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::Fv, &q, 10, &mut scratch, &mut stats);
    }
}
