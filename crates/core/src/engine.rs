//! The unified query engine: every algorithm of the paper's evaluation
//! behind one executor table, with a cost-model planner picking the sweet
//! spot per query.
//!
//! [`Engine`] owns the corpus and the index structures; [`Algorithm`]
//! names the paper's processing techniques (Section 7, "Algorithms under
//! Investigation") minus `Minimal F&V`, which is a workload-dependent
//! oracle rather than an ad-hoc index (see
//! [`ranksim_invindex::MinimalFv`]) — plus [`Algorithm::Auto`], which
//! lets the calibrated cost model choose the technique per `(query, θ)`
//! (the paper's Sections 8–9 outlook, implemented in
//! [`crate::planner::Planner`]).
//!
//! Dispatch is **not** a central `match` anymore: each algorithm is a
//! [`QueryExecutor`] living next to its index structure
//! (`ranksim-invindex`, `ranksim-adaptsearch`, the coarse path in this
//! crate), and the engine holds one executor per built structure in a
//! dense table. [`Engine::query_into`] resolves `Auto` through the
//! planner, runs the chosen executor, and feeds the measured runtime back
//! for online recalibration.
//!
//! All indexes share one corpus-wide [`ItemRemap`], and every query
//! threads a caller-owned [`QueryScratch`] through
//! [`Engine::query_items`] / [`Engine::query_into`] — the latter writes
//! into a reusable result buffer and performs **zero** heap allocations
//! once scratch and buffer are warmed up, planner included.
//! [`EngineBuilder::algorithms`] restricts construction to the index
//! structures the selected algorithms need and doubles as the planner's
//! candidate set when [`Algorithm::Auto`] is selected.

use std::sync::Arc;
use std::time::Instant;

use crate::coarse::{CoarseExecutor, CoarseIndex};
use crate::cost::calibrate::CalibratedCosts;
use crate::planner::Planner;
use ranksim_adaptsearch::{AdaptCostParams, AdaptSearchExecutor, AdaptSearchIndex};
use ranksim_invindex::{
    AugmentedInvertedIndex, BlockedInvertedIndex, BlockedPruneExecutor, FvDropExecutor, FvExecutor,
    ListMergeExecutor, PlainInvertedIndex,
};
use ranksim_metricspace::{knn_bktree, knn_linear, query_pairs_into, BkTree};
use ranksim_rankings::{
    raw_threshold, ExecStats, ItemId, ItemRemap, QueryExecutor, QueryScratch, QueryStats, Ranking,
    RankingId, RankingStore,
};

/// The query-processing techniques of the paper's evaluation, plus
/// cost-model-driven automatic selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Filter & validate over the plain inverted index (baseline).
    Fv,
    /// F&V with Lemma 2 list dropping.
    FvDrop,
    /// Merge of id-sorted augmented lists with on-the-fly aggregation
    /// (threshold-agnostic baseline).
    ListMerge,
    /// Blocked access with NRA-style pruning.
    BlockedPrune,
    /// Blocked access with pruning and list dropping.
    BlockedPruneDrop,
    /// The coarse hybrid index.
    Coarse,
    /// The coarse hybrid index with list dropping in the filter phase.
    CoarseDrop,
    /// The AdaptSearch competitor (adaptive prefix filtering).
    AdaptSearch,
    /// Per-query selection among the engine's candidate set by the
    /// calibrated cost model (see [`crate::planner::Planner`]).
    Auto,
}

impl Algorithm {
    /// Number of concrete (dispatchable) algorithms.
    pub const COUNT: usize = 8;

    /// All concrete algorithms, in the paper's presentation order
    /// (`Auto` is a selection policy, not a ninth technique).
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Fv,
        Algorithm::ListMerge,
        Algorithm::AdaptSearch,
        Algorithm::Coarse,
        Algorithm::CoarseDrop,
        Algorithm::BlockedPrune,
        Algorithm::BlockedPruneDrop,
        Algorithm::FvDrop,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Fv => "F&V",
            Algorithm::FvDrop => "F&V+Drop",
            Algorithm::ListMerge => "ListMerge",
            Algorithm::BlockedPrune => "Blocked+Prune",
            Algorithm::BlockedPruneDrop => "Blocked+Prune+Drop",
            Algorithm::Coarse => "Coarse",
            Algorithm::CoarseDrop => "Coarse+Drop",
            Algorithm::AdaptSearch => "AdaptSearch",
            Algorithm::Auto => "Auto",
        }
    }

    /// Stable dense index of a concrete algorithm (`None` for `Auto`);
    /// the coordinate of every per-algorithm table — executor slots,
    /// planner corrections, batch pick counters.
    pub fn dense_index(self) -> Option<usize> {
        match self {
            Algorithm::Fv => Some(0),
            Algorithm::FvDrop => Some(1),
            Algorithm::ListMerge => Some(2),
            Algorithm::BlockedPrune => Some(3),
            Algorithm::BlockedPruneDrop => Some(4),
            Algorithm::Coarse => Some(5),
            Algorithm::CoarseDrop => Some(6),
            Algorithm::AdaptSearch => Some(7),
            Algorithm::Auto => None,
        }
    }

    /// Inverse of [`Algorithm::dense_index`].
    pub fn from_dense_index(index: usize) -> Option<Algorithm> {
        match index {
            0 => Some(Algorithm::Fv),
            1 => Some(Algorithm::FvDrop),
            2 => Some(Algorithm::ListMerge),
            3 => Some(Algorithm::BlockedPrune),
            4 => Some(Algorithm::BlockedPruneDrop),
            5 => Some(Algorithm::Coarse),
            6 => Some(Algorithm::CoarseDrop),
            7 => Some(Algorithm::AdaptSearch),
            _ => None,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error of [`Algorithm::from_str`]: the input named no known algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    input: String,
}

impl std::fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown algorithm '{}'; expected one of: {}, Auto",
            self.input,
            Algorithm::ALL.map(|a| a.name()).join(", ")
        )
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl std::str::FromStr for Algorithm {
    type Err = ParseAlgorithmError;

    /// Parses the paper display names (round-tripping [`Algorithm`]'s
    /// `Display`) case-insensitively, ignoring the `&`/`+`/`-`/`_`/space
    /// separators: `"F&V+Drop"`, `"fv-drop"` and `"FVDROP"` all parse to
    /// [`Algorithm::FvDrop`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        let all = Algorithm::ALL.iter().copied().chain([Algorithm::Auto]);
        for a in all {
            let canon: String = a
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .map(|c| c.to_ascii_lowercase())
                .collect();
            if norm == canon {
                return Ok(a);
            }
        }
        Err(ParseAlgorithmError {
            input: s.to_string(),
        })
    }
}

/// What one [`Engine::query_into_traced`] call did: the executor that
/// ran (the planner's pick under `Auto`), its instrumented counters, and
/// the predicted/measured costs feeding the recalibration loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryTrace {
    /// The concrete algorithm that executed.
    pub algorithm: Algorithm,
    /// Whether the planner chose it (`Auto`) or the caller named it.
    pub planned: bool,
    /// Counter deltas of exactly this execution.
    pub exec: ExecStats,
    /// The planner's predicted cost in calibrated ns (0 when not
    /// planned or the planner was degenerate).
    pub predicted_ns: f64,
    /// Measured executor wall time in ns (0 when not planned).
    pub actual_ns: f64,
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    store: RankingStore,
    coarse_theta_c: f64,
    coarse_theta_c_drop: Option<f64>,
    selected: Option<Vec<Algorithm>>,
    topk_tree: bool,
    calibrated: Option<CalibratedCosts>,
}

impl EngineBuilder {
    /// Starts from a corpus.
    pub fn new(store: RankingStore) -> Self {
        EngineBuilder {
            store,
            coarse_theta_c: 0.5,
            coarse_theta_c_drop: None,
            selected: None,
            topk_tree: false,
            calibrated: None,
        }
    }

    /// Additionally builds a corpus-wide BK-tree accelerating
    /// [`Engine::query_topk`]. Off by default: threshold queries never
    /// touch it, and [`Engine::query_topk`] falls back to an exact linear
    /// scan when the tree is absent.
    pub fn topk_tree(mut self, build_tree: bool) -> Self {
        self.topk_tree = build_tree;
        self
    }

    /// Normalized partitioning threshold `θ_C` for the `Coarse` index
    /// (paper default for the comparison figures: 0.5).
    pub fn coarse_threshold(mut self, theta_c: f64) -> Self {
        self.coarse_theta_c = theta_c;
        self
    }

    /// Separate `θ_C` for `Coarse+Drop` (the paper measured 0.06 as
    /// optimal there). Defaults to the `Coarse` threshold when unset.
    pub fn coarse_drop_threshold(mut self, theta_c: f64) -> Self {
        self.coarse_theta_c_drop = Some(theta_c);
        self
    }

    /// Restricts construction to the index structures the given
    /// algorithms need (single-algorithm benches skip the other builds
    /// entirely); [`EngineBuilder::build`] without this call keeps the
    /// build-everything default, which also arms the planner with all
    /// eight techniques.
    ///
    /// When the list contains [`Algorithm::Auto`], the *concrete*
    /// algorithms in the list become the planner's candidate set (all
    /// eight when `Auto` stands alone) and the planner is built alongside
    /// the indexes; without `Auto` in a restricted list no planner is
    /// built and `Auto` queries panic.
    pub fn algorithms(mut self, algorithms: &[Algorithm]) -> Self {
        self.selected = Some(algorithms.to_vec());
        self
    }

    /// Overrides the calibrated machine primitives the planner prices
    /// executors with (defaults to a cached micro-measurement of this
    /// machine; fixed [`CalibratedCosts::nominal`] values keep tests
    /// deterministic).
    pub fn calibrated_costs(mut self, costs: CalibratedCosts) -> Self {
        self.calibrated = Some(costs);
        self
    }

    /// Builds the selected index structures (all of them by default),
    /// their executors, and — for the default build or when
    /// [`Algorithm::Auto`] was selected — the cost-model planner.
    pub fn build(self) -> Engine {
        let k = self.store.k();
        // Resolve the candidate set and whether the planner is wanted.
        let (candidates, want_auto) = match &self.selected {
            None => (Algorithm::ALL.to_vec(), true),
            Some(sel) => {
                let auto = sel.contains(&Algorithm::Auto);
                let concrete: Vec<Algorithm> = Algorithm::ALL
                    .iter()
                    .copied()
                    .filter(|a| sel.contains(a))
                    .collect();
                let concrete = if auto && concrete.is_empty() {
                    Algorithm::ALL.to_vec()
                } else {
                    concrete
                };
                (concrete, auto)
            }
        };
        let want = |a: Algorithm| candidates.contains(&a);
        let remap = Arc::new(ItemRemap::build(&self.store));
        let plain = (want(Algorithm::Fv) || want(Algorithm::FvDrop)).then(|| {
            Arc::new(PlainInvertedIndex::build_with_remap(
                &self.store,
                remap.clone(),
                self.store.ids(),
            ))
        });
        let augmented = want(Algorithm::ListMerge).then(|| {
            Arc::new(AugmentedInvertedIndex::build_with_remap(
                &self.store,
                remap.clone(),
                self.store.ids(),
            ))
        });
        let blocked =
            (want(Algorithm::BlockedPrune) || want(Algorithm::BlockedPruneDrop)).then(|| {
                Arc::new(BlockedInvertedIndex::build_with_remap(
                    &self.store,
                    remap.clone(),
                    self.store.ids(),
                ))
            });
        let adapt = want(Algorithm::AdaptSearch).then(|| {
            Arc::new(AdaptSearchIndex::build_with_remap(
                &self.store,
                remap.clone(),
                AdaptCostParams::default(),
            ))
        });
        let coarse_theta = raw_threshold(self.coarse_theta_c, k);
        let drop_theta = self
            .coarse_theta_c_drop
            .map(|t| raw_threshold(t, k))
            .unwrap_or(coarse_theta);
        // `CoarseDrop` falls back to the shared coarse index when its θ_C
        // matches; a separately tuned index is built otherwise.
        let need_shared_coarse =
            want(Algorithm::Coarse) || (want(Algorithm::CoarseDrop) && drop_theta == coarse_theta);
        let coarse = need_shared_coarse.then(|| {
            Arc::new(CoarseIndex::build_with_remap(
                &self.store,
                remap.clone(),
                coarse_theta,
            ))
        });
        let coarse_drop = (want(Algorithm::CoarseDrop) && drop_theta != coarse_theta).then(|| {
            Arc::new(CoarseIndex::build_with_remap(
                &self.store,
                remap.clone(),
                drop_theta,
            ))
        });
        let tree = self.topk_tree.then(|| BkTree::build(&self.store));

        // One executor per built structure: selecting `FvDrop` also makes
        // the plain index (hence `Fv`) available, matching the pre-
        // executor dispatch semantics exactly.
        let mut executors: Vec<Option<Box<dyn QueryExecutor>>> =
            (0..Algorithm::COUNT).map(|_| None).collect();
        let slot = |a: Algorithm| a.dense_index().expect("concrete algorithm");
        if let Some(p) = &plain {
            executors[slot(Algorithm::Fv)] = Some(Box::new(FvExecutor::new(p.clone())));
            executors[slot(Algorithm::FvDrop)] = Some(Box::new(FvDropExecutor::new(p.clone())));
        }
        if let Some(a) = &augmented {
            executors[slot(Algorithm::ListMerge)] =
                Some(Box::new(ListMergeExecutor::new(a.clone())));
        }
        if let Some(b) = &blocked {
            executors[slot(Algorithm::BlockedPrune)] =
                Some(Box::new(BlockedPruneExecutor::new(b.clone(), false)));
            executors[slot(Algorithm::BlockedPruneDrop)] =
                Some(Box::new(BlockedPruneExecutor::new(b.clone(), true)));
        }
        if let Some(a) = &adapt {
            executors[slot(Algorithm::AdaptSearch)] =
                Some(Box::new(AdaptSearchExecutor::new(a.clone())));
        }
        if let Some(c) = &coarse {
            executors[slot(Algorithm::Coarse)] =
                Some(Box::new(CoarseExecutor::new(c.clone(), false)));
        }
        if let Some(c) = coarse_drop.as_ref().or(coarse.as_ref()) {
            executors[slot(Algorithm::CoarseDrop)] =
                Some(Box::new(CoarseExecutor::new(c.clone(), true)));
        }

        let planner = want_auto.then(|| {
            let costs = self
                .calibrated
                .unwrap_or_else(|| CalibratedCosts::measured_cached(k));
            Planner::build(
                &self.store,
                remap.clone(),
                candidates.clone(),
                costs,
                coarse_theta,
                drop_theta,
            )
        });

        Engine {
            store: self.store,
            remap,
            plain,
            augmented,
            blocked,
            adapt,
            coarse,
            coarse_drop,
            tree,
            executors,
            planner,
        }
    }
}

/// The all-algorithms query engine.
pub struct Engine {
    store: RankingStore,
    remap: Arc<ItemRemap>,
    plain: Option<Arc<PlainInvertedIndex>>,
    augmented: Option<Arc<AugmentedInvertedIndex>>,
    blocked: Option<Arc<BlockedInvertedIndex>>,
    adapt: Option<Arc<AdaptSearchIndex>>,
    coarse: Option<Arc<CoarseIndex>>,
    /// Separately tuned coarse index for `CoarseDrop`, if configured.
    coarse_drop: Option<Arc<CoarseIndex>>,
    /// Corpus-wide BK-tree for top-k queries (built on request).
    tree: Option<BkTree>,
    /// One executor per built index structure, indexed by
    /// [`Algorithm::dense_index`].
    executors: Vec<Option<Box<dyn QueryExecutor>>>,
    /// The cost-model planner behind [`Algorithm::Auto`] (present on
    /// default builds and whenever `Auto` was selected).
    planner: Option<Planner>,
}

fn require<T>(index: &Option<Arc<T>>, algorithm: Algorithm) -> &T {
    index.as_deref().unwrap_or_else(|| {
        panic!(
            "index for {algorithm} was not built; include it in EngineBuilder::algorithms \
             or build the engine with the default build-everything configuration"
        )
    })
}

impl Engine {
    /// The corpus.
    pub fn store(&self) -> &RankingStore {
        &self.store
    }

    /// The corpus-wide item remap shared by all index structures.
    pub fn remap(&self) -> &Arc<ItemRemap> {
        &self.remap
    }

    /// The coarse index (for `Coarse`). Panics if it was not built.
    pub fn coarse_index(&self) -> &CoarseIndex {
        require(&self.coarse, Algorithm::Coarse)
    }

    /// The cost-model planner behind [`Algorithm::Auto`], if built.
    pub fn planner(&self) -> Option<&Planner> {
        self.planner.as_ref()
    }

    /// The executor registered for a concrete algorithm. Panics with the
    /// same diagnostic the old enum dispatch produced when the backing
    /// index was not built.
    fn executor(&self, algorithm: Algorithm) -> &dyn QueryExecutor {
        let slot = algorithm
            .dense_index()
            .expect("Auto is resolved by the planner before dispatch");
        self.executors[slot].as_deref().unwrap_or_else(|| {
            panic!(
                "index for {algorithm} was not built; include it in EngineBuilder::algorithms \
                 or build the engine with the default build-everything configuration"
            )
        })
    }

    /// A fresh scratch for this engine's queries; reuse it across queries
    /// to keep the hot path allocation-free.
    pub fn scratch(&self) -> QueryScratch {
        QueryScratch::new()
    }

    /// Runs `algorithm` for a query ranking at normalized threshold
    /// `theta ∈ [0, 1]` (convenience wrapper allocating its own scratch).
    pub fn query(
        &self,
        algorithm: Algorithm,
        query: &Ranking,
        theta: f64,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut scratch = self.scratch();
        self.query_items(
            algorithm,
            query.items(),
            raw_threshold(theta, self.store.k()),
            &mut scratch,
            stats,
        )
    }

    /// Runs `algorithm` for raw query items at a raw threshold, reusing
    /// the caller's scratch.
    pub fn query_items(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut out = Vec::new();
        self.query_into(algorithm, query, theta_raw, scratch, stats, &mut out);
        out
    }

    /// Runs `algorithm` into a caller-owned result buffer (cleared
    /// first). With a warmed-up scratch and buffer, steady-state calls
    /// perform zero heap allocations — [`Algorithm::Auto`] included.
    pub fn query_into(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let _ = self.query_into_traced(algorithm, query, theta_raw, scratch, stats, out);
    }

    /// [`Engine::query_into`] returning the [`QueryTrace`]: which
    /// executor ran (the planner's pick under [`Algorithm::Auto`]), its
    /// instrumented [`ExecStats`], and the predicted/measured costs. The
    /// batch drivers accumulate these into per-worker reports.
    pub fn query_into_traced(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> QueryTrace {
        assert_eq!(
            query.len(),
            self.store.k(),
            "query size must match the corpus ranking size"
        );
        out.clear();
        if algorithm == Algorithm::Auto {
            let planner = self.planner.as_ref().unwrap_or_else(|| {
                panic!(
                    "planner for Auto was not built; include Algorithm::Auto in \
                     EngineBuilder::algorithms or build the engine with the default \
                     build-everything configuration"
                )
            });
            let decision = planner.plan(query, theta_raw, scratch);
            let start = Instant::now();
            let exec = self.executor(decision.algorithm).execute(
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            );
            let actual_ns = start.elapsed().as_nanos() as f64;
            planner.record(&decision, actual_ns);
            QueryTrace {
                algorithm: decision.algorithm,
                planned: true,
                exec,
                predicted_ns: decision.predicted_ns,
                actual_ns,
            }
        } else {
            let exec = self.executor(algorithm).execute(
                &self.store,
                query,
                theta_raw,
                scratch,
                stats,
                out,
            );
            QueryTrace {
                algorithm,
                planned: false,
                exec,
                predicted_ns: 0.0,
                actual_ns: 0.0,
            }
        }
    }

    /// Cost-model-selected query ([`Algorithm::Auto`] shorthand): runs
    /// the predicted-cheapest candidate executor and returns which
    /// concrete algorithm the planner picked.
    pub fn query_auto(
        &self,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> Algorithm {
        self.query_into_traced(Algorithm::Auto, query, theta_raw, scratch, stats, out)
            .algorithm
    }

    /// The `neighbours` corpus rankings nearest to `query`, as ascending
    /// `(distance, id)` pairs. Exact and fully deterministic: the result
    /// is the lexicographically smallest set of `(distance, id)` pairs,
    /// so ties at the last distance resolve to the smallest ids — the
    /// invariant [`crate::shard::ShardedEngine`] relies on to merge
    /// per-shard answers bit-identically. Uses the BK-tree when
    /// [`EngineBuilder::topk_tree`] built one, otherwise an exact linear
    /// scan.
    pub fn query_topk(
        &self,
        query: &[ItemId],
        neighbours: usize,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<(u32, RankingId)> {
        assert_eq!(
            query.len(),
            self.store.k(),
            "query size must match the corpus ranking size"
        );
        if self.store.is_empty() || neighbours == 0 {
            return Vec::new();
        }
        query_pairs_into(query, &mut scratch.qp);
        match &self.tree {
            Some(tree) => knn_bktree(tree, &self.store, &scratch.qp, neighbours, stats),
            None => knn_linear(&self.store, &scratch.qp, neighbours, stats),
        }
    }

    /// Heap footprint of the engine: the corpus store plus every built
    /// index structure (and the planner's tables). Per-structure
    /// footprints are exact and each includes the (shared) remap it
    /// holds, matching Table 6's build-each-structure-alone accounting.
    pub fn heap_bytes(&self) -> usize {
        self.store.heap_bytes()
            + self.plain.as_ref().map_or(0, |i| i.heap_bytes())
            + self.augmented.as_ref().map_or(0, |i| i.heap_bytes())
            + self.blocked.as_ref().map_or(0, |i| i.heap_bytes())
            + self.adapt.as_ref().map_or(0, |i| i.heap_bytes())
            + self.coarse.as_ref().map_or(0, |i| i.heap_bytes())
            + self.coarse_drop.as_ref().map_or(0, |i| i.heap_bytes())
            + self.tree.as_ref().map_or(0, |t| t.heap_bytes())
            + self.planner.as_ref().map_or(0, |p| p.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::PositionMap;

    #[test]
    fn all_algorithms_agree_on_all_thresholds() {
        let ds = nyt_like(1000, 10, 33);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build();
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 10,
                seed: 5,
                ..Default::default()
            },
        );
        let mut scratch = engine.scratch();
        for q in &wl.queries {
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 10);
                let qmap = PositionMap::new(q);
                let mut expect: Vec<RankingId> = engine
                    .store()
                    .ids()
                    .filter(|&id| qmap.distance_to(engine.store().items(id)) <= raw)
                    .collect();
                expect.sort_unstable();
                for alg in Algorithm::ALL {
                    let mut stats = QueryStats::new();
                    let mut got = engine.query_items(alg, q, raw, &mut scratch, &mut stats);
                    got.sort_unstable();
                    assert_eq!(got, expect, "{alg} disagrees at θ={theta}");
                }
                // Auto routes through one of the above and must agree too.
                let mut stats = QueryStats::new();
                let mut got = engine.query_items(Algorithm::Auto, q, raw, &mut scratch, &mut stats);
                got.sort_unstable();
                assert_eq!(got, expect, "Auto disagrees at θ={theta}");
            }
        }
    }

    #[test]
    fn restricted_engine_builds_only_what_it_needs() {
        let ds = nyt_like(400, 10, 7);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
            .build();
        assert!(engine.plain.is_some());
        assert!(engine.augmented.is_some());
        assert!(engine.blocked.is_none());
        assert!(engine.adapt.is_none());
        assert!(engine.coarse.is_none());
        assert!(
            engine.planner.is_none(),
            "no planner without Auto in a restricted build"
        );
        // The selected algorithms agree with each other.
        let q: Vec<ItemId> = engine.store().items(RankingId(3)).to_vec();
        let raw = raw_threshold(0.2, 10);
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let mut a = engine.query_items(Algorithm::Fv, &q, raw, &mut scratch, &mut stats);
        let mut b = engine.query_items(Algorithm::ListMerge, &q, raw, &mut scratch, &mut stats);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(a.contains(&RankingId(3)));
    }

    #[test]
    fn auto_in_restricted_build_scopes_the_candidate_set() {
        let ds = nyt_like(400, 10, 19);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Auto, Algorithm::Fv, Algorithm::Coarse])
            .calibrated_costs(CalibratedCosts::nominal(10))
            .build();
        let planner = engine.planner().expect("Auto builds the planner");
        assert_eq!(planner.candidates(), &[Algorithm::Fv, Algorithm::Coarse]);
        assert!(engine.plain.is_some());
        assert!(engine.coarse.is_some());
        assert!(engine.augmented.is_none());
        assert!(engine.blocked.is_none());
        let q: Vec<ItemId> = engine.store().items(RankingId(1)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let mut out = Vec::new();
        let chosen = engine.query_auto(
            &q,
            raw_threshold(0.1, 10),
            &mut scratch,
            &mut stats,
            &mut out,
        );
        assert!(matches!(chosen, Algorithm::Fv | Algorithm::Coarse));
        assert!(out.contains(&RankingId(1)));
    }

    #[test]
    fn auto_alone_arms_all_eight_candidates() {
        let ds = nyt_like(300, 10, 23);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Auto])
            .calibrated_costs(CalibratedCosts::nominal(10))
            .build();
        assert_eq!(engine.planner().unwrap().candidates(), &Algorithm::ALL);
        for alg in Algorithm::ALL {
            // Every executor must be registered.
            let _ = engine.executor(alg);
        }
    }

    #[test]
    fn restricted_coarse_drop_shares_index_on_equal_theta_c() {
        let ds = nyt_like(300, 10, 8);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::CoarseDrop])
            .build();
        assert!(engine.coarse.is_some(), "shared index backs CoarseDrop");
        assert!(engine.coarse_drop.is_none());
        let q: Vec<ItemId> = engine.store().items(RankingId(0)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let got = engine.query_items(Algorithm::CoarseDrop, &q, 0, &mut scratch, &mut stats);
        assert!(got.contains(&RankingId(0)));
    }

    #[test]
    #[should_panic(expected = "index for Blocked+Prune was not built")]
    fn missing_index_panics_with_algorithm_name() {
        let ds = nyt_like(100, 10, 1);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let q: Vec<ItemId> = engine.store().items(RankingId(0)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::BlockedPrune, &q, 10, &mut scratch, &mut stats);
    }

    #[test]
    #[should_panic(expected = "planner for Auto was not built")]
    fn auto_without_planner_panics_with_guidance() {
        let ds = nyt_like(100, 10, 2);
        let engine = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        let q: Vec<ItemId> = engine.store().items(RankingId(0)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::Auto, &q, 10, &mut scratch, &mut stats);
    }

    #[test]
    fn topk_tree_and_linear_scan_agree_exactly() {
        let ds = nyt_like(800, 10, 19);
        let domain = ds.params.domain;
        let with_tree = EngineBuilder::new(ds.store.clone())
            .algorithms(&[Algorithm::Fv])
            .topk_tree(true)
            .build();
        let without = EngineBuilder::new(ds.store)
            .algorithms(&[Algorithm::Fv])
            .build();
        assert!(with_tree.tree.is_some());
        assert!(without.tree.is_none());
        let wl = workload(
            with_tree.store(),
            domain,
            WorkloadParams {
                num_queries: 8,
                seed: 4,
                ..Default::default()
            },
        );
        let mut s1 = with_tree.scratch();
        let mut s2 = without.scratch();
        for q in &wl.queries {
            for kn in [1usize, 5, 25, 2000] {
                let mut st = QueryStats::new();
                let a = with_tree.query_topk(q, kn, &mut s1, &mut st);
                let b = without.query_topk(q, kn, &mut s2, &mut st);
                assert_eq!(a, b, "kn={kn}");
                assert_eq!(a.len(), kn.min(800));
                assert!(
                    a.windows(2).all(|w| w[0] < w[1]),
                    "strictly ascending pairs"
                );
            }
        }
        // k = 0 and the trivial self-query edge.
        let mut st = QueryStats::new();
        assert!(with_tree
            .query_topk(&wl.queries[0], 0, &mut s1, &mut st)
            .is_empty());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::CoarseDrop.name(), "Coarse+Drop");
        assert_eq!(
            Algorithm::BlockedPruneDrop.to_string(),
            "Blocked+Prune+Drop"
        );
        assert_eq!(Algorithm::ALL.len(), 8);
        assert_eq!(Algorithm::Auto.to_string(), "Auto");
    }

    #[test]
    fn from_str_round_trips_display_and_accepts_lax_spellings() {
        for a in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
            let parsed: Algorithm = a.name().parse().expect("display name parses");
            assert_eq!(parsed, a, "round trip of {}", a.name());
        }
        assert_eq!("fv".parse::<Algorithm>().unwrap(), Algorithm::Fv);
        assert_eq!("FV-DROP".parse::<Algorithm>().unwrap(), Algorithm::FvDrop);
        assert_eq!(
            "blocked_prune_drop".parse::<Algorithm>().unwrap(),
            Algorithm::BlockedPruneDrop
        );
        assert_eq!(
            "coarse drop".parse::<Algorithm>().unwrap(),
            Algorithm::CoarseDrop
        );
        assert_eq!("auto".parse::<Algorithm>().unwrap(), Algorithm::Auto);
        let err = "nope".parse::<Algorithm>().unwrap_err();
        assert!(err.to_string().contains("unknown algorithm 'nope'"));
    }

    #[test]
    fn dense_indexes_are_a_permutation_of_the_slots() {
        let mut seen = [false; Algorithm::COUNT];
        for a in Algorithm::ALL {
            let i = a.dense_index().expect("concrete algorithms have slots");
            assert!(!seen[i], "slot {i} assigned twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(Algorithm::Auto.dense_index(), None);
    }

    #[test]
    fn traced_queries_report_the_executed_algorithm_and_exec_stats() {
        let ds = nyt_like(500, 10, 3);
        let engine = EngineBuilder::new(ds.store)
            .calibrated_costs(CalibratedCosts::nominal(10))
            .build();
        let q: Vec<ItemId> = engine.store().items(RankingId(7)).to_vec();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let mut out = Vec::new();
        let raw = raw_threshold(0.2, 10);
        let t =
            engine.query_into_traced(Algorithm::Fv, &q, raw, &mut scratch, &mut stats, &mut out);
        assert_eq!(t.algorithm, Algorithm::Fv);
        assert!(!t.planned);
        assert!(t.exec.postings_scanned > 0);
        assert!(t.exec.distance_calls > 0);
        assert_eq!(t.predicted_ns, 0.0);
        let t =
            engine.query_into_traced(Algorithm::Auto, &q, raw, &mut scratch, &mut stats, &mut out);
        assert!(t.planned);
        assert!(
            t.algorithm.dense_index().is_some(),
            "Auto resolves to a concrete algorithm"
        );
        assert!(t.predicted_ns > 0.0);
        assert!(t.actual_ns > 0.0);
    }

    #[test]
    #[should_panic(expected = "query size")]
    fn wrong_query_size_panics() {
        let ds = nyt_like(100, 10, 1);
        let engine = EngineBuilder::new(ds.store).build();
        let q: Vec<ItemId> = (0..5u32).map(ItemId).collect();
        let mut scratch = engine.scratch();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::Fv, &q, 10, &mut scratch, &mut stats);
    }
}
