//! The unified query engine: every algorithm of the paper's evaluation
//! behind one dispatch enum.
//!
//! [`Engine`] owns the corpus and all index structures; [`Algorithm`]
//! names the paper's processing techniques (Section 7, "Algorithms under
//! Investigation") minus `Minimal F&V`, which is a workload-dependent
//! oracle rather than an ad-hoc index (see
//! [`ranksim_invindex::MinimalFv`]).

use crate::coarse::CoarseIndex;
use ranksim_adaptsearch::AdaptSearchIndex;
use ranksim_invindex::{
    blocked_prune, fv, listmerge, AugmentedInvertedIndex, BlockedInvertedIndex, PlainInvertedIndex,
};
use ranksim_rankings::{raw_threshold, ItemId, QueryStats, Ranking, RankingId, RankingStore};

/// The query-processing techniques of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Filter & validate over the plain inverted index (baseline).
    Fv,
    /// F&V with Lemma 2 list dropping.
    FvDrop,
    /// Merge of id-sorted augmented lists with on-the-fly aggregation
    /// (threshold-agnostic baseline).
    ListMerge,
    /// Blocked access with NRA-style pruning.
    BlockedPrune,
    /// Blocked access with pruning and list dropping.
    BlockedPruneDrop,
    /// The coarse hybrid index.
    Coarse,
    /// The coarse hybrid index with list dropping in the filter phase.
    CoarseDrop,
    /// The AdaptSearch competitor (adaptive prefix filtering).
    AdaptSearch,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Fv,
        Algorithm::ListMerge,
        Algorithm::AdaptSearch,
        Algorithm::Coarse,
        Algorithm::CoarseDrop,
        Algorithm::BlockedPrune,
        Algorithm::BlockedPruneDrop,
        Algorithm::FvDrop,
    ];

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Fv => "F&V",
            Algorithm::FvDrop => "F&V+Drop",
            Algorithm::ListMerge => "ListMerge",
            Algorithm::BlockedPrune => "Blocked+Prune",
            Algorithm::BlockedPruneDrop => "Blocked+Prune+Drop",
            Algorithm::Coarse => "Coarse",
            Algorithm::CoarseDrop => "Coarse+Drop",
            Algorithm::AdaptSearch => "AdaptSearch",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    store: RankingStore,
    coarse_theta_c: f64,
    coarse_theta_c_drop: Option<f64>,
}

impl EngineBuilder {
    /// Starts from a corpus.
    pub fn new(store: RankingStore) -> Self {
        EngineBuilder {
            store,
            coarse_theta_c: 0.5,
            coarse_theta_c_drop: None,
        }
    }

    /// Normalized partitioning threshold `θ_C` for the `Coarse` index
    /// (paper default for the comparison figures: 0.5).
    pub fn coarse_threshold(mut self, theta_c: f64) -> Self {
        self.coarse_theta_c = theta_c;
        self
    }

    /// Separate `θ_C` for `Coarse+Drop` (the paper measured 0.06 as
    /// optimal there). Defaults to the `Coarse` threshold when unset.
    pub fn coarse_drop_threshold(mut self, theta_c: f64) -> Self {
        self.coarse_theta_c_drop = Some(theta_c);
        self
    }

    /// Builds every index structure.
    pub fn build(self) -> Engine {
        let k = self.store.k();
        let plain = PlainInvertedIndex::build(&self.store);
        let augmented = AugmentedInvertedIndex::build(&self.store);
        let blocked = BlockedInvertedIndex::build(&self.store);
        let adapt = AdaptSearchIndex::build(&self.store);
        let coarse = CoarseIndex::build(&self.store, raw_threshold(self.coarse_theta_c, k));
        let coarse_drop = match self.coarse_theta_c_drop {
            Some(t) if t != self.coarse_theta_c => {
                Some(CoarseIndex::build(&self.store, raw_threshold(t, k)))
            }
            _ => None,
        };
        Engine {
            store: self.store,
            plain,
            augmented,
            blocked,
            adapt,
            coarse,
            coarse_drop,
        }
    }
}

/// The all-algorithms query engine.
pub struct Engine {
    store: RankingStore,
    plain: PlainInvertedIndex,
    augmented: AugmentedInvertedIndex,
    blocked: BlockedInvertedIndex,
    adapt: AdaptSearchIndex,
    coarse: CoarseIndex,
    /// Separately tuned coarse index for `CoarseDrop`, if configured.
    coarse_drop: Option<CoarseIndex>,
}

impl Engine {
    /// The corpus.
    pub fn store(&self) -> &RankingStore {
        &self.store
    }

    /// The coarse index (for `Coarse`).
    pub fn coarse_index(&self) -> &CoarseIndex {
        &self.coarse
    }

    /// Runs `algorithm` for a query ranking at normalized threshold
    /// `theta ∈ [0, 1]`.
    pub fn query(
        &self,
        algorithm: Algorithm,
        query: &Ranking,
        theta: f64,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        self.query_items(
            algorithm,
            query.items(),
            raw_threshold(theta, self.store.k()),
            stats,
        )
    }

    /// Runs `algorithm` for raw query items at a raw threshold.
    pub fn query_items(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        assert_eq!(
            query.len(),
            self.store.k(),
            "query size must match the corpus ranking size"
        );
        match algorithm {
            Algorithm::Fv => fv::filter_validate(&self.plain, &self.store, query, theta_raw, stats),
            Algorithm::FvDrop => {
                fv::filter_validate_drop(&self.plain, &self.store, query, theta_raw, stats)
            }
            Algorithm::ListMerge => {
                listmerge::list_merge(&self.augmented, &self.store, query, theta_raw, stats)
            }
            Algorithm::BlockedPrune => {
                blocked_prune::blocked_prune(&self.blocked, &self.store, query, theta_raw, stats)
            }
            Algorithm::BlockedPruneDrop => blocked_prune::blocked_prune_drop(
                &self.blocked,
                &self.store,
                query,
                theta_raw,
                stats,
            ),
            Algorithm::Coarse => self
                .coarse
                .query(&self.store, query, theta_raw, false, stats),
            Algorithm::CoarseDrop => self.coarse_drop.as_ref().unwrap_or(&self.coarse).query(
                &self.store,
                query,
                theta_raw,
                true,
                stats,
            ),
            Algorithm::AdaptSearch => self.adapt.search(&self.store, query, theta_raw, stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::PositionMap;

    #[test]
    fn all_algorithms_agree_on_all_thresholds() {
        let ds = nyt_like(1000, 10, 33);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build();
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 10,
                seed: 5,
                ..Default::default()
            },
        );
        for q in &wl.queries {
            for theta in [0.0, 0.1, 0.2, 0.3] {
                let raw = raw_threshold(theta, 10);
                let qmap = PositionMap::new(q);
                let mut expect: Vec<RankingId> = engine
                    .store()
                    .ids()
                    .filter(|&id| qmap.distance_to(engine.store().items(id)) <= raw)
                    .collect();
                expect.sort_unstable();
                for alg in Algorithm::ALL {
                    let mut stats = QueryStats::new();
                    let mut got = engine.query_items(alg, q, raw, &mut stats);
                    got.sort_unstable();
                    assert_eq!(got, expect, "{alg} disagrees at θ={theta}");
                }
            }
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::CoarseDrop.name(), "Coarse+Drop");
        assert_eq!(
            Algorithm::BlockedPruneDrop.to_string(),
            "Blocked+Prune+Drop"
        );
        assert_eq!(Algorithm::ALL.len(), 8);
    }

    #[test]
    #[should_panic(expected = "query size")]
    fn wrong_query_size_panics() {
        let ds = nyt_like(100, 10, 1);
        let engine = EngineBuilder::new(ds.store).build();
        let q: Vec<ItemId> = (0..5u32).map(ItemId).collect();
        let mut stats = QueryStats::new();
        let _ = engine.query_items(Algorithm::Fv, &q, 10, &mut stats);
    }
}
