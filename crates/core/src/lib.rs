//! The coarse hybrid index for top-k-list similarity search — the primary
//! contribution of *"The Sweet Spot between Inverted Indices and
//! Metric-Space Indexing for Top-K-List Similarity Search"* (EDBT 2015).
//!
//! The coarse index blends the two classical paradigms:
//!
//! 1. the corpus is partitioned into groups of near-duplicate rankings,
//!    each within Footrule distance `θ_C` of a representative *medoid*
//!    (metric-space side, [`ranksim_metricspace::partition`]),
//! 2. only the medoids are indexed in an inverted index (set side,
//!    [`ranksim_invindex`]),
//! 3. a query with threshold `θ` probes the inverted index with the
//!    *relaxed* threshold `θ + θ_C` (Lemma 1: no false negatives) and
//!    validates each retrieved partition through its BK-subtree.
//!
//! `θ_C` trades filtering work against validation work; the analytical
//! [`CostModel`] (paper Section 5) predicts both costs from nothing but
//! the pairwise-distance distribution and the item-popularity skew, and
//! [`CostModel::optimal_theta_c`] picks the sweet spot the paper names.
//!
//! [`engine::Engine`] wraps the coarse index together with every baseline
//! and competitor algorithm of the paper's evaluation behind one enum-
//! dispatched API.

pub mod batch;
pub mod coarse;
pub mod cost;
pub mod engine;
pub mod shard;

pub use batch::{merge_reports, WorkerReport};
pub use coarse::{CoarseBuildStats, CoarseIndex};
pub use cost::calibrate::CalibratedCosts;
pub use cost::cdf::DistanceCdf;
pub use cost::model::CostModel;
pub use shard::{ShardStrategy, ShardedEngine, ShardedEngineBuilder, ShardedScratch};
