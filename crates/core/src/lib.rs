//! The coarse hybrid index for top-k-list similarity search — the primary
//! contribution of *"The Sweet Spot between Inverted Indices and
//! Metric-Space Indexing for Top-K-List Similarity Search"* (EDBT 2015).
//!
//! The coarse index blends the two classical paradigms:
//!
//! 1. the corpus is partitioned into groups of near-duplicate rankings,
//!    each within Footrule distance `θ_C` of a representative *medoid*
//!    (metric-space side, [`ranksim_metricspace::partition`]),
//! 2. only the medoids are indexed in an inverted index (set side,
//!    [`ranksim_invindex`]),
//! 3. a query with threshold `θ` probes the inverted index with the
//!    *relaxed* threshold `θ + θ_C` (Lemma 1: no false negatives) and
//!    validates each retrieved partition through its BK-subtree.
//!
//! `θ_C` trades filtering work against validation work; the analytical
//! [`CostModel`] (paper Section 5) predicts both costs from nothing but
//! the pairwise-distance distribution and the item-popularity skew, and
//! [`CostModel::optimal_theta_c`] picks the sweet spot the paper names.
//!
//! [`engine::Engine`] wraps the coarse index together with every baseline
//! and competitor algorithm of the paper's evaluation behind a uniform
//! [`ranksim_rankings::QueryExecutor`] table, and [`planner::Planner`]
//! puts the calibrated cost model in the driver's seat:
//! [`engine::Algorithm::Auto`] picks the predicted-cheapest technique per
//! `(query, θ)` and recalibrates online from measured runtimes.

pub mod batch;
pub mod coarse;
pub mod cost;
pub mod engine;
pub mod persist;
pub mod planner;
pub mod remote;
pub mod shard;
pub mod snapshot;
pub mod wal;

pub use batch::{merge_plan_reports, merge_reports, WorkerReport};
pub use coarse::{CoarseBuildStats, CoarseExecutor, CoarseIndex};
pub use cost::calibrate::CalibratedCosts;
pub use cost::cdf::DistanceCdf;
pub use cost::model::CostModel;
pub use engine::{Algorithm, Engine, EngineBuilder, ParseAlgorithmError, QueryTrace};
pub use persist::{
    load_engine, load_sharded, load_sharded_manifest, save_engine, save_sharded,
    shard_snapshot_file, LoadMode, PersistError, ShardedManifest, SnapshotMeta,
};
pub use planner::{PlanDecision, PlanStats, Planner, THETA_BUCKETS};
pub use remote::{
    serve_from_env, serve_shard, RemoteError, RemoteOptions, RemoteShardedEngine, RemoteStats,
    WorkerHello, WorkerSpec,
};
pub use shard::{
    RebalanceConfig, ShardStrategy, ShardedEngine, ShardedEngineBuilder, ShardedScratch,
};
pub use snapshot::{EngineSnapshot, Health, MutationError, SnapshotEngine};
pub use wal::{
    read_wal, FailPoint, Fault, LogOp, RecoveryReport, SyncPolicy, WalError, WalScan, WalWriter,
};
