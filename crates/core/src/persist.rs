//! Versioned zero-copy on-disk engine snapshots (the `RSSN` format).
//!
//! A snapshot captures a built [`Engine`]'s entire flat state — the
//! ranking store and slot lifecycle, the item remap, every CSR posting
//! arena, the tree node planes, the coarse index tables, the planner's
//! learned state and the mutation overlay — so a restart *opens* the
//! corpus instead of rebuilding it. The paper's indexes are all flat
//! `Vec<u32>` planes, so the format is a thin container around them:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "RSSN"
//! 4       4     version (u32 LE)
//! 8       4     section count (u32 LE)
//! 12      4     reserved, must be zero
//! 16      32×n  section table: { tag u32 | zero u32 | offset u64 |
//!               len u64 | crc32 u32 | zero u32 }
//! ...           section payloads, each 8-byte aligned, zero-padded
//! ```
//!
//! Every scalar is little-endian and widened to 8 bytes; arrays are a
//! `u64` element count followed by the raw little-endian element bytes,
//! padded to 8. Because the section table tiles the file exactly (each
//! payload starts where the previous one's padding ends and the last
//! pad ends at EOF), every byte of a snapshot is covered by *some*
//! check: magic/version/reserved bytes by direct comparison, table
//! entries by the tiling rule, payloads by a per-section CRC-32 (the
//! WAL's polynomial), inter-section padding by a must-be-zero rule.
//! The corruption sweep in `tests/persist_codec.rs` flips every byte
//! and truncates at every length to prove a damaged file is a typed
//! [`PersistError`], never a panic and never a silently-wrong engine.
//!
//! **Zero-copy loads.** The reader pulls the file into one owned
//! 8-byte-aligned buffer and reinterprets each array's payload bytes
//! with an alignment-checked `align_to` cast — one `memcpy` per array,
//! no per-posting decode. If a slice ever lands misaligned the reader
//! falls back to a checked per-element copy instead of UB.
//!
//! **Verify vs trust.** [`LoadMode::Verify`] checks every section CRC
//! before decoding (the default everywhere durability matters);
//! [`LoadMode::Trust`] skips the CRC pass for callers that just wrote
//! the file themselves or sit behind a verified transport. Structural
//! bounds checks run in both modes — `Trust` is never allowed to read
//! out of bounds or build an invariant-violating engine.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::coarse::CoarseIndexParts;
use crate::engine::{Engine, EngineConfigParts, EnginePersistParts};
use crate::planner::PlannerSaved;
use crate::shard::{ShardConfigParts, ShardedEngine, ShardedPersistParts};
use crate::wal::{crc32, WalError};
use ranksim_adaptsearch::{AdaptCostParams, AdaptIndexParts};
use ranksim_invindex::{AugmentedIndexParts, BlockedIndexParts, PlainIndexParts, PostingOrder};
use ranksim_metricspace::{BkTreeParts, PartitioningParts};
use ranksim_rankings::{RankingId, RemapParts, StoreParts};

/// File magic: "RSSN" (RankSim SNapshot).
pub const MAGIC: [u8; 4] = *b"RSSN";
/// Current container format version.
pub const FORMAT_VERSION: u32 = 2;

const HEADER_LEN: usize = 16;
const ENTRY_LEN: usize = 32;
/// Sanity bound on the section count (a real snapshot has ~12).
const MAX_SECTIONS: u32 = 4096;

const SEC_META: u32 = 1;
const SEC_STORE: u32 = 2;
const SEC_REMAP: u32 = 3;
const SEC_PLAIN: u32 = 4;
const SEC_AUGMENTED: u32 = 5;
const SEC_BLOCKED: u32 = 6;
const SEC_ADAPT: u32 = 7;
const SEC_COARSE: u32 = 8;
const SEC_COARSE_DROP: u32 = 9;
const SEC_TREE: u32 = 10;
const SEC_PLANNER: u32 = 11;
const SEC_DELTA: u32 = 12;
/// Sharded-deployment manifest (directory, medoids, per-shard map).
const SEC_MANIFEST: u32 = 32;

fn section_name(tag: u32) -> Option<&'static str> {
    Some(match tag {
        SEC_META => "meta",
        SEC_STORE => "store",
        SEC_REMAP => "remap",
        SEC_PLAIN => "plain",
        SEC_AUGMENTED => "augmented",
        SEC_BLOCKED => "blocked",
        SEC_ADAPT => "adaptsearch",
        SEC_COARSE => "coarse",
        SEC_COARSE_DROP => "coarse-drop",
        SEC_TREE => "tree",
        SEC_PLANNER => "planner",
        SEC_DELTA => "delta",
        SEC_MANIFEST => "manifest",
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Errors and load modes
// ---------------------------------------------------------------------

/// Why a snapshot could not be written or read back. Every reader
/// failure names the offending section so an operator can tell a
/// damaged posting arena from a torn header.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure (open, read, write, rename).
    Io(std::io::Error),
    /// The file does not start with the `RSSN` magic. `byte_swapped`
    /// is set when the bytes are the magic in reverse order — a file
    /// written by a hypothetical big-endian writer.
    BadMagic { found: [u8; 4], byte_swapped: bool },
    /// The container version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// A section table entry carries a tag this reader does not know.
    UnknownSection(u32),
    /// The file ends before the named section's bytes do.
    Truncated { section: &'static str },
    /// The named section's payload does not match its recorded CRC-32.
    BadChecksum { section: &'static str },
    /// The named section decoded but violates a structural invariant.
    Corrupt {
        section: &'static str,
        detail: String,
    },
    /// A section the engine cannot be rebuilt without is absent.
    MissingSection { section: &'static str },
    /// The snapshot's recorded log position disagrees with the WAL it
    /// is being recovered against.
    WalMismatch { detail: String },
    /// The companion WAL failed while recovering from or checkpointing
    /// a snapshot (scan error, replay divergence, writer failure).
    Wal(WalError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::BadMagic {
                found,
                byte_swapped,
            } => {
                if *byte_swapped {
                    write!(
                        f,
                        "bad snapshot magic {found:?}: byte-swapped RSSN \
                         (wrong-endian writer; snapshots are little-endian)"
                    )
                } else {
                    write!(f, "bad snapshot magic {found:?} (expected RSSN)")
                }
            }
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (reader supports {FORMAT_VERSION})"
                )
            }
            PersistError::UnknownSection(tag) => {
                write!(f, "unknown snapshot section tag {tag:#x}")
            }
            PersistError::Truncated { section } => {
                write!(f, "snapshot truncated inside section `{section}`")
            }
            PersistError::BadChecksum { section } => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            PersistError::Corrupt { section, detail } => {
                write!(f, "corrupt section `{section}`: {detail}")
            }
            PersistError::MissingSection { section } => {
                write!(f, "snapshot is missing required section `{section}`")
            }
            PersistError::WalMismatch { detail } => {
                write!(f, "snapshot/WAL position mismatch: {detail}")
            }
            PersistError::Wal(e) => write!(f, "companion WAL error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<WalError> for PersistError {
    fn from(e: WalError) -> Self {
        PersistError::Wal(e)
    }
}

/// How much a load pays for integrity (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Check every section's CRC-32 before decoding it. The default.
    Verify,
    /// Skip the CRC pass. Structural bounds checks still run; a
    /// damaged file still fails with a typed error, but a bit flip
    /// that survives the structural checks is not detected.
    Trust,
}

/// The durability coordinates a snapshot records: queries against the
/// loaded engine are bit-identical to a monolith that applied exactly
/// the first `log_pos` logged mutations, and the WAL to replay on top
/// starts at absolute position `wal_base`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Absolute mutation-log position folded into the snapshot.
    pub log_pos: u64,
    /// Absolute log position of the companion WAL's first record.
    pub wal_base: u64,
}

// ---------------------------------------------------------------------
// Encode primitives
// ---------------------------------------------------------------------

fn pad8(out: &mut Vec<u8>) {
    while out.len() % 8 != 0 {
        out.push(0);
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Scalars are uniformly widened to 8 bytes so array payloads always
/// start 8-byte aligned (the zero-copy cast's fast path).
fn put_u32w(out: &mut Vec<u8>, v: u32) {
    put_u64(out, v as u64);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u64(out, v as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_u32_arr(out: &mut Vec<u8>, arr: &[u32]) {
    put_u64(out, arr.len() as u64);
    if cfg!(target_endian = "little") {
        // SAFETY: u32 has no padding and u8 has alignment 1, so a
        // u32 slice is always valid to view as raw bytes; on a
        // little-endian target those bytes are the wire format.
        let bytes = unsafe { std::slice::from_raw_parts(arr.as_ptr().cast::<u8>(), arr.len() * 4) };
        out.extend_from_slice(bytes);
    } else {
        for &v in arr {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    pad8(out);
}

fn put_u64_arr(out: &mut Vec<u8>, arr: &[u64]) {
    put_u64(out, arr.len() as u64);
    if cfg!(target_endian = "little") {
        // SAFETY: as in `put_u32_arr`.
        let bytes = unsafe { std::slice::from_raw_parts(arr.as_ptr().cast::<u8>(), arr.len() * 8) };
        out.extend_from_slice(bytes);
    } else {
        for &v in arr {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    pad8(out);
}

fn put_u8_arr(out: &mut Vec<u8>, arr: &[u8]) {
    put_u64(out, arr.len() as u64);
    out.extend_from_slice(arr);
    pad8(out);
}

fn put_f64_arr(out: &mut Vec<u8>, arr: &[f64]) {
    put_u64(out, arr.len() as u64);
    for &v in arr {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    pad8(out);
}

// ---------------------------------------------------------------------
// Decode primitives
// ---------------------------------------------------------------------

/// Reinterprets payload bytes as `u32`s: one `memcpy` when the slice
/// is aligned (the owned buffer is 8-byte aligned and every array
/// payload starts on an 8-byte boundary), a checked per-element copy
/// otherwise — never UB on a hostile file.
fn cast_u32s(bytes: &[u8]) -> Vec<u32> {
    debug_assert_eq!(bytes.len() % 4, 0);
    // SAFETY: every bit pattern is a valid u32.
    let (pre, mid, suf) = unsafe { bytes.align_to::<u32>() };
    if pre.is_empty() && suf.is_empty() && cfg!(target_endian = "little") {
        mid.to_vec()
    } else {
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }
}

fn cast_u64s(bytes: &[u8]) -> Vec<u64> {
    debug_assert_eq!(bytes.len() % 8, 0);
    // SAFETY: every bit pattern is a valid u64.
    let (pre, mid, suf) = unsafe { bytes.align_to::<u64>() };
    if pre.is_empty() && suf.is_empty() && cfg!(target_endian = "little") {
        mid.to_vec()
    } else {
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

/// A bounds-checked cursor over one section's payload. Every failure
/// is a typed error naming the section.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Cur {
            buf,
            pos: 0,
            section,
        }
    }

    fn corrupt(&self, detail: impl Into<String>) -> PersistError {
        PersistError::Corrupt {
            section: self.section,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(PersistError::Truncated {
                section: self.section,
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn u32w(&mut self) -> Result<u32, PersistError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| self.corrupt(format!("scalar {v} overflows u32")))
    }

    fn boolean(&mut self) -> Result<bool, PersistError> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.corrupt(format!("boolean flag holds {v}"))),
        }
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn skip_pad(&mut self) -> Result<(), PersistError> {
        let rem = self.pos % 8;
        if rem != 0 {
            let pad = self.take(8 - rem)?;
            if pad.iter().any(|&b| b != 0) {
                return Err(self.corrupt("nonzero padding bytes"));
            }
        }
        Ok(())
    }

    fn arr_bytes(&mut self, elem: usize) -> Result<&'a [u8], PersistError> {
        let count = self.u64()? as usize;
        let nbytes = count
            .checked_mul(elem)
            .filter(|&n| n <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("array count {count} overflows the section")))?;
        let bytes = self.take(nbytes)?;
        self.skip_pad()?;
        Ok(bytes)
    }

    fn u32_arr(&mut self) -> Result<Vec<u32>, PersistError> {
        Ok(cast_u32s(self.arr_bytes(4)?))
    }

    fn u64_arr(&mut self) -> Result<Vec<u64>, PersistError> {
        Ok(cast_u64s(self.arr_bytes(8)?))
    }

    fn u8_arr(&mut self) -> Result<Vec<u8>, PersistError> {
        Ok(self.arr_bytes(1)?.to_vec())
    }

    fn f64_arr(&mut self) -> Result<Vec<f64>, PersistError> {
        Ok(cast_u64s(self.arr_bytes(8)?)
            .into_iter()
            .map(f64::from_bits)
            .collect())
    }

    /// The whole payload must be consumed: CRC-valid trailing bytes
    /// would mean the reader and writer disagree about the layout.
    fn finish(self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt(format!(
                "{} trailing bytes after the decoded payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Container assembly and parsing
// ---------------------------------------------------------------------

fn pad8_len(len: u64) -> u64 {
    len.div_ceil(8) * 8
}

fn assemble(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let table_end = HEADER_LEN + sections.len() * ENTRY_LEN;
    let total: u64 = table_end as u64
        + sections
            .iter()
            .map(|(_, p)| pad8_len(p.len() as u64))
            .sum::<u64>();
    let mut out = Vec::with_capacity(total as usize);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    let mut offset = table_end as u64;
    for (tag, payload) in sections {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        offset += pad8_len(payload.len() as u64);
    }
    for (_, payload) in sections {
        out.extend_from_slice(payload);
        pad8(&mut out);
    }
    debug_assert_eq!(out.len() as u64, total);
    out
}

fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes the assembled container crash-safely: temp sibling, fsync,
/// atomic rename, best-effort directory sync. Returns bytes written.
fn write_container(path: &Path, sections: &[(u32, Vec<u8>)]) -> Result<u64, PersistError> {
    let bytes = assemble(sections);
    let tmp = temp_sibling(path);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(bytes.len() as u64)
}

/// One owned, 8-byte-aligned copy of the file — the buffer all
/// zero-copy casts point into. `Vec<u8>` only guarantees alignment 1,
/// so the storage is a `Vec<u64>` viewed as bytes.
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn bytes(&self) -> &[u8] {
        // SAFETY: the words allocation covers at least `len` bytes
        // (len <= words.len() * 8) and u8 views of u64 storage are
        // always valid.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

fn read_aligned(path: &Path) -> Result<AlignedBuf, PersistError> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len() as usize;
    let mut words = vec![0u64; len.div_ceil(8)];
    {
        // SAFETY: the allocation holds words.len()*8 >= len bytes and
        // any byte pattern is a valid u64.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        file.read_exact(bytes)?;
    }
    Ok(AlignedBuf { words, len })
}

/// Parses the header and section table, enforcing the tiling rule
/// described in the module docs. In [`LoadMode::Verify`] every
/// section's CRC is checked here, before any payload is decoded.
fn parse_sections<'a>(buf: &'a [u8], mode: LoadMode) -> Result<Vec<(u32, &'a [u8])>, PersistError> {
    if buf.len() < HEADER_LEN {
        return Err(PersistError::Truncated { section: "header" });
    }
    let magic: [u8; 4] = buf[..4].try_into().unwrap();
    if magic != MAGIC {
        let mut swapped = MAGIC;
        swapped.reverse();
        return Err(PersistError::BadMagic {
            found: magic,
            byte_swapped: magic == swapped,
        });
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let count = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if buf[12..16] != [0u8; 4] {
        return Err(PersistError::Corrupt {
            section: "header",
            detail: "nonzero reserved bytes".to_string(),
        });
    }
    if count > MAX_SECTIONS {
        return Err(PersistError::Corrupt {
            section: "header",
            detail: format!("section count {count} exceeds the {MAX_SECTIONS} sanity bound"),
        });
    }
    let count = count as usize;
    let table_end = HEADER_LEN + count * ENTRY_LEN;
    if buf.len() < table_end {
        return Err(PersistError::Truncated {
            section: "section table",
        });
    }
    let mut entries = Vec::with_capacity(count);
    let mut seen: Vec<u32> = Vec::with_capacity(count);
    let mut expected = table_end as u64;
    for i in 0..count {
        let e = &buf[HEADER_LEN + i * ENTRY_LEN..][..ENTRY_LEN];
        let tag = u32::from_le_bytes(e[0..4].try_into().unwrap());
        let name = section_name(tag).ok_or(PersistError::UnknownSection(tag))?;
        let corrupt = |detail: String| PersistError::Corrupt {
            section: name,
            detail,
        };
        if e[4..8] != [0u8; 4] || e[28..32] != [0u8; 4] {
            return Err(corrupt(
                "nonzero reserved bytes in section entry".to_string(),
            ));
        }
        if seen.contains(&tag) {
            return Err(corrupt("duplicate section".to_string()));
        }
        seen.push(tag);
        let offset = u64::from_le_bytes(e[8..16].try_into().unwrap());
        let len = u64::from_le_bytes(e[16..24].try_into().unwrap());
        let crc = u32::from_le_bytes(e[24..28].try_into().unwrap());
        if offset != expected {
            return Err(corrupt(format!(
                "section offset {offset} does not tile (expected {expected})"
            )));
        }
        let end = offset
            .checked_add(len)
            .ok_or_else(|| corrupt(format!("section length {len} overflows")))?;
        let padded_end = pad8_len(end);
        if padded_end > buf.len() as u64 {
            return Err(PersistError::Truncated { section: name });
        }
        if buf[end as usize..padded_end as usize]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(corrupt("nonzero padding after section payload".to_string()));
        }
        expected = padded_end;
        let payload = &buf[offset as usize..end as usize];
        if mode == LoadMode::Verify && crc32(payload) != crc {
            return Err(PersistError::BadChecksum { section: name });
        }
        entries.push((tag, payload));
    }
    if expected != buf.len() as u64 {
        return Err(PersistError::Corrupt {
            section: "container",
            detail: format!(
                "file length {} does not match the section table end {expected}",
                buf.len()
            ),
        });
    }
    Ok(entries)
}

// ---------------------------------------------------------------------
// Section codecs
// ---------------------------------------------------------------------

fn enc_meta(meta: SnapshotMeta, cfg: &EngineConfigParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, meta.log_pos);
    put_u64(&mut out, meta.wal_base);
    put_f64(&mut out, cfg.coarse_theta_c);
    put_bool(&mut out, cfg.coarse_theta_c_drop.is_some());
    put_f64(&mut out, cfg.coarse_theta_c_drop.unwrap_or(0.0));
    put_bool(&mut out, cfg.selected.is_some());
    put_u32_arr(&mut out, cfg.selected.as_deref().unwrap_or(&[]));
    put_bool(&mut out, cfg.topk_tree);
    put_bool(&mut out, cfg.calibrated.is_some());
    let (ca, cb) = cfg.calibrated.unwrap_or((0.0, 0.0));
    put_f64(&mut out, ca);
    put_f64(&mut out, cb);
    put_f64(&mut out, cfg.compact_tombstone_fraction);
    put_u64(&mut out, cfg.planner_refresh_budget);
    put_u32w(&mut out, cfg.kernel);
    put_u32w(&mut out, cfg.posting_order);
    out
}

fn dec_meta(payload: &[u8]) -> Result<(SnapshotMeta, EngineConfigParts), PersistError> {
    let mut c = Cur::new(payload, "meta");
    let meta = SnapshotMeta {
        log_pos: c.u64()?,
        wal_base: c.u64()?,
    };
    let coarse_theta_c = c.f64()?;
    let has_drop = c.boolean()?;
    let drop_theta = c.f64()?;
    let has_selected = c.boolean()?;
    let selected = c.u32_arr()?;
    let topk_tree = c.boolean()?;
    let has_calibrated = c.boolean()?;
    let ca = c.f64()?;
    let cb = c.f64()?;
    let compact_tombstone_fraction = c.f64()?;
    let planner_refresh_budget = c.u64()?;
    let kernel = c.u32w()?;
    let posting_order = c.u32w()?;
    c.finish()?;
    Ok((
        meta,
        EngineConfigParts {
            coarse_theta_c,
            coarse_theta_c_drop: has_drop.then_some(drop_theta),
            selected: has_selected.then_some(selected),
            topk_tree,
            calibrated: has_calibrated.then_some((ca, cb)),
            compact_tombstone_fraction,
            planner_refresh_budget,
            kernel,
            posting_order,
        },
    ))
}

fn enc_store(p: &StoreParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32w(&mut out, p.k);
    put_u32_arr(&mut out, &p.items);
    put_u32_arr(&mut out, &p.sorted_items);
    put_u32_arr(&mut out, &p.sorted_ranks);
    put_u8_arr(&mut out, &p.slots);
    out
}

fn dec_store(payload: &[u8]) -> Result<StoreParts, PersistError> {
    let mut c = Cur::new(payload, "store");
    let p = StoreParts {
        k: c.u32w()?,
        items: c.u32_arr()?,
        sorted_items: c.u32_arr()?,
        sorted_ranks: c.u32_arr()?,
        slots: c.u8_arr()?,
    };
    c.finish()?;
    Ok(p)
}

fn enc_remap(p: &RemapParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_bool(&mut out, p.hashed);
    put_u32w(&mut out, p.len);
    put_u32_arr(&mut out, &p.keys);
    put_u32_arr(&mut out, &p.values);
    out
}

fn dec_remap(payload: &[u8]) -> Result<RemapParts, PersistError> {
    let mut c = Cur::new(payload, "remap");
    let p = RemapParts {
        hashed: c.boolean()?,
        len: c.u32w()?,
        keys: c.u32_arr()?,
        values: c.u32_arr()?,
    };
    c.finish()?;
    Ok(p)
}

fn enc_plain(p: &PlainIndexParts) -> Vec<u8> {
    let mut out = Vec::new();
    enc_plain_into(&mut out, p);
    out
}

fn enc_plain_into(out: &mut Vec<u8>, p: &PlainIndexParts) {
    put_u32w(out, p.k);
    put_u32w(out, p.indexed);
    put_u32w(out, p.order.to_tag());
    put_u32_arr(out, &p.offsets);
    put_u32_arr(out, &p.postings);
    put_u32_arr(out, &p.ranks);
}

fn dec_plain_from(c: &mut Cur<'_>) -> Result<PlainIndexParts, PersistError> {
    let k = c.u32w()?;
    let indexed = c.u32w()?;
    let order = PostingOrder::from_tag(c.u32w()?).map_err(|d| c.corrupt(d))?;
    Ok(PlainIndexParts {
        k,
        indexed,
        order,
        offsets: c.u32_arr()?,
        postings: c.u32_arr()?,
        ranks: c.u32_arr()?,
    })
}

fn dec_plain(payload: &[u8]) -> Result<PlainIndexParts, PersistError> {
    let mut c = Cur::new(payload, "plain");
    let p = dec_plain_from(&mut c)?;
    c.finish()?;
    Ok(p)
}

fn enc_augmented(p: &AugmentedIndexParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32w(&mut out, p.k);
    put_u32w(&mut out, p.indexed);
    put_u32w(&mut out, p.order.to_tag());
    put_u32_arr(&mut out, &p.offsets);
    put_u32_arr(&mut out, &p.ids);
    put_u32_arr(&mut out, &p.ranks);
    out
}

fn dec_augmented(payload: &[u8]) -> Result<AugmentedIndexParts, PersistError> {
    let mut c = Cur::new(payload, "augmented");
    let k = c.u32w()?;
    let indexed = c.u32w()?;
    let order = PostingOrder::from_tag(c.u32w()?).map_err(|d| c.corrupt(d))?;
    let p = AugmentedIndexParts {
        k,
        indexed,
        order,
        offsets: c.u32_arr()?,
        ids: c.u32_arr()?,
        ranks: c.u32_arr()?,
    };
    c.finish()?;
    Ok(p)
}

fn enc_blocked(p: &BlockedIndexParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32w(&mut out, p.k);
    put_u32w(&mut out, p.indexed);
    put_u32_arr(&mut out, &p.block_offsets);
    put_u32_arr(&mut out, &p.ids);
    out
}

fn dec_blocked(payload: &[u8]) -> Result<BlockedIndexParts, PersistError> {
    let mut c = Cur::new(payload, "blocked");
    let p = BlockedIndexParts {
        k: c.u32w()?,
        indexed: c.u32w()?,
        block_offsets: c.u32_arr()?,
        ids: c.u32_arr()?,
    };
    c.finish()?;
    Ok(p)
}

fn enc_adapt(p: &AdaptIndexParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32w(&mut out, p.k);
    put_u32w(&mut out, p.indexed);
    put_f64(&mut out, p.params.posting_cost);
    put_f64(&mut out, p.params.candidate_cost);
    put_u32w(&mut out, p.order.to_tag());
    put_u32_arr(&mut out, &p.freq);
    put_u32_arr(&mut out, &p.pos_offsets);
    put_u32_arr(&mut out, &p.ids);
    put_u32_arr(&mut out, &p.ranks);
    out
}

fn dec_adapt(payload: &[u8]) -> Result<AdaptIndexParts, PersistError> {
    let mut c = Cur::new(payload, "adaptsearch");
    let k = c.u32w()?;
    let indexed = c.u32w()?;
    let params = AdaptCostParams {
        posting_cost: c.f64()?,
        candidate_cost: c.f64()?,
    };
    let order = PostingOrder::from_tag(c.u32w()?).map_err(|d| c.corrupt(d))?;
    let p = AdaptIndexParts {
        k,
        indexed,
        params,
        order,
        freq: c.u32_arr()?,
        pos_offsets: c.u32_arr()?,
        ids: c.u32_arr()?,
        ranks: c.u32_arr()?,
    };
    c.finish()?;
    Ok(p)
}

fn enc_bktree_into(out: &mut Vec<u8>, p: &BkTreeParts) {
    put_u32_arr(out, &p.rankings);
    put_u32_arr(out, &p.subtree_sizes);
    put_u32_arr(out, &p.child_offsets);
    put_u32_arr(out, &p.child_edges);
    put_u32_arr(out, &p.child_targets);
}

fn dec_bktree_from(c: &mut Cur<'_>) -> Result<BkTreeParts, PersistError> {
    Ok(BkTreeParts {
        rankings: c.u32_arr()?,
        subtree_sizes: c.u32_arr()?,
        child_offsets: c.u32_arr()?,
        child_edges: c.u32_arr()?,
        child_targets: c.u32_arr()?,
    })
}

fn enc_tree(p: &BkTreeParts) -> Vec<u8> {
    let mut out = Vec::new();
    enc_bktree_into(&mut out, p);
    out
}

fn dec_tree(payload: &[u8]) -> Result<BkTreeParts, PersistError> {
    let mut c = Cur::new(payload, "tree");
    let p = dec_bktree_from(&mut c)?;
    c.finish()?;
    Ok(p)
}

const EMPTY_BKTREE: BkTreeParts = BkTreeParts {
    rankings: Vec::new(),
    subtree_sizes: Vec::new(),
    child_offsets: Vec::new(),
    child_edges: Vec::new(),
    child_targets: Vec::new(),
};

fn enc_partitioning_into(out: &mut Vec<u8>, p: &PartitioningParts) {
    put_u32w(out, p.theta_c_raw);
    put_bool(out, p.arena.is_some());
    enc_bktree_into(out, p.arena.as_ref().unwrap_or(&EMPTY_BKTREE));
    put_u32_arr(out, &p.medoids);
    put_u32_arr(out, &p.sizes);
    put_u32_arr(out, &p.medoid_nodes);
    put_u32_arr(out, &p.root_offsets);
    put_u32_arr(out, &p.roots);
    put_u64(out, p.trees.len() as u64);
    for t in &p.trees {
        enc_bktree_into(out, t);
    }
}

fn dec_partitioning_from(c: &mut Cur<'_>) -> Result<PartitioningParts, PersistError> {
    let theta_c_raw = c.u32w()?;
    let has_arena = c.boolean()?;
    let arena = dec_bktree_from(c)?;
    let medoids = c.u32_arr()?;
    let sizes = c.u32_arr()?;
    let medoid_nodes = c.u32_arr()?;
    let root_offsets = c.u32_arr()?;
    let roots = c.u32_arr()?;
    let ntrees = c.u64()? as usize;
    if ntrees > c.buf.len() {
        return Err(c.corrupt(format!(
            "partitioning tree count {ntrees} overflows the section"
        )));
    }
    let mut trees = Vec::with_capacity(ntrees);
    for _ in 0..ntrees {
        trees.push(dec_bktree_from(c)?);
    }
    Ok(PartitioningParts {
        theta_c_raw,
        arena: has_arena.then_some(arena),
        medoids,
        sizes,
        medoid_nodes,
        root_offsets,
        roots,
        trees,
    })
}

fn enc_coarse(p: &CoarseIndexParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32w(&mut out, p.theta_c_raw);
    enc_partitioning_into(&mut out, &p.partitioning);
    enc_plain_into(&mut out, &p.medoid_index);
    put_u32_arr(&mut out, &p.medoid_to_partition);
    put_u32_arr(&mut out, &p.extra_medoid_ids);
    put_u32_arr(&mut out, &p.extra_medoid_partitions);
    out
}

fn dec_coarse(payload: &[u8], section: &'static str) -> Result<CoarseIndexParts, PersistError> {
    let mut c = Cur::new(payload, section);
    let p = CoarseIndexParts {
        theta_c_raw: c.u32w()?,
        partitioning: dec_partitioning_from(&mut c)?,
        medoid_index: dec_plain_from(&mut c)?,
        medoid_to_partition: c.u32_arr()?,
        extra_medoid_ids: c.u32_arr()?,
        extra_medoid_partitions: c.u32_arr()?,
    };
    c.finish()?;
    Ok(p)
}

fn enc_planner(p: &PlannerSaved) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, p.n);
    put_u32w(&mut out, p.k);
    put_u32w(&mut out, p.d_max);
    put_f64(&mut out, p.footrule_ns);
    put_f64(&mut out, p.merge_posting_ns);
    put_f64(&mut out, p.zipf_s);
    put_bool(&mut out, p.degenerate);
    put_u32w(&mut out, p.coarse_theta_c_raw);
    put_u32w(&mut out, p.coarse_drop_theta_c_raw);
    put_u64(&mut out, p.pending_mutations);
    put_u32_arr(&mut out, &p.candidates);
    put_u32_arr(&mut out, &p.freqs);
    put_f64_arr(&mut out, &p.cdf_prefix);
    put_f64_arr(&mut out, &p.coarse_cost);
    put_f64_arr(&mut out, &p.coarse_drop_cost);
    put_u64_arr(&mut out, &p.wall_means);
    put_u64_arr(&mut out, &p.raw_means);
    put_u64_arr(&mut out, &p.observations);
    put_u64_arr(&mut out, &p.explored);
    put_u64_arr(&mut out, &p.incumbent);
    put_u64_arr(&mut out, &p.pruned_rates);
    put_u64_arr(&mut out, &p.skip_rates);
    out
}

fn dec_planner(payload: &[u8]) -> Result<PlannerSaved, PersistError> {
    let mut c = Cur::new(payload, "planner");
    let p = PlannerSaved {
        n: c.u64()?,
        k: c.u32w()?,
        d_max: c.u32w()?,
        footrule_ns: c.f64()?,
        merge_posting_ns: c.f64()?,
        zipf_s: c.f64()?,
        degenerate: c.boolean()?,
        coarse_theta_c_raw: c.u32w()?,
        coarse_drop_theta_c_raw: c.u32w()?,
        pending_mutations: c.u64()?,
        candidates: c.u32_arr()?,
        freqs: c.u32_arr()?,
        cdf_prefix: c.f64_arr()?,
        coarse_cost: c.f64_arr()?,
        coarse_drop_cost: c.f64_arr()?,
        wall_means: c.u64_arr()?,
        raw_means: c.u64_arr()?,
        observations: c.u64_arr()?,
        explored: c.u64_arr()?,
        incumbent: c.u64_arr()?,
        pruned_rates: c.u64_arr()?,
        skip_rates: c.u64_arr()?,
    };
    c.finish()?;
    Ok(p)
}

fn enc_delta(p: &EnginePersistParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32_arr(&mut out, &p.delta);
    put_u32_arr(&mut out, &p.delta_pos);
    put_u64(&mut out, p.base_dead);
    put_u64(&mut out, p.base_live_at_build);
    out
}

fn dec_delta(payload: &[u8]) -> Result<(Vec<u32>, Vec<u32>, u64, u64), PersistError> {
    let mut c = Cur::new(payload, "delta");
    let delta = c.u32_arr()?;
    let delta_pos = c.u32_arr()?;
    let base_dead = c.u64()?;
    let base_live_at_build = c.u64()?;
    c.finish()?;
    Ok((delta, delta_pos, base_dead, base_live_at_build))
}

// ---------------------------------------------------------------------
// Public API: monolith engines
// ---------------------------------------------------------------------

/// Writes `engine`'s full state to `path` as one `RSSN` snapshot,
/// recording `meta`'s durability coordinates. The write is crash-safe
/// (temp sibling + fsync + atomic rename). Returns bytes written.
pub fn save_engine(path: &Path, engine: &Engine, meta: SnapshotMeta) -> Result<u64, PersistError> {
    let parts = engine.export_persist_parts();
    write_container(path, &engine_sections(&parts, meta))
}

fn engine_sections(parts: &EnginePersistParts, meta: SnapshotMeta) -> Vec<(u32, Vec<u8>)> {
    let mut sections: Vec<(u32, Vec<u8>)> = Vec::with_capacity(12);
    sections.push((SEC_META, enc_meta(meta, &parts.config)));
    sections.push((SEC_STORE, enc_store(&parts.store)));
    sections.push((SEC_REMAP, enc_remap(&parts.remap)));
    if let Some(p) = &parts.plain {
        sections.push((SEC_PLAIN, enc_plain(p)));
    }
    if let Some(p) = &parts.augmented {
        sections.push((SEC_AUGMENTED, enc_augmented(p)));
    }
    if let Some(p) = &parts.blocked {
        sections.push((SEC_BLOCKED, enc_blocked(p)));
    }
    if let Some(p) = &parts.adapt {
        sections.push((SEC_ADAPT, enc_adapt(p)));
    }
    if let Some(p) = &parts.coarse {
        sections.push((SEC_COARSE, enc_coarse(p)));
    }
    if let Some(p) = &parts.coarse_drop {
        sections.push((SEC_COARSE_DROP, enc_coarse(p)));
    }
    if let Some(p) = &parts.tree {
        sections.push((SEC_TREE, enc_tree(p)));
    }
    if let Some(p) = &parts.planner {
        sections.push((SEC_PLANNER, enc_planner(p)));
    }
    sections.push((SEC_DELTA, enc_delta(parts)));
    sections
}

/// Opens the snapshot at `path` and rebuilds the engine, without
/// re-deriving a single posting: every array is one bounds-checked
/// cast-and-copy out of the file buffer. Returns the engine plus the
/// durability coordinates it was saved at.
pub fn load_engine(path: &Path, mode: LoadMode) -> Result<(Engine, SnapshotMeta), PersistError> {
    let buf = read_aligned(path)?;
    decode_engine(buf.bytes(), mode)
}

fn decode_engine(bytes: &[u8], mode: LoadMode) -> Result<(Engine, SnapshotMeta), PersistError> {
    let sections = parse_sections(bytes, mode)?;
    let get = |tag: u32| sections.iter().find(|(t, _)| *t == tag).map(|(_, p)| *p);
    let require = |tag: u32, name: &'static str| {
        get(tag).ok_or(PersistError::MissingSection { section: name })
    };
    let (meta, config) = dec_meta(require(SEC_META, "meta")?)?;
    let store = dec_store(require(SEC_STORE, "store")?)?;
    let remap = dec_remap(require(SEC_REMAP, "remap")?)?;
    let (delta, delta_pos, base_dead, base_live_at_build) =
        dec_delta(require(SEC_DELTA, "delta")?)?;
    let parts = EnginePersistParts {
        store,
        remap,
        config,
        plain: get(SEC_PLAIN).map(dec_plain).transpose()?,
        augmented: get(SEC_AUGMENTED).map(dec_augmented).transpose()?,
        blocked: get(SEC_BLOCKED).map(dec_blocked).transpose()?,
        adapt: get(SEC_ADAPT).map(dec_adapt).transpose()?,
        coarse: get(SEC_COARSE)
            .map(|p| dec_coarse(p, "coarse"))
            .transpose()?,
        coarse_drop: get(SEC_COARSE_DROP)
            .map(|p| dec_coarse(p, "coarse-drop"))
            .transpose()?,
        tree: get(SEC_TREE).map(dec_tree).transpose()?,
        planner: get(SEC_PLANNER).map(dec_planner).transpose()?,
        delta,
        delta_pos,
        base_dead,
        base_live_at_build,
    };
    let engine = Engine::from_persist_parts(parts).map_err(|detail| PersistError::Corrupt {
        section: "engine",
        detail,
    })?;
    Ok((engine, meta))
}

// ---------------------------------------------------------------------
// Public API: sharded engines
// ---------------------------------------------------------------------

fn enc_manifest(p: &ShardedPersistParts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32w(&mut out, p.k);
    put_u64(&mut out, p.strategy as u64);
    let cfg = &p.config;
    put_f64(&mut out, cfg.coarse_theta_c);
    put_bool(&mut out, cfg.coarse_theta_c_drop.is_some());
    put_f64(&mut out, cfg.coarse_theta_c_drop.unwrap_or(0.0));
    put_bool(&mut out, cfg.selected.is_some());
    put_u32_arr(&mut out, cfg.selected.as_deref().unwrap_or(&[]));
    put_bool(&mut out, cfg.topk_trees);
    put_bool(&mut out, cfg.calibrated.is_some());
    let (ca, cb) = cfg.calibrated.unwrap_or((0.0, 0.0));
    put_f64(&mut out, ca);
    put_f64(&mut out, cb);
    put_bool(&mut out, cfg.compact_tombstone_fraction.is_some());
    put_f64(&mut out, cfg.compact_tombstone_fraction.unwrap_or(0.0));
    put_bool(&mut out, cfg.planner_refresh_budget.is_some());
    put_u64(&mut out, cfg.planner_refresh_budget.unwrap_or(0));
    put_u32w(&mut out, cfg.kernel);
    put_u32w(&mut out, cfg.posting_order);
    put_f64(&mut out, cfg.rebalance_skew_factor);
    put_u64(&mut out, cfg.rebalance_min_gap);
    put_bool(&mut out, cfg.rebalance_auto);
    put_u32w(&mut out, p.next_global);
    put_u32_arr(&mut out, &p.dir_shards);
    put_u32_arr(&mut out, &p.dir_locals);
    put_u64(&mut out, p.globals.len() as u64);
    for si in 0..p.globals.len() {
        put_bool(&mut out, p.engine_present[si]);
        put_bool(&mut out, p.medoids[si].is_some());
        put_u32_arr(&mut out, p.medoids[si].as_deref().unwrap_or(&[]));
        put_u32_arr(&mut out, &p.globals[si]);
    }
    out
}

fn dec_manifest(payload: &[u8]) -> Result<ShardedPersistParts, PersistError> {
    let mut c = Cur::new(payload, "manifest");
    let k = c.u32w()?;
    let strategy = match c.u64()? {
        s @ 0..=1 => s as u8,
        s => return Err(c.corrupt(format!("unknown shard strategy {s}"))),
    };
    let coarse_theta_c = c.f64()?;
    let has_drop = c.boolean()?;
    let drop_theta = c.f64()?;
    let has_selected = c.boolean()?;
    let selected = c.u32_arr()?;
    let topk_trees = c.boolean()?;
    let has_calibrated = c.boolean()?;
    let ca = c.f64()?;
    let cb = c.f64()?;
    let has_compact = c.boolean()?;
    let compact = c.f64()?;
    let has_refresh = c.boolean()?;
    let refresh = c.u64()?;
    let kernel = c.u32w()?;
    let posting_order = c.u32w()?;
    let rebalance_skew_factor = c.f64()?;
    let rebalance_min_gap = c.u64()?;
    let rebalance_auto = c.boolean()?;
    let next_global = c.u32w()?;
    let dir_shards = c.u32_arr()?;
    let dir_locals = c.u32_arr()?;
    let num_shards = c.u64()? as usize;
    if num_shards > c.buf.len() {
        return Err(c.corrupt(format!("shard count {num_shards} overflows the section")));
    }
    let mut engine_present = Vec::with_capacity(num_shards);
    let mut medoids = Vec::with_capacity(num_shards);
    let mut globals = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        engine_present.push(c.boolean()?);
        let has_medoid = c.boolean()?;
        let medoid = c.u32_arr()?;
        medoids.push(has_medoid.then_some(medoid));
        globals.push(c.u32_arr()?);
    }
    c.finish()?;
    Ok(ShardedPersistParts {
        k,
        strategy,
        config: ShardConfigParts {
            coarse_theta_c,
            coarse_theta_c_drop: has_drop.then_some(drop_theta),
            selected: has_selected.then_some(selected),
            topk_trees,
            calibrated: has_calibrated.then_some((ca, cb)),
            compact_tombstone_fraction: has_compact.then_some(compact),
            planner_refresh_budget: has_refresh.then_some(refresh),
            kernel,
            posting_order,
            rebalance_skew_factor,
            rebalance_min_gap,
            rebalance_auto,
        },
        medoids,
        dir_shards,
        dir_locals,
        next_global,
        engine_present,
        globals,
    })
}

fn shard_file(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i}.rssn"))
}

/// The manifest file inside a sharded snapshot directory.
pub fn manifest_file(dir: &Path) -> PathBuf {
    dir.join("manifest.rssn")
}

/// Writes a sharded engine as a snapshot **directory**: one
/// `shard-{i}.rssn` per non-empty shard plus a `manifest.rssn` tying
/// them together (routing state, directory planes, per-shard global
/// maps). The manifest is written last, so a crash mid-save leaves the
/// previous manifest pointing at the previous (still intact) shard
/// files. Returns total bytes written.
pub fn save_sharded(dir: &Path, sharded: &ShardedEngine) -> Result<u64, PersistError> {
    std::fs::create_dir_all(dir)?;
    let parts = sharded.export_sharded_parts();
    let mut total = 0u64;
    for (i, present) in parts.engine_present.iter().enumerate() {
        if !present {
            continue;
        }
        let engine = sharded
            .shard_engine(i)
            .expect("presence flags mirror shard engines");
        let shard_parts = engine.export_persist_parts();
        total += write_container(
            &shard_file(dir, i),
            &engine_sections(&shard_parts, SnapshotMeta::default()),
        )?;
    }
    total += write_container(&manifest_file(dir), &[(SEC_MANIFEST, enc_manifest(&parts))])?;
    Ok(total)
}

/// Opens a sharded snapshot directory written by [`save_sharded`]:
/// loads the manifest, loads every shard file it names under `mode`,
/// and reassembles the engine with full cross-file invariant checks.
pub fn load_sharded(dir: &Path, mode: LoadMode) -> Result<ShardedEngine, PersistError> {
    let buf = read_aligned(&manifest_file(dir))?;
    let sections = parse_sections(buf.bytes(), mode)?;
    let payload = sections
        .iter()
        .find(|(t, _)| *t == SEC_MANIFEST)
        .map(|(_, p)| *p)
        .ok_or(PersistError::MissingSection {
            section: "manifest",
        })?;
    let parts = dec_manifest(payload)?;
    let mut engines = Vec::with_capacity(parts.engine_present.len());
    for (i, present) in parts.engine_present.iter().enumerate() {
        engines.push(if *present {
            let (engine, _) = load_engine(&shard_file(dir, i), mode)?;
            Some(engine)
        } else {
            None
        });
    }
    ShardedEngine::from_sharded_parts(parts, engines).map_err(|detail| PersistError::Corrupt {
        section: "manifest",
        detail,
    })
}

/// The router-facing view of a sharded snapshot directory: everything a
/// process that fans queries out to **per-shard worker processes** needs
/// without loading any shard engine into its own address space — the
/// per-shard snapshot paths to spawn workers from, and the local→global
/// ranking-id maps to translate worker answers through.
#[derive(Debug, Clone)]
pub struct ShardedManifest {
    /// The ranking size every shard serves.
    pub k: usize,
    /// Configured shard count (including empty shards).
    pub num_shards: usize,
    /// Which shards hold rankings (and thus a snapshot file + worker).
    pub engine_present: Vec<bool>,
    /// Per shard: the global id of each local slot, ascending — the
    /// translation a router applies to worker-local result ids.
    pub globals: Vec<Vec<RankingId>>,
}

impl ShardedManifest {
    /// Total rankings across all shards.
    pub fn len(&self) -> usize {
        self.globals.iter().map(Vec::len).sum()
    }

    /// Whether the snapshot holds no rankings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The snapshot file of shard `i` inside a sharded snapshot directory
/// (what [`save_sharded`] wrote and a shard worker process loads).
pub fn shard_snapshot_file(dir: &Path, i: usize) -> PathBuf {
    shard_file(dir, i)
}

/// Reads **only the manifest** of a sharded snapshot directory written
/// by [`save_sharded`]: the cheap, engine-free open a distributed
/// router performs before spawning one worker process per present
/// shard (each worker then loads its own `shard-{i}.rssn` via
/// [`load_engine`]). The manifest section's CRC is always verified —
/// it is small, and the id-translation maps must not be trusted blind.
pub fn load_sharded_manifest(dir: &Path) -> Result<ShardedManifest, PersistError> {
    let buf = read_aligned(&manifest_file(dir))?;
    let sections = parse_sections(buf.bytes(), LoadMode::Verify)?;
    let payload = sections
        .iter()
        .find(|(t, _)| *t == SEC_MANIFEST)
        .map(|(_, p)| *p)
        .ok_or(PersistError::MissingSection {
            section: "manifest",
        })?;
    let parts = dec_manifest(payload)?;
    let num_shards = parts.globals.len();
    if parts.engine_present.len() != num_shards {
        return Err(PersistError::Corrupt {
            section: "manifest",
            detail: format!(
                "presence flags ({}) disagree with global maps ({num_shards})",
                parts.engine_present.len()
            ),
        });
    }
    Ok(ShardedManifest {
        k: parts.k as usize,
        num_shards,
        engine_present: parts.engine_present,
        globals: parts
            .globals
            .into_iter()
            .map(|g| g.into_iter().map(RankingId).collect())
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Algorithm, EngineBuilder};
    use ranksim_datasets::nyt_like;
    use ranksim_rankings::{raw_threshold, QueryStats, RankingId};

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ranksim-persist-{tag}-{}.rssn", std::process::id()));
        p
    }

    fn built_engine(n: usize, seed: u64) -> Engine {
        let ds = nyt_like(n, 8, seed);
        EngineBuilder::new(ds.store)
            .coarse_threshold(0.4)
            .coarse_drop_threshold(0.06)
            .build()
    }

    #[test]
    fn round_trip_preserves_answers() {
        let path = temp_path("roundtrip");
        let engine = built_engine(250, 5);
        save_engine(&path, &engine, SnapshotMeta::default()).unwrap();
        for mode in [LoadMode::Verify, LoadMode::Trust] {
            let (loaded, meta) = load_engine(&path, mode).unwrap();
            assert_eq!(meta, SnapshotMeta::default());
            let theta = raw_threshold(0.25, 8);
            let q: Vec<_> = engine.store().items(RankingId(3)).to_vec();
            let mut s1 = engine.scratch();
            let mut s2 = loaded.scratch();
            let mut stats = QueryStats::new();
            for alg in Algorithm::ALL {
                let a = engine.query_items(alg, &q, theta, &mut s1, &mut stats);
                let b = loaded.query_items(alg, &q, theta, &mut s2, &mut stats);
                assert_eq!(a, b, "{alg} diverged after a snapshot round trip");
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meta_coordinates_round_trip() {
        let path = temp_path("meta");
        let engine = built_engine(60, 9);
        let meta = SnapshotMeta {
            log_pos: 41,
            wal_base: 17,
        };
        save_engine(&path, &engine, meta).unwrap();
        let (_, got) = load_engine(&path, LoadMode::Verify).unwrap();
        assert_eq!(got, meta);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn misaligned_cast_falls_back_to_checked_copy() {
        let mut storage = vec![0u8; 4 * 5 + 1];
        for (i, chunk) in storage[1..].chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&(i as u32 + 7).to_le_bytes());
        }
        // Force the misaligned path regardless of allocator luck by
        // slicing off one byte.
        let odd = &storage[1..];
        assert_eq!(cast_u32s(odd), vec![7, 8, 9, 10, 11]);
    }

    #[test]
    fn sharded_round_trip_preserves_answers() {
        use crate::shard::{ShardStrategy, ShardedEngineBuilder};
        let mut dir = std::env::temp_dir();
        dir.push(format!("ranksim-persist-sharded-{}", std::process::id()));
        let ds = nyt_like(300, 8, 31);
        let mut b = ShardedEngineBuilder::new(8, 3, ShardStrategy::Hash)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06);
        b.extend_from_store(&ds.store);
        let mut sharded = b.build();
        for i in 0..30u32 {
            sharded.remove_ranking(RankingId(i * 7));
        }
        save_sharded(&dir, &sharded).unwrap();
        let loaded = load_sharded(&dir, LoadMode::Verify).unwrap();
        assert_eq!(loaded.len(), sharded.len());
        assert_eq!(loaded.live_len(), sharded.live_len());
        let theta = raw_threshold(0.25, 8);
        let mut s1 = sharded.scratch();
        let mut s2 = loaded.scratch();
        let mut stats = QueryStats::new();
        for qid in [1u32, 44, 160, 299] {
            let q: Vec<_> = ds.store.items(RankingId(qid)).to_vec();
            for alg in [Algorithm::Fv, Algorithm::Coarse, Algorithm::ListMerge] {
                let a = sharded.query_items(alg, &q, theta, &mut s1, &mut stats);
                let b = loaded.query_items(alg, &q, theta, &mut s2, &mut stats);
                assert_eq!(a, b, "{alg} diverged after a sharded round trip");
            }
            assert_eq!(
                sharded.query_topk(&q, 9, &mut s1, &mut stats),
                loaded.query_topk(&q, 9, &mut s2, &mut stats),
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_no_temp_left_behind() {
        let path = temp_path("atomic");
        let engine = built_engine(40, 2);
        save_engine(&path, &engine, SnapshotMeta::default()).unwrap();
        assert!(!temp_sibling(&path).exists());
        // Overwrite in place: a second save must land atomically too.
        save_engine(&path, &engine, SnapshotMeta::default()).unwrap();
        assert!(load_engine(&path, LoadMode::Verify).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}
