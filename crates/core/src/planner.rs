//! The cost-model query planner behind [`Algorithm::Auto`].
//!
//! The paper's central claim is that neither inverted indices nor
//! metric-space indexing wins everywhere — a calibrated cost model should
//! pick the processing technique per query (Sections 8–9). The
//! [`Planner`] implements exactly that: at engine build time it combines
//! the Section 5 cost model (distance CDF, coupon-collector medoid count,
//! Zipf skew) with corpus statistics read straight off the CSR arenas
//! (corpus size `n`, ranking size `k`, per-item posting lengths), and at
//! query time it predicts the cost of every candidate executor for the
//! concrete `(query, θ)` at hand and dispatches to the cheapest.
//!
//! Predictions are **per query**: the inverted-index family's cost is
//! driven by the posting lengths of the query's items (gathered through
//! the shared [`ItemRemap`] in `O(k)`, no heap work), while the coarse
//! hybrid's cost is a pure function of `θ` precomputed per raw threshold
//! at build time. The analytical forms are priors: they rank candidates
//! in fresh buckets and fence the refresh rotation. Every `Auto` query
//! feeds its measured runtime back through [`Planner::record`], which
//! maintains a measured wall-time *level* per (algorithm, θ-bucket)
//! cell — the *online recalibration loop*. Observed arms are priced by
//! their levels (model errors, codegen and cache behavior wash out
//! after a handful of warm observations per cell); unobserved arms by
//! the model. Observations arrive in consecutive runs with cache-cold
//! openers discarded; new buckets explore every candidate once,
//! near-ties stick with the incumbent, and the model-plausible arms are
//! periodically re-observed so a noisy anchor can never exile the true
//! optimum permanently (the constants below tell the full story).
//!
//! Everything the planner touches per query lives in pre-sized tables or
//! the caller's [`QueryScratch`] (`plan_freqs`), so steady-state `Auto`
//! queries stay allocation-free — the invariant
//! `crates/core/tests/alloc_free.rs` enforces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cost::calibrate::CalibratedCosts;
use crate::cost::model::CostModel;
use crate::engine::{Algorithm, QueryTrace};
use ranksim_invindex::drop::omega;
use ranksim_invindex::PostingOrder;
use ranksim_rankings::{max_distance, ExecStats, ItemId, ItemRemap, QueryScratch, RankingStore};

/// Number of θ ranges with independent recalibration state. Raw
/// thresholds map linearly onto `0..THETA_BUCKETS`.
pub const THETA_BUCKETS: usize = 16;

/// EWMA step of the level-tracking loop.
const ALPHA: f64 = 0.25;

/// Length of one forced exploration *run* per candidate and θ-bucket
/// before the planner starts exploiting. Recording only ever updates the
/// *picked* arm, so without seeding every arm the planner could sit on a
/// good-but-not-best candidate forever (it never observes that an
/// unpicked arm is cheaper). Observations come in **consecutive runs**,
/// not interleaved single shots: measured switch penalties (cold caches,
/// scratch growth) decay over the first few queries after an executor
/// change, so each run's opening [`RUN_WARMUP`] observations are marked
/// provisional and discarded.
pub const EXPLORE_ROUNDS: usize = 4;

/// Provisional (discarded) openers of every run.
const RUN_WARMUP: u64 = 2;

/// Exploiting plans between full candidate repricings: in between, the
/// bucket's incumbent runs via a fast path that prices only itself
/// (planning overhead is a real tax on microsecond queries; per-query
/// switching inside one bucket is rare enough that an 8-query repricing
/// cadence loses nothing measurable).
const PRICE_EVERY: u64 = 8;

/// Period (in exploiting plans per bucket) of the re-observation refresh.
const REFRESH_EVERY: u64 = 64;
/// Length of one refresh run (the first [`RUN_WARMUP`] provisional).
const REFRESH_RUN: u64 = 4;
/// Band (× the cheapest *analytical* cost) an arm must be within to be
/// refresh-eligible. Eligibility is judged on the raw model on purpose:
/// measured levels can be poisoned by noisy anchors in either direction
/// — an unluckily-low anchor on the winner would otherwise price every
/// challenger out of the refresh rotation permanently — while the
/// analytical ranking is observation-independent and keeps every
/// model-plausible arm under periodic re-observation.
const REFRESH_BAND: f64 = 6.0;

/// Refresh windows per bucket before the refresh retires. By then every
/// plausible arm has been re-observed repeatedly and the levels have
/// converged; perpetual detours would be pure tax. A retired bucket
/// still adapts: the incumbent's level keeps tracking via exploit
/// records, and if it drifts above a challenger's frozen price the
/// argmin switches and the challenger's level resumes updating.
const REFRESH_MAX_WINDOWS: u64 = 12;

/// Near-tie stickiness: the incumbent (last exploited pick) keeps the
/// bucket while priced within `HYSTERESIS ×` of the argmin. Per-query
/// flip-flopping between near-tied executors thrashes their working sets
/// against each other — running the incumbent in streaks matches the
/// cache behavior the arms were calibrated under.
const HYSTERESIS: f64 = 1.25;

/// Fixed per-query work every algorithm pays regardless of posting
/// volume — building the flat query map, bumping the scratch epochs, and
/// per-list bookkeeping across the k probes — expressed in units of
/// posting-merge cost per query item. Without this floor the model
/// predicts near-zero cost for rare-item queries under the drop-family
/// algorithms, and a single measured observation then records a 20–50×
/// ratio that poisons the arm's correction multiplicatively.
const PER_ITEM_OVERHEAD_POSTINGS: f64 = 12.0;

/// Per-posting work of ListMerge relative to the calibrated merge
/// primitive (three epoch-cell updates per posting instead of one mark).
/// A prior only — the recalibration loop refines it online.
const LISTMERGE_POSTING_FACTOR: f64 = 3.0;
/// ListMerge locality penalty under [`PostingOrder::SuffixBound`]:
/// suffix-bound postings are no longer id-sorted, so ListMerge's
/// counter-merge loses its sequential epoch-cell access pattern —
/// measured at ~0.90× throughput at loose θ (see `docs/perf.md`,
/// "Posting order"). The prior prices that regression in so `Auto` on a
/// suffix-bound engine stops preferring a measurably regressing arm;
/// the recalibration loop refines it online like every other factor.
const LISTMERGE_SUFFIX_BOUND_PENALTY: f64 = 1.0 / 0.90;
/// Per-posting work of the blocked scans (rank-block bookkeeping + NRA
/// bound updates). Prior, refined online.
const BLOCKED_POSTING_FACTOR: f64 = 2.0;
/// Per-posting work of AdaptSearch's delta-list probes. Prior, refined
/// online.
const ADAPT_POSTING_FACTOR: f64 = 1.5;

/// What the planner decided for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanDecision {
    /// The predicted-cheapest candidate.
    pub algorithm: Algorithm,
    /// Its predicted cost in calibrated nanoseconds (0 when the planner
    /// is degenerate: a single candidate or a sub-2-ranking corpus).
    pub predicted_ns: f64,
    /// The uncorrected analytical cost of the picked arm for this query
    /// (the level cell's EWMA denominator; also the price itself while
    /// the cell has no observations yet).
    pub raw_ns: f64,
    /// The θ-bucket the decision was made (and is recalibrated) in.
    pub bucket: usize,
    /// `true` when [`Planner::record`] must discard the observation:
    /// the opening queries of an exploration/refresh run (the executor
    /// just switched and runs cache-cold) and fast-path picks (their
    /// price is served from the level cell without a per-query model
    /// evaluation, so recording them would pair walls with a stale
    /// denominator).
    pub provisional: bool,
}

/// Accumulated planning telemetry (per worker, per batch, per sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanStats {
    /// How often each concrete algorithm was picked, indexed by
    /// [`Algorithm::dense_index`].
    pub picks: [u64; Algorithm::COUNT],
    /// Queries that went through the planner.
    pub planned: u64,
    /// Sum of predicted costs (calibrated ns).
    pub predicted_ns: f64,
    /// Sum of measured executor runtimes (wall ns).
    pub actual_ns: f64,
}

impl Default for PlanStats {
    fn default() -> Self {
        PlanStats {
            picks: [0; Algorithm::COUNT],
            planned: 0,
            predicted_ns: 0.0,
            actual_ns: 0.0,
        }
    }
}

impl PlanStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one query trace in (no-op for non-`Auto` traces).
    pub fn record(&mut self, trace: &QueryTrace) {
        if !trace.planned {
            return;
        }
        if let Some(slot) = trace.algorithm.dense_index() {
            self.picks[slot] += 1;
        }
        self.planned += 1;
        self.predicted_ns += trace.predicted_ns;
        self.actual_ns += trace.actual_ns;
    }

    /// Folds another accumulator in (batch-worker merge).
    pub fn merge(&mut self, other: &PlanStats) {
        for (a, b) in self.picks.iter_mut().zip(other.picks) {
            *a += b;
        }
        self.planned += other.planned;
        self.predicted_ns += other.predicted_ns;
        self.actual_ns += other.actual_ns;
    }

    /// Times `algorithm` was picked.
    pub fn picks_of(&self, algorithm: Algorithm) -> u64 {
        algorithm.dense_index().map_or(0, |s| self.picks[s])
    }
}

/// Fills the θ-indexed modeled `Coarse` cost table for one `θ_C` — the
/// single home of the Section 5 coarse cost term, shared by
/// [`Planner::build`] and [`Planner::refresh_corpus_stats`] so build-time
/// and refresh-time predictions can never drift apart. The breakdown's
/// filter term depends only on `θ_C`; only the validation term varies
/// with θ, through the relaxed-CDF lookup — one breakdown call plus the
/// prefix table covers the whole θ axis. `table.len()` must be
/// `d_max + 1` (= `cdf_prefix.len()`).
fn fill_coarse_table(
    table: &mut [f64],
    model: &CostModel,
    cdf_prefix: &[f64],
    n: usize,
    costs: CalibratedCosts,
    theta_c_raw: u32,
) {
    debug_assert_eq!(table.len(), cdf_prefix.len());
    let filter = model.breakdown(0, theta_c_raw).filter;
    for (d, slot) in table.iter_mut().enumerate() {
        let relaxed = (d + theta_c_raw as usize).min(cdf_prefix.len() - 1);
        *slot = filter + n as f64 * cdf_prefix[relaxed] * costs.footrule_ns;
    }
}

/// The ListMerge cost multiplier for one posting order (see
/// [`LISTMERGE_SUFFIX_BOUND_PENALTY`]). Only ListMerge's tight
/// counter-merge loop is locality-bound enough to price the ordering:
/// the windowed scans (blocked, suffix-bound early exits) are exactly
/// what the ordering *helps*, already captured by their learned skip
/// rates.
fn listmerge_scale(order: PostingOrder) -> f64 {
    match order {
        PostingOrder::SuffixBound => LISTMERGE_SUFFIX_BOUND_PENALTY,
        _ => 1.0,
    }
}

/// The per-engine query planner (one per shard in a sharded engine —
/// shards differ in size and distribution, so the same query may
/// legitimately take different paths on different shards).
pub struct Planner {
    n: usize,
    k: usize,
    d_max: u32,
    costs: CalibratedCosts,
    remap: Arc<ItemRemap>,
    /// Corpus posting length per dense item (the CSR arenas' list
    /// lengths, independent of which index structures were built).
    freqs: Vec<u32>,
    /// `P[X ≤ d]` per raw distance `d ∈ 0..=d_max` (O(1) lookups).
    cdf_prefix: Vec<f64>,
    /// Modeled `Coarse` cost per raw query threshold.
    coarse_cost: Vec<f64>,
    /// Modeled `Coarse+Drop` cost per raw query threshold.
    coarse_drop_cost: Vec<f64>,
    /// The planner's candidate set, in the paper's presentation order.
    candidates: Vec<Algorithm>,
    /// Measured wall-time level per (algorithm × bucket) cell: an EWMA
    /// over warm observed runtimes, f64 ns bits. Observed arms are
    /// priced by these *levels* (see [`Planner::cell_price`]), so a
    /// noisy observation shifts an arm's price additively-bounded
    /// instead of multiplying an unbounded ratio into it.
    wall_means: Vec<AtomicU64>,
    /// EWMA of the analytical cost over the same observations (the
    /// denominator normalizing query mix), f64 ns bits.
    raw_means: Vec<AtomicU64>,
    /// Observation counts per cell (anchor vs EWMA staging).
    observations: Vec<AtomicU64>,
    /// EWMA of the suffix-bound validation-pruning rate per cell
    /// (`validations_pruned / distance_calls` of observed executions,
    /// f64 bits in `[0, 1]`). Folded into [`Planner::raw_cost`]: a kernel
    /// that aborts most validations early makes an arm's distance term
    /// proportionally cheaper, and the model should predict that instead
    /// of waiting for the wall-time levels to discover it.
    pruned_rates: Vec<AtomicU64>,
    /// EWMA of the posting-window skip rate per cell
    /// (`postings_skipped / (entries_scanned + postings_skipped)`, f64
    /// bits in `[0, 1]`); discounts the scan terms of suffix-bound
    /// ordered arms the same way.
    skip_rates: Vec<AtomicU64>,
    /// Per-bucket exploration cursors: while below
    /// `candidates.len() · EXPLORE_ROUNDS`, planning round-robins the
    /// candidate set to seed every correction cell.
    explored: Vec<AtomicU64>,
    /// Per-bucket incumbent (last exploited pick), `slot + 1`; 0 = none.
    incumbent: Vec<AtomicU64>,
    zipf_s: f64,
    /// `true` when the corpus is too small for the cost model (< 2
    /// rankings): the planner then always picks the first candidate.
    degenerate: bool,
    /// The engine's `θ_C` settings, kept so corpus-statistic refreshes
    /// can rebuild the θ-indexed coarse tables.
    coarse_theta_c_raw: u32,
    coarse_drop_theta_c_raw: u32,
    /// Mutations applied since the last full statistics refresh (the
    /// distance-CDF refresh budget counts these).
    pending_mutations: usize,
    /// ListMerge cost multiplier derived from the engine's
    /// [`PostingOrder`]: [`LISTMERGE_SUFFIX_BOUND_PENALTY`] under
    /// `SuffixBound` (its non-id-sorted postings break ListMerge's
    /// sequential counter-merge locality), `1.0` otherwise. Derived
    /// configuration, not learned state — it is re-derived from the
    /// engine config on snapshot reload instead of being persisted.
    listmerge_scale: f64,
}

impl Planner {
    /// Builds the planner for a corpus: samples the distance CDF,
    /// estimates the Zipf skew, reads per-item posting lengths off the
    /// corpus, and precomputes the θ-indexed coarse cost tables for the
    /// engine's actual `θ_C` settings. `posting_order` is the engine's
    /// CSR posting-slice ordering — an input to the ListMerge cost term,
    /// which loses its sequential-scan locality under non-id-sorted
    /// postings (see [`LISTMERGE_SUFFIX_BOUND_PENALTY`]).
    pub fn build(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        candidates: Vec<Algorithm>,
        costs: CalibratedCosts,
        coarse_theta_c_raw: u32,
        coarse_drop_theta_c_raw: u32,
        posting_order: PostingOrder,
    ) -> Self {
        assert!(
            !candidates.is_empty(),
            "the planner needs at least one candidate algorithm"
        );
        debug_assert!(
            candidates.iter().all(|c| c.dense_index().is_some()),
            "candidates must be concrete algorithms"
        );
        let n = store.live_len();
        let k = store.k();
        let d_max = max_distance(k);
        let mut freqs = vec![0u32; remap.len()];
        for id in store.live_ids() {
            for &item in store.items(id) {
                // Unmapped items contribute no frequency mass: a partial
                // remap degrades cost estimates slightly (the planner is
                // a heuristic either way) instead of aborting the build.
                let Some(d) = remap.dense(item) else { continue };
                freqs[d as usize] += 1;
            }
        }
        let cells = |v: f64| -> Vec<AtomicU64> {
            (0..Algorithm::COUNT * THETA_BUCKETS)
                .map(|_| AtomicU64::new(v.to_bits()))
                .collect()
        };
        let wall_means = cells(0.0);
        let raw_means = cells(0.0);
        let pruned_rates = cells(0.0);
        let skip_rates = cells(0.0);
        let observations: Vec<AtomicU64> = (0..Algorithm::COUNT * THETA_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect();
        let explored: Vec<AtomicU64> = (0..THETA_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let incumbent: Vec<AtomicU64> = (0..THETA_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        if n < 2 {
            return Planner {
                n,
                k,
                d_max,
                costs,
                remap,
                freqs,
                cdf_prefix: vec![0.0; d_max as usize + 1],
                coarse_cost: vec![0.0; d_max as usize + 1],
                coarse_drop_cost: vec![0.0; d_max as usize + 1],
                candidates,
                wall_means,
                raw_means,
                observations,
                pruned_rates,
                skip_rates,
                explored,
                incumbent,
                zipf_s: 0.0,
                degenerate: true,
                coarse_theta_c_raw,
                coarse_drop_theta_c_raw,
                pending_mutations: 0,
                listmerge_scale: listmerge_scale(posting_order),
            };
        }
        // CDF sample size scales with the corpus but stays bounded; the
        // seed is a pure function of n so rebuilding is deterministic.
        let pairs = n.saturating_mul(4).clamp(2_000, 20_000);
        let model = CostModel::from_store(store, pairs, 0xC0DEC ^ n as u64, costs);
        let cdf_prefix: Vec<f64> = (0..=d_max).map(|d| model.cdf().p_leq(d)).collect();
        let mut coarse_cost = vec![0.0; d_max as usize + 1];
        let mut coarse_drop_cost = vec![0.0; d_max as usize + 1];
        fill_coarse_table(
            &mut coarse_cost,
            &model,
            &cdf_prefix,
            n,
            costs,
            coarse_theta_c_raw,
        );
        if coarse_drop_theta_c_raw == coarse_theta_c_raw {
            coarse_drop_cost.copy_from_slice(&coarse_cost);
        } else {
            fill_coarse_table(
                &mut coarse_drop_cost,
                &model,
                &cdf_prefix,
                n,
                costs,
                coarse_drop_theta_c_raw,
            );
        }
        Planner {
            n,
            k,
            d_max,
            costs,
            remap,
            freqs,
            cdf_prefix,
            coarse_cost,
            coarse_drop_cost,
            candidates,
            wall_means,
            raw_means,
            observations,
            pruned_rates,
            skip_rates,
            explored,
            incumbent,
            zipf_s: model.zipf_s(),
            degenerate: false,
            coarse_theta_c_raw,
            coarse_drop_theta_c_raw,
            pending_mutations: 0,
            listmerge_scale: listmerge_scale(posting_order),
        }
    }

    /// An independent copy with the learned state snapshotted by value:
    /// every atomic EWMA/exploration cell is copied at its current
    /// value, so the fork starts from the original's learned pricing and
    /// the two then learn independently (the planner only shapes `Auto`
    /// *picks* — all candidates are exact, so diverging learned state
    /// can never diverge results). Immutable inputs stay `Arc`-shared.
    pub(crate) fn fork(&self) -> Planner {
        let copy_cells = |v: &[AtomicU64]| -> Vec<AtomicU64> {
            v.iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect()
        };
        Planner {
            n: self.n,
            k: self.k,
            d_max: self.d_max,
            costs: self.costs,
            remap: self.remap.clone(),
            freqs: self.freqs.clone(),
            cdf_prefix: self.cdf_prefix.clone(),
            coarse_cost: self.coarse_cost.clone(),
            coarse_drop_cost: self.coarse_drop_cost.clone(),
            candidates: self.candidates.clone(),
            wall_means: copy_cells(&self.wall_means),
            raw_means: copy_cells(&self.raw_means),
            observations: copy_cells(&self.observations),
            pruned_rates: copy_cells(&self.pruned_rates),
            skip_rates: copy_cells(&self.skip_rates),
            explored: copy_cells(&self.explored),
            incumbent: copy_cells(&self.incumbent),
            zipf_s: self.zipf_s,
            degenerate: self.degenerate,
            coarse_theta_c_raw: self.coarse_theta_c_raw,
            coarse_drop_theta_c_raw: self.coarse_drop_theta_c_raw,
            pending_mutations: self.pending_mutations,
            listmerge_scale: self.listmerge_scale,
        }
    }

    /// Snapshots the planner into its flat persistence form: every
    /// atomic level/exploration cell is read at its current value (the
    /// same consistency [`Planner::fork`] provides), f64 tables travel
    /// as raw bit patterns so a reload reprices queries bit-identically.
    pub(crate) fn to_saved(&self) -> PlannerSaved {
        let copy_cells =
            |v: &[AtomicU64]| -> Vec<u64> { v.iter().map(|c| c.load(Ordering::Relaxed)).collect() };
        PlannerSaved {
            n: self.n as u64,
            k: self.k as u32,
            d_max: self.d_max,
            footrule_ns: self.costs.footrule_ns,
            merge_posting_ns: self.costs.merge_posting_ns,
            zipf_s: self.zipf_s,
            degenerate: self.degenerate,
            coarse_theta_c_raw: self.coarse_theta_c_raw,
            coarse_drop_theta_c_raw: self.coarse_drop_theta_c_raw,
            pending_mutations: self.pending_mutations as u64,
            candidates: self
                .candidates
                .iter()
                .map(|c| c.dense_index().expect("concrete candidate") as u32)
                .collect(),
            freqs: self.freqs.clone(),
            cdf_prefix: self.cdf_prefix.clone(),
            coarse_cost: self.coarse_cost.clone(),
            coarse_drop_cost: self.coarse_drop_cost.clone(),
            wall_means: copy_cells(&self.wall_means),
            raw_means: copy_cells(&self.raw_means),
            observations: copy_cells(&self.observations),
            pruned_rates: copy_cells(&self.pruned_rates),
            skip_rates: copy_cells(&self.skip_rates),
            explored: copy_cells(&self.explored),
            incumbent: copy_cells(&self.incumbent),
        }
    }

    /// Rebuilds a planner from its flat persistence form against the
    /// engine's (reloaded) remap. The learned per-(algorithm, θ-bucket)
    /// levels, exploration cursors and incumbents come back exactly, so
    /// a restarted engine plans warm: buckets that finished exploring
    /// serve the incumbent fast path immediately instead of re-running
    /// the forced exploration rounds.
    /// `posting_order` is re-derived from the engine's (separately
    /// persisted) config rather than stored in [`PlannerSaved`]: it is
    /// configuration, and deriving it keeps the snapshot format stable.
    pub(crate) fn from_saved(
        saved: PlannerSaved,
        remap: Arc<ItemRemap>,
        posting_order: PostingOrder,
    ) -> Result<Self, String> {
        let k = saved.k as usize;
        if k == 0 {
            return Err("planner k must be positive".into());
        }
        if saved.d_max != max_distance(k) {
            return Err(format!(
                "planner d_max {} disagrees with max_distance({k}) = {}",
                saved.d_max,
                max_distance(k)
            ));
        }
        if saved.candidates.is_empty() {
            return Err("planner candidate set is empty".into());
        }
        let candidates = saved
            .candidates
            .iter()
            .map(|&slot| {
                Algorithm::from_dense_index(slot as usize)
                    .ok_or_else(|| format!("planner candidate slot {slot} names no algorithm"))
            })
            .collect::<Result<Vec<Algorithm>, String>>()?;
        if saved.freqs.len() != remap.len() {
            return Err(format!(
                "planner frequency table length {} != remap size {}",
                saved.freqs.len(),
                remap.len()
            ));
        }
        let table_len = saved.d_max as usize + 1;
        if saved.cdf_prefix.len() != table_len
            || saved.coarse_cost.len() != table_len
            || saved.coarse_drop_cost.len() != table_len
        {
            return Err("planner θ-indexed tables disagree with d_max".into());
        }
        let cells = Algorithm::COUNT * THETA_BUCKETS;
        if saved.wall_means.len() != cells
            || saved.raw_means.len() != cells
            || saved.observations.len() != cells
            || saved.pruned_rates.len() != cells
            || saved.skip_rates.len() != cells
        {
            return Err(format!(
                "planner level tables must hold {cells} cells (8 algorithms × {THETA_BUCKETS} \
                 θ-buckets)"
            ));
        }
        if saved.explored.len() != THETA_BUCKETS || saved.incumbent.len() != THETA_BUCKETS {
            return Err(format!(
                "planner bucket cursors must hold {THETA_BUCKETS} cells"
            ));
        }
        if let Some(&bad) = saved
            .incumbent
            .iter()
            .find(|&&inc| inc > Algorithm::COUNT as u64)
        {
            return Err(format!("planner incumbent {bad} names no executor slot"));
        }
        let restore =
            |v: Vec<u64>| -> Vec<AtomicU64> { v.into_iter().map(AtomicU64::new).collect() };
        Ok(Planner {
            n: saved.n as usize,
            k,
            d_max: saved.d_max,
            costs: CalibratedCosts {
                footrule_ns: saved.footrule_ns,
                merge_posting_ns: saved.merge_posting_ns,
            },
            remap,
            freqs: saved.freqs,
            cdf_prefix: saved.cdf_prefix,
            coarse_cost: saved.coarse_cost,
            coarse_drop_cost: saved.coarse_drop_cost,
            candidates,
            wall_means: restore(saved.wall_means),
            raw_means: restore(saved.raw_means),
            observations: restore(saved.observations),
            pruned_rates: restore(saved.pruned_rates),
            skip_rates: restore(saved.skip_rates),
            explored: restore(saved.explored),
            incumbent: restore(saved.incumbent),
            zipf_s: saved.zipf_s,
            degenerate: saved.degenerate,
            coarse_theta_c_raw: saved.coarse_theta_c_raw,
            coarse_drop_theta_c_raw: saved.coarse_drop_theta_c_raw,
            pending_mutations: saved.pending_mutations as usize,
            listmerge_scale: listmerge_scale(posting_order),
        })
    }

    /// Folds one insertion into the corpus statistics: `n` and the
    /// posting-length table track the live corpus exactly for items the
    /// remap knows; items first seen after the engine build join the
    /// table at the next compaction (their postings live in the delta
    /// overlay until then, which no base-index cost depends on). Pure
    /// counter work — no allocation, no distance calls.
    pub fn note_insert(&mut self, items: &[ItemId]) {
        self.n += 1;
        for &item in items {
            if let Some(d) = self.remap.dense(item) {
                self.freqs[d as usize] += 1;
            }
        }
        self.pending_mutations += 1;
    }

    /// Folds one removal into the corpus statistics (see
    /// [`Planner::note_insert`]).
    pub fn note_remove(&mut self, items: &[ItemId]) {
        self.n = self.n.saturating_sub(1);
        for &item in items {
            if let Some(d) = self.remap.dense(item) {
                let f = &mut self.freqs[d as usize];
                *f = f.saturating_sub(1);
            }
        }
        self.pending_mutations += 1;
    }

    /// Mutations folded in since the last [`Planner::refresh_corpus_stats`].
    pub fn pending_mutations(&self) -> usize {
        self.pending_mutations
    }

    /// Full corpus-statistics refresh: resamples the distance CDF over
    /// the live corpus, re-reads posting lengths, re-estimates the Zipf
    /// skew and rebuilds the θ-indexed coarse cost tables. The engine
    /// triggers this once the mutation budget is exhausted (and
    /// implicitly at every compaction, which rebuilds the planner). Runs
    /// at mutation time — never on the query path — so steady-state
    /// queries stay allocation-free. The learned per-(algorithm, bucket)
    /// level cells are **kept**: they track measured wall time, which a
    /// corpus drift shifts gradually, and the EWMA keeps absorbing it.
    pub fn refresh_corpus_stats(&mut self, store: &RankingStore) {
        self.pending_mutations = 0;
        self.n = store.live_len();
        self.freqs.iter_mut().for_each(|f| *f = 0);
        for id in store.live_ids() {
            for &item in store.items(id) {
                if let Some(d) = self.remap.dense(item) {
                    self.freqs[d as usize] += 1;
                }
            }
        }
        if self.n < 2 {
            self.degenerate = true;
            return;
        }
        let pairs = self.n.saturating_mul(4).clamp(2_000, 20_000);
        let model = CostModel::from_store(store, pairs, 0xC0DEC ^ self.n as u64, self.costs);
        for d in 0..=self.d_max {
            self.cdf_prefix[d as usize] = model.cdf().p_leq(d);
        }
        // Split the borrows: the prefix table is read, the cost tables
        // written.
        let cdf_prefix = std::mem::take(&mut self.cdf_prefix);
        fill_coarse_table(
            &mut self.coarse_cost,
            &model,
            &cdf_prefix,
            self.n,
            self.costs,
            self.coarse_theta_c_raw,
        );
        if self.coarse_drop_theta_c_raw == self.coarse_theta_c_raw {
            self.coarse_drop_cost.copy_from_slice(&self.coarse_cost);
        } else {
            fill_coarse_table(
                &mut self.coarse_drop_cost,
                &model,
                &cdf_prefix,
                self.n,
                self.costs,
                self.coarse_drop_theta_c_raw,
            );
        }
        self.cdf_prefix = cdf_prefix;
        self.zipf_s = model.zipf_s();
        self.degenerate = false;
    }

    /// The candidate set, in the paper's presentation order.
    pub fn candidates(&self) -> &[Algorithm] {
        &self.candidates
    }

    /// The estimated Zipf exponent of item popularity.
    pub fn zipf_s(&self) -> f64 {
        self.zipf_s
    }

    /// The calibrated machine primitives in use.
    pub fn costs(&self) -> CalibratedCosts {
        self.costs
    }

    /// The θ-bucket a raw threshold falls into.
    pub fn bucket_of(&self, theta_raw: u32) -> usize {
        ((theta_raw.min(self.d_max) as usize * THETA_BUCKETS) / (self.d_max as usize + 1))
            .min(THETA_BUCKETS - 1)
    }

    /// Price of one arm for the bucket: its measured wall-time level
    /// once the cell has warm observations, the analytical per-query
    /// cost before. Within a bucket the level is the decision-grade
    /// signal — per-query model swings on near-ties would thrash
    /// executors against each other — while unobserved arms (fresh
    /// buckets, cold candidates) are ranked by the model.
    fn cell_price(&self, slot: usize, bucket: usize, raw_q: f64) -> f64 {
        let idx = slot * THETA_BUCKETS + bucket;
        let wall = f64::from_bits(self.wall_means[idx].load(Ordering::Relaxed));
        if wall > 0.0 {
            wall
        } else {
            raw_q
        }
    }

    /// The current measured-over-modeled correction of one (algorithm,
    /// bucket) cell: `wall_mean / raw_mean` once the cell has warm
    /// observations, 1.0 (pure model prior) before. A diagnostic of how
    /// far reality sits from the analytical prior; clamped so it stays
    /// finite under any observation history.
    pub fn correction(&self, algorithm: Algorithm, bucket: usize) -> f64 {
        let Some(slot) = algorithm.dense_index() else {
            return 1.0;
        };
        let idx = slot * THETA_BUCKETS + bucket.min(THETA_BUCKETS - 1);
        let wall = f64::from_bits(self.wall_means[idx].load(Ordering::Relaxed));
        let raw = f64::from_bits(self.raw_means[idx].load(Ordering::Relaxed));
        if wall > 0.0 && raw > 0.0 {
            (wall / raw).clamp(1e-3, 1e3)
        } else {
            1.0
        }
    }

    /// Picks the candidate for `(query, θ)`. While the bucket is still
    /// exploring (the first `candidates · EXPLORE_ROUNDS` plans), the
    /// candidate set is round-robined so every correction cell gets
    /// grounded in a measured observation; afterwards the planner
    /// exploits: it gathers the query items' posting lengths into
    /// `scratch.plan_freqs` (sorted ascending), prices every candidate,
    /// and returns the argmin — ties resolve to the earlier candidate in
    /// presentation order. No heap allocations once the scratch buffer
    /// has grown to `k`.
    pub fn plan(
        &self,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
    ) -> PlanDecision {
        let bucket = self.bucket_of(theta_raw);
        if self.degenerate || self.candidates.len() == 1 {
            return PlanDecision {
                algorithm: self.candidates[0],
                predicted_ns: 0.0,
                raw_ns: 0.0,
                bucket,
                provisional: false,
            };
        }
        let num = self.candidates.len();
        let explore_limit = (num * EXPLORE_ROUNDS) as u64;
        let turn = self.explored[bucket].fetch_add(1, Ordering::Relaxed);
        let slot_of = |alg: Algorithm| alg.dense_index().expect("concrete candidate");
        if turn >= explore_limit {
            let block = turn - explore_limit;
            let in_refresh =
                block % REFRESH_EVERY < REFRESH_RUN && block / REFRESH_EVERY < REFRESH_MAX_WINDOWS;
            let inc = self.incumbent[bucket].load(Ordering::Relaxed);
            if !in_refresh && inc > 0 && block % PRICE_EVERY != 0 {
                // Fast path: keep the incumbent and serve its price from
                // the level cell — no freq gathering, no sort, no
                // candidate pricing, and no recording (provisional): the
                // level cells only ever ingest consistent (wall, raw)
                // pairs from full-pricing queries, which sample the query
                // mix unbiasedly at 1/PRICE_EVERY rate. Planning overhead
                // is a real tax on microsecond queries, and between full
                // repricings the incumbent's tracked level is all the
                // decision needs.
                let slot = (inc - 1) as usize;
                let idx = slot * THETA_BUCKETS + bucket;
                let wall = f64::from_bits(self.wall_means[idx].load(Ordering::Relaxed));
                let raw = f64::from_bits(self.raw_means[idx].load(Ordering::Relaxed));
                if wall > 0.0 && raw > 0.0 {
                    return PlanDecision {
                        algorithm: Algorithm::from_dense_index(slot)
                            .expect("stored incumbent slot"),
                        predicted_ns: wall,
                        raw_ns: raw,
                        bucket,
                        provisional: true,
                    };
                }
            }
        }
        let mut freqs = std::mem::take(&mut scratch.plan_freqs);
        self.gather(query, &mut freqs);
        let decision = if turn < explore_limit {
            // Exploration: one run of EXPLORE_ROUNDS consecutive queries
            // per candidate; the run's openers are provisional (cold).
            let alg = self.candidates[(turn as usize / EXPLORE_ROUNDS) % num];
            let raw = self.raw_cost(alg, theta_raw, &freqs);
            PlanDecision {
                algorithm: alg,
                predicted_ns: self.cell_price(slot_of(alg), bucket, raw),
                raw_ns: raw,
                bucket,
                provisional: (turn as usize % EXPLORE_ROUNDS) < RUN_WARMUP as usize,
            }
        } else {
            let block = turn - explore_limit;
            let in_refresh =
                block % REFRESH_EVERY < REFRESH_RUN && block / REFRESH_EVERY < REFRESH_MAX_WINDOWS;
            // Full repricing: price every candidate, pick the argmin.
            let mut raws = [f64::INFINITY; Algorithm::COUNT];
            let mut prices = [f64::INFINITY; Algorithm::COUNT];
            let mut best = self.candidates[0];
            let mut best_cost = f64::INFINITY;
            for &alg in &self.candidates {
                let raw = self.raw_cost(alg, theta_raw, &freqs);
                let cost = self.cell_price(slot_of(alg), bucket, raw);
                raws[slot_of(alg)] = raw;
                prices[slot_of(alg)] = cost;
                if cost < best_cost {
                    best = alg;
                    best_cost = cost;
                }
            }
            if !in_refresh {
                // Near-tie stickiness: keep the incumbent while it stays
                // within HYSTERESIS of the argmin (streaks keep its
                // working set hot); otherwise crown the argmin.
                let inc = self.incumbent[bucket].load(Ordering::Relaxed);
                let mut pick = best;
                if inc > 0 {
                    let slot = (inc - 1) as usize;
                    if prices[slot].is_finite() && prices[slot] <= HYSTERESIS * best_cost {
                        pick = Algorithm::from_dense_index(slot).expect("stored incumbent slot");
                    }
                }
                self.incumbent[bucket].store((slot_of(pick) + 1) as u64, Ordering::Relaxed);
                PlanDecision {
                    algorithm: pick,
                    predicted_ns: prices[slot_of(pick)],
                    raw_ns: raws[slot_of(pick)],
                    bucket,
                    provisional: false,
                }
            } else {
                // Refresh run: successive windows cycle through the
                // model-plausible arms (candidate order), re-grounding
                // levels the argmin would otherwise never revisit.
                let raw_best = self
                    .candidates
                    .iter()
                    .map(|&a| raws[slot_of(a)])
                    .fold(f64::INFINITY, f64::min);
                let eligible = |alg: Algorithm| raws[slot_of(alg)] <= REFRESH_BAND * raw_best;
                let window = block / REFRESH_EVERY;
                let count = self.candidates.iter().filter(|&&a| eligible(a)).count() as u64;
                let alg = self
                    .candidates
                    .iter()
                    .copied()
                    .filter(|&a| eligible(a))
                    .nth((window % count.max(1)) as usize)
                    .unwrap_or(best);
                PlanDecision {
                    algorithm: alg,
                    predicted_ns: prices[slot_of(alg)],
                    raw_ns: raws[slot_of(alg)],
                    bucket,
                    provisional: block % REFRESH_EVERY < RUN_WARMUP,
                }
            }
        };
        scratch.plan_freqs = freqs;
        decision
    }

    /// The corrected predicted cost of one candidate for `(query, θ)` —
    /// what [`Planner::plan`] compares.
    pub fn predicted_cost(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
    ) -> f64 {
        let raw = self.raw_model_cost(algorithm, query, theta_raw, scratch);
        match algorithm.dense_index() {
            Some(slot) => self.cell_price(slot, self.bucket_of(theta_raw), raw),
            None => raw,
        }
    }

    /// The *uncorrected* analytical cost (calibrated ns) — the model
    /// prior before any online recalibration. Exposed for calibration
    /// tests and the `repro planner` report.
    pub fn raw_model_cost(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
    ) -> f64 {
        if self.degenerate {
            return 0.0;
        }
        let mut freqs = std::mem::take(&mut scratch.plan_freqs);
        self.gather(query, &mut freqs);
        let cost = self.raw_cost(algorithm, theta_raw, &freqs);
        scratch.plan_freqs = freqs;
        cost
    }

    /// Feeds one measured outcome back into the decision's (algorithm,
    /// bucket) level cell. Provisional observations (the cache-cold
    /// openers of an exploration/refresh run) are discarded. The first
    /// kept observation anchors the cell (`wall_mean = actual`,
    /// `raw_mean = raw`); later ones blend in by EWMA with the
    /// per-observation movement of the wall level clamped to [½×, 2×] —
    /// one outlier measurement cannot catapult an arm out of contention,
    /// while consistent evidence still moves the level exponentially.
    /// Lock-free (relaxed atomics) so concurrent batch workers
    /// recalibrate the shared planner without coordination; a lost update
    /// only delays convergence by one observation.
    pub fn record(&self, decision: &PlanDecision, actual_ns: f64) {
        if decision.provisional
            || decision.raw_ns <= 0.0
            || !actual_ns.is_finite()
            || actual_ns <= 0.0
        {
            return;
        }
        let Some(slot) = decision.algorithm.dense_index() else {
            return;
        };
        let idx = slot * THETA_BUCKETS + decision.bucket;
        let seen = self.observations[idx].fetch_add(1, Ordering::Relaxed);
        let wall_cell = &self.wall_means[idx];
        let raw_cell = &self.raw_means[idx];
        let wall_old = f64::from_bits(wall_cell.load(Ordering::Relaxed));
        // Anchor on the first observation — also when `seen > 0` but the
        // cell still reads pristine: two workers can race the counter, and
        // EWMA-ing against a zero anchor would clamp the cell to 0 forever.
        if seen == 0 || wall_old <= 0.0 {
            wall_cell.store(actual_ns.to_bits(), Ordering::Relaxed);
            raw_cell.store(decision.raw_ns.to_bits(), Ordering::Relaxed);
            return;
        }
        let wall_new =
            (wall_old * (1.0 - ALPHA) + ALPHA * actual_ns).clamp(wall_old * 0.5, wall_old * 2.0);
        wall_cell.store(wall_new.to_bits(), Ordering::Relaxed);
        let raw_old = f64::from_bits(raw_cell.load(Ordering::Relaxed));
        let raw_new = raw_old * (1.0 - ALPHA) + ALPHA * decision.raw_ns;
        raw_cell.store(raw_new.to_bits(), Ordering::Relaxed);
    }

    /// [`Planner::record`] plus the early-termination counters: folds the
    /// execution's validation-pruning and posting-skip rates into the
    /// decision cell's rate EWMAs, which [`Planner::raw_cost`] discounts
    /// the arm's distance and scan terms by on future plans. Unlike the
    /// wall levels, the rates are deterministic counter facts, so even
    /// provisional (cache-cold) observations update them.
    pub fn record_exec(&self, decision: &PlanDecision, actual_ns: f64, exec: &ExecStats) {
        self.record(decision, actual_ns);
        let Some(slot) = decision.algorithm.dense_index() else {
            return;
        };
        let idx = slot * THETA_BUCKETS + decision.bucket;
        let pruned_frac = if exec.distance_calls > 0 {
            exec.validations_pruned as f64 / exec.distance_calls as f64
        } else {
            0.0
        };
        let scan_total = exec.postings_scanned + exec.postings_skipped;
        let skip_frac = if scan_total > 0 {
            exec.postings_skipped as f64 / scan_total as f64
        } else {
            0.0
        };
        let fold = |cell: &AtomicU64, frac: f64| {
            let frac = frac.clamp(0.0, 1.0);
            let old = f64::from_bits(cell.load(Ordering::Relaxed));
            // Zero bits double as "never observed": anchoring there (and
            // whenever the rate decayed to exactly 0) costs nothing —
            // rates are bounded in [0, 1] — and grounds the cell in one
            // observation instead of a slow climb from the zero prior.
            let new = if old == 0.0 {
                frac
            } else {
                old * (1.0 - ALPHA) + ALPHA * frac
            };
            cell.store(new.to_bits(), Ordering::Relaxed);
        };
        fold(&self.pruned_rates[idx], pruned_frac);
        fold(&self.skip_rates[idx], skip_frac);
    }

    /// The learned validation-pruning rate of one (algorithm, θ-bucket)
    /// cell (0 before any observation).
    pub fn pruned_rate(&self, algorithm: Algorithm, bucket: usize) -> f64 {
        self.rate_cell(&self.pruned_rates, algorithm, bucket)
    }

    /// The learned posting-window skip rate of one (algorithm, θ-bucket)
    /// cell (0 before any observation).
    pub fn skip_rate(&self, algorithm: Algorithm, bucket: usize) -> f64 {
        self.rate_cell(&self.skip_rates, algorithm, bucket)
    }

    fn rate_cell(&self, cells: &[AtomicU64], algorithm: Algorithm, bucket: usize) -> f64 {
        let Some(slot) = algorithm.dense_index() else {
            return 0.0;
        };
        let idx = slot * THETA_BUCKETS + bucket.min(THETA_BUCKETS - 1);
        f64::from_bits(cells[idx].load(Ordering::Relaxed)).clamp(0.0, 1.0)
    }

    /// Heap footprint of the planner's tables.
    pub fn heap_bytes(&self) -> usize {
        self.freqs.capacity() * std::mem::size_of::<u32>()
            + self.cdf_prefix.capacity() * std::mem::size_of::<f64>()
            + self.coarse_cost.capacity() * std::mem::size_of::<f64>()
            + self.coarse_drop_cost.capacity() * std::mem::size_of::<f64>()
            + self.candidates.capacity() * std::mem::size_of::<Algorithm>()
            + (self.wall_means.capacity()
                + self.raw_means.capacity()
                + self.observations.capacity()
                + self.explored.capacity()
                + self.incumbent.capacity())
                * std::mem::size_of::<AtomicU64>()
    }

    /// Query-item posting lengths, ascending.
    fn gather(&self, query: &[ItemId], out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            query
                .iter()
                .map(|&item| self.remap.dense(item).map_or(0, |d| self.freqs[d as usize])),
        );
        out.sort_unstable();
    }

    /// Expected size of the union of the postings lists with the given
    /// lengths: `n · (1 − Π (1 − fᵢ/n))` — independent-membership
    /// approximation, exact in expectation for random corpora.
    fn union_estimate(&self, freqs: &[u32]) -> f64 {
        let n = self.n as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mut miss = 1.0;
        for &f in freqs {
            miss *= 1.0 - (f as f64 / n).min(1.0);
        }
        n * (1.0 - miss)
    }

    /// Fraction of candidates the NRA-style bounds are expected to leave
    /// for full validation at threshold `θ` (clamped CDF of `2θ`).
    fn validated_fraction(&self, theta_raw: u32) -> f64 {
        let d = (theta_raw.saturating_mul(2)).min(self.d_max) as usize;
        self.cdf_prefix[d].clamp(0.02, 1.0)
    }

    /// Lists kept by the Lemma 2 dropping policy (shortest-first).
    fn kept(&self, theta_raw: u32) -> usize {
        (self.k - omega(self.k, theta_raw).min(self.k)).max(1)
    }

    /// The analytical per-(query, θ) cost of one algorithm, in calibrated
    /// nanoseconds, over the ascending posting lengths of the query's
    /// items. Every arm carries the fixed per-query floor so ratios of
    /// actual to predicted cost stay bounded even for near-free queries.
    ///
    /// The learned early-termination rates of the arm's `(algorithm,
    /// θ-bucket)` cell discount the analytical terms: the scan terms by
    /// the observed posting-window skip rate (a window-skipped posting is
    /// two binary-search probes amortized over the whole list — ~free),
    /// and the validation terms by `0.7 ×` the observed pruning rate (an
    /// aborted validation still pays the chunks before its early exit, so
    /// at most 70 % of a validation is ever saved). A fresh planner has
    /// both rates at 0 and prices exactly the unscaled model.
    fn raw_cost(&self, algorithm: Algorithm, theta_raw: u32, freqs: &[u32]) -> f64 {
        let merge = self.costs.merge_posting_ns;
        let foot = self.costs.footrule_ns;
        let base = self.k as f64 * merge * PER_ITEM_OVERHEAD_POSTINGS;
        let sum = |fs: &[u32]| fs.iter().map(|&f| f as f64).sum::<f64>();
        let bucket = self.bucket_of(theta_raw);
        let scan_scale = 1.0 - self.rate_cell(&self.skip_rates, algorithm, bucket);
        let foot_scale = 1.0 - 0.7 * self.rate_cell(&self.pruned_rates, algorithm, bucket);
        base + match algorithm {
            Algorithm::Fv => {
                scan_scale * merge * sum(freqs) + foot_scale * foot * self.union_estimate(freqs)
            }
            Algorithm::FvDrop => {
                let kept = &freqs[..self.kept(theta_raw).min(freqs.len())];
                scan_scale * merge * sum(kept) + foot_scale * foot * self.union_estimate(kept)
            }
            Algorithm::ListMerge => {
                scan_scale * self.listmerge_scale * LISTMERGE_POSTING_FACTOR * merge * sum(freqs)
            }
            Algorithm::BlockedPrune => {
                BLOCKED_POSTING_FACTOR * merge * sum(freqs)
                    + foot_scale
                        * foot
                        * self.union_estimate(freqs)
                        * self.validated_fraction(theta_raw)
            }
            Algorithm::BlockedPruneDrop => {
                let kept = &freqs[..self.kept(theta_raw).min(freqs.len())];
                BLOCKED_POSTING_FACTOR * merge * sum(kept)
                    + foot_scale
                        * foot
                        * self.union_estimate(kept)
                        * self.validated_fraction(theta_raw)
            }
            Algorithm::AdaptSearch => {
                // ℓ = 1 prefix scheme: the (k − c + 1) rarest items' delta
                // lists, each a (prefix/k)-slice of the item's postings.
                let c = omega(self.k, theta_raw).max(1).min(self.k);
                let prefix = (self.k - c + 1).min(freqs.len()).max(1);
                let kept = &freqs[..prefix];
                let scale = prefix as f64 / self.k.max(1) as f64;
                let scanned = scale * sum(kept);
                scan_scale * ADAPT_POSTING_FACTOR * merge * scanned
                    + foot_scale * foot * scanned.min(self.union_estimate(kept))
            }
            Algorithm::Coarse => self.coarse_cost[theta_raw.min(self.d_max) as usize],
            Algorithm::CoarseDrop => self.coarse_drop_cost[theta_raw.min(self.d_max) as usize],
            Algorithm::Auto => unreachable!("Auto is resolved by the planner, not priced"),
        }
    }
}

/// Flat persistence form of a [`Planner`]: scalars plus plain vectors
/// (atomic level cells snapshotted to `u64` f64-bit patterns), the shape
/// `crate::persist` serializes into the snapshot's planner section.
/// The remap is deliberately absent — it is engine-owned state and gets
/// re-linked at load time.
#[derive(Debug, Clone)]
pub(crate) struct PlannerSaved {
    pub n: u64,
    pub k: u32,
    pub d_max: u32,
    pub footrule_ns: f64,
    pub merge_posting_ns: f64,
    pub zipf_s: f64,
    pub degenerate: bool,
    pub coarse_theta_c_raw: u32,
    pub coarse_drop_theta_c_raw: u32,
    pub pending_mutations: u64,
    /// Dense executor slots ([`Algorithm::dense_index`]).
    pub candidates: Vec<u32>,
    pub freqs: Vec<u32>,
    pub cdf_prefix: Vec<f64>,
    pub coarse_cost: Vec<f64>,
    pub coarse_drop_cost: Vec<f64>,
    /// f64 bit patterns (`Algorithm::COUNT × THETA_BUCKETS` cells).
    pub wall_means: Vec<u64>,
    /// f64 bit patterns (`Algorithm::COUNT × THETA_BUCKETS` cells).
    pub raw_means: Vec<u64>,
    pub observations: Vec<u64>,
    /// f64 bit patterns in `[0, 1]` (same cell grid).
    pub pruned_rates: Vec<u64>,
    /// f64 bit patterns in `[0, 1]` (same cell grid).
    pub skip_rates: Vec<u64>,
    pub explored: Vec<u64>,
    pub incumbent: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::{raw_threshold, QueryStats, RankingId};

    fn planner_for(n: usize, candidates: &[Algorithm]) -> (crate::engine::Engine, QueryScratch) {
        let ds = nyt_like(n, 10, 77);
        let mut sel = vec![Algorithm::Auto];
        sel.extend_from_slice(candidates);
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .algorithms(&sel)
            .calibrated_costs(CalibratedCosts::nominal(10))
            .build();
        let scratch = engine.scratch();
        (engine, scratch)
    }

    /// Drains a bucket's forced exploration phase plus the first refresh
    /// run with neutral feedback (wall = raw prediction), leaving every
    /// cell's correction at ~1 and the next plan a plain argmin.
    fn drain_exploration(
        planner: &Planner,
        q: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
    ) {
        for _ in 0..Algorithm::COUNT * EXPLORE_ROUNDS + REFRESH_RUN as usize + 1 {
            let d = planner.plan(q, theta_raw, scratch);
            planner.record(&d, d.raw_ns);
        }
    }

    #[test]
    fn exploration_round_robins_every_candidate_before_exploiting() {
        let (engine, mut scratch) = planner_for(600, &Algorithm::ALL);
        let planner = engine.planner().unwrap();
        let q: Vec<ItemId> = engine
            .store()
            .items(ranksim_rankings::RankingId(5))
            .to_vec();
        let theta = raw_threshold(0.15, 10);
        let mut seen = [0u32; Algorithm::COUNT];
        for _ in 0..Algorithm::COUNT * EXPLORE_ROUNDS {
            let d = planner.plan(&q, theta, &mut scratch);
            seen[d.algorithm.dense_index().unwrap()] += 1;
            planner.record(&d, d.raw_ns);
        }
        assert!(
            seen.iter().all(|&s| s as usize == EXPLORE_ROUNDS),
            "every candidate must be explored exactly {EXPLORE_ROUNDS}× per bucket, got {seen:?}"
        );
    }

    #[test]
    fn plan_picks_the_argmin_once_exploration_is_done() {
        let (engine, mut scratch) = planner_for(800, &Algorithm::ALL);
        let planner = engine.planner().expect("Auto builds a planner");
        assert_eq!(planner.candidates(), &Algorithm::ALL);
        let q: Vec<ItemId> = engine
            .store()
            .items(ranksim_rankings::RankingId(3))
            .to_vec();
        for theta in [0u32, 10, 30, 60] {
            drain_exploration(planner, &q, theta, &mut scratch);
            let d = planner.plan(&q, theta, &mut scratch);
            assert!(Algorithm::ALL.contains(&d.algorithm));
            assert!(d.predicted_ns.is_finite() && d.predicted_ns >= 0.0);
            assert_eq!(d.bucket, planner.bucket_of(theta));
            // The decision is the argmin over the candidate prices.
            for alg in Algorithm::ALL {
                let c = planner.predicted_cost(alg, &q, theta, &mut scratch);
                assert!(
                    c >= d.predicted_ns - 1e-9,
                    "{alg} priced below the chosen {} at θ={theta}",
                    d.algorithm
                );
            }
        }
    }

    #[test]
    fn bucket_mapping_covers_the_threshold_axis() {
        let (engine, _) = planner_for(300, &[Algorithm::Fv, Algorithm::Coarse]);
        let planner = engine.planner().unwrap();
        let d_max = max_distance(10);
        assert_eq!(planner.bucket_of(0), 0);
        assert_eq!(planner.bucket_of(d_max), THETA_BUCKETS - 1);
        assert_eq!(planner.bucket_of(d_max * 10), THETA_BUCKETS - 1);
        let mut prev = 0usize;
        for t in 0..=d_max {
            let b = planner.bucket_of(t);
            assert!(b >= prev && b < THETA_BUCKETS);
            prev = b;
        }
    }

    #[test]
    fn recalibration_moves_the_decision_toward_measured_reality() {
        let (engine, mut scratch) = planner_for(1000, &[Algorithm::Fv, Algorithm::ListMerge]);
        let planner = engine.planner().unwrap();
        let q: Vec<ItemId> = engine
            .store()
            .items(ranksim_rankings::RankingId(0))
            .to_vec();
        let theta = raw_threshold(0.1, 10);
        drain_exploration(planner, &q, theta, &mut scratch);
        let first = planner.plan(&q, theta, &mut scratch).algorithm;
        let other = if first == Algorithm::Fv {
            Algorithm::ListMerge
        } else {
            Algorithm::Fv
        };
        // Feed back observations: the chosen arm measures 40× its
        // prediction. The level EWMA must push the planner to the other
        // candidate within a few plans.
        for _ in 0..64 {
            let d = planner.plan(&q, theta, &mut scratch);
            if d.algorithm == other {
                return; // switched — recalibration worked
            }
            planner.record(&d, d.predicted_ns * 40.0);
        }
        panic!("planner never abandoned a 40×-mispredicted arm");
    }

    #[test]
    fn corrections_stay_within_clamps_and_start_at_one() {
        let (engine, mut scratch) = planner_for(400, &[Algorithm::Fv, Algorithm::Coarse]);
        let planner = engine.planner().unwrap();
        assert_eq!(planner.correction(Algorithm::Fv, 0), 1.0);
        let q: Vec<ItemId> = engine
            .store()
            .items(ranksim_rankings::RankingId(1))
            .to_vec();
        drain_exploration(planner, &q, 5, &mut scratch);
        // Fast-path picks are provisional (never recorded); walk to the
        // next full-pricing plan, which is a recordable observation.
        let mut d = planner.plan(&q, 5, &mut scratch);
        while d.provisional {
            d = planner.plan(&q, 5, &mut scratch);
        }
        for _ in 0..200 {
            planner.record(&d, d.predicted_ns * 1e9);
        }
        assert!(planner.correction(d.algorithm, d.bucket) <= 1e3);
        // Degenerate wall actuals are ignored.
        planner.record(&d, f64::NAN);
        planner.record(&d, -1.0);
        assert!(planner.correction(d.algorithm, d.bucket).is_finite());
    }

    #[test]
    fn degenerate_corpus_always_picks_the_first_candidate() {
        use ranksim_rankings::RankingStore;
        let mut store = RankingStore::new(4);
        store.push_items_unchecked(&[1, 2, 3, 4].map(ItemId));
        let engine = EngineBuilder::new(store)
            .algorithms(&[Algorithm::Auto, Algorithm::ListMerge, Algorithm::Fv])
            .calibrated_costs(CalibratedCosts::nominal(4))
            .build();
        let planner = engine.planner().unwrap();
        let mut scratch = engine.scratch();
        let q: Vec<ItemId> = [1u32, 2, 3, 4].map(ItemId).to_vec();
        let d = planner.plan(&q, 6, &mut scratch);
        // Presentation order puts Fv before ListMerge.
        assert_eq!(d.algorithm, Algorithm::Fv);
        assert_eq!(d.predicted_ns, 0.0);
    }

    /// Posting order is an input to the ListMerge cost term: on a
    /// suffix-bound engine the arm must price in the documented ~0.90×
    /// locality regression (postings are no longer id-sorted, breaking
    /// the counter-merge's sequential access), while every other arm's
    /// prior is identical across the two orders. Pinned on both orders
    /// so a regression in either direction (penalty lost, or penalty
    /// leaking into unrelated arms) fails by name.
    #[test]
    fn listmerge_prior_prices_the_suffix_bound_locality_regression() {
        let build = |order: PostingOrder| {
            let ds = nyt_like(1200, 10, 21);
            EngineBuilder::new(ds.store)
                .coarse_threshold(0.5)
                .coarse_drop_threshold(0.06)
                .calibrated_costs(CalibratedCosts::nominal(10))
                .posting_order(order)
                .build()
        };
        let id_engine = build(PostingOrder::Id);
        let sb_engine = build(PostingOrder::SuffixBound);
        let id_planner = id_engine.planner().expect("default build plans");
        let sb_planner = sb_engine.planner().expect("default build plans");
        let mut scratch = id_engine.scratch();
        let q: Vec<ItemId> = id_engine.store().items(RankingId(7)).to_vec();
        // Loose θ — exactly where the measured regression lives.
        for theta in [0.1, 0.2, 0.3] {
            let raw = raw_threshold(theta, 10);
            let id_lm = id_planner.raw_model_cost(Algorithm::ListMerge, &q, raw, &mut scratch);
            let sb_lm = sb_planner.raw_model_cost(Algorithm::ListMerge, &q, raw, &mut scratch);
            assert!(
                sb_lm > id_lm,
                "suffix-bound ListMerge must price above id-order at θ={theta}: {sb_lm} vs {id_lm}"
            );
            // The penalty applies to the posting term only (the fixed
            // per-query floor is order-independent), so the priced
            // ratio sits between 1 and the full penalty.
            assert!(
                sb_lm <= id_lm * LISTMERGE_SUFFIX_BOUND_PENALTY + 1e-6,
                "penalty overshoots the documented factor at θ={theta}"
            );
            for arm in [Algorithm::Fv, Algorithm::FvDrop, Algorithm::Coarse] {
                let a = id_planner.raw_model_cost(arm, &q, raw, &mut scratch);
                let b = sb_planner.raw_model_cost(arm, &q, raw, &mut scratch);
                assert_eq!(a, b, "{arm} prior must be posting-order-independent");
            }
        }
    }

    /// The satellite calibration check: the θ at which the *predicted*
    /// F&V and Coarse costs cross must match the crossover of the
    /// *measured* costs (actual postings/DFC counts priced with the same
    /// calibrated primitives — deterministic, no wall clocks) within two
    /// grid steps (0.10 normalized θ).
    #[test]
    fn predicted_fv_coarse_crossover_matches_measured() {
        let ds = nyt_like(2500, 10, 4);
        let domain = ds.params.domain;
        let costs = CalibratedCosts::nominal(10);
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.5)
            .algorithms(&[Algorithm::Auto, Algorithm::Fv, Algorithm::Coarse])
            .calibrated_costs(costs)
            .build();
        let planner = engine.planner().expect("Auto builds the planner");
        let wl = workload(
            engine.store(),
            domain,
            WorkloadParams {
                num_queries: 25,
                seed: 5,
                ..Default::default()
            },
        );
        let mut scratch = engine.scratch();
        let grid: Vec<f64> = (0..=8).map(|i| i as f64 * 0.05).collect();
        let unit = |s: &QueryStats| {
            s.entries_scanned as f64 * costs.merge_posting_ns
                + s.distance_calls as f64 * costs.footrule_ns
        };
        let mut pred_coarse_wins = Vec::new();
        let mut meas_coarse_wins = Vec::new();
        for &t in &grid {
            let raw = raw_threshold(t, 10);
            let (mut pf, mut pc) = (0.0f64, 0.0f64);
            let mut sf = QueryStats::new();
            let mut sc = QueryStats::new();
            let mut out = Vec::new();
            for q in &wl.queries {
                pf += planner.raw_model_cost(Algorithm::Fv, q, raw, &mut scratch);
                pc += planner.raw_model_cost(Algorithm::Coarse, q, raw, &mut scratch);
                engine.query_into(Algorithm::Fv, q, raw, &mut scratch, &mut sf, &mut out);
                engine.query_into(Algorithm::Coarse, q, raw, &mut scratch, &mut sc, &mut out);
            }
            pred_coarse_wins.push(pc < pf);
            meas_coarse_wins.push(unit(&sc) < unit(&sf));
        }
        assert!(
            meas_coarse_wins[0],
            "Coarse must win at θ=0 on clustered data for the crossover to exist"
        );
        let crossover = |wins: &[bool]| wins.iter().position(|&w| !w).unwrap_or(wins.len());
        let p = crossover(&pred_coarse_wins);
        let m = crossover(&meas_coarse_wins);
        assert!(
            p.abs_diff(m) <= 2,
            "predicted crossover at grid index {p} (θ≈{:.2}) vs measured {m} (θ≈{:.2}); \
             predicted wins {pred_coarse_wins:?}, measured wins {meas_coarse_wins:?}",
            0.05 * p as f64,
            0.05 * m as f64,
        );
    }
}
