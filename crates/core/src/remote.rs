//! Distributed shard serving: one OS process per shard, an exact
//! fan-out/merge router in front.
//!
//! [`ShardedEngine`] keeps every shard in one address space; this
//! module lifts its exact merge across process boundaries. Each
//! **shard worker** is a separate process that loads one per-shard
//! `RSSN` snapshot (the `shard-{i}.rssn` files [`save_sharded`] wrote)
//! and serves queries over a Unix-domain socket; the
//! [`RemoteShardedEngine`] **router** opens the sharded snapshot's
//! manifest only ([`load_sharded_manifest`] — no engine in the router
//! process), spawns one worker per present shard, and merges their
//! answers exactly the way the in-process engine does:
//!
//! - threshold results translate worker-local ids through the
//!   manifest's local→global maps, concatenate, and sort ascending —
//!   the canonical order;
//! - top-k results feed the same lexicographic
//!   [`KnnHeap`](ranksim_metricspace::KnnHeap) with its
//!   smaller-ids-win tie rule.
//!
//! Both are therefore **bit-identical** to [`ShardedEngine`] and to a
//! monolithic [`Engine`](crate::engine::Engine) over the same corpus
//! (the differential harness in `tests/distributed_equivalence.rs`
//! proves it).
//!
//! # Wire protocol
//!
//! Frames reuse the WAL codec shape: `[len u32 LE][crc32 u32 LE]
//! [payload]`, with the same CRC-32 (IEEE) over the payload. The first
//! payload byte is an opcode; integers are little-endian. On connect
//! the worker speaks first with a versioned **hello** carrying its
//! shard index, ranking size `k`, live count, and its partition bound
//! (pivot ranking + covering radius). Unknown versions fail the
//! handshake typed — they are never guessed at.
//!
//! # Partition pruning
//!
//! The hello's pivot/radius pair lets the router skip shards that
//! cannot contain threshold results: by the triangle inequality, every
//! member `m` of a shard with pivot `p` and radius `r = max d(p, m)`
//! satisfies `d(q, m) ≥ d(q, p) − r`, so when
//! `d(q, p) > θ + r` the shard is provably empty for the query and is
//! not contacted at all ([`RemoteStats::fanout_pruned`] counts these).
//! Pruning is exact — it only ever skips shards whose result set is
//! empty — so pruned fan-out changes cost, never answers. Top-k
//! queries broadcast: a far shard can still hold the k-th neighbour.
//!
//! # Stragglers and worker death
//!
//! Every read carries a per-worker timeout. A worker that misses it is
//! treated as a straggler: the router **hedges** — respawns a fresh
//! worker from the same snapshot and reissues the query there once
//! ([`RemoteStats::hedges`]). A worker that died (EOF, connection
//! reset, `SIGKILL`) is detected the same way on the next frame
//! ([`RemoteStats::worker_deaths`]), respawned from its snapshot, and
//! the query reissued. If the retry also fails the query fails
//! **typed** ([`RemoteError`]) — one query's failure never corrupts or
//! truncates another's results, and the respawned worker serves
//! subsequent queries normally.

use std::fmt;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::engine::{Algorithm, Engine};
use crate::persist::{
    load_engine, load_sharded_manifest, shard_snapshot_file, LoadMode, PersistError,
};
use crate::wal::crc32;
use ranksim_metricspace::KnnHeap;
use ranksim_rankings::{ItemId, PositionMap, QueryStats, RankingId};

/// Protocol version spoken by both sides of the hello.
pub const PROTOCOL_VERSION: u32 = 1;

/// Sanity bound on a single frame (a 16M-ranking shard answer fits).
const MAX_FRAME: usize = 64 << 20;

/// Worker-side env var: path of the per-shard `RSSN` snapshot to load.
pub const ENV_SNAPSHOT: &str = "RANKSIM_REMOTE_SNAPSHOT";
/// Worker-side env var: Unix socket path to bind and serve on.
pub const ENV_SOCKET: &str = "RANKSIM_REMOTE_SOCKET";
/// Worker-side env var: this worker's shard index (echoed in hello).
pub const ENV_SHARD: &str = "RANKSIM_REMOTE_SHARD";

const OP_HELLO: u8 = 1;
const OP_THRESHOLD: u8 = 2;
const OP_THRESHOLD_RESP: u8 = 3;
const OP_TOPK: u8 = 4;
const OP_TOPK_RESP: u8 = 5;
const OP_SHUTDOWN: u8 = 6;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed failure of a distributed query or of router lifecycle. Errors
/// are **per query**: a failed query leaves the router serving, with
/// the affected worker respawned from its snapshot where possible.
#[derive(Debug)]
pub enum RemoteError {
    /// Opening the sharded snapshot (manifest or a shard file) failed.
    Persist(PersistError),
    /// Spawning or connecting to a shard worker failed.
    Spawn { shard: usize, detail: String },
    /// The worker's hello was malformed or version-incompatible.
    Handshake { shard: usize, detail: String },
    /// A frame violated the protocol (bad CRC, bad opcode, bad size).
    Protocol { shard: usize, detail: String },
    /// The worker missed its deadline and the hedged retry did too.
    TimedOut { shard: usize },
    /// The worker died (EOF/reset) and the respawn-and-retry failed.
    WorkerDied { shard: usize, detail: String },
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Persist(e) => write!(f, "snapshot: {e}"),
            RemoteError::Spawn { shard, detail } => {
                write!(f, "shard {shard}: worker spawn failed: {detail}")
            }
            RemoteError::Handshake { shard, detail } => {
                write!(f, "shard {shard}: handshake failed: {detail}")
            }
            RemoteError::Protocol { shard, detail } => {
                write!(f, "shard {shard}: protocol violation: {detail}")
            }
            RemoteError::TimedOut { shard } => {
                write!(f, "shard {shard}: worker timed out (hedged retry included)")
            }
            RemoteError::WorkerDied { shard, detail } => {
                write!(f, "shard {shard}: worker died: {detail}")
            }
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<PersistError> for RemoteError {
    fn from(e: PersistError) -> Self {
        RemoteError::Persist(e)
    }
}

// ---------------------------------------------------------------------
// Framing (WAL codec shape: [len][crc32][payload])
// ---------------------------------------------------------------------

fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame into `buf` (cleared first). A clean EOF before the
/// first header byte returns `UnexpectedEof` with an empty message so
/// callers can tell worker death from a torn frame.
fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    let want = u32::from_le_bytes(head[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    let got = crc32(buf);
    if got != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame CRC mismatch: stored {want:#010x}, computed {got:#010x}"),
        ));
    }
    Ok(())
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> io::Result<u8> {
        let b = self
            .buf
            .get(self.pos)
            .copied()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "payload truncated"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> io::Result<u32> {
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "payload truncated"))?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "payload has trailing bytes",
            ))
        }
    }
}

// ---------------------------------------------------------------------
// Hello
// ---------------------------------------------------------------------

/// One covering ball of a shard's partition bound: every live member
/// assigned to this pivot is within `radius` of it.
#[derive(Debug, Clone)]
pub struct PivotBound {
    /// The pivot ranking (a real shard member).
    pub pivot: Vec<ItemId>,
    /// `max d(pivot, member)` over the members this ball covers.
    pub radius: u32,
}

/// Pivots per shard in the hello's partition bound. One global ball is
/// useless on heavy-tailed corpora (its radius approaches the metric's
/// maximum); farthest-point-sampled sub-balls are tight enough to
/// prune with while staying exact — a shard is skipped only when
/// *every* ball excludes the query. The cap must be large enough that
/// the sampler can promote a shard's unclustered outliers (pairwise
/// near-disjoint rankings that no shared ball can cover tightly) to
/// singleton balls of their own; 16 was measured to leave every ball
/// at the metric's ceiling on zipf-tailed shards, disabling pruning.
const MAX_PIVOTS: usize = 256;

/// Farthest-point sampling stops early once every member is within
/// `min(RADIUS_TIGHT, ceiling/4)` of a pivot (ceiling = `k(k+1)`, the
/// maximum footrule distance between two k-rankings): balls tighter
/// than the intra-cluster perturbation diameter no longer change
/// which shards prune.
const RADIUS_TIGHT: u32 = 24;

/// What a worker announces on connect: protocol version, identity, and
/// the partition bound the router prunes with.
#[derive(Debug, Clone)]
pub struct WorkerHello {
    /// The shard this worker serves (echo of [`ENV_SHARD`]).
    pub shard: u32,
    /// Ranking size of the loaded shard engine.
    pub k: u32,
    /// Live rankings in the shard.
    pub live: u32,
    /// Covering balls over the live members (empty iff the shard is).
    /// Every member lies inside at least one ball.
    pub bounds: Vec<PivotBound>,
}

impl WorkerHello {
    fn encode(&self) -> Vec<u8> {
        let per_bound = 8 + 4 * self.k as usize;
        let mut p = Vec::with_capacity(21 + per_bound * self.bounds.len());
        p.push(OP_HELLO);
        put_u32(&mut p, PROTOCOL_VERSION);
        put_u32(&mut p, self.shard);
        put_u32(&mut p, self.k);
        put_u32(&mut p, self.live);
        put_u32(&mut p, self.bounds.len() as u32);
        for b in &self.bounds {
            put_u32(&mut p, b.radius);
            for item in &b.pivot {
                put_u32(&mut p, item.0);
            }
        }
        p
    }

    fn decode(payload: &[u8]) -> io::Result<WorkerHello> {
        let mut c = Cursor::new(payload);
        if c.u8()? != OP_HELLO {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected hello opcode",
            ));
        }
        let version = c.u32()?;
        if version != PROTOCOL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("protocol version {version}, this router speaks {PROTOCOL_VERSION}"),
            ));
        }
        let shard = c.u32()?;
        let k = c.u32()?;
        let live = c.u32()?;
        let nbounds = c.u32()? as usize;
        if nbounds > MAX_PIVOTS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{nbounds} pivot balls exceed the {MAX_PIVOTS}-ball bound"),
            ));
        }
        let mut bounds = Vec::with_capacity(nbounds);
        for _ in 0..nbounds {
            let radius = c.u32()?;
            let mut pivot = Vec::with_capacity(k as usize);
            for _ in 0..k {
                pivot.push(ItemId(c.u32()?));
            }
            bounds.push(PivotBound { pivot, radius });
        }
        c.done()?;
        Ok(WorkerHello {
            shard,
            k,
            live,
            bounds,
        })
    }

    /// The largest ball radius (∞-free summary for reporting).
    pub fn max_radius(&self) -> u32 {
        self.bounds.iter().map(|b| b.radius).max().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Loads the per-shard snapshot at `snapshot`, binds `socket`, and
/// serves queries until the router disconnects or sends a shutdown
/// frame. This is the entire body of a shard worker process; both the
/// `repro shard-worker` subcommand and the test-binary worker are thin
/// wrappers that call it (usually through [`serve_from_env`]).
///
/// The snapshot loads in [`LoadMode::Verify`] — a worker spawned from
/// a torn or bit-flipped shard file refuses to serve rather than
/// answering wrong.
pub fn serve_shard(snapshot: &Path, socket: &Path, shard: u32) -> Result<(), RemoteError> {
    let (engine, _meta) = load_engine(snapshot, LoadMode::Verify)?;
    let hello = hello_for(&engine, shard);
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket).map_err(|e| RemoteError::Spawn {
        shard: shard as usize,
        detail: format!("bind {}: {e}", socket.display()),
    })?;
    let (mut conn, _addr) = listener.accept().map_err(|e| RemoteError::Spawn {
        shard: shard as usize,
        detail: format!("accept: {e}"),
    })?;
    let io_err = |e: io::Error| RemoteError::Protocol {
        shard: shard as usize,
        detail: e.to_string(),
    };
    write_frame(&mut conn, &hello.encode()).map_err(io_err)?;
    let mut scratch = engine.scratch();
    let mut stats = QueryStats::default();
    let mut frame = Vec::new();
    let mut query = Vec::new();
    let mut local = Vec::new();
    let mut resp = Vec::new();
    loop {
        match read_frame(&mut conn, &mut frame) {
            Ok(()) => {}
            // Router gone: a worker outliving its router is a leak.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(io_err(e)),
        }
        let mut c = Cursor::new(&frame);
        match c.u8().map_err(io_err)? {
            OP_THRESHOLD => {
                let alg_tag = c.u32().map_err(io_err)?;
                let theta_raw = c.u32().map_err(io_err)?;
                read_query(&mut c, engine.store().k(), &mut query).map_err(io_err)?;
                let algorithm = decode_algorithm(alg_tag).map_err(io_err)?;
                local.clear();
                engine.query_into_traced(
                    algorithm,
                    &query,
                    theta_raw,
                    &mut scratch,
                    &mut stats,
                    &mut local,
                );
                resp.clear();
                resp.push(OP_THRESHOLD_RESP);
                put_u32(&mut resp, local.len() as u32);
                for id in &local {
                    put_u32(&mut resp, id.0);
                }
                write_frame(&mut conn, &resp).map_err(io_err)?;
            }
            OP_TOPK => {
                let neighbours = c.u32().map_err(io_err)? as usize;
                read_query(&mut c, engine.store().k(), &mut query).map_err(io_err)?;
                let pairs = engine.query_topk(&query, neighbours, &mut scratch, &mut stats);
                resp.clear();
                resp.push(OP_TOPK_RESP);
                put_u32(&mut resp, pairs.len() as u32);
                for (d, id) in &pairs {
                    put_u32(&mut resp, *d);
                    put_u32(&mut resp, id.0);
                }
                write_frame(&mut conn, &resp).map_err(io_err)?;
            }
            OP_SHUTDOWN => return Ok(()),
            op => {
                return Err(RemoteError::Protocol {
                    shard: shard as usize,
                    detail: format!("unexpected opcode {op}"),
                })
            }
        }
    }
}

/// [`serve_shard`] configured from [`ENV_SNAPSHOT`], [`ENV_SOCKET`]
/// and [`ENV_SHARD`] — the environment [`RemoteShardedEngine`] sets on
/// every worker it spawns. Returns `Ok(false)` without serving when
/// the variables are absent, so a dormant entrypoint (a `#[test]`
/// worker, a hidden subcommand) can call it unconditionally.
pub fn serve_from_env() -> Result<bool, RemoteError> {
    let (Ok(snapshot), Ok(socket)) = (std::env::var(ENV_SNAPSHOT), std::env::var(ENV_SOCKET))
    else {
        return Ok(false);
    };
    let shard: u32 = std::env::var(ENV_SHARD)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    serve_shard(Path::new(&snapshot), Path::new(&socket), shard)?;
    Ok(true)
}

/// Farthest-point sampling of up to [`MAX_PIVOTS`] covering balls over
/// the shard's live members: start from the first live ranking, then
/// repeatedly promote the member farthest from every existing pivot to
/// a pivot of its own, reassigning members to their nearest pivot.
/// Each ball's radius is the max nearest-pivot distance of the members
/// it covers, so every member provably lies inside its ball — the
/// invariant the router's pruning rule rests on.
fn hello_for(engine: &Engine, shard: u32) -> WorkerHello {
    let store = engine.store();
    let live: Vec<RankingId> = (0..store.len() as u32)
        .map(RankingId)
        .filter(|&id| store.is_live(id))
        .collect();
    let k = store.k() as u32;
    let tight = RADIUS_TIGHT.min(k * (k + 1) / 4);
    let mut bounds = Vec::new();
    if let Some(&first) = live.first() {
        let mut pivots: Vec<Vec<ItemId>> = vec![store.items(first).to_vec()];
        let map = PositionMap::new(&pivots[0]);
        let mut nearest: Vec<u32> = live
            .iter()
            .map(|&id| map.distance_to(store.items(id)))
            .collect();
        let mut assign = vec![0usize; live.len()];
        while pivots.len() < MAX_PIVOTS {
            let (far, &dmax) = match nearest.iter().enumerate().max_by_key(|(_, d)| **d) {
                Some(m) => m,
                None => break,
            };
            if dmax <= tight {
                break; // every member already sits in a tight ball
            }
            let items = store.items(live[far]).to_vec();
            let map = PositionMap::new(&items);
            let pi = pivots.len();
            for (m, &id) in live.iter().enumerate() {
                let d = map.distance_to(store.items(id));
                if d < nearest[m] {
                    nearest[m] = d;
                    assign[m] = pi;
                }
            }
            pivots.push(items);
        }
        let mut radii = vec![0u32; pivots.len()];
        for (m, &p) in assign.iter().enumerate() {
            radii[p] = radii[p].max(nearest[m]);
        }
        bounds = pivots
            .into_iter()
            .zip(radii)
            .map(|(pivot, radius)| PivotBound { pivot, radius })
            .collect();
    }
    WorkerHello {
        shard,
        k: store.k() as u32,
        live: engine.live_len() as u32,
        bounds,
    }
}

fn read_query(c: &mut Cursor<'_>, k: usize, out: &mut Vec<ItemId>) -> io::Result<()> {
    let len = c.u32()? as usize;
    if len != k {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("query of {len} items against a k={k} shard"),
        ));
    }
    out.clear();
    for _ in 0..len {
        out.push(ItemId(c.u32()?));
    }
    c.done()
}

fn decode_algorithm(tag: u32) -> io::Result<Algorithm> {
    if tag == u32::MAX {
        return Ok(Algorithm::Auto);
    }
    Algorithm::from_dense_index(tag as usize).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown algorithm tag {tag}"),
        )
    })
}

fn encode_algorithm(algorithm: Algorithm) -> u32 {
    algorithm.dense_index().map_or(u32::MAX, |i| i as u32)
}

// ---------------------------------------------------------------------
// Router side
// ---------------------------------------------------------------------

/// How the router starts a shard worker process. The spec names the
/// program and fixed arguments; the router supplies the per-worker
/// snapshot/socket/shard environment ([`ENV_SNAPSHOT`] etc.) on top.
/// Stdout/stderr are nulled — a worker is a service, not a console.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerSpec {
    /// A spec running `program` with no extra arguments.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerSpec {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// Appends a fixed command-line argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Appends a fixed environment variable.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// Router tunables. The defaults suit tests and local benches; a real
/// deployment would stretch the spawn timeout to cover cold page
/// caches.
#[derive(Debug, Clone, Copy)]
pub struct RemoteOptions {
    /// Per-query, per-worker response deadline. A miss triggers the
    /// hedged respawn-and-reissue; a second miss fails the query typed.
    pub read_timeout: Duration,
    /// How long to wait for a spawned worker to bind its socket and
    /// speak its hello (covers snapshot load time).
    pub spawn_timeout: Duration,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            read_timeout: Duration::from_secs(10),
            spawn_timeout: Duration::from_secs(30),
        }
    }
}

/// Fan-out accounting, reset by [`RemoteShardedEngine::take_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Queries routed (threshold + top-k).
    pub queries: u64,
    /// (query, worker) requests actually sent.
    pub fanout_sent: u64,
    /// (query, worker) pairs skipped by the pivot/radius bound.
    pub fanout_pruned: u64,
    /// Straggler hedges: timeout → respawn → reissue.
    pub hedges: u64,
    /// Dead workers detected (EOF/reset/kill).
    pub worker_deaths: u64,
    /// Workers respawned from their snapshot.
    pub respawns: u64,
}

struct RemoteWorker {
    shard: usize,
    snapshot: PathBuf,
    socket: PathBuf,
    child: Child,
    conn: UnixStream,
    hello: WorkerHello,
    /// Translation applied to every local id this worker returns.
    globals: Vec<RankingId>,
}

/// Distinguishes a straggler (hedge) from a dead worker (respawn) in
/// the per-request error path.
enum RequestFailure {
    Timeout,
    Died(String),
}

/// The distributed counterpart of [`ShardedEngine`]: spawns one worker
/// process per present shard of a sharded `RSSN` snapshot directory
/// and serves exact queries over them. See the module docs for the
/// protocol, the pruning rule, and the failure semantics.
///
/// Dropping the router shuts the fleet down: best-effort shutdown
/// frames, then kill + reap, then socket-dir removal.
///
/// [`ShardedEngine`]: crate::shard::ShardedEngine
pub struct RemoteShardedEngine {
    k: usize,
    spec: WorkerSpec,
    options: RemoteOptions,
    socket_dir: PathBuf,
    workers: Vec<RemoteWorker>,
    stats: RemoteStats,
    /// Distinguishes respawn sockets from the originals.
    spawn_seq: u64,
}

/// Distinguishes concurrently-launched routers in one process.
static ROUTER_SEQ: AtomicU64 = AtomicU64::new(0);

impl RemoteShardedEngine {
    /// Opens the sharded snapshot at `dir` (manifest only — the router
    /// never loads an engine) and spawns one worker per present shard
    /// via `spec`. Returns once every worker answered its hello.
    pub fn launch(
        dir: &Path,
        spec: WorkerSpec,
        options: RemoteOptions,
    ) -> Result<Self, RemoteError> {
        let manifest = load_sharded_manifest(dir)?;
        let seq = ROUTER_SEQ.fetch_add(1, Ordering::Relaxed);
        let socket_dir =
            std::env::temp_dir().join(format!("ranksim-remote-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&socket_dir).map_err(|e| RemoteError::Spawn {
            shard: 0,
            detail: format!("socket dir {}: {e}", socket_dir.display()),
        })?;
        let mut router = RemoteShardedEngine {
            k: manifest.k,
            spec,
            options,
            socket_dir,
            workers: Vec::new(),
            stats: RemoteStats::default(),
            spawn_seq: 0,
        };
        for shard in 0..manifest.num_shards {
            if !manifest.engine_present[shard] {
                continue;
            }
            let snapshot = shard_snapshot_file(dir, shard);
            let globals = manifest.globals[shard].clone();
            let worker = router.spawn_worker(shard, snapshot, globals)?;
            if worker.hello.k as usize != manifest.k {
                return Err(RemoteError::Handshake {
                    shard,
                    detail: format!(
                        "worker serves k={}, manifest says k={}",
                        worker.hello.k, manifest.k
                    ),
                });
            }
            router.workers.push(worker);
        }
        Ok(router)
    }

    /// Ranking size every worker serves.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Live worker processes (one per present shard).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The hello each worker announced (shard identity + the
    /// pivot/radius bound the router prunes with), in worker order.
    pub fn worker_hellos(&self) -> impl Iterator<Item = &WorkerHello> {
        self.workers.iter().map(|w| &w.hello)
    }

    /// Fan-out/failure counters since the last [`take_stats`].
    ///
    /// [`take_stats`]: RemoteShardedEngine::take_stats
    pub fn stats(&self) -> RemoteStats {
        self.stats
    }

    /// Returns and resets the counters.
    pub fn take_stats(&mut self) -> RemoteStats {
        std::mem::take(&mut self.stats)
    }

    /// `SIGKILL`s the worker currently serving shard `shard` without
    /// telling the router's request path — the next query to that
    /// shard discovers the death (EOF), respawns from the snapshot,
    /// and reissues. Test/chaos hook for the failover machinery.
    pub fn kill_worker(&mut self, shard: usize) -> bool {
        for w in &mut self.workers {
            if w.shard == shard {
                let _ = w.child.kill();
                let _ = w.child.wait();
                return true;
            }
        }
        false
    }

    /// Exact threshold query: every live ranking within `theta_raw` of
    /// `query`, as ascending global ids — bit-identical to
    /// [`ShardedEngine::query_items`](crate::shard::ShardedEngine::query_items)
    /// and the monolith. Shards whose pivot/radius bound proves them
    /// empty are pruned from the fan-out.
    pub fn query_threshold(
        &mut self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
    ) -> Result<Vec<RankingId>, RemoteError> {
        assert_eq!(
            query.len(),
            self.k,
            "query size must match the corpus ranking size"
        );
        self.stats.queries += 1;
        let mut req = Vec::with_capacity(13 + 4 * query.len());
        req.push(OP_THRESHOLD);
        put_u32(&mut req, encode_algorithm(algorithm));
        put_u32(&mut req, theta_raw);
        put_u32(&mut req, query.len() as u32);
        for item in query {
            put_u32(&mut req, item.0);
        }
        let mut out: Vec<RankingId> = Vec::new();
        for wi in 0..self.workers.len() {
            if prune(&self.workers[wi].hello, query, theta_raw) {
                self.stats.fanout_pruned += 1;
                continue;
            }
            let resp = self.request(wi, &req)?;
            let mut c = Cursor::new(&resp);
            let io_err = |e: io::Error, shard: usize| RemoteError::Protocol {
                shard,
                detail: e.to_string(),
            };
            let shard = self.workers[wi].shard;
            if c.u8().map_err(|e| io_err(e, shard))? != OP_THRESHOLD_RESP {
                return Err(RemoteError::Protocol {
                    shard,
                    detail: "expected threshold response".into(),
                });
            }
            let count = c.u32().map_err(|e| io_err(e, shard))? as usize;
            let globals = &self.workers[wi].globals;
            out.reserve(count);
            for _ in 0..count {
                let local = c.u32().map_err(|e| io_err(e, shard))? as usize;
                let global = *globals.get(local).ok_or_else(|| RemoteError::Protocol {
                    shard,
                    detail: format!(
                        "worker returned local id {local}, shard holds {}",
                        globals.len()
                    ),
                })?;
                out.push(global);
            }
            c.done().map_err(|e| io_err(e, shard))?;
        }
        // Same reassembly as the in-process engine: per-shard sets are
        // disjoint, concatenate then one ascending sort.
        out.sort_unstable();
        Ok(out)
    }

    /// Exact top-k: the `neighbours` nearest rankings as ascending
    /// `(distance, global id)` pairs, merged through the lexicographic
    /// [`KnnHeap`] — bit-identical to
    /// [`ShardedEngine::query_topk`](crate::shard::ShardedEngine::query_topk).
    /// Top-k always broadcasts: no threshold, no pruning bound.
    pub fn query_topk(
        &mut self,
        query: &[ItemId],
        neighbours: usize,
    ) -> Result<Vec<(u32, RankingId)>, RemoteError> {
        assert_eq!(
            query.len(),
            self.k,
            "query size must match the corpus ranking size"
        );
        self.stats.queries += 1;
        if neighbours == 0 || self.workers.is_empty() {
            return Ok(Vec::new());
        }
        let mut req = Vec::with_capacity(9 + 4 * query.len());
        req.push(OP_TOPK);
        put_u32(&mut req, neighbours as u32);
        put_u32(&mut req, query.len() as u32);
        for item in query {
            put_u32(&mut req, item.0);
        }
        let mut merge = KnnHeap::new(neighbours);
        for wi in 0..self.workers.len() {
            let resp = self.request(wi, &req)?;
            let shard = self.workers[wi].shard;
            let io_err = |e: io::Error| RemoteError::Protocol {
                shard,
                detail: e.to_string(),
            };
            let mut c = Cursor::new(&resp);
            if c.u8().map_err(io_err)? != OP_TOPK_RESP {
                return Err(RemoteError::Protocol {
                    shard,
                    detail: "expected top-k response".into(),
                });
            }
            let count = c.u32().map_err(io_err)? as usize;
            let globals = &self.workers[wi].globals;
            for _ in 0..count {
                let d = c.u32().map_err(io_err)?;
                let local = c.u32().map_err(io_err)? as usize;
                let global = *globals.get(local).ok_or_else(|| RemoteError::Protocol {
                    shard,
                    detail: format!(
                        "worker returned local id {local}, shard holds {}",
                        globals.len()
                    ),
                })?;
                merge.offer(d, global);
            }
            c.done().map_err(io_err)?;
        }
        Ok(merge.into_sorted())
    }

    /// Sends `req` to worker `wi` and reads the response, hedging to a
    /// respawned worker on a straggler timeout and failing over to one
    /// on worker death. One retry; a second failure is typed.
    fn request(&mut self, wi: usize, req: &[u8]) -> Result<Vec<u8>, RemoteError> {
        self.stats.fanout_sent += 1;
        match self.request_once(wi, req) {
            Ok(resp) => Ok(resp),
            Err(failure) => {
                let shard = self.workers[wi].shard;
                match &failure {
                    RequestFailure::Timeout => self.stats.hedges += 1,
                    RequestFailure::Died(_) => self.stats.worker_deaths += 1,
                }
                self.respawn(wi)?;
                self.stats.fanout_sent += 1;
                match self.request_once(wi, req) {
                    Ok(resp) => Ok(resp),
                    Err(RequestFailure::Timeout) => Err(RemoteError::TimedOut { shard }),
                    Err(RequestFailure::Died(detail)) => {
                        Err(RemoteError::WorkerDied { shard, detail })
                    }
                }
            }
        }
    }

    fn request_once(&mut self, wi: usize, req: &[u8]) -> Result<Vec<u8>, RequestFailure> {
        let worker = &mut self.workers[wi];
        let classify = |e: io::Error| match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RequestFailure::Timeout,
            _ => RequestFailure::Died(e.to_string()),
        };
        write_frame(&mut worker.conn, req).map_err(classify)?;
        let mut resp = Vec::new();
        read_frame(&mut worker.conn, &mut resp).map_err(classify)?;
        Ok(resp)
    }

    /// Kills whatever is left of worker `wi` and starts a replacement
    /// from the same snapshot on a fresh socket.
    fn respawn(&mut self, wi: usize) -> Result<(), RemoteError> {
        let (shard, snapshot, globals) = {
            let w = &mut self.workers[wi];
            let _ = w.child.kill();
            let _ = w.child.wait();
            let _ = std::fs::remove_file(&w.socket);
            (w.shard, w.snapshot.clone(), w.globals.clone())
        };
        let fresh = self.spawn_worker(shard, snapshot, globals)?;
        self.stats.respawns += 1;
        self.workers[wi] = fresh;
        Ok(())
    }

    fn spawn_worker(
        &mut self,
        shard: usize,
        snapshot: PathBuf,
        globals: Vec<RankingId>,
    ) -> Result<RemoteWorker, RemoteError> {
        self.spawn_seq += 1;
        let socket = self
            .socket_dir
            .join(format!("shard-{shard}.{}.sock", self.spawn_seq));
        let spawn_err = |detail: String| RemoteError::Spawn { shard, detail };
        let mut cmd = Command::new(&self.spec.program);
        cmd.args(&self.spec.args)
            .envs(self.spec.envs.iter().map(|(k, v)| (k, v)))
            .env(ENV_SNAPSHOT, &snapshot)
            .env(ENV_SOCKET, &socket)
            .env(ENV_SHARD, shard.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().map_err(|e| spawn_err(e.to_string()))?;
        // The worker binds the socket only after its snapshot loaded;
        // a successful connect doubles as the readiness signal.
        let deadline = Instant::now() + self.options.spawn_timeout;
        let conn = loop {
            match UnixStream::connect(&socket) {
                Ok(conn) => break conn,
                Err(_) if Instant::now() < deadline => {
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(spawn_err(format!("worker exited during startup: {status}")));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(spawn_err(format!(
                        "no socket within {:?}: {e}",
                        self.options.spawn_timeout
                    )));
                }
            }
        };
        conn.set_read_timeout(Some(self.options.read_timeout))
            .map_err(|e| spawn_err(e.to_string()))?;
        let mut conn = conn;
        let mut frame = Vec::new();
        let handshake_err = |detail: String| RemoteError::Handshake { shard, detail };
        read_frame(&mut conn, &mut frame).map_err(|e| handshake_err(e.to_string()))?;
        let hello = WorkerHello::decode(&frame).map_err(|e| handshake_err(e.to_string()))?;
        if hello.shard as usize != shard {
            return Err(handshake_err(format!(
                "worker announced shard {}, expected {shard}",
                hello.shard
            )));
        }
        if hello.live as usize != globals.len() {
            return Err(handshake_err(format!(
                "worker serves {} live rankings, manifest maps {}",
                hello.live,
                globals.len()
            )));
        }
        Ok(RemoteWorker {
            shard,
            snapshot,
            socket,
            child,
            conn,
            hello,
            globals,
        })
    }
}

/// The exact pruning bound: skip the shard iff **every** covering ball
/// excludes the query — `d(query, pivot) > theta + radius` for each
/// ball (u64 arithmetic: both sides fit u32 individually but their sum
/// may not). Every member lies in some ball, so a skipped shard
/// provably holds no result; a shard with no bound is never skipped.
fn prune(hello: &WorkerHello, query: &[ItemId], theta_raw: u32) -> bool {
    if hello.bounds.is_empty() {
        return false;
    }
    let map = PositionMap::new(query);
    hello
        .bounds
        .iter()
        .all(|b| map.distance_to(&b.pivot) as u64 > theta_raw as u64 + b.radius as u64)
}

impl Drop for RemoteShardedEngine {
    fn drop(&mut self) {
        for w in &mut self.workers {
            let shutdown = [OP_SHUTDOWN];
            let _ = write_frame(&mut w.conn, &shutdown);
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
        let _ = std::fs::remove_dir_all(&self.socket_dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello frames").unwrap();
        let mut buf = Vec::new();
        read_frame(&mut &wire[..], &mut buf).unwrap();
        assert_eq!(buf, b"hello frames");

        let mut torn = wire.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x40;
        let err = read_frame(&mut &torn[..], &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let err = read_frame(&mut &wire[..4], &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn hello_round_trips_and_rejects_foreign_versions() {
        let hello = WorkerHello {
            shard: 3,
            k: 4,
            live: 17,
            bounds: vec![
                PivotBound {
                    pivot: vec![ItemId(9), ItemId(2), ItemId(5), ItemId(0)],
                    radius: 42,
                },
                PivotBound {
                    pivot: vec![ItemId(1), ItemId(3), ItemId(7), ItemId(8)],
                    radius: 6,
                },
            ],
        };
        let back = WorkerHello::decode(&hello.encode()).unwrap();
        assert_eq!(back.shard, 3);
        assert_eq!(back.k, 4);
        assert_eq!(back.live, 17);
        assert_eq!(back.bounds.len(), 2);
        assert_eq!(back.bounds[0].pivot, hello.bounds[0].pivot);
        assert_eq!(back.bounds[0].radius, 42);
        assert_eq!(back.bounds[1].radius, 6);
        assert_eq!(back.max_radius(), 42);

        let mut foreign = hello.encode();
        foreign[1..5].copy_from_slice(&2u32.to_le_bytes());
        assert!(WorkerHello::decode(&foreign).is_err());
    }

    #[test]
    fn algorithm_tags_round_trip_including_auto() {
        for alg in Algorithm::ALL {
            assert_eq!(decode_algorithm(encode_algorithm(alg)).unwrap(), alg);
        }
        assert_eq!(
            decode_algorithm(encode_algorithm(Algorithm::Auto)).unwrap(),
            Algorithm::Auto
        );
        assert!(decode_algorithm(99).is_err());
    }

    #[test]
    fn prune_bound_is_conservative() {
        let ball = PivotBound {
            pivot: vec![ItemId(0), ItemId(1), ItemId(2)],
            radius: 4,
        };
        let far = [ItemId(10), ItemId(11), ItemId(12)];
        let d = ranksim_rankings::footrule_items(&ball.pivot, &far);
        let radius = ball.radius;
        let hello = WorkerHello {
            shard: 0,
            k: 3,
            live: 2,
            bounds: vec![ball.clone()],
        };
        // Right at the bound the shard must still be contacted.
        assert!(!prune(&hello, &far, d - radius));
        // One past it, pruning is safe.
        assert!(prune(&hello, &far, d - radius - 1));
        // A second ball that admits the query vetoes the prune: every
        // ball must exclude before the shard is skipped.
        let near = WorkerHello {
            bounds: vec![
                ball,
                PivotBound {
                    pivot: far.to_vec(),
                    radius: 0,
                },
            ],
            ..hello.clone()
        };
        assert!(!prune(&near, &far, 0));
        // An empty shard (no balls) is never pruned by the bound.
        let empty = WorkerHello {
            bounds: Vec::new(),
            ..hello
        };
        assert!(!prune(&empty, &far, 0));
    }
}
