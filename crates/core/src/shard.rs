//! The sharded engine: paper-scale corpora behind the monolithic
//! [`Engine`] semantics.
//!
//! The paper's headline experiments (Figures 5–9) run at 1M rankings;
//! a single [`Engine`] tops out well below that because the corpus, the
//! item remap and every CSR arena are monolithic. [`ShardedEngine`]
//! partitions the corpus into `S` shards, builds an **independent** index
//! set per shard (its own [`ItemRemap`](ranksim_rankings::ItemRemap), its
//! own CSR arenas, via the regular [`EngineBuilder`]), runs every query
//! against all shards, and merges the per-shard answers **exactly**:
//!
//! * **threshold queries** — per-shard result sets are disjoint (every
//!   ranking lives in exactly one shard), so the merge is a
//!   concatenation; results are returned sorted by global ranking id,
//!   a canonical order independent of the shard count,
//! * **top-k queries** — each shard returns its exact lexicographic
//!   `(distance, id)` top-k; a bounded heap keeps the k smallest global
//!   pairs. Because [`KnnHeap`] resolves distance ties to smaller ids,
//!   the merged answer is bit-identical to the monolithic engine's.
//!
//! Shard assignment ([`ShardStrategy`]) is either item-sequence hashing
//! (`Hash` — streaming-friendly, balanced) or coarse-medoid routing
//! (`Medoid` — the first ranking of each shard becomes its medoid and
//! later rankings join the nearest medoid, mirroring the coarse index's
//! partition-by-proximity idea so near-duplicates co-locate). Both are
//! deterministic functions of the push sequence, and **exactness never
//! depends on the assignment**: the differential suite in
//! `tests/shard_equivalence.rs` proves shard/monolith equivalence for
//! both strategies at S ∈ {1, 2, 7}.
//!
//! [`ShardedEngineBuilder::push_ranking`] accepts rankings one at a time,
//! so a 1M-ranking corpus can stream from
//! `ranksim_datasets::ClusteredZipfGenerator::for_each` straight into the
//! shard stores without ever materializing a monolithic corpus.

use crate::batch::{merge_reports, run_stealing, WorkerReport};
use crate::engine::{Algorithm, Engine, EngineBuilder};
use crate::planner::PlanStats;
use ranksim_metricspace::KnnHeap;
use ranksim_rankings::{ItemId, QueryScratch, QueryStats, RankingId, RankingStore};

/// How rankings are routed to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Fx-hash of the item sequence modulo the shard count. Streaming-
    /// friendly, assignment independent of push order, statistically
    /// balanced.
    Hash,
    /// Coarse-medoid routing: the first ranking routed to each shard
    /// becomes that shard's medoid; every later ranking joins the shard
    /// with the nearest medoid (Footrule distance, ties to the lowest
    /// shard). Co-locates near-duplicate clusters, which keeps per-shard
    /// coarse partitionings tight.
    Medoid,
}

/// Builder for [`ShardedEngine`]: routes pushed rankings to per-shard
/// stores, then builds one [`Engine`] per non-empty shard.
pub struct ShardedEngineBuilder {
    k: usize,
    strategy: ShardStrategy,
    coarse_theta_c: f64,
    coarse_theta_c_drop: Option<f64>,
    selected: Option<Vec<Algorithm>>,
    topk_trees: bool,
    calibrated: Option<crate::CalibratedCosts>,
    stores: Vec<RankingStore>,
    globals: Vec<Vec<RankingId>>,
    medoids: Vec<Option<Vec<ItemId>>>,
    next_global: u32,
}

impl ShardedEngineBuilder {
    /// A builder for `num_shards ≥ 1` shards of size-`k` rankings.
    pub fn new(k: usize, num_shards: usize, strategy: ShardStrategy) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        ShardedEngineBuilder {
            k,
            strategy,
            coarse_theta_c: 0.5,
            coarse_theta_c_drop: None,
            selected: None,
            topk_trees: false,
            calibrated: None,
            stores: (0..num_shards).map(|_| RankingStore::new(k)).collect(),
            globals: vec![Vec::new(); num_shards],
            medoids: vec![None; num_shards],
            next_global: 0,
        }
    }

    /// Normalized `θ_C` for every per-shard `Coarse` index (see
    /// [`EngineBuilder::coarse_threshold`]).
    pub fn coarse_threshold(mut self, theta_c: f64) -> Self {
        self.coarse_theta_c = theta_c;
        self
    }

    /// Separate `θ_C` for `Coarse+Drop` (see
    /// [`EngineBuilder::coarse_drop_threshold`]).
    pub fn coarse_drop_threshold(mut self, theta_c: f64) -> Self {
        self.coarse_theta_c_drop = Some(theta_c);
        self
    }

    /// Restricts every shard to the index structures the given algorithms
    /// need (see [`EngineBuilder::algorithms`]).
    pub fn algorithms(mut self, algorithms: &[Algorithm]) -> Self {
        self.selected = Some(algorithms.to_vec());
        self
    }

    /// Builds a per-shard BK-tree accelerating
    /// [`ShardedEngine::query_topk`] (falls back to exact per-shard
    /// linear scans when off; results are identical either way).
    pub fn topk_trees(mut self, build_trees: bool) -> Self {
        self.topk_trees = build_trees;
        self
    }

    /// Overrides the calibrated machine primitives every per-shard
    /// planner prices executors with (see
    /// [`EngineBuilder::calibrated_costs`]; fixed nominal costs keep
    /// sharded `Auto` planning deterministic in tests).
    pub fn calibrated_costs(mut self, costs: crate::CalibratedCosts) -> Self {
        self.calibrated = Some(costs);
        self
    }

    /// Routes one ranking to its shard, returning the global id the
    /// sharded engine will report it under. Items must be `k` pairwise
    /// distinct ids (generator output upholds this by construction).
    pub fn push_ranking(&mut self, items: &[ItemId]) -> RankingId {
        assert_eq!(items.len(), self.k, "ranking size must match k");
        let shard = self.route(items);
        let global = RankingId(self.next_global);
        self.next_global += 1;
        self.stores[shard].push_items_unchecked(items);
        self.globals[shard].push(global);
        global
    }

    /// Pushes every ranking of a monolithic store (ids are preserved:
    /// ranking `i` of the store becomes global id `i` here when the
    /// builder started empty).
    pub fn extend_from_store(&mut self, store: &RankingStore) {
        assert_eq!(store.k(), self.k, "store ranking size must match k");
        for id in store.ids() {
            self.push_ranking(store.items(id));
        }
    }

    fn route(&mut self, items: &[ItemId]) -> usize {
        let num_shards = self.stores.len();
        if num_shards == 1 {
            return 0;
        }
        match self.strategy {
            ShardStrategy::Hash => {
                use std::hash::Hasher;
                let mut h = ranksim_rankings::hash::FxHasher::default();
                for i in items {
                    h.write_u32(i.0);
                }
                (h.finish() % num_shards as u64) as usize
            }
            ShardStrategy::Medoid => {
                if let Some(free) = self.medoids.iter().position(|m| m.is_none()) {
                    self.medoids[free] = Some(items.to_vec());
                    return free;
                }
                let mut best = 0usize;
                let mut best_d = u32::MAX;
                for (s, medoid) in self.medoids.iter().enumerate() {
                    let m = medoid.as_ref().expect("all medoids claimed");
                    let d = ranksim_rankings::footrule_items(m, items);
                    if d < best_d {
                        best = s;
                        best_d = d;
                    }
                }
                best
            }
        }
    }

    /// Builds the per-shard engines. Empty shards (possible under medoid
    /// routing or tiny corpora) carry no engine and are skipped by every
    /// query.
    pub fn build(self) -> ShardedEngine {
        let ShardedEngineBuilder {
            k,
            strategy,
            coarse_theta_c,
            coarse_theta_c_drop,
            selected,
            topk_trees,
            calibrated,
            stores,
            globals,
            ..
        } = self;
        let shards = stores
            .into_iter()
            .zip(globals)
            .map(|(store, global)| {
                let engine = (!store.is_empty()).then(|| {
                    let mut b = EngineBuilder::new(store)
                        .coarse_threshold(coarse_theta_c)
                        .topk_tree(topk_trees);
                    if let Some(t) = coarse_theta_c_drop {
                        b = b.coarse_drop_threshold(t);
                    }
                    if let Some(sel) = &selected {
                        b = b.algorithms(sel);
                    }
                    if let Some(costs) = calibrated {
                        b = b.calibrated_costs(costs);
                    }
                    b.build()
                });
                Shard { engine, global }
            })
            .collect();
        ShardedEngine {
            k,
            strategy,
            shards,
        }
    }
}

/// One shard: its engine (absent when the shard received no rankings)
/// and the local-to-global ranking-id map (`global[local.index()]`,
/// ascending because pushes append in global order).
struct Shard {
    engine: Option<Engine>,
    global: Vec<RankingId>,
}

/// Reusable per-worker scratch for sharded queries: one epoch-versioned
/// [`QueryScratch`] shared across shards (its arrays grow to the largest
/// shard universe and stay) plus a local-result buffer for id
/// translation. Steady-state threshold queries through
/// [`ShardedEngine::query_into`] are allocation-free, guarded by
/// `crates/core/tests/alloc_free.rs`.
pub struct ShardedScratch {
    scratch: QueryScratch,
    local: Vec<RankingId>,
}

/// The S-shard engine. Query semantics match the monolithic [`Engine`]
/// exactly; see the module docs for the merge rules.
pub struct ShardedEngine {
    k: usize,
    strategy: ShardStrategy,
    shards: Vec<Shard>,
}

impl ShardedEngine {
    /// The ranking size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured shard count (including empty shards).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing strategy the corpus was built with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Total rankings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.global.len()).sum()
    }

    /// Whether no rankings were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rankings per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.global.len()).collect()
    }

    /// Per-shard heap footprint (store + every built index structure;
    /// empty shards report 0). The memory-budget guard of the `repro`
    /// shard experiment reports and checks these.
    pub fn shard_heap_bytes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| {
                s.engine.as_ref().map_or(0, |e| e.heap_bytes())
                    + s.global.capacity() * std::mem::size_of::<RankingId>()
            })
            .collect()
    }

    /// Total heap footprint across shards.
    pub fn heap_bytes(&self) -> usize {
        self.shard_heap_bytes().iter().sum()
    }

    /// A fresh scratch; reuse it across queries to keep the hot path
    /// allocation-free.
    pub fn scratch(&self) -> ShardedScratch {
        ShardedScratch {
            scratch: QueryScratch::new(),
            local: Vec::new(),
        }
    }

    /// Runs `algorithm` over every shard into a caller-owned buffer
    /// (cleared first). Results are global ranking ids sorted ascending —
    /// the canonical order, independent of shard count and strategy. With
    /// a warmed-up scratch and buffer, steady-state calls perform zero
    /// heap allocations.
    pub fn query_into(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut ShardedScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let mut plan = PlanStats::new();
        self.query_into_recorded(algorithm, query, theta_raw, scratch, stats, &mut plan, out);
    }

    /// [`ShardedEngine::query_into`] additionally folding per-shard
    /// planner telemetry into `plan`. Under [`Algorithm::Auto`] every
    /// shard plans **independently** — shards differ in size and item
    /// distribution, so the same query may legitimately take different
    /// paths on different shards; `plan` then counts one pick per
    /// (query, non-empty shard).
    #[allow(clippy::too_many_arguments)]
    pub fn query_into_recorded(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut ShardedScratch,
        stats: &mut QueryStats,
        plan: &mut PlanStats,
        out: &mut Vec<RankingId>,
    ) {
        assert_eq!(
            query.len(),
            self.k,
            "query size must match the corpus ranking size"
        );
        out.clear();
        for shard in &self.shards {
            let Some(engine) = &shard.engine else {
                continue;
            };
            let trace = engine.query_into_traced(
                algorithm,
                query,
                theta_raw,
                &mut scratch.scratch,
                stats,
                &mut scratch.local,
            );
            plan.record(&trace);
            out.extend(scratch.local.iter().map(|id| shard.global[id.index()]));
        }
        out.sort_unstable();
    }

    /// Convenience wrapper around [`ShardedEngine::query_into`].
    pub fn query_items(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut ShardedScratch,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut out = Vec::new();
        self.query_into(algorithm, query, theta_raw, scratch, stats, &mut out);
        out
    }

    /// The `neighbours` nearest rankings across all shards, as ascending
    /// `(distance, global id)` pairs — bit-identical to
    /// [`Engine::query_topk`] on the unsharded corpus: each shard yields
    /// its exact lexicographic top-k (local ids ascend with global ids
    /// within a shard), and the bounded merge heap keeps the k smallest
    /// global pairs with the same smaller-ids-win tie rule.
    pub fn query_topk(
        &self,
        query: &[ItemId],
        neighbours: usize,
        scratch: &mut ShardedScratch,
        stats: &mut QueryStats,
    ) -> Vec<(u32, RankingId)> {
        assert_eq!(
            query.len(),
            self.k,
            "query size must match the corpus ranking size"
        );
        if neighbours == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut merge = KnnHeap::new(neighbours);
        for shard in &self.shards {
            let Some(engine) = &shard.engine else {
                continue;
            };
            for (d, local) in engine.query_topk(query, neighbours, &mut scratch.scratch, stats) {
                merge.offer(d, shard.global[local.index()]);
            }
        }
        merge.into_sorted()
    }

    /// Processes `queries` with `algorithm` at one raw threshold across
    /// `threads` work-stealing worker threads (`0` picks the machine's
    /// available parallelism); every worker owns one [`ShardedScratch`]
    /// and drains the shared query cursor, so skewed batches balance
    /// across workers. Returns per-query result sets in input order plus
    /// merged stats.
    pub fn query_batch(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
    ) -> (Vec<Vec<RankingId>>, QueryStats) {
        let (results, reports) = self.query_batch_reported(algorithm, queries, theta_raw, threads);
        (results, merge_reports(&reports))
    }

    /// [`ShardedEngine::query_batch`] with one [`WorkerReport`] per
    /// worker instead of pre-merged stats.
    pub fn query_batch_reported(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
    ) -> (Vec<Vec<RankingId>>, Vec<WorkerReport>) {
        run_stealing(queries.len(), threads, || {
            let mut scratch = self.scratch();
            move |qi: usize, report: &mut WorkerReport| {
                let mut out = Vec::new();
                self.query_into_recorded(
                    algorithm,
                    &queries[qi],
                    theta_raw,
                    &mut scratch,
                    &mut report.stats,
                    &mut report.plan,
                    &mut out,
                );
                out
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::raw_threshold;

    fn sharded_from(store: &RankingStore, shards: usize, strategy: ShardStrategy) -> ShardedEngine {
        let mut b = ShardedEngineBuilder::new(store.k(), shards, strategy)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06);
        b.extend_from_store(store);
        b.build()
    }

    #[test]
    fn all_rankings_land_in_exactly_one_shard() {
        let ds = nyt_like(600, 10, 21);
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            let sharded = sharded_from(&ds.store, 4, strategy);
            assert_eq!(sharded.len(), 600);
            let mut seen: Vec<RankingId> = sharded
                .shards
                .iter()
                .flat_map(|s| s.global.iter().copied())
                .collect();
            seen.sort_unstable();
            let expect: Vec<RankingId> = ds.store.ids().collect();
            assert_eq!(
                seen, expect,
                "{strategy:?}: global ids partition the corpus"
            );
        }
    }

    #[test]
    fn hash_sharding_spreads_the_corpus() {
        let ds = nyt_like(2000, 10, 5);
        let sharded = sharded_from(&ds.store, 4, ShardStrategy::Hash);
        for (s, &size) in sharded.shard_sizes().iter().enumerate() {
            assert!(size > 0, "hash shard {s} is empty");
            assert!(size < 2000, "hash shard {s} swallowed the corpus");
        }
    }

    #[test]
    fn sharded_threshold_results_match_monolith() {
        let ds = nyt_like(900, 10, 77);
        let engine = EngineBuilder::new(ds.store.clone())
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build();
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 12,
                seed: 3,
                ..Default::default()
            },
        );
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            let sharded = sharded_from(&ds.store, 3, strategy);
            let mut ms = engine.scratch();
            let mut ss = sharded.scratch();
            for q in &wl.queries {
                for theta in [0.0, 0.15, 0.3] {
                    let raw = raw_threshold(theta, 10);
                    for alg in [Algorithm::Fv, Algorithm::Coarse, Algorithm::ListMerge] {
                        let mut st = QueryStats::new();
                        let mut expect = engine.query_items(alg, q, raw, &mut ms, &mut st);
                        expect.sort_unstable();
                        let got = sharded.query_items(alg, q, raw, &mut ss, &mut st);
                        assert_eq!(got, expect, "{strategy:?} {alg} θ={theta}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_topk_matches_monolith_exactly() {
        let ds = nyt_like(700, 10, 13);
        let engine = EngineBuilder::new(ds.store.clone()).topk_tree(true).build();
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 10,
                seed: 9,
                ..Default::default()
            },
        );
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            for shards in [1usize, 2, 5] {
                let sharded = sharded_from(&ds.store, shards, strategy);
                let mut ms = engine.scratch();
                let mut ss = sharded.scratch();
                for q in &wl.queries {
                    for kn in [1usize, 7, 40] {
                        let mut st = QueryStats::new();
                        let expect = engine.query_topk(q, kn, &mut ms, &mut st);
                        let got = sharded.query_topk(q, kn, &mut ss, &mut st);
                        assert_eq!(got, expect, "{strategy:?} S={shards} kn={kn}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_batch_equals_sequential_sharded_queries() {
        let ds = nyt_like(500, 10, 41);
        let sharded = sharded_from(&ds.store, 3, ShardStrategy::Hash);
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 20,
                seed: 6,
                ..Default::default()
            },
        );
        let raw = raw_threshold(0.2, 10);
        for threads in [1usize, 4, 0] {
            let (got, batch_stats) = sharded.query_batch(Algorithm::Fv, &wl.queries, raw, threads);
            let mut ss = sharded.scratch();
            let mut seq_stats = QueryStats::new();
            for (qi, q) in wl.queries.iter().enumerate() {
                let expect = sharded.query_items(Algorithm::Fv, q, raw, &mut ss, &mut seq_stats);
                assert_eq!(got[qi], expect, "query {qi} at {threads} threads");
            }
            assert_eq!(batch_stats, seq_stats, "merged stats equal sequential");
        }
    }

    #[test]
    fn medoid_routing_colocates_duplicates() {
        // Push two distant seed rankings, then duplicates of each: the
        // duplicates must land in their seed's shard.
        let mut b = ShardedEngineBuilder::new(4, 2, ShardStrategy::Medoid);
        let a: Vec<ItemId> = [0u32, 1, 2, 3].map(ItemId).to_vec();
        let z: Vec<ItemId> = [100u32, 101, 102, 103].map(ItemId).to_vec();
        b.push_ranking(&a);
        b.push_ranking(&z);
        b.push_ranking(&z);
        b.push_ranking(&a);
        let sharded = b.build();
        assert_eq!(sharded.shard_sizes(), vec![2, 2]);
        assert_eq!(sharded.shards[0].global, vec![RankingId(0), RankingId(3)]);
        assert_eq!(sharded.shards[1].global, vec![RankingId(1), RankingId(2)]);
    }

    #[test]
    fn empty_shards_are_skipped() {
        // One ranking, seven shards: six shards stay empty yet queries
        // and reporting still work.
        let mut b = ShardedEngineBuilder::new(4, 7, ShardStrategy::Hash);
        let a: Vec<ItemId> = [5u32, 6, 7, 8].map(ItemId).to_vec();
        b.push_ranking(&a);
        let sharded = b.build();
        assert_eq!(sharded.len(), 1);
        let mut ss = sharded.scratch();
        let mut st = QueryStats::new();
        let got = sharded.query_items(Algorithm::Fv, &a, 0, &mut ss, &mut st);
        assert_eq!(got, vec![RankingId(0)]);
        let topk = sharded.query_topk(&a, 3, &mut ss, &mut st);
        assert_eq!(topk, vec![(0, RankingId(0))]);
        assert_eq!(
            sharded
                .shard_heap_bytes()
                .iter()
                .filter(|&&b| b == 0)
                .count(),
            6
        );
    }
}
