//! The sharded engine: paper-scale corpora behind the monolithic
//! [`Engine`] semantics.
//!
//! The paper's headline experiments (Figures 5–9) run at 1M rankings;
//! a single [`Engine`] tops out well below that because the corpus, the
//! item remap and every CSR arena are monolithic. [`ShardedEngine`]
//! partitions the corpus into `S` shards, builds an **independent** index
//! set per shard (its own [`ItemRemap`](ranksim_rankings::ItemRemap), its
//! own CSR arenas, via the regular [`EngineBuilder`]), runs every query
//! against all shards, and merges the per-shard answers **exactly**:
//!
//! * **threshold queries** — per-shard result sets are disjoint (every
//!   ranking lives in exactly one shard), so the merge is a
//!   concatenation; results are returned sorted by global ranking id,
//!   a canonical order independent of the shard count,
//! * **top-k queries** — each shard returns its exact lexicographic
//!   `(distance, id)` top-k; a bounded heap keeps the k smallest global
//!   pairs. Because [`KnnHeap`] resolves distance ties to smaller ids,
//!   the merged answer is bit-identical to the monolithic engine's.
//!
//! Shard assignment ([`ShardStrategy`]) is either item-sequence hashing
//! (`Hash` — streaming-friendly, balanced) or coarse-medoid routing
//! (`Medoid` — the first ranking of each shard becomes its medoid and
//! later rankings join the nearest medoid, mirroring the coarse index's
//! partition-by-proximity idea so near-duplicates co-locate). Both are
//! deterministic functions of the push sequence, and **exactness never
//! depends on the assignment**: the differential suite in
//! `tests/shard_equivalence.rs` proves shard/monolith equivalence for
//! both strategies at S ∈ {1, 2, 7}.
//!
//! [`ShardedEngineBuilder::push_ranking`] accepts rankings one at a time,
//! so a 1M-ranking corpus can stream from
//! `ranksim_datasets::ClusteredZipfGenerator::for_each` straight into the
//! shard stores without ever materializing a monolithic corpus.

use crate::batch::{merge_reports, run_stealing, WorkerReport};
use crate::engine::{Algorithm, Engine, EngineBuilder};
use crate::planner::PlanStats;
use ranksim_invindex::PostingOrder;
use ranksim_metricspace::KnnHeap;
use ranksim_rankings::{ItemId, Kernel, QueryScratch, QueryStats, RankingId, RankingStore};
use std::time::{Duration, Instant};

/// How rankings are routed to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Fx-hash of the item sequence modulo the shard count. Streaming-
    /// friendly, assignment independent of push order, statistically
    /// balanced.
    Hash,
    /// Coarse-medoid routing: the first ranking routed to each shard
    /// becomes that shard's medoid; every later ranking joins the shard
    /// with the nearest medoid (Footrule distance, ties to the lowest
    /// shard). Co-locates near-duplicate clusters, which keeps per-shard
    /// coarse partitionings tight.
    Medoid,
}

/// When routed mutations may migrate rankings between shards.
///
/// Shard sizes drift under a live workload (hash routing only balances
/// in expectation; medoid routing follows the data distribution), and a
/// swollen shard dominates every query's latency. A rebalance moves the
/// highest-global-id live rankings of overfull shards onto underfull
/// ones and rebuilds **only the affected shards** — placement never
/// affects results (threshold merges are id-canonical, top-k merges are
/// lexicographic), so the answers stay bit-identical to a from-scratch
/// monolith throughout.
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Trigger once the largest shard's live count exceeds
    /// `skew_factor ×` the mean live count…
    pub skew_factor: f64,
    /// …and leads the smallest shard by at least this many rankings
    /// (absolute slack so small corpora don't thrash).
    pub min_gap: usize,
    /// Check (and rebalance) automatically after every routed insert or
    /// remove; `false` leaves it to explicit [`ShardedEngine::rebalance`]
    /// calls.
    pub auto: bool,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            skew_factor: 2.0,
            min_gap: 64,
            auto: true,
        }
    }
}

/// Per-shard engine build knobs, retained by [`ShardedEngine`] so routed
/// inserts into empty shards and rebalancing rebuilds construct engines
/// identical to the original build.
#[derive(Clone)]
struct ShardConfig {
    coarse_theta_c: f64,
    coarse_theta_c_drop: Option<f64>,
    selected: Option<Vec<Algorithm>>,
    topk_trees: bool,
    calibrated: Option<crate::CalibratedCosts>,
    compact_tombstone_fraction: Option<f64>,
    planner_refresh_budget: Option<usize>,
    kernel: Kernel,
    posting_order: PostingOrder,
    rebalance: RebalanceConfig,
}

impl ShardConfig {
    fn build_engine(&self, store: RankingStore) -> Engine {
        let mut b = EngineBuilder::new(store)
            .coarse_threshold(self.coarse_theta_c)
            .topk_tree(self.topk_trees);
        if let Some(t) = self.coarse_theta_c_drop {
            b = b.coarse_drop_threshold(t);
        }
        if let Some(sel) = &self.selected {
            b = b.algorithms(sel);
        }
        if let Some(costs) = self.calibrated {
            b = b.calibrated_costs(costs);
        }
        if let Some(f) = self.compact_tombstone_fraction {
            b = b.compaction_threshold(f);
        }
        if let Some(m) = self.planner_refresh_budget {
            b = b.planner_refresh_budget(m);
        }
        b = b.kernel(self.kernel).posting_order(self.posting_order);
        b.build()
    }
}

/// Where a global ranking id lives: `(shard, local id)`; the shard field
/// is `u32::MAX` once the ranking was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardLoc {
    shard: u32,
    local: u32,
}

const GONE: ShardLoc = ShardLoc {
    shard: u32::MAX,
    local: u32::MAX,
};

/// Routes one ranking to a shard. `medoids` doubles as the shard count
/// (one slot per shard) and as the mutable medoid state of the
/// [`ShardStrategy::Medoid`] scheme.
fn route_to_shard(
    strategy: ShardStrategy,
    medoids: &mut [Option<Vec<ItemId>>],
    items: &[ItemId],
) -> usize {
    let num_shards = medoids.len();
    if num_shards == 1 {
        return 0;
    }
    match strategy {
        ShardStrategy::Hash => {
            use std::hash::Hasher;
            let mut h = ranksim_rankings::hash::FxHasher::default();
            for i in items {
                h.write_u32(i.0);
            }
            (h.finish() % num_shards as u64) as usize
        }
        ShardStrategy::Medoid => {
            if let Some(free) = medoids.iter().position(|m| m.is_none()) {
                medoids[free] = Some(items.to_vec());
                return free;
            }
            let mut best = 0usize;
            let mut best_d = u32::MAX;
            for (s, medoid) in medoids.iter().enumerate() {
                let m = medoid.as_ref().expect("all medoids claimed");
                let d = ranksim_rankings::footrule_items(m, items);
                if d < best_d {
                    best = s;
                    best_d = d;
                }
            }
            best
        }
    }
}

/// Builder for [`ShardedEngine`]: routes pushed rankings to per-shard
/// stores, then builds one [`Engine`] per non-empty shard.
pub struct ShardedEngineBuilder {
    k: usize,
    strategy: ShardStrategy,
    config: ShardConfig,
    stores: Vec<RankingStore>,
    globals: Vec<Vec<RankingId>>,
    medoids: Vec<Option<Vec<ItemId>>>,
    next_global: u32,
}

impl ShardedEngineBuilder {
    /// A builder for `num_shards ≥ 1` shards of size-`k` rankings.
    pub fn new(k: usize, num_shards: usize, strategy: ShardStrategy) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        ShardedEngineBuilder {
            k,
            strategy,
            config: ShardConfig {
                coarse_theta_c: 0.5,
                coarse_theta_c_drop: None,
                selected: None,
                topk_trees: false,
                calibrated: None,
                compact_tombstone_fraction: None,
                planner_refresh_budget: None,
                kernel: Kernel::default(),
                posting_order: PostingOrder::default(),
                rebalance: RebalanceConfig::default(),
            },
            stores: (0..num_shards).map(|_| RankingStore::new(k)).collect(),
            globals: vec![Vec::new(); num_shards],
            medoids: vec![None; num_shards],
            next_global: 0,
        }
    }

    /// Normalized `θ_C` for every per-shard `Coarse` index (see
    /// [`EngineBuilder::coarse_threshold`]).
    pub fn coarse_threshold(mut self, theta_c: f64) -> Self {
        self.config.coarse_theta_c = theta_c;
        self
    }

    /// Separate `θ_C` for `Coarse+Drop` (see
    /// [`EngineBuilder::coarse_drop_threshold`]).
    pub fn coarse_drop_threshold(mut self, theta_c: f64) -> Self {
        self.config.coarse_theta_c_drop = Some(theta_c);
        self
    }

    /// Restricts every shard to the index structures the given algorithms
    /// need (see [`EngineBuilder::algorithms`]).
    pub fn algorithms(mut self, algorithms: &[Algorithm]) -> Self {
        self.config.selected = Some(algorithms.to_vec());
        self
    }

    /// Builds a per-shard BK-tree accelerating
    /// [`ShardedEngine::query_topk`] (falls back to exact per-shard
    /// linear scans when off; results are identical either way).
    pub fn topk_trees(mut self, build_trees: bool) -> Self {
        self.config.topk_trees = build_trees;
        self
    }

    /// Overrides the calibrated machine primitives every per-shard
    /// planner prices executors with (see
    /// [`EngineBuilder::calibrated_costs`]; fixed nominal costs keep
    /// sharded `Auto` planning deterministic in tests).
    pub fn calibrated_costs(mut self, costs: crate::CalibratedCosts) -> Self {
        self.config.calibrated = Some(costs);
        self
    }

    /// Size-aware shard rebalancing policy for the built engine's routed
    /// mutations (see [`RebalanceConfig`]).
    pub fn rebalance(mut self, config: RebalanceConfig) -> Self {
        self.config.rebalance = config;
        self
    }

    /// Per-shard auto-compaction trigger (see
    /// [`EngineBuilder::compaction_threshold`]; defaults to that
    /// builder's default when unset).
    pub fn compaction_threshold(mut self, tombstone_fraction: f64) -> Self {
        self.config.compact_tombstone_fraction = Some(tombstone_fraction);
        self
    }

    /// Per-shard planner statistics refresh budget (see
    /// [`EngineBuilder::planner_refresh_budget`]).
    pub fn planner_refresh_budget(mut self, mutations: usize) -> Self {
        self.config.planner_refresh_budget = Some(mutations);
        self
    }

    /// Position-compare kernel for every per-shard engine (see
    /// [`EngineBuilder::kernel`]).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// CSR posting-slice ordering for every per-shard engine (see
    /// [`EngineBuilder::posting_order`]).
    pub fn posting_order(mut self, order: PostingOrder) -> Self {
        self.config.posting_order = order;
        self
    }

    /// Routes one ranking to its shard, returning the global id the
    /// sharded engine will report it under. Items must be `k` pairwise
    /// distinct ids (generator output upholds this by construction).
    pub fn push_ranking(&mut self, items: &[ItemId]) -> RankingId {
        assert_eq!(items.len(), self.k, "ranking size must match k");
        let shard = route_to_shard(self.strategy, &mut self.medoids, items);
        let global = RankingId(self.next_global);
        self.next_global += 1;
        self.stores[shard].push_items_unchecked(items);
        self.globals[shard].push(global);
        global
    }

    /// Pushes every **live** ranking of a monolithic store. For a
    /// pristine store into an empty builder, ids are preserved (ranking
    /// `i` becomes global id `i`); for a mutated store, dead slots are
    /// skipped and the surviving rankings are re-numbered densely in id
    /// order — `push_ranking` cannot reproduce holes, so exact id parity
    /// with a holey monolith requires replaying the mutation sequence
    /// through [`ShardedEngine::insert_ranking`] / `remove_ranking`
    /// instead.
    pub fn extend_from_store(&mut self, store: &RankingStore) {
        assert_eq!(store.k(), self.k, "store ranking size must match k");
        for id in store.live_ids() {
            self.push_ranking(store.items(id));
        }
    }

    /// Builds the per-shard engines. Empty shards (possible under medoid
    /// routing or tiny corpora) carry no engine and are skipped by every
    /// query.
    pub fn build(self) -> ShardedEngine {
        let ShardedEngineBuilder {
            k,
            strategy,
            config,
            stores,
            globals,
            medoids,
            next_global,
        } = self;
        let mut directory = vec![GONE; next_global as usize];
        for (s, globals) in globals.iter().enumerate() {
            for (local, g) in globals.iter().enumerate() {
                directory[g.index()] = ShardLoc {
                    shard: s as u32,
                    local: local as u32,
                };
            }
        }
        let shards = stores
            .into_iter()
            .zip(globals)
            .map(|(store, global)| {
                let engine = (!store.is_empty()).then(|| config.build_engine(store));
                Shard { engine, global }
            })
            .collect();
        ShardedEngine {
            k,
            strategy,
            shards,
            config,
            medoids,
            directory,
            next_global,
        }
    }
}

/// One shard: its engine (absent when the shard received no rankings)
/// and the local-to-global ranking-id map (`global[local.index()]`,
/// ascending because pushes append in global order).
struct Shard {
    engine: Option<Engine>,
    global: Vec<RankingId>,
}

/// Reusable per-worker scratch for sharded queries: one epoch-versioned
/// [`QueryScratch`] shared across shards (its arrays grow to the largest
/// shard universe and stay) plus a local-result buffer for id
/// translation. Steady-state threshold queries through
/// [`ShardedEngine::query_into`] are allocation-free, guarded by
/// `crates/core/tests/alloc_free.rs`.
pub struct ShardedScratch {
    scratch: QueryScratch,
    local: Vec<RankingId>,
}

/// The S-shard engine. Query semantics match the monolithic [`Engine`]
/// exactly; see the module docs for the merge rules.
///
/// The engine is **live**: [`ShardedEngine::insert_ranking`] routes new
/// rankings with the build-time strategy, [`ShardedEngine::remove_ranking`]
/// tombstones through a global→(shard, local) directory, and size-aware
/// [`ShardedEngine::rebalance`] migrates rankings off swollen shards,
/// rebuilding only the affected shards. Per-shard local ids stay
/// monotone in global ids throughout (fresh globals append; rebuilds
/// sort ascending), which is the invariant that keeps the lexicographic
/// top-k merge bit-identical to a from-scratch monolith.
pub struct ShardedEngine {
    k: usize,
    strategy: ShardStrategy,
    shards: Vec<Shard>,
    config: ShardConfig,
    /// Routing state (medoid strategy); one slot per shard.
    medoids: Vec<Option<Vec<ItemId>>>,
    /// `directory[global] = (shard, local)`; [`GONE`] once removed.
    directory: Vec<ShardLoc>,
    next_global: u32,
}

impl ShardedEngine {
    /// The ranking size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured shard count (including empty shards).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing strategy the corpus was built with.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Total rankings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.global.len()).sum()
    }

    /// Whether no rankings were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rankings per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.global.len()).collect()
    }

    /// Per-shard heap footprint (store + every built index structure;
    /// empty shards report 0). The memory-budget guard of the `repro`
    /// shard experiment reports and checks these.
    pub fn shard_heap_bytes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| {
                s.engine.as_ref().map_or(0, |e| e.heap_bytes())
                    + s.global.capacity() * std::mem::size_of::<RankingId>()
            })
            .collect()
    }

    /// Total heap footprint across shards, plus the engine-level
    /// mutation state (the global→(shard, local) directory — which grows
    /// monotonically with every insert ever routed — and the medoid
    /// routing state), matching the monolith's exact delta/overlay
    /// accounting.
    pub fn heap_bytes(&self) -> usize {
        self.shard_heap_bytes().iter().sum::<usize>()
            + self.directory.capacity() * std::mem::size_of::<ShardLoc>()
            + self.medoids.capacity() * std::mem::size_of::<Option<Vec<ItemId>>>()
            + self
                .medoids
                .iter()
                .map(|m| {
                    m.as_ref()
                        .map_or(0, |v| v.capacity() * std::mem::size_of::<ItemId>())
                })
                .sum::<usize>()
    }

    /// A fresh scratch; reuse it across queries to keep the hot path
    /// allocation-free.
    pub fn scratch(&self) -> ShardedScratch {
        ShardedScratch {
            scratch: QueryScratch::new(),
            local: Vec::new(),
        }
    }

    // --- live-corpus mutation API -----------------------------------

    /// Live rankings across all shards.
    pub fn live_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.as_ref().map_or(0, |e| e.live_len()))
            .sum()
    }

    /// Live rankings per shard (what the rebalancer watches).
    pub fn shard_live_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.engine.as_ref().map_or(0, |e| e.live_len()))
            .collect()
    }

    /// Whether global ranking `id` is live.
    pub fn is_live(&self, id: RankingId) -> bool {
        matches!(self.directory.get(id.index()), Some(loc) if *loc != GONE)
    }

    /// Routes a new ranking to its shard (build-time strategy) and
    /// inserts it there, returning the fresh global id — the same id a
    /// monolithic [`Engine::insert_ranking`] would assign for the same
    /// mutation sequence. May trigger an automatic rebalance (see
    /// [`RebalanceConfig::auto`]).
    pub fn insert_ranking(&mut self, items: &[ItemId]) -> RankingId {
        assert_eq!(items.len(), self.k, "ranking size must match k");
        let shard = route_to_shard(self.strategy, &mut self.medoids, items);
        let global = RankingId(self.next_global);
        self.next_global += 1;
        let s = &mut self.shards[shard];
        let local = match &mut s.engine {
            Some(engine) => engine.insert_ranking(items),
            None => {
                let mut store = RankingStore::new(self.k);
                let local = store.push_items_unchecked(items);
                s.engine = Some(self.config.build_engine(store));
                local
            }
        };
        debug_assert_eq!(
            local.index(),
            s.global.len(),
            "local ids append in lockstep with the global map"
        );
        s.global.push(global);
        self.directory.push(ShardLoc {
            shard: shard as u32,
            local: local.0,
        });
        if self.config.rebalance.auto {
            self.rebalance();
        }
        global
    }

    /// Tombstones the ranking with global id `id` on its shard. Returns
    /// `false` when the id was never assigned or already removed.
    pub fn remove_ranking(&mut self, id: RankingId) -> bool {
        let Some(&loc) = self.directory.get(id.index()) else {
            return false;
        };
        if loc == GONE {
            return false;
        }
        let shard = &mut self.shards[loc.shard as usize];
        let engine = shard
            .engine
            .as_mut()
            .expect("directory points into a built shard");
        let removed = engine.remove_ranking(RankingId(loc.local));
        debug_assert!(removed, "directory and shard liveness agree");
        debug_assert_eq!(
            engine.store().len(),
            shard.global.len(),
            "local id space and global map stay in lockstep"
        );
        self.directory[id.index()] = GONE;
        if self.config.rebalance.auto {
            self.rebalance();
        }
        removed
    }

    /// Compacts every shard engine (releases tombstoned slots, rebuilds
    /// the per-shard arenas over the live set) and then checks the
    /// rebalance policy once.
    pub fn compact(&mut self) {
        for s in &mut self.shards {
            if let Some(engine) = &mut s.engine {
                engine.compact();
                debug_assert_eq!(
                    engine.store().len(),
                    s.global.len(),
                    "compaction keeps the local id space intact"
                );
            }
        }
        self.rebalance();
    }

    /// Checks the size-skew policy and migrates rankings if it fires:
    /// the largest shards donate their highest-global-id live rankings
    /// to the smallest shards until every shard sits at (or below) the
    /// mean, then **only the affected shards** are rebuilt from scratch
    /// — local ids re-assigned in ascending global order, which restores
    /// the monotone local↔global invariant the top-k merge needs.
    /// Returns `true` when a migration happened.
    pub fn rebalance(&mut self) -> bool {
        let policy = self.config.rebalance;
        let s = self.shards.len();
        // Balanced-path check in one allocation-free pass: the auto
        // policy runs this after *every* routed mutation.
        let (mut total, mut max, mut min) = (0usize, 0usize, usize::MAX);
        for shard in &self.shards {
            let live = shard.engine.as_ref().map_or(0, |e| e.live_len());
            total += live;
            max = max.max(live);
            min = min.min(live);
        }
        if s < 2 || total == 0 {
            return false;
        }
        let mean = total as f64 / s as f64;
        if (max as f64) <= policy.skew_factor * mean.max(1.0) || max - min < policy.min_gap {
            return false;
        }
        let target = mean.ceil() as usize;
        // Collect the migration plan: donors shed their highest-global
        // live rankings down to the target, receivers fill up to it.
        let mut moved: Vec<(RankingId, Vec<ItemId>)> = Vec::new();
        let mut affected = vec![false; s];
        for (si, shard) in self.shards.iter_mut().enumerate() {
            let live = shard.engine.as_ref().map_or(0, |e| e.live_len());
            let surplus = live.saturating_sub(target);
            if surplus == 0 {
                continue;
            }
            // Shedding marks the directory only — no engine removal: the
            // donor is rebuilt from scratch below anyway, and a removal
            // here could trip the shard engine's auto-compaction into a
            // full index rebuild that the rebuild immediately discards.
            let engine = shard.engine.as_ref().expect("live shard has an engine");
            let mut shed = 0usize;
            for local in (0..shard.global.len()).rev() {
                if shed == surplus {
                    break;
                }
                let lid = RankingId(local as u32);
                if !engine.is_live(lid) {
                    continue;
                }
                let global = shard.global[local];
                moved.push((global, engine.store().items(lid).to_vec()));
                self.directory[global.index()] = GONE;
                shed += 1;
            }
            affected[si] = true;
        }
        if moved.is_empty() {
            return false;
        }
        // Deterministic receiver assignment: ascending shard index,
        // filling each to the target; ascending global order within.
        moved.sort_unstable_by_key(|&(g, _)| g);
        let mut additions: Vec<Vec<(RankingId, Vec<ItemId>)>> = vec![Vec::new(); s];
        let mut fill: Vec<usize> = self.shard_live_sizes();
        let mut cursor = 0usize;
        for (global, items) in moved {
            while cursor < s && fill[cursor] >= target {
                cursor += 1;
            }
            let to = if cursor < s { cursor } else { s - 1 };
            fill[to] += 1;
            affected[to] = true;
            additions[to].push((global, items));
        }
        // Rebuild only the affected shards, locals ascending in globals.
        for (si, extra) in additions.into_iter().enumerate() {
            if !affected[si] {
                continue;
            }
            self.rebuild_shard(si, extra);
        }
        true
    }

    /// Rebuilds shard `si` from its live rankings plus `extra`
    /// (global id, items) arrivals: a fresh store pushed in ascending
    /// global order, a fresh engine from the retained config, and
    /// directory updates for every member. A live local whose directory
    /// entry no longer points here was shed to another shard by the
    /// rebalancer (marked `GONE`, or already re-homed by an
    /// earlier-rebuilt receiver) and is excluded.
    fn rebuild_shard(&mut self, si: usize, extra: Vec<(RankingId, Vec<ItemId>)>) {
        let shard = &mut self.shards[si];
        let mut entries: Vec<(RankingId, Vec<ItemId>)> = Vec::new();
        if let Some(engine) = &shard.engine {
            for (local, &global) in shard.global.iter().enumerate() {
                let lid = RankingId(local as u32);
                let here = ShardLoc {
                    shard: si as u32,
                    local: local as u32,
                };
                if engine.is_live(lid) && self.directory[global.index()] == here {
                    entries.push((global, engine.store().items(lid).to_vec()));
                }
            }
        }
        entries.extend(extra);
        entries.sort_unstable_by_key(|&(g, _)| g);
        let mut store = RankingStore::with_capacity(self.k, entries.len());
        let mut globals = Vec::with_capacity(entries.len());
        for (global, items) in &entries {
            store.push_items_unchecked(items);
            globals.push(*global);
        }
        for (local, global) in globals.iter().enumerate() {
            self.directory[global.index()] = ShardLoc {
                shard: si as u32,
                local: local as u32,
            };
        }
        shard.engine = (!store.is_empty()).then(|| self.config.build_engine(store));
        shard.global = globals;
    }

    /// Runs `algorithm` over every shard into a caller-owned buffer
    /// (cleared first). Results are global ranking ids sorted ascending —
    /// the canonical order, independent of shard count and strategy. With
    /// a warmed-up scratch and buffer, steady-state calls perform zero
    /// heap allocations.
    pub fn query_into(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut ShardedScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) {
        let mut plan = PlanStats::new();
        self.query_into_recorded(algorithm, query, theta_raw, scratch, stats, &mut plan, out);
    }

    /// [`ShardedEngine::query_into`] additionally folding per-shard
    /// planner telemetry into `plan`. Under [`Algorithm::Auto`] every
    /// shard plans **independently** — shards differ in size and item
    /// distribution, so the same query may legitimately take different
    /// paths on different shards; `plan` then counts one pick per
    /// (query, non-empty shard).
    #[allow(clippy::too_many_arguments)]
    pub fn query_into_recorded(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut ShardedScratch,
        stats: &mut QueryStats,
        plan: &mut PlanStats,
        out: &mut Vec<RankingId>,
    ) {
        assert_eq!(
            query.len(),
            self.k,
            "query size must match the corpus ranking size"
        );
        out.clear();
        for shard in &self.shards {
            let Some(engine) = &shard.engine else {
                continue;
            };
            let trace = engine.query_into_traced(
                algorithm,
                query,
                theta_raw,
                &mut scratch.scratch,
                stats,
                &mut scratch.local,
            );
            plan.record(&trace);
            out.extend(scratch.local.iter().map(|id| shard.global[id.index()]));
        }
        out.sort_unstable();
    }

    /// Convenience wrapper around [`ShardedEngine::query_into`].
    pub fn query_items(
        &self,
        algorithm: Algorithm,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut ShardedScratch,
        stats: &mut QueryStats,
    ) -> Vec<RankingId> {
        let mut out = Vec::new();
        self.query_into(algorithm, query, theta_raw, scratch, stats, &mut out);
        out
    }

    /// The `neighbours` nearest rankings across all shards, as ascending
    /// `(distance, global id)` pairs — bit-identical to
    /// [`Engine::query_topk`] on the unsharded corpus: each shard yields
    /// its exact lexicographic top-k (local ids ascend with global ids
    /// within a shard), and the bounded merge heap keeps the k smallest
    /// global pairs with the same smaller-ids-win tie rule.
    pub fn query_topk(
        &self,
        query: &[ItemId],
        neighbours: usize,
        scratch: &mut ShardedScratch,
        stats: &mut QueryStats,
    ) -> Vec<(u32, RankingId)> {
        assert_eq!(
            query.len(),
            self.k,
            "query size must match the corpus ranking size"
        );
        if neighbours == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut merge = KnnHeap::new(neighbours);
        for shard in &self.shards {
            let Some(engine) = &shard.engine else {
                continue;
            };
            for (d, local) in engine.query_topk(query, neighbours, &mut scratch.scratch, stats) {
                merge.offer(d, shard.global[local.index()]);
            }
        }
        merge.into_sorted()
    }

    /// Processes `queries` with `algorithm` at one raw threshold across
    /// `threads` work-stealing worker threads (`0` picks the machine's
    /// available parallelism); every worker owns one [`ShardedScratch`]
    /// and drains the shared query cursor, so skewed batches balance
    /// across workers. Returns per-query result sets in input order plus
    /// merged stats.
    pub fn query_batch(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
    ) -> (Vec<Vec<RankingId>>, QueryStats) {
        let (results, reports) = self.query_batch_reported(algorithm, queries, theta_raw, threads);
        (results, merge_reports(&reports))
    }

    /// [`ShardedEngine::query_batch`] with one [`WorkerReport`] per
    /// worker instead of pre-merged stats.
    ///
    /// Work is split at **(query × shard)** granularity: every stealable
    /// task scans exactly one non-empty shard for one query, so a single
    /// expensive query spreads across workers instead of pinning one
    /// worker for its full all-shard sweep (the imbalance the per-worker
    /// [`PlanStats`] exposed). [`WorkerReport::queries`] therefore counts
    /// claimed *tasks* here. Per-shard result sets are disjoint, so the
    /// per-query reassembly (concatenate, then one ascending sort) is
    /// bit-identical to the serial all-shards-per-query path.
    pub fn query_batch_reported(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
    ) -> (Vec<Vec<RankingId>>, Vec<WorkerReport>) {
        self.query_batch_inner(algorithm, queries, theta_raw, threads, None)
    }

    /// [`ShardedEngine::query_batch_reported`] with a wall-clock
    /// `budget`, matching [`Engine::query_batch_deadline`]'s contract at
    /// the **query** level despite the (query × shard) task split: a
    /// query is answered only when *every* one of its per-shard tasks
    /// ran. If the deadline fires on any task of a query — even while
    /// that query's sibling tasks on other shards completed — the whole
    /// query fails typed: empty result set, query index recorded (once,
    /// in one report) in [`WorkerReport::timed_out`]. Completed sibling
    /// partials are discarded, never merged — a partial merge would be a
    /// silently truncated result set, indistinguishable from a smaller
    /// true answer.
    pub fn query_batch_deadline(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
        budget: Duration,
    ) -> (Vec<Vec<RankingId>>, Vec<WorkerReport>) {
        let deadline = Instant::now() + budget;
        self.query_batch_inner(algorithm, queries, theta_raw, threads, Some(deadline))
    }

    fn query_batch_inner(
        &self,
        algorithm: Algorithm,
        queries: &[Vec<ItemId>],
        theta_raw: u32,
        threads: usize,
        deadline: Option<Instant>,
    ) -> (Vec<Vec<RankingId>>, Vec<WorkerReport>) {
        let active: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.engine.is_some())
            .map(|(si, _)| si)
            .collect();
        let na = active.len();
        if na == 0 || queries.is_empty() {
            return (vec![Vec::new(); queries.len()], Vec::new());
        }
        let active = &active;
        let (tasks, mut reports) = run_stealing(queries.len() * na, threads, deadline, || {
            let mut scratch = self.scratch();
            move |t: usize, report: &mut WorkerReport| {
                let (qi, si) = (t / na, active[t % na]);
                let shard = &self.shards[si];
                let engine = shard.engine.as_ref().expect("active shard has an engine");
                let trace = engine.query_into_traced(
                    algorithm,
                    &queries[qi],
                    theta_raw,
                    &mut scratch.scratch,
                    &mut report.stats,
                    &mut scratch.local,
                );
                report.plan.record(&trace);
                scratch
                    .local
                    .iter()
                    .map(|id| shard.global[id.index()])
                    .collect()
            }
        });
        // The stealing pool recorded timed-out *task* indices. Lift them
        // to query granularity: one task missed ⇒ the whole query timed
        // out. Each query is reported once (first report that saw one of
        // its tasks), so [`merge_reports`] counts it exactly once.
        let mut query_timed_out = vec![false; queries.len()];
        for report in &reports {
            for &t in &report.timed_out {
                query_timed_out[t / na] = true;
            }
        }
        let mut reported = vec![false; queries.len()];
        for report in &mut reports {
            let tasks = std::mem::take(&mut report.timed_out);
            for t in tasks {
                let qi = t / na;
                if !reported[qi] {
                    reported[qi] = true;
                    report.timed_out.push(qi);
                }
            }
        }
        let mut results: Vec<Vec<RankingId>> = Vec::with_capacity(queries.len());
        results.resize_with(queries.len(), Vec::new);
        for (t, mut part) in tasks.into_iter().enumerate() {
            let qi = t / na;
            // Discard completed partials of a timed-out query: answers
            // are all-shards-or-typed-failure, never a truncated merge.
            if !query_timed_out[qi] {
                results[qi].append(&mut part);
            }
        }
        for r in &mut results {
            r.sort_unstable();
        }
        (results, reports)
    }
}

/// Flat form of the retained per-shard build config, for the snapshot
/// codec (`crate::persist`). Algorithms travel as dense slots with
/// `u32::MAX` standing in for `Auto`; the rebalance policy is inlined.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub(crate) struct ShardConfigParts {
    pub coarse_theta_c: f64,
    pub coarse_theta_c_drop: Option<f64>,
    pub selected: Option<Vec<u32>>,
    pub topk_trees: bool,
    pub calibrated: Option<(f64, f64)>,
    pub compact_tombstone_fraction: Option<f64>,
    pub planner_refresh_budget: Option<u64>,
    /// [`Kernel::to_tag`] of the per-shard distance kernel.
    pub kernel: u32,
    /// [`PostingOrder::to_tag`] of the per-shard posting order.
    pub posting_order: u32,
    pub rebalance_skew_factor: f64,
    pub rebalance_min_gap: u64,
    pub rebalance_auto: bool,
}

/// Everything the sharded snapshot manifest records besides the
/// per-shard engine snapshots themselves: routing state, the
/// global→(shard, local) directory as flat planes (`u32::MAX` pairs
/// encode removed ids), and each shard's local→global map.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub(crate) struct ShardedPersistParts {
    pub k: u32,
    /// 0 = [`ShardStrategy::Hash`], 1 = [`ShardStrategy::Medoid`].
    pub strategy: u8,
    pub config: ShardConfigParts,
    /// Medoid routing state, one slot per shard (raw item ids).
    pub medoids: Vec<Option<Vec<u32>>>,
    pub dir_shards: Vec<u32>,
    pub dir_locals: Vec<u32>,
    pub next_global: u32,
    /// Which shards carry an engine (and thus a snapshot file).
    pub engine_present: Vec<bool>,
    /// Per shard: the global id of each local slot, ascending.
    pub globals: Vec<Vec<u32>>,
}

impl ShardedEngine {
    /// Snapshot view of the engine-level state (see
    /// [`ShardedPersistParts`]); per-shard engines are exported
    /// separately via [`ShardedEngine::shard_engine`].
    pub(crate) fn export_sharded_parts(&self) -> ShardedPersistParts {
        let encode_alg = |a: &Algorithm| a.dense_index().map_or(u32::MAX, |s| s as u32);
        ShardedPersistParts {
            k: self.k as u32,
            strategy: match self.strategy {
                ShardStrategy::Hash => 0,
                ShardStrategy::Medoid => 1,
            },
            config: ShardConfigParts {
                coarse_theta_c: self.config.coarse_theta_c,
                coarse_theta_c_drop: self.config.coarse_theta_c_drop,
                selected: self
                    .config
                    .selected
                    .as_ref()
                    .map(|sel| sel.iter().map(encode_alg).collect()),
                topk_trees: self.config.topk_trees,
                calibrated: self
                    .config
                    .calibrated
                    .map(|c| (c.footrule_ns, c.merge_posting_ns)),
                compact_tombstone_fraction: self.config.compact_tombstone_fraction,
                planner_refresh_budget: self.config.planner_refresh_budget.map(|b| b as u64),
                kernel: self.config.kernel.to_tag(),
                posting_order: self.config.posting_order.to_tag(),
                rebalance_skew_factor: self.config.rebalance.skew_factor,
                rebalance_min_gap: self.config.rebalance.min_gap as u64,
                rebalance_auto: self.config.rebalance.auto,
            },
            medoids: self
                .medoids
                .iter()
                .map(|m| m.as_ref().map(|v| v.iter().map(|i| i.0).collect()))
                .collect(),
            dir_shards: self.directory.iter().map(|l| l.shard).collect(),
            dir_locals: self.directory.iter().map(|l| l.local).collect(),
            next_global: self.next_global,
            engine_present: self.shards.iter().map(|s| s.engine.is_some()).collect(),
            globals: self
                .shards
                .iter()
                .map(|s| s.global.iter().map(|g| g.0).collect())
                .collect(),
        }
    }

    /// Shard `i`'s engine, if the shard holds any rankings.
    pub(crate) fn shard_engine(&self, i: usize) -> Option<&Engine> {
        self.shards[i].engine.as_ref()
    }

    /// Reassembles a sharded engine from manifest parts plus the
    /// separately loaded per-shard engines. Every cross-structure
    /// invariant is checked — directory entries resolve to live locals
    /// whose global map points back, local↔global maps stay monotone,
    /// presence flags agree — so a corrupt manifest fails typed instead
    /// of producing an engine that answers wrongly.
    pub(crate) fn from_sharded_parts(
        parts: ShardedPersistParts,
        engines: Vec<Option<Engine>>,
    ) -> Result<ShardedEngine, String> {
        let ShardedPersistParts {
            k,
            strategy,
            config,
            medoids,
            dir_shards,
            dir_locals,
            next_global,
            engine_present,
            globals,
        } = parts;
        let k = k as usize;
        if k == 0 {
            return Err("ranking size k must be positive".to_string());
        }
        let num_shards = globals.len();
        if num_shards == 0 {
            return Err("need at least one shard".to_string());
        }
        if engine_present.len() != num_shards
            || medoids.len() != num_shards
            || engines.len() != num_shards
        {
            return Err(format!(
                "per-shard plane lengths disagree: {num_shards} global maps, {} presence \
                 flags, {} medoid slots, {} engines",
                engine_present.len(),
                medoids.len(),
                engines.len()
            ));
        }
        let strategy = match strategy {
            0 => ShardStrategy::Hash,
            1 => ShardStrategy::Medoid,
            s => return Err(format!("unknown shard strategy {s}")),
        };
        let selected = match config.selected {
            None => None,
            Some(slots) => {
                let mut sel = Vec::with_capacity(slots.len());
                for slot in slots {
                    sel.push(if slot == u32::MAX {
                        Algorithm::Auto
                    } else {
                        Algorithm::from_dense_index(slot as usize)
                            .ok_or_else(|| format!("unknown algorithm slot {slot}"))?
                    });
                }
                Some(sel)
            }
        };
        let config = ShardConfig {
            coarse_theta_c: config.coarse_theta_c,
            coarse_theta_c_drop: config.coarse_theta_c_drop,
            selected,
            topk_trees: config.topk_trees,
            calibrated: config.calibrated.map(|(f, m)| crate::CalibratedCosts {
                footrule_ns: f,
                merge_posting_ns: m,
            }),
            compact_tombstone_fraction: config.compact_tombstone_fraction,
            planner_refresh_budget: config.planner_refresh_budget.map(|b| b as usize),
            kernel: Kernel::from_tag(config.kernel)?,
            posting_order: PostingOrder::from_tag(config.posting_order)?,
            rebalance: RebalanceConfig {
                skew_factor: config.rebalance_skew_factor,
                min_gap: config.rebalance_min_gap as usize,
                auto: config.rebalance_auto,
            },
        };
        let medoids: Vec<Option<Vec<ItemId>>> = medoids
            .into_iter()
            .enumerate()
            .map(|(si, m)| match m {
                None => Ok(None),
                Some(items) if items.len() == k => {
                    Ok(Some(items.into_iter().map(ItemId).collect()))
                }
                Some(items) => Err(format!(
                    "shard {si}: medoid has {} items (expected {k})",
                    items.len()
                )),
            })
            .collect::<Result<_, String>>()?;
        let n = next_global as usize;
        let mut shards: Vec<Shard> = Vec::with_capacity(num_shards);
        for (si, (global_raw, engine)) in globals.into_iter().zip(engines).enumerate() {
            if engine_present[si] != engine.is_some() {
                return Err(format!(
                    "shard {si}: manifest presence flag and loaded engine disagree"
                ));
            }
            if let Some(e) = &engine {
                if e.store().k() != k {
                    return Err(format!(
                        "shard {si}: engine ranking size {} != manifest k {k}",
                        e.store().k()
                    ));
                }
                if e.store().len() != global_raw.len() {
                    return Err(format!(
                        "shard {si}: engine holds {} slots but the global map has {}",
                        e.store().len(),
                        global_raw.len()
                    ));
                }
            } else if !global_raw.is_empty() {
                return Err(format!(
                    "shard {si}: global map has {} entries but no engine",
                    global_raw.len()
                ));
            }
            if !global_raw.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("shard {si}: global ids are not strictly ascending"));
            }
            if global_raw.iter().any(|&g| g as usize >= n) {
                return Err(format!(
                    "shard {si}: global map exceeds next_global {next_global}"
                ));
            }
            shards.push(Shard {
                engine,
                global: global_raw.into_iter().map(RankingId).collect(),
            });
        }
        if dir_shards.len() != n || dir_locals.len() != n {
            return Err(format!(
                "directory planes hold {}/{} entries for {n} assigned globals",
                dir_shards.len(),
                dir_locals.len()
            ));
        }
        let mut directory = Vec::with_capacity(n);
        let mut live_count = 0usize;
        for g in 0..n {
            let (s, l) = (dir_shards[g], dir_locals[g]);
            if s == u32::MAX || l == u32::MAX {
                if s != u32::MAX || l != u32::MAX {
                    return Err(format!("directory entry {g} is half-removed ({s}, {l})"));
                }
                directory.push(GONE);
                continue;
            }
            let shard = shards.get(s as usize).ok_or_else(|| {
                format!("directory entry {g} points at shard {s} of {num_shards}")
            })?;
            let global_at = shard.global.get(l as usize).ok_or_else(|| {
                format!(
                    "directory entry {g} points at local {l} beyond shard {s}'s {} slots",
                    shard.global.len()
                )
            })?;
            if global_at.index() != g {
                return Err(format!(
                    "directory entry {g} disagrees with shard {s}'s global map ({global_at:?})"
                ));
            }
            let engine = shard
                .engine
                .as_ref()
                .ok_or_else(|| format!("directory entry {g} points into engineless shard {s}"))?;
            if !engine.is_live(RankingId(l)) {
                return Err(format!(
                    "directory entry {g} points at dead local {l} in shard {s}"
                ));
            }
            directory.push(ShardLoc { shard: s, local: l });
            live_count += 1;
        }
        let engine_live: usize = shards
            .iter()
            .map(|s| s.engine.as_ref().map_or(0, |e| e.live_len()))
            .sum();
        if live_count != engine_live {
            return Err(format!(
                "directory lists {live_count} live rankings but the shard engines hold \
                 {engine_live}"
            ));
        }
        Ok(ShardedEngine {
            k,
            strategy,
            shards,
            config,
            medoids,
            directory,
            next_global,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::raw_threshold;

    fn sharded_from(store: &RankingStore, shards: usize, strategy: ShardStrategy) -> ShardedEngine {
        let mut b = ShardedEngineBuilder::new(store.k(), shards, strategy)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06);
        b.extend_from_store(store);
        b.build()
    }

    #[test]
    fn all_rankings_land_in_exactly_one_shard() {
        let ds = nyt_like(600, 10, 21);
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            let sharded = sharded_from(&ds.store, 4, strategy);
            assert_eq!(sharded.len(), 600);
            let mut seen: Vec<RankingId> = sharded
                .shards
                .iter()
                .flat_map(|s| s.global.iter().copied())
                .collect();
            seen.sort_unstable();
            let expect: Vec<RankingId> = ds.store.ids().collect();
            assert_eq!(
                seen, expect,
                "{strategy:?}: global ids partition the corpus"
            );
        }
    }

    #[test]
    fn hash_sharding_spreads_the_corpus() {
        let ds = nyt_like(2000, 10, 5);
        let sharded = sharded_from(&ds.store, 4, ShardStrategy::Hash);
        for (s, &size) in sharded.shard_sizes().iter().enumerate() {
            assert!(size > 0, "hash shard {s} is empty");
            assert!(size < 2000, "hash shard {s} swallowed the corpus");
        }
    }

    #[test]
    fn sharded_threshold_results_match_monolith() {
        let ds = nyt_like(900, 10, 77);
        let engine = EngineBuilder::new(ds.store.clone())
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build();
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 12,
                seed: 3,
                ..Default::default()
            },
        );
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            let sharded = sharded_from(&ds.store, 3, strategy);
            let mut ms = engine.scratch();
            let mut ss = sharded.scratch();
            for q in &wl.queries {
                for theta in [0.0, 0.15, 0.3] {
                    let raw = raw_threshold(theta, 10);
                    for alg in [Algorithm::Fv, Algorithm::Coarse, Algorithm::ListMerge] {
                        let mut st = QueryStats::new();
                        let mut expect = engine.query_items(alg, q, raw, &mut ms, &mut st);
                        expect.sort_unstable();
                        let got = sharded.query_items(alg, q, raw, &mut ss, &mut st);
                        assert_eq!(got, expect, "{strategy:?} {alg} θ={theta}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_topk_matches_monolith_exactly() {
        let ds = nyt_like(700, 10, 13);
        let engine = EngineBuilder::new(ds.store.clone()).topk_tree(true).build();
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 10,
                seed: 9,
                ..Default::default()
            },
        );
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            for shards in [1usize, 2, 5] {
                let sharded = sharded_from(&ds.store, shards, strategy);
                let mut ms = engine.scratch();
                let mut ss = sharded.scratch();
                for q in &wl.queries {
                    for kn in [1usize, 7, 40] {
                        let mut st = QueryStats::new();
                        let expect = engine.query_topk(q, kn, &mut ms, &mut st);
                        let got = sharded.query_topk(q, kn, &mut ss, &mut st);
                        assert_eq!(got, expect, "{strategy:?} S={shards} kn={kn}");
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_batch_equals_sequential_sharded_queries() {
        let ds = nyt_like(500, 10, 41);
        let sharded = sharded_from(&ds.store, 3, ShardStrategy::Hash);
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 20,
                seed: 6,
                ..Default::default()
            },
        );
        let raw = raw_threshold(0.2, 10);
        for threads in [1usize, 4, 0] {
            let (got, batch_stats) = sharded.query_batch(Algorithm::Fv, &wl.queries, raw, threads);
            let mut ss = sharded.scratch();
            let mut seq_stats = QueryStats::new();
            for (qi, q) in wl.queries.iter().enumerate() {
                let expect = sharded.query_items(Algorithm::Fv, q, raw, &mut ss, &mut seq_stats);
                assert_eq!(got[qi], expect, "query {qi} at {threads} threads");
            }
            assert_eq!(batch_stats, seq_stats, "merged stats equal sequential");
        }
    }

    #[test]
    fn routed_mutations_match_a_mutated_monolith() {
        use crate::CalibratedCosts;
        let ds = nyt_like(500, 10, 53);
        let mut engine = EngineBuilder::new(ds.store.clone())
            .coarse_threshold(0.5)
            .calibrated_costs(CalibratedCosts::nominal(10))
            .topk_tree(true)
            .build();
        for strategy in [ShardStrategy::Hash, ShardStrategy::Medoid] {
            let ds = nyt_like(500, 10, 53);
            let mut b = ShardedEngineBuilder::new(10, 3, strategy)
                .coarse_threshold(0.5)
                .calibrated_costs(CalibratedCosts::nominal(10))
                .topk_trees(true)
                .rebalance(RebalanceConfig {
                    auto: false,
                    ..Default::default()
                });
            b.extend_from_store(&ds.store);
            let mut sharded = b.build();
            // Same mutation sequence on both: ids must line up.
            let mut mono = if strategy == ShardStrategy::Hash {
                Some(&mut engine)
            } else {
                None
            };
            for id in (0..500u32).step_by(9) {
                assert!(sharded.remove_ranking(RankingId(id)));
                if let Some(m) = mono.as_deref_mut() {
                    assert!(m.remove_ranking(RankingId(id)));
                }
            }
            for i in 0..40u32 {
                let donor = RankingId(i * 5 + 1);
                let mut items: Vec<ItemId> = ds.store.items(donor).to_vec();
                items.swap(1, 8);
                let g = sharded.insert_ranking(&items);
                assert_eq!(g, RankingId(500 + i), "monotone global ids");
                if let Some(m) = mono.as_deref_mut() {
                    assert_eq!(m.insert_ranking(&items), g, "id policies agree");
                }
            }
            assert_eq!(sharded.live_len(), 500 - 56 + 40);
            if mono.is_none() {
                continue;
            }
            // Differential check against the mutated monolith.
            let mut ms = engine.scratch();
            let mut ss = sharded.scratch();
            for qid in [1u32, 333, 510, 539] {
                let q: Vec<ItemId> = engine.store().items(RankingId(qid)).to_vec();
                for theta in [0.0, 0.2] {
                    let raw = raw_threshold(theta, 10);
                    for alg in [Algorithm::Fv, Algorithm::Coarse, Algorithm::ListMerge] {
                        let mut st = QueryStats::new();
                        let mut expect = engine.query_items(alg, &q, raw, &mut ms, &mut st);
                        expect.sort_unstable();
                        let got = sharded.query_items(alg, &q, raw, &mut ss, &mut st);
                        assert_eq!(got, expect, "{strategy:?} {alg} θ={theta} qid={qid}");
                    }
                }
                for kn in [1usize, 8, 33] {
                    let mut st = QueryStats::new();
                    let expect = engine.query_topk(&q, kn, &mut ms, &mut st);
                    let got = sharded.query_topk(&q, kn, &mut ss, &mut st);
                    assert_eq!(got, expect, "topk {strategy:?} kn={kn} qid={qid}");
                }
            }
        }
    }

    #[test]
    fn rebalance_migrates_skew_and_keeps_results_bit_identical() {
        use crate::CalibratedCosts;
        // Medoid routing with near-duplicate floods produces heavy skew.
        let mut b = ShardedEngineBuilder::new(4, 3, ShardStrategy::Medoid)
            .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
            .calibrated_costs(CalibratedCosts::nominal(4))
            .rebalance(RebalanceConfig {
                skew_factor: 1.5,
                min_gap: 8,
                auto: false,
            });
        // Three seed medoids, then flood near shard 0's medoid.
        b.push_ranking(&[0u32, 1, 2, 3].map(ItemId));
        b.push_ranking(&[100u32, 101, 102, 103].map(ItemId));
        b.push_ranking(&[200u32, 201, 202, 203].map(ItemId));
        for i in 0..60u32 {
            let mut items = [0u32, 1, 2, 3].map(ItemId);
            items.swap(0, (i % 3 + 1) as usize);
            b.push_ranking(&items);
        }
        let mut sharded = b.build();
        let skewed = sharded.shard_live_sizes();
        assert!(
            *skewed.iter().max().unwrap() >= 40,
            "flood must skew: {skewed:?}"
        );
        // Oracle: a monolith with the same live corpus at the same ids.
        let mut store = RankingStore::new(4);
        for g in 0..sharded.len() as u32 {
            let loc = sharded.directory[g as usize];
            let e = sharded.shards[loc.shard as usize].engine.as_ref().unwrap();
            store.push_items_unchecked(e.store().items(RankingId(loc.local)));
        }
        let engine = EngineBuilder::new(store)
            .algorithms(&[Algorithm::Fv, Algorithm::ListMerge])
            .topk_tree(true)
            .build();
        let before = sharded.shard_live_sizes();
        assert!(sharded.rebalance(), "skew above 1.5× mean must trigger");
        let after = sharded.shard_live_sizes();
        assert!(
            after.iter().max().unwrap() < before.iter().max().unwrap(),
            "rebalance must shrink the largest shard: {before:?} -> {after:?}"
        );
        assert_eq!(after.iter().sum::<usize>(), before.iter().sum::<usize>());
        assert!(!sharded.rebalance(), "a balanced engine must not thrash");
        // Bit-identical results after migration.
        let mut ms = engine.scratch();
        let mut ss = sharded.scratch();
        for qid in [0u32, 5, 33, 62] {
            let q: Vec<ItemId> = engine.store().items(RankingId(qid)).to_vec();
            for theta in [0.0, 0.3, 0.6] {
                let raw = raw_threshold(theta, 4);
                let mut st = QueryStats::new();
                let mut expect = engine.query_items(Algorithm::Fv, &q, raw, &mut ms, &mut st);
                expect.sort_unstable();
                let got = sharded.query_items(Algorithm::Fv, &q, raw, &mut ss, &mut st);
                assert_eq!(got, expect, "θ={theta} qid={qid}");
            }
            for kn in [1usize, 7, 40] {
                let mut st = QueryStats::new();
                assert_eq!(
                    sharded.query_topk(&q, kn, &mut ss, &mut st),
                    engine.query_topk(&q, kn, &mut ms, &mut st),
                    "topk kn={kn} qid={qid}"
                );
            }
        }
    }

    #[test]
    fn medoid_routing_colocates_duplicates() {
        // Push two distant seed rankings, then duplicates of each: the
        // duplicates must land in their seed's shard.
        let mut b = ShardedEngineBuilder::new(4, 2, ShardStrategy::Medoid);
        let a: Vec<ItemId> = [0u32, 1, 2, 3].map(ItemId).to_vec();
        let z: Vec<ItemId> = [100u32, 101, 102, 103].map(ItemId).to_vec();
        b.push_ranking(&a);
        b.push_ranking(&z);
        b.push_ranking(&z);
        b.push_ranking(&a);
        let sharded = b.build();
        assert_eq!(sharded.shard_sizes(), vec![2, 2]);
        assert_eq!(sharded.shards[0].global, vec![RankingId(0), RankingId(3)]);
        assert_eq!(sharded.shards[1].global, vec![RankingId(1), RankingId(2)]);
    }

    #[test]
    fn empty_shards_are_skipped() {
        // One ranking, seven shards: six shards stay empty yet queries
        // and reporting still work.
        let mut b = ShardedEngineBuilder::new(4, 7, ShardStrategy::Hash);
        let a: Vec<ItemId> = [5u32, 6, 7, 8].map(ItemId).to_vec();
        b.push_ranking(&a);
        let sharded = b.build();
        assert_eq!(sharded.len(), 1);
        let mut ss = sharded.scratch();
        let mut st = QueryStats::new();
        let got = sharded.query_items(Algorithm::Fv, &a, 0, &mut ss, &mut st);
        assert_eq!(got, vec![RankingId(0)]);
        let topk = sharded.query_topk(&a, 3, &mut ss, &mut st);
        assert_eq!(topk, vec![(0, RankingId(0))]);
        assert_eq!(
            sharded
                .shard_heap_bytes()
                .iter()
                .filter(|&&b| b == 0)
                .count(),
            6
        );
    }
}
