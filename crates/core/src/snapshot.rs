//! RCU-style snapshot engine: reads never block on writes.
//!
//! Every [`Engine`] mutation takes `&mut self`, so a serving deployment
//! built directly on one engine stalls every concurrent reader for the
//! whole duration of an insert — or, much worse, a compaction rebuild.
//! [`SnapshotEngine`] removes that coupling with a classic epoch /
//! read-copy-update arrangement over a chain of immutable engine
//! *generations*:
//!
//! * **Readers** call [`SnapshotEngine::snapshot`] and get an
//!   [`EngineSnapshot`]: an `Arc` onto the currently published
//!   generation. Acquisition is one `RwLock` read plus one atomic
//!   refcount increment — no allocation, and never blocked by a writer
//!   (the head lock is only ever write-held for a pointer swap). The
//!   snapshot is a fully frozen [`Engine`]; queries against it are
//!   bit-identical to a monolith that stopped mutating at the
//!   snapshot's log position, for as long as the snapshot is held.
//! * **Writers** apply mutations synchronously to a private *master*
//!   engine under a mutex and append the operation to a log. Writers
//!   therefore serialize with each other (and pay for any master-side
//!   auto-compaction), but never touch the published generation.
//! * A background **publisher** thread replays the accumulated log
//!   suffix into a standby replica off-lock, then publishes it as the
//!   next generation with a pointer swap. Two replicas ping-pong
//!   through this role; replaying the *same deterministic op sequence*
//!   from the same seed state keeps master and replicas bit-identical
//!   at equal log positions (ranking-id assignment is a pure function
//!   of store state, and auto-compaction triggers at the same op index
//!   because every engine runs the same [`crate::EngineConfig`]).
//!
//! **Reclamation rule:** after a swap the publisher reclaims the
//! retiring generation by waiting for its `Arc` refcount to drop to
//! one ([`Arc::try_unwrap`] in a bounded spin). A straggler reader
//! that pins the retiring snapshot past the bound does not stall
//! publication: the publisher *abandons* the pinned generation (the
//! readers holding it free it when they drop it) and forks the freshly
//! published head as the new standby instead. Readers never wait on
//! writers; the publisher never waits unboundedly on readers.
//!
//! Freshness is bounded-staleness: a read admitted while the publisher
//! is mid-replay sees the previous generation. [`SnapshotEngine::flush`]
//! blocks until everything written so far is visible to new snapshots.
//!
//! Scratch reuse stays sound across swaps because every engine build,
//! fork and mutation draws a process-unique generation stamp (PR 5's
//! scheme): a [`QueryScratch`] that last served a different snapshot
//! observes a different stamp and re-arms its epoch structures.
//!
//! # Durability
//!
//! The mutation log doubles as a write-ahead log. An engine built with
//! [`SnapshotEngine::with_wal`] appends every accepted [`LogOp`] to a
//! checksummed on-disk log (see [`crate::wal`]) *inside the writer
//! critical section, before the mutation is acknowledged*, under a
//! configurable [`SyncPolicy`]. After a crash,
//! [`SnapshotEngine::recover`] rebuilds the corpus by replaying the
//! log's valid prefix onto the same base corpus the WAL was started
//! from, truncating any torn tail, and resumes appending where the
//! valid prefix ended — replay determinism (the property the replicas
//! already rely on) makes the recovered engine bit-identical to one
//! that applied exactly those operations and never crashed.
//!
//! **WAL failure is fail-stop for writes, not for reads.** If an
//! append or sync fails (disk full, injected fault), the op that hit
//! the failure *may* still become visible to snapshots — master and
//! replicas must not diverge, so the in-memory log keeps it — but it
//! is reported as [`MutationError::WalFailed`] because its durability
//! is not guaranteed, and every subsequent mutation is refused with
//! the same error. Reads keep serving the published generation
//! indefinitely; [`SnapshotEngine::health`] surfaces the failure so an
//! operator (or the serving layer) can fail over.
//!
//! Publisher death is surfaced the same way: the publisher thread runs
//! under `catch_unwind`, records its panic, and trips a flag that
//! [`SnapshotEngine::health`] reports and that stops
//! [`SnapshotEngine::flush`] from blocking forever. Snapshots keep
//! serving the last published generation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use crate::batch::panic_message;
use crate::engine::Engine;
use crate::persist::{load_engine, save_engine, LoadMode, PersistError, SnapshotMeta};
use crate::wal::{read_wal, FailPoint, LogOp, RecoveryReport, SyncPolicy, WalError, WalWriter};
use ranksim_rankings::{validate_items, ItemId, RankingError, RankingId};

/// How long the publisher waits for straggler readers to release a
/// retiring generation before abandoning it and forking the head.
const RECLAIM_WAIT: Duration = Duration::from_millis(10);

/// How often a blocked [`SnapshotEngine::wait_until_published`] wakes
/// to re-check whether the publisher died.
const PUBLISH_POLL: Duration = Duration::from_millis(25);

/// Why a mutation was refused by the `try_*` mutation API.
#[derive(Debug)]
pub enum MutationError {
    /// The ranking failed validation (wrong length, duplicate item);
    /// nothing was applied or logged.
    Invalid(RankingError),
    /// The write-ahead log failed on this or an earlier mutation. The
    /// engine is fail-stop for writes (reads keep serving); the op
    /// that first hit the failure may be visible but is not durable.
    WalFailed(String),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::Invalid(e) => write!(f, "invalid ranking: {e}"),
            MutationError::WalFailed(msg) => write!(f, "wal failed: {msg}"),
        }
    }
}

impl std::error::Error for MutationError {}

/// A point-in-time liveness report for the engine's moving parts,
/// cheap enough to poll from a serving loop.
#[derive(Debug, Clone)]
pub struct Health {
    /// The publisher thread is running (snapshots keep getting
    /// fresher). `false` after shutdown began or the publisher died.
    pub publisher_alive: bool,
    /// The publisher's panic message, if it died by panic.
    pub publisher_panic: Option<String>,
    /// The WAL's fail-stop marker, if an append or sync failed.
    pub wal_failure: Option<String>,
    /// Absolute log position of the last accepted mutation.
    pub writer_pos: u64,
    /// Absolute log position covered by the published head.
    pub published_pos: u64,
    /// Generations abandoned to straggler readers (observability).
    pub abandoned_generations: u64,
}

impl Health {
    /// `true` when writes are durable and snapshots are advancing.
    pub fn is_healthy(&self) -> bool {
        self.publisher_alive && self.wal_failure.is_none()
    }
}

/// One published generation: a frozen engine plus the absolute log
/// position it reflects.
struct Generation {
    engine: Engine,
    /// Number of log operations folded into `engine` (absolute, never
    /// reset by log truncation).
    log_pos: u64,
}

/// Writer-side state: the master engine, the mutation log, and the
/// optional write-ahead log mirroring it on disk.
struct WriterState {
    master: Engine,
    /// Operations not yet truncated; `log[0]` is absolute position
    /// `log_base`.
    log: Vec<LogOp>,
    /// Absolute log position of `log[0]`.
    log_base: u64,
    /// On-disk mirror of the log; `None` for a volatile engine.
    wal: Option<WalWriter>,
    /// Absolute log position of the WAL file's **first** record — 0
    /// for a fresh log, the checkpoint position after
    /// [`SnapshotEngine::checkpoint_and_truncate`]. Snapshots record
    /// it so recovery can verify the WAL tail lines up.
    wal_base: u64,
}

impl WriterState {
    fn end_pos(&self) -> u64 {
        self.log_base + self.log.len() as u64
    }

    /// Refuses mutations once the WAL is fail-stop.
    fn check_wal(&self) -> Result<(), MutationError> {
        match self.wal.as_ref().and_then(|wal| wal.failure()) {
            Some(msg) => Err(MutationError::WalFailed(msg.to_string())),
            None => Ok(()),
        }
    }

    /// Appends `op` to the WAL (no-op for volatile engines). Called
    /// before the op is acknowledged to the caller.
    fn append_wal(&mut self, op: &LogOp) -> Result<(), MutationError> {
        match &mut self.wal {
            Some(wal) => wal
                .append(op)
                .map(|_| ())
                .map_err(|e| MutationError::WalFailed(e.to_string())),
            None => Ok(()),
        }
    }
}

struct Shared {
    writer: Mutex<WriterState>,
    /// The published generation; write-held only for the publish swap.
    head: RwLock<Arc<Generation>>,
    /// Log position covered by `head`, for `wait_until_published`.
    published: Mutex<u64>,
    published_cv: Condvar,
    /// Wakes the publisher when the log grows (or on shutdown).
    pending_cv: Condvar,
    shutdown: AtomicBool,
    /// Set when the publisher thread exits (cleanly or by panic), so
    /// waiters stop blocking on publication that will never come.
    publisher_down: AtomicBool,
    /// The publisher's panic message, if it died by panic.
    publisher_panic: Mutex<Option<String>>,
    /// Test hook: makes the publisher panic at its next wakeup.
    panic_requested: AtomicBool,
    /// Generations abandoned to straggler readers (observability).
    abandoned: AtomicU64,
}

/// Ignores mutex poisoning: every critical section either mutates
/// nothing before its only panic point (validation panics precede the
/// first store write, `insert_ranking_at` asserts slot freedom before
/// touching it) or performs non-panicking pointer/counter work, so the
/// protected state is consistent even after an unwind. This is what
/// keeps one panicking writer from wedging every subsequent reader and
/// writer.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An epoch/RCU snapshot layer over [`Engine`] (see the module docs):
/// `&self` mutations, wait-free reads against immutable published
/// generations, off-thread index publication, and optional crash-safe
/// durability via [`SnapshotEngine::with_wal`] /
/// [`SnapshotEngine::recover`].
pub struct SnapshotEngine {
    shared: Arc<Shared>,
    publisher: Option<std::thread::JoinHandle<()>>,
}

/// A frozen, consistent view of the corpus at one log position.
/// Dereferences to [`Engine`], so the whole read-side query API
/// (`query_into`, `query_items`, `query_topk`, `query_batch`, ...) is
/// available directly. Holding a snapshot keeps its generation alive;
/// drop it promptly so the publisher can recycle retiring generations
/// instead of abandoning them.
#[derive(Clone)]
pub struct EngineSnapshot {
    generation: Arc<Generation>,
}

impl EngineSnapshot {
    /// The frozen engine.
    #[inline]
    pub fn engine(&self) -> &Engine {
        &self.generation.engine
    }

    /// The absolute log position this snapshot reflects: queries are
    /// bit-identical to a monolith that applied exactly the first
    /// `log_pos()` logged mutations.
    #[inline]
    pub fn log_pos(&self) -> u64 {
        self.generation.log_pos
    }
}

impl std::ops::Deref for EngineSnapshot {
    type Target = Engine;

    #[inline]
    fn deref(&self) -> &Engine {
        &self.generation.engine
    }
}

impl SnapshotEngine {
    /// Wraps a built engine, forking the two replicas (published head
    /// and standby) and starting the publisher thread. The wrapped
    /// engine becomes the writer-side master. No WAL: mutations are
    /// volatile ([`SnapshotEngine::with_wal`] for durability).
    pub fn new(master: Engine) -> Self {
        Self::spawn(master, None, 0, 0)
    }

    /// Like [`SnapshotEngine::new`], but every mutation is appended to
    /// a fresh write-ahead log at `path` (created or truncated) before
    /// it is acknowledged, under `policy`. Recover with
    /// [`SnapshotEngine::recover`] from the **same base corpus**.
    pub fn with_wal(master: Engine, path: &Path, policy: SyncPolicy) -> Result<Self, WalError> {
        let wal = WalWriter::create(path, policy)?;
        Ok(Self::spawn(master, Some(wal), 0, 0))
    }

    /// Rebuilds an engine after a crash: scans the WAL at `path`,
    /// truncates any torn tail at the last valid record, replays the
    /// valid prefix onto `base` (which must be the same base corpus
    /// the WAL was created over — a divergence is reported as
    /// [`WalError::Diverged`], never applied), and resumes appending
    /// at the truncation point. Returns the recovered engine and a
    /// [`RecoveryReport`] of what was applied and cut.
    pub fn recover(
        base: Engine,
        path: &Path,
        policy: SyncPolicy,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let scan = read_wal(path)?;
        let mut master = base;
        for op in &scan.ops {
            replay_checked(&mut master, op)?;
        }
        let wal = WalWriter::resume(path, policy, &scan)?;
        let applied = scan.ops.len() as u64;
        let report = RecoveryReport {
            applied,
            truncated_bytes: scan.truncated_bytes,
        };
        Ok((Self::spawn(master, Some(wal), applied, 0), report))
    }

    /// Rebuilds an engine after a crash from a checkpoint plus the WAL
    /// tail, instead of [`SnapshotEngine::recover`]'s full replay over
    /// the base corpus: loads the snapshot at `snapshot_path` (under
    /// `mode`), verifies its recorded log position against the WAL's
    /// base, replays **only** the WAL records past the snapshot, and
    /// resumes appending at the truncation point. A snapshot that does
    /// not line up with the WAL — position before the WAL's base, or
    /// past its valid prefix — is a typed [`PersistError::WalMismatch`],
    /// and a WAL record that contradicts the loaded corpus is
    /// [`WalError::Diverged`]; neither is ever applied. The
    /// [`RecoveryReport`] counts only the replayed tail.
    pub fn recover_from_snapshot(
        snapshot_path: &Path,
        wal_path: &Path,
        policy: SyncPolicy,
        mode: LoadMode,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let (mut master, meta) = load_engine(snapshot_path, mode)?;
        let scan = read_wal(wal_path)?;
        if meta.log_pos < meta.wal_base {
            return Err(PersistError::WalMismatch {
                detail: format!(
                    "snapshot log position {} precedes its recorded WAL base {}",
                    meta.log_pos, meta.wal_base
                ),
            });
        }
        let skip = meta.log_pos - meta.wal_base;
        if skip > scan.ops.len() as u64 {
            return Err(PersistError::WalMismatch {
                detail: format!(
                    "snapshot is at log position {} but the WAL (base {}) holds only {} \
                     valid records",
                    meta.log_pos,
                    meta.wal_base,
                    scan.ops.len()
                ),
            });
        }
        for op in &scan.ops[skip as usize..] {
            replay_checked(&mut master, op)?;
        }
        let wal = WalWriter::resume(wal_path, policy, &scan)?;
        let end_pos = meta.wal_base + scan.ops.len() as u64;
        let report = RecoveryReport {
            applied: scan.ops.len() as u64 - skip,
            truncated_bytes: scan.truncated_bytes,
        };
        Ok((
            Self::spawn(master, Some(wal), end_pos, meta.wal_base),
            report,
        ))
    }

    /// Writes the **published** generation to `path` as an `RSSN`
    /// snapshot (see [`crate::persist`]), recording its log position
    /// and the live WAL base so [`SnapshotEngine::recover_from_snapshot`]
    /// can later replay exactly the missing tail. Readers and writers
    /// are never blocked: the engine serialized is the immutable head.
    /// Returns the log position the snapshot covers.
    pub fn checkpoint(&self, path: &Path) -> Result<u64, PersistError> {
        let snap = self.snapshot();
        let wal_base = lock_ignore_poison(&self.shared.writer).wal_base;
        if wal_base > snap.log_pos() {
            // A concurrent checkpoint_and_truncate advanced the WAL
            // past the published head; a snapshot written now could
            // never be recovered. Flush and retry.
            return Err(PersistError::WalMismatch {
                detail: format!(
                    "published head at {} predates the WAL base {wal_base}; \
                     flush before checkpointing",
                    snap.log_pos()
                ),
            });
        }
        save_engine(
            path,
            snap.engine(),
            SnapshotMeta {
                log_pos: snap.log_pos(),
                wal_base,
            },
        )?;
        Ok(snap.log_pos())
    }

    /// Checkpoints the **master** (every acknowledged mutation) to
    /// `snapshot_path` and then truncates the WAL behind it: once the
    /// snapshot is durably renamed into place, the log is restarted
    /// empty at `wal_path` with its base advanced to the checkpoint
    /// position. Crash-ordering is safe at every step — a crash before
    /// the rename leaves the old snapshot + full WAL, a crash after
    /// leaves the new snapshot + empty WAL, and both pairs recover to
    /// the same corpus. Writers are blocked for the duration (the
    /// master must not move while it is serialized); readers are not.
    /// For a volatile engine the snapshot is still written and nothing
    /// is truncated. Returns the checkpoint's log position.
    pub fn checkpoint_and_truncate(
        &self,
        snapshot_path: &Path,
        wal_path: &Path,
    ) -> Result<u64, PersistError> {
        let mut w = lock_ignore_poison(&self.shared.writer);
        if let Some(wal) = &mut w.wal {
            // The tail being cut must be durable first: an op that was
            // acknowledged against the old WAL may not be in any sync
            // window yet.
            wal.sync()?;
        }
        let pos = w.end_pos();
        save_engine(
            snapshot_path,
            &w.master,
            SnapshotMeta {
                log_pos: pos,
                wal_base: pos,
            },
        )?;
        if let Some(old) = &w.wal {
            let fresh = WalWriter::create(wal_path, old.policy())?;
            w.wal = Some(fresh);
            w.wal_base = pos;
        }
        Ok(pos)
    }

    fn spawn(master: Engine, wal: Option<WalWriter>, base_pos: u64, wal_base: u64) -> Self {
        let head = Arc::new(Generation {
            engine: master.fork(),
            log_pos: base_pos,
        });
        let standby = master.fork();
        let shared = Arc::new(Shared {
            writer: Mutex::new(WriterState {
                master,
                log: Vec::new(),
                log_base: base_pos,
                wal,
                wal_base,
            }),
            head: RwLock::new(head),
            published: Mutex::new(base_pos),
            published_cv: Condvar::new(),
            pending_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            publisher_down: AtomicBool::new(false),
            publisher_panic: Mutex::new(None),
            panic_requested: AtomicBool::new(false),
            abandoned: AtomicU64::new(0),
        });
        let publisher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ranksim-publisher".into())
                .spawn(move || publisher_thread(&shared, standby, base_pos))
                .expect("spawn snapshot publisher thread")
        };
        SnapshotEngine {
            shared,
            publisher: Some(publisher),
        }
    }

    /// The current published generation — wait-free with respect to
    /// writers and allocation-free (one `RwLock` read, one refcount
    /// increment).
    #[inline]
    pub fn snapshot(&self) -> EngineSnapshot {
        let head = self.shared.head.read().unwrap_or_else(|e| e.into_inner());
        EngineSnapshot {
            generation: head.clone(),
        }
    }

    /// Inserts a ranking into the live corpus (see
    /// [`Engine::insert_ranking`] for semantics). The new ranking is
    /// visible to snapshots taken after the next publication;
    /// [`SnapshotEngine::flush`] forces that. Nothing is applied on
    /// error.
    pub fn try_insert_ranking(&self, items: &[ItemId]) -> Result<RankingId, MutationError> {
        let mut w = lock_ignore_poison(&self.shared.writer);
        validate_items(items, w.master.store().k()).map_err(MutationError::Invalid)?;
        w.check_wal()?;
        let id = w.master.insert_ranking(items);
        let op = LogOp::Insert {
            id,
            items: items.to_vec(),
        };
        let durable = w.append_wal(&op);
        // The op goes to the in-memory log even when the WAL append
        // failed: master already applied it, and replicas must not
        // diverge from the master. The caller learns it is not durable.
        w.log.push(op);
        drop(w);
        self.shared.pending_cv.notify_one();
        durable.map(|()| id)
    }

    /// Re-inserts a ranking at a released id (see
    /// [`Engine::insert_ranking_at`]; passing a non-released id is API
    /// misuse and still panics).
    pub fn try_insert_ranking_at(
        &self,
        id: RankingId,
        items: &[ItemId],
    ) -> Result<(), MutationError> {
        let mut w = lock_ignore_poison(&self.shared.writer);
        validate_items(items, w.master.store().k()).map_err(MutationError::Invalid)?;
        w.check_wal()?;
        w.master.insert_ranking_at(id, items);
        let op = LogOp::InsertAt {
            id,
            items: items.to_vec(),
        };
        let durable = w.append_wal(&op);
        w.log.push(op);
        drop(w);
        self.shared.pending_cv.notify_one();
        durable
    }

    /// Tombstones ranking `id`; `Ok(false)` when it was not live. May
    /// trigger a master-side auto-compaction (replicas re-trigger it
    /// deterministically during replay).
    pub fn try_remove_ranking(&self, id: RankingId) -> Result<bool, MutationError> {
        let mut w = lock_ignore_poison(&self.shared.writer);
        w.check_wal()?;
        if !w.master.remove_ranking(id) {
            return Ok(false);
        }
        let op = LogOp::Remove(id);
        let durable = w.append_wal(&op);
        w.log.push(op);
        drop(w);
        self.shared.pending_cv.notify_one();
        durable.map(|()| true)
    }

    /// Compacts the master and logs the compaction for the replicas.
    /// Readers are *not* blocked while replicas rebuild — that is the
    /// point of this type.
    pub fn try_compact(&self) -> Result<(), MutationError> {
        let mut w = lock_ignore_poison(&self.shared.writer);
        w.check_wal()?;
        w.master.compact();
        let op = LogOp::Compact;
        let durable = w.append_wal(&op);
        w.log.push(op);
        drop(w);
        self.shared.pending_cv.notify_one();
        durable
    }

    /// Panicking convenience for [`SnapshotEngine::try_insert_ranking`]
    /// (keeps [`Engine::insert_ranking`]'s assert semantics).
    pub fn insert_ranking(&self, items: &[ItemId]) -> RankingId {
        match self.try_insert_ranking(items) {
            Ok(id) => id,
            Err(e) => panic_mutation(e),
        }
    }

    /// Panicking convenience for
    /// [`SnapshotEngine::try_insert_ranking_at`].
    pub fn insert_ranking_at(&self, id: RankingId, items: &[ItemId]) {
        if let Err(e) = self.try_insert_ranking_at(id, items) {
            panic_mutation(e)
        }
    }

    /// Panicking convenience for
    /// [`SnapshotEngine::try_remove_ranking`].
    pub fn remove_ranking(&self, id: RankingId) -> bool {
        match self.try_remove_ranking(id) {
            Ok(removed) => removed,
            Err(e) => panic_mutation(e),
        }
    }

    /// Panicking convenience for [`SnapshotEngine::try_compact`].
    pub fn compact(&self) {
        if let Err(e) = self.try_compact() {
            panic_mutation(e)
        }
    }

    /// Forces every acknowledged mutation onto stable storage (no-op
    /// without a WAL). Graceful shutdown calls this; so does
    /// [`Drop`].
    pub fn sync_wal(&self) -> Result<(), WalError> {
        match &mut lock_ignore_poison(&self.shared.writer).wal {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Current WAL length in bytes (`None` for a volatile engine).
    pub fn wal_bytes(&self) -> Option<u64> {
        lock_ignore_poison(&self.shared.writer)
            .wal
            .as_ref()
            .map(|wal| wal.bytes())
    }

    /// The WAL's fault-injection handle (`None` for a volatile
    /// engine) — the lever the fault-injection harness arms; see
    /// [`crate::wal::FailPoint`].
    pub fn wal_failpoint(&self) -> Option<FailPoint> {
        lock_ignore_poison(&self.shared.writer)
            .wal
            .as_ref()
            .map(|wal| wal.failpoint())
    }

    /// Liveness of the engine's moving parts: publisher thread, WAL,
    /// and replication lag. Cheap enough to poll from a serving loop.
    pub fn health(&self) -> Health {
        let publisher_alive = !self.shared.publisher_down.load(Ordering::SeqCst)
            && self.publisher.as_ref().is_some_and(|h| !h.is_finished());
        let publisher_panic = lock_ignore_poison(&self.shared.publisher_panic).clone();
        let (wal_failure, writer_pos) = {
            let w = lock_ignore_poison(&self.shared.writer);
            (
                w.wal
                    .as_ref()
                    .and_then(|wal| wal.failure().map(String::from)),
                w.end_pos(),
            )
        };
        Health {
            publisher_alive,
            publisher_panic,
            wal_failure,
            writer_pos,
            published_pos: self.published_pos(),
            abandoned_generations: self.abandoned_generations(),
        }
    }

    /// Test hook: makes the publisher thread panic at its next wakeup
    /// (exercises death detection without a contrived replay bug).
    #[doc(hidden)]
    pub fn inject_publisher_panic(&self) {
        self.shared.panic_requested.store(true, Ordering::SeqCst);
        drop(lock_ignore_poison(&self.shared.writer));
        self.shared.pending_cv.notify_all();
    }

    /// The absolute log position of the last accepted mutation.
    pub fn writer_pos(&self) -> u64 {
        lock_ignore_poison(&self.shared.writer).end_pos()
    }

    /// The absolute log position covered by the published head.
    pub fn published_pos(&self) -> u64 {
        *lock_ignore_poison(&self.shared.published)
    }

    /// Generations the publisher abandoned to straggler readers
    /// instead of recycling (each one costs a head fork).
    pub fn abandoned_generations(&self) -> u64 {
        self.shared.abandoned.load(Ordering::Relaxed)
    }

    /// Blocks until snapshots reflect at least log position `pos`.
    /// Returns `false` (instead of blocking forever) if the publisher
    /// died before getting there.
    pub fn wait_until_published(&self, pos: u64) -> bool {
        let mut published = lock_ignore_poison(&self.shared.published);
        loop {
            if *published >= pos {
                return true;
            }
            if self.shared.publisher_down.load(Ordering::SeqCst) {
                return false;
            }
            let (guard, _) = self
                .shared
                .published_cv
                .wait_timeout(published, PUBLISH_POLL)
                .unwrap_or_else(|e| e.into_inner());
            published = guard;
        }
    }

    /// Blocks until every mutation accepted so far is visible to new
    /// snapshots. Returns `false` if the publisher died first.
    pub fn flush(&self) -> bool {
        let pos = self.writer_pos();
        self.wait_until_published(pos)
    }
}

impl Drop for SnapshotEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The publisher waits on `pending_cv` under the writer lock;
        // taking the lock before notifying closes the race where it
        // re-checks the predicate just before we set the flag.
        drop(lock_ignore_poison(&self.shared.writer));
        self.shared.pending_cv.notify_all();
        if let Some(h) = self.publisher.take() {
            let _ = h.join();
        }
        // Graceful shutdown is durable: flush any group-commit window.
        if let Some(wal) = &mut lock_ignore_poison(&self.shared.writer).wal {
            let _ = wal.sync();
        }
    }
}

/// Maps a `try_*` refusal onto the historical panic messages of the
/// panicking mutation API (tests and callers match on them).
fn panic_mutation(e: MutationError) -> ! {
    match e {
        MutationError::Invalid(RankingError::WrongLength { .. }) => {
            panic!("ranking size must match the corpus k")
        }
        MutationError::Invalid(RankingError::DuplicateItem(a)) => {
            panic!("duplicate item {a} in inserted ranking")
        }
        MutationError::Invalid(e) => panic!("{e}"),
        MutationError::WalFailed(msg) => panic!("wal failed: {msg}"),
    }
}

/// Replays one logged op into a replica. Ids are asserted, not
/// assigned: determinism of the transition function makes the replica
/// agree with the master by construction.
fn replay(engine: &mut Engine, op: &LogOp) {
    match op {
        LogOp::Insert { id, items } => {
            let got = engine.insert_ranking(items);
            debug_assert_eq!(got, *id, "replica id assignment diverged from master");
        }
        LogOp::InsertAt { id, items } => engine.insert_ranking_at(*id, items),
        LogOp::Remove(id) => {
            let removed = engine.remove_ranking(*id);
            debug_assert!(removed, "replica liveness diverged from master");
        }
        LogOp::Compact => engine.compact(),
    }
}

/// Recovery-path replay: every precondition is *checked* (not
/// debug-asserted) and a violation aborts recovery with
/// [`WalError::Diverged`] instead of corrupting the corpus or
/// panicking — a checksum-valid record can still disagree with the
/// base corpus when the caller recovers over the wrong one.
fn replay_checked(engine: &mut Engine, op: &LogOp) -> Result<(), WalError> {
    let diverged = |msg: String| WalError::Diverged(msg);
    match op {
        LogOp::Insert { id, items } => {
            validate_items(items, engine.store().k())
                .map_err(|e| diverged(format!("logged insert is invalid: {e}")))?;
            let got = engine.insert_ranking(items);
            if got != *id {
                return Err(diverged(format!(
                    "insert assigned {got:?} where the log recorded {id:?} (wrong base corpus?)"
                )));
            }
        }
        LogOp::InsertAt { id, items } => {
            validate_items(items, engine.store().k())
                .map_err(|e| diverged(format!("logged insert_at is invalid: {e}")))?;
            if !engine.store().is_free(*id) {
                return Err(diverged(format!(
                    "logged insert_at targets {id:?}, which is not a released slot"
                )));
            }
            engine.insert_ranking_at(*id, items);
        }
        LogOp::Remove(id) => {
            if !engine.remove_ranking(*id) {
                return Err(diverged(format!("logged removal of non-live {id:?}")));
            }
        }
        LogOp::Compact => engine.compact(),
    }
    Ok(())
}

/// The publisher thread's entry point: runs the loop under
/// `catch_unwind` so a replay panic is *detected* (recorded and
/// flagged) instead of silently leaving every future snapshot stale
/// and every `flush` hung.
fn publisher_thread(shared: &Shared, standby: Engine, start_pos: u64) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        publisher_loop(shared, standby, start_pos)
    }));
    if let Err(payload) = result {
        let msg = panic_message(payload.as_ref());
        *lock_ignore_poison(&shared.publisher_panic) = Some(msg);
    }
    shared.publisher_down.store(true, Ordering::SeqCst);
    // Waiters poll `publisher_down` under `published`; the lock/notify
    // pair bounds how long a racing waiter sleeps.
    drop(lock_ignore_poison(&shared.published));
    shared.published_cv.notify_all();
}

fn publisher_loop(shared: &Shared, mut standby: Engine, start_pos: u64) {
    // Log position `standby` currently reflects.
    let mut standby_pos: u64 = start_pos;
    loop {
        // Wait for new log entries (or shutdown), then copy the suffix
        // out so replay runs without holding the writer lock. While
        // idle, this loop is also the group-commit flusher: an unsynced
        // WAL window is bounded by `max_delay` even when traffic stops.
        let ops: Vec<LogOp>;
        let target_pos: u64;
        {
            let mut w = lock_ignore_poison(&shared.writer);
            loop {
                if shared.panic_requested.swap(false, Ordering::SeqCst) {
                    panic!("injected publisher panic");
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if w.end_pos() > standby_pos {
                    break;
                }
                let sync_due = w.wal.as_ref().and_then(|wal| wal.sync_due_at());
                match sync_due {
                    Some(at) => {
                        let now = Instant::now();
                        if at <= now {
                            if let Some(wal) = &mut w.wal {
                                let _ = wal.sync_if_due();
                            }
                            continue;
                        }
                        let (guard, _) = shared
                            .pending_cv
                            .wait_timeout(w, at - now)
                            .unwrap_or_else(|e| e.into_inner());
                        w = guard;
                    }
                    None => {
                        w = shared.pending_cv.wait(w).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
            let skip = (standby_pos - w.log_base) as usize;
            ops = w.log[skip..].to_vec();
            target_pos = w.end_pos();
        }

        // Replay off-lock: writers keep writing, readers keep reading
        // the old head. This is where compaction rebuilds burn CPU
        // without blocking anyone.
        for op in &ops {
            replay(&mut standby, op);
        }

        // Publish: a pointer swap under a momentary write lock.
        let fresh = Arc::new(Generation {
            engine: standby,
            log_pos: target_pos,
        });
        let retiring = {
            let mut head = shared.head.write().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *head, fresh.clone())
        };
        {
            let mut published = lock_ignore_poison(&shared.published);
            *published = target_pos;
        }
        shared.published_cv.notify_all();

        // Reclaim the retiring generation as the next standby. Readers
        // holding snapshots of it keep it alive; wait boundedly, then
        // abandon it to them and fork the head instead.
        let deadline = Instant::now() + RECLAIM_WAIT;
        let mut retiring = retiring;
        (standby, standby_pos) = loop {
            match Arc::try_unwrap(retiring) {
                Ok(generation) => break (generation.engine, generation.log_pos),
                Err(still_shared) => {
                    if Instant::now() >= deadline {
                        shared.abandoned.fetch_add(1, Ordering::Relaxed);
                        drop(still_shared);
                        break (fresh.engine.fork(), fresh.log_pos);
                    }
                    retiring = still_shared;
                    std::thread::yield_now();
                }
            }
        };

        // Truncate the log below what the standby still needs; the
        // published head is always at least as fresh as the standby.
        {
            let mut w = lock_ignore_poison(&shared.writer);
            let cut = (standby_pos - w.log_base) as usize;
            w.log.drain(..cut);
            w.log_base = standby_pos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Algorithm, EngineBuilder};
    use crate::wal::Fault;
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::{raw_threshold, QueryStats};

    fn small_engine(n: usize, seed: u64) -> (Engine, u32) {
        let ds = nyt_like(n, 8, seed);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.4)
            .coarse_drop_threshold(0.06)
            .compaction_threshold(0.3)
            .build();
        (engine, domain)
    }

    fn small_snapshot_engine(n: usize, seed: u64) -> (SnapshotEngine, u32) {
        let (engine, domain) = small_engine(n, seed);
        (SnapshotEngine::new(engine), domain)
    }

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ranksim-snapshot-{tag}-{}.wal", std::process::id()));
        p
    }

    #[test]
    fn snapshots_are_stable_while_writes_land() {
        let (se, _domain) = small_snapshot_engine(300, 9);
        let theta = raw_threshold(0.25, 8);
        let before = se.snapshot();
        let q: Vec<ItemId> = before.store().items(RankingId(3)).to_vec();
        let mut scratch = before.scratch();
        let mut stats = QueryStats::new();
        let baseline = before.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats);
        assert!(baseline.contains(&RankingId(3)));

        // Remove the query's own ranking; the held snapshot must keep
        // answering from its frozen world.
        assert!(se.remove_ranking(RankingId(3)));
        se.flush();
        let again = before.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats);
        assert_eq!(again, baseline, "held snapshot changed under a write");

        // A fresh snapshot sees the removal.
        let after = se.snapshot();
        assert!(after.log_pos() >= 1);
        let fresh = after.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats);
        assert!(!fresh.contains(&RankingId(3)));
        assert!(fresh.len() < baseline.len() || baseline == vec![RankingId(3)]);
    }

    #[test]
    fn flush_makes_inserts_visible_and_ids_monotone() {
        let (se, domain) = small_snapshot_engine(200, 21);
        let wl = workload(
            se.snapshot().store(),
            domain,
            WorkloadParams {
                num_queries: 6,
                seed: 5,
                ..Default::default()
            },
        );
        let mut ids = Vec::new();
        for q in &wl.queries {
            ids.push(se.insert_ranking(q));
        }
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be monotone");
        assert!(se.flush());
        let snap = se.snapshot();
        assert_eq!(snap.log_pos(), se.writer_pos());
        let theta = raw_threshold(0.0, 8);
        let mut scratch = snap.scratch();
        let mut stats = QueryStats::new();
        for (q, id) in wl.queries.iter().zip(&ids) {
            let res = snap.query_items(Algorithm::ListMerge, q, theta, &mut scratch, &mut stats);
            assert!(res.contains(id), "inserted ranking invisible after flush");
        }
    }

    #[test]
    fn explicit_compaction_publishes_a_consistent_generation() {
        let (se, _domain) = small_snapshot_engine(150, 33);
        for i in 0..20u32 {
            se.remove_ranking(RankingId(i * 3));
        }
        se.compact();
        se.flush();
        let snap = se.snapshot();
        assert_eq!(
            snap.base_tombstones(),
            0,
            "compaction must clear tombstones"
        );
        // Every algorithm still answers identically on the fresh head.
        let q: Vec<ItemId> = snap.store().items(RankingId(1)).to_vec();
        let theta = raw_threshold(0.2, 8);
        let mut scratch = snap.scratch();
        let mut stats = QueryStats::new();
        let expect = snap.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats);
        for alg in Algorithm::ALL {
            let mut got = snap.query_items(alg, &q, theta, &mut scratch, &mut stats);
            got.sort_unstable();
            let mut want = expect.clone();
            want.sort_unstable();
            assert_eq!(got, want, "{alg} diverged on the published snapshot");
        }
    }

    #[test]
    fn abandoned_generations_do_not_stall_publication() {
        let (se, _domain) = small_snapshot_engine(120, 7);
        // Pin the initial generation for the whole test.
        let pinned = se.snapshot();
        for i in 0..30u32 {
            se.insert_ranking(&pinned.store().items(RankingId(i % 5)).to_vec());
            let fresh: Vec<ItemId> = (1000 + i * 10..1000 + i * 10 + 8).map(ItemId).collect();
            se.insert_ranking(&fresh);
        }
        se.flush();
        assert_eq!(se.published_pos(), se.writer_pos());
        assert_eq!(
            pinned.log_pos(),
            0,
            "pinned snapshot must stay at its prefix"
        );
        // The pinned world still has its original corpus size.
        assert_eq!(pinned.store().live_len(), 120);
        let now = se.snapshot();
        assert_eq!(now.store().live_len(), 180);
    }

    #[test]
    fn wal_backed_engine_recovers_to_the_same_corpus() {
        let path = temp_wal("recover");
        let (engine, _domain) = small_engine(120, 11);
        let mut expected_live = 120usize;
        {
            let se = SnapshotEngine::with_wal(engine, &path, SyncPolicy::PerOp).unwrap();
            for i in 0..10u32 {
                let items: Vec<ItemId> = (2000 + i * 10..2000 + i * 10 + 8).map(ItemId).collect();
                se.try_insert_ranking(&items).unwrap();
                expected_live += 1;
            }
            assert!(se.try_remove_ranking(RankingId(4)).unwrap());
            expected_live -= 1;
            se.try_compact().unwrap();
            assert!(se.health().is_healthy());
        }
        // Recover over the same base corpus; same seed → same base.
        let (base, _) = small_engine(120, 11);
        let (recovered, report) = SnapshotEngine::recover(base, &path, SyncPolicy::PerOp).unwrap();
        assert_eq!(report.applied, 12);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(recovered.writer_pos(), 12);
        let snap = recovered.snapshot();
        assert_eq!(snap.log_pos(), 12);
        assert_eq!(snap.store().live_len(), expected_live);
        assert!(!snap.store().is_live(RankingId(4)));
        // The recovered engine keeps accepting durable writes.
        recovered
            .try_insert_ranking(&(5000..5008).map(ItemId).collect::<Vec<_>>())
            .unwrap();
        assert!(recovered.flush());
        drop(recovered);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_base_corpus_is_diverged_not_corrupted() {
        let path = temp_wal("diverge");
        let (engine, _domain) = small_engine(100, 3);
        {
            let se = SnapshotEngine::with_wal(engine, &path, SyncPolicy::None).unwrap();
            // Remove an id that only exists in the 100-ranking corpus.
            assert!(se.try_remove_ranking(RankingId(99)).unwrap());
        }
        // A smaller base corpus does not have RankingId(99) live.
        let (wrong_base, _domain) = small_engine(50, 3);
        match SnapshotEngine::recover(wrong_base, &path, SyncPolicy::None) {
            Err(WalError::Diverged(_)) => {}
            Err(e) => panic!("expected Diverged, got {e:?}"),
            Ok(_) => panic!("recovery over the wrong base corpus must not succeed"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_failure_is_fail_stop_for_writes_but_reads_survive() {
        let path = temp_wal("failstop");
        let (engine, _domain) = small_engine(80, 17);
        let se = SnapshotEngine::with_wal(engine, &path, SyncPolicy::PerOp).unwrap();
        se.try_insert_ranking(&(3000..3008).map(ItemId).collect::<Vec<_>>())
            .unwrap();
        se.wal_failpoint().unwrap().inject(Fault::ShortWrite(3));
        let err = se
            .try_insert_ranking(&(3100..3108).map(ItemId).collect::<Vec<_>>())
            .unwrap_err();
        assert!(matches!(err, MutationError::WalFailed(_)), "got {err}");
        // Fail-stop: subsequent mutations refuse without touching the
        // master (no divergence between memory and a future recovery).
        let pos = se.writer_pos();
        assert!(matches!(
            se.try_remove_ranking(RankingId(0)),
            Err(MutationError::WalFailed(_))
        ));
        assert_eq!(se.writer_pos(), pos);
        let health = se.health();
        assert!(!health.is_healthy());
        assert!(health.wal_failure.is_some());
        // Reads keep serving, including the non-durable op (the
        // in-memory log kept master and replicas converged).
        assert!(se.flush());
        assert_eq!(se.snapshot().store().live_len(), 82);
        drop(se);
        // Recovery sees only the durable prefix plus a torn tail.
        let (base, _domain) = small_engine(80, 17);
        let (recovered, report) = SnapshotEngine::recover(base, &path, SyncPolicy::PerOp).unwrap();
        assert_eq!(report.applied, 1);
        assert!(report.truncated_bytes > 0);
        assert_eq!(recovered.snapshot().store().live_len(), 81);
        drop(recovered);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_sync_failure_does_not_wedge_the_engine() {
        let path = temp_wal("groupfail");
        let (engine, _domain) = small_engine(80, 59);
        let policy = SyncPolicy::GroupCommit {
            max_ops: 100,
            max_delay: Duration::from_millis(50),
        };
        let se = Arc::new(SnapshotEngine::with_wal(engine, &path, policy).unwrap());
        se.try_insert_ranking(&(7000..7008).map(ItemId).collect::<Vec<_>>())
            .unwrap();
        se.try_insert_ranking(&(7100..7108).map(ItemId).collect::<Vec<_>>())
            .unwrap();
        // Fail the sync while a group-commit window is open, then let
        // the window's flush deadline pass. The regression under test:
        // a fail-stop writer that still reported a (forever-past) sync
        // deadline spun the publisher inside the writer critical
        // section, wedging health(), flush() and every write.
        se.wal_failpoint().unwrap().inject(Fault::SyncFail);
        assert!(se.sync_wal().is_err());
        std::thread::sleep(Duration::from_millis(120));
        // Probe from a helper thread so a wedge fails the test in
        // bounded time instead of hanging it.
        let (tx, rx) = std::sync::mpsc::channel();
        let probe = {
            let se = Arc::clone(&se);
            std::thread::spawn(move || tx.send(se.health()).unwrap())
        };
        let health = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("health() wedged after a group-commit sync failure");
        probe.join().unwrap();
        assert!(!health.is_healthy());
        assert!(health.wal_failure.is_some());
        assert!(
            health.publisher_alive,
            "publisher must outlive a WAL failure"
        );
        // Fail-stop for writes, but reads and publication sail on.
        assert!(matches!(
            se.try_insert_ranking(&(7200..7208).map(ItemId).collect::<Vec<_>>()),
            Err(MutationError::WalFailed(_))
        ));
        assert!(se.flush());
        assert_eq!(se.snapshot().store().live_len(), 82);
        drop(se);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_rankings_are_typed_errors_and_apply_nothing() {
        let (se, _domain) = small_snapshot_engine(60, 29);
        let pos = se.writer_pos();
        assert!(matches!(
            se.try_insert_ranking(&[ItemId(1), ItemId(2)]),
            Err(MutationError::Invalid(RankingError::WrongLength { .. }))
        ));
        let dup: Vec<ItemId> = [7, 7, 1, 2, 3, 4, 5, 6].map(ItemId).to_vec();
        assert!(matches!(
            se.try_insert_ranking(&dup),
            Err(MutationError::Invalid(RankingError::DuplicateItem(_)))
        ));
        assert_eq!(se.writer_pos(), pos, "failed validation must not log");
        assert_eq!(se.snapshot().store().live_len(), 60);
    }

    #[test]
    fn writer_panic_poisons_nothing_and_the_engine_keeps_serving() {
        let (se, _domain) = small_snapshot_engine(90, 41);
        // `insert_ranking_at` on a live slot is API misuse and panics
        // inside the writer critical section — the classic poisoning
        // scenario. The slot-freedom assert fires before any mutation,
        // so the protected state is still consistent.
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    se.insert_ranking_at(RankingId(0), &(0..8).map(ItemId).collect::<Vec<_>>())
                })
                .join()
        });
        assert!(result.is_err(), "insert_ranking_at at a live id must panic");
        // Readers and writers sail on.
        assert_eq!(se.snapshot().store().live_len(), 90);
        let id = se.insert_ranking(&(4000..4008).map(ItemId).collect::<Vec<_>>());
        assert!(se.flush());
        assert!(se.snapshot().store().is_live(id));
        assert!(se.health().publisher_alive);
    }

    #[test]
    fn publisher_death_is_detected_and_flush_does_not_hang() {
        let (se, _domain) = small_snapshot_engine(70, 53);
        let before = se.snapshot();
        se.inject_publisher_panic();
        // The publisher dies at its next wakeup; wait for detection.
        let deadline = Instant::now() + Duration::from_secs(5);
        while se.health().publisher_alive {
            assert!(Instant::now() < deadline, "publisher death undetected");
            std::thread::sleep(Duration::from_millis(5));
        }
        let health = se.health();
        assert!(!health.is_healthy());
        assert_eq!(
            health.publisher_panic.as_deref(),
            Some("injected publisher panic")
        );
        // Writes are still accepted (they just never publish)...
        se.insert_ranking(&(6000..6008).map(ItemId).collect::<Vec<_>>());
        // ...and flush reports failure instead of blocking forever.
        assert!(!se.flush());
        // Snapshots keep serving the last published generation.
        assert_eq!(se.snapshot().log_pos(), before.log_pos());
    }

    fn temp_snap(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "ranksim-snapshot-{tag}-{}.rssn",
            std::process::id()
        ));
        p
    }

    fn corpus_fingerprint(se: &SnapshotEngine, domain: u32) -> Vec<Vec<RankingId>> {
        let snap = se.snapshot();
        let wl = workload(
            snap.store(),
            domain,
            WorkloadParams {
                num_queries: 5,
                seed: 77,
                ..Default::default()
            },
        );
        let theta = raw_threshold(0.3, 8);
        let mut scratch = snap.scratch();
        let mut stats = QueryStats::new();
        wl.queries
            .iter()
            .map(|q| snap.query_items(Algorithm::Auto, q, theta, &mut scratch, &mut stats))
            .collect()
    }

    #[test]
    fn checkpoint_then_recover_replays_only_the_wal_tail() {
        let wal_path = temp_wal("ckpt-tail");
        let snap_path = temp_snap("ckpt-tail");
        let (engine, domain) = small_engine(220, 31);
        let se = SnapshotEngine::with_wal(engine, &wal_path, SyncPolicy::PerOp).expect("wal");
        let wl = workload(
            se.snapshot().store(),
            domain,
            WorkloadParams {
                num_queries: 8,
                seed: 13,
                ..Default::default()
            },
        );
        // Some mutations before the checkpoint...
        for q in &wl.queries[..4] {
            se.insert_ranking(q);
        }
        se.remove_ranking(RankingId(5));
        se.flush();
        let pos = se.checkpoint(&snap_path).expect("checkpoint");
        assert_eq!(pos, 5);
        // ...and some after, which only the WAL holds.
        for q in &wl.queries[4..] {
            se.insert_ranking(q);
        }
        se.flush();
        let expect = corpus_fingerprint(&se, domain);
        drop(se);

        let (rec, report) = SnapshotEngine::recover_from_snapshot(
            &snap_path,
            &wal_path,
            SyncPolicy::PerOp,
            LoadMode::Verify,
        )
        .expect("recover from snapshot");
        assert_eq!(report.applied, 4, "only the tail past the snapshot replays");
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(rec.writer_pos(), 9);
        assert_eq!(corpus_fingerprint(&rec, domain), expect);

        // The recovered engine keeps appending to the same WAL.
        let id = rec.insert_ranking(&wl.queries[0]);
        rec.flush();
        assert!(rec.snapshot().store().is_live(id));
        drop(rec);
        let scan = read_wal(&wal_path).expect("rescan");
        assert_eq!(scan.ops.len(), 10);
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&snap_path);
    }

    #[test]
    fn checkpoint_and_truncate_restarts_the_wal_behind_the_snapshot() {
        let wal_path = temp_wal("ckpt-trunc");
        let snap_path = temp_snap("ckpt-trunc");
        let (engine, domain) = small_engine(180, 47);
        let se = SnapshotEngine::with_wal(engine, &wal_path, SyncPolicy::PerOp).expect("wal");
        let wl = workload(
            se.snapshot().store(),
            domain,
            WorkloadParams {
                num_queries: 6,
                seed: 29,
                ..Default::default()
            },
        );
        for q in &wl.queries[..3] {
            se.insert_ranking(q);
        }
        let pos = se
            .checkpoint_and_truncate(&snap_path, &wal_path)
            .expect("checkpoint_and_truncate");
        assert_eq!(pos, 3);
        // The WAL restarted empty; new writes land at the new base.
        for q in &wl.queries[3..] {
            se.insert_ranking(q);
        }
        se.flush();
        let expect = corpus_fingerprint(&se, domain);
        drop(se);
        let scan = read_wal(&wal_path).expect("scan");
        assert_eq!(scan.ops.len(), 3, "WAL holds only the post-checkpoint tail");

        let (rec, report) = SnapshotEngine::recover_from_snapshot(
            &snap_path,
            &wal_path,
            SyncPolicy::PerOp,
            LoadMode::Verify,
        )
        .expect("recover");
        assert_eq!(report.applied, 3);
        assert_eq!(rec.writer_pos(), 6);
        assert_eq!(corpus_fingerprint(&rec, domain), expect);
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&snap_path);
    }

    #[test]
    fn recover_rejects_wal_that_does_not_reach_the_snapshot() {
        let wal_path = temp_wal("ckpt-short");
        let snap_path = temp_snap("ckpt-short");
        let (engine, domain) = small_engine(120, 61);
        let se = SnapshotEngine::with_wal(engine, &wal_path, SyncPolicy::PerOp).expect("wal");
        let wl = workload(
            se.snapshot().store(),
            domain,
            WorkloadParams {
                num_queries: 3,
                seed: 3,
                ..Default::default()
            },
        );
        for q in &wl.queries {
            se.insert_ranking(q);
        }
        se.flush();
        se.checkpoint(&snap_path).expect("checkpoint");
        drop(se);
        // Hand recovery a *different*, shorter WAL: the snapshot claims
        // log position 3 but this log has never seen those records.
        let other_wal = temp_wal("ckpt-short-other");
        let (engine2, _) = small_engine(120, 61);
        let se2 = SnapshotEngine::with_wal(engine2, &other_wal, SyncPolicy::PerOp).expect("wal");
        se2.insert_ranking(&wl.queries[0]);
        se2.flush();
        drop(se2);
        match SnapshotEngine::recover_from_snapshot(
            &snap_path,
            &other_wal,
            SyncPolicy::PerOp,
            LoadMode::Verify,
        ) {
            Err(PersistError::WalMismatch { detail }) => {
                assert!(detail.contains("1 valid record"), "detail: {detail}");
            }
            Err(other) => panic!("expected WalMismatch, got {other:?}"),
            Ok(_) => panic!("short WAL must be rejected"),
        }
        let _ = std::fs::remove_file(&wal_path);
        let _ = std::fs::remove_file(&other_wal);
        let _ = std::fs::remove_file(&snap_path);
    }
}
