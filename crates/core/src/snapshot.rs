//! RCU-style snapshot engine: reads never block on writes.
//!
//! Every [`Engine`] mutation takes `&mut self`, so a serving deployment
//! built directly on one engine stalls every concurrent reader for the
//! whole duration of an insert — or, much worse, a compaction rebuild.
//! [`SnapshotEngine`] removes that coupling with a classic epoch /
//! read-copy-update arrangement over a chain of immutable engine
//! *generations*:
//!
//! * **Readers** call [`SnapshotEngine::snapshot`] and get an
//!   [`EngineSnapshot`]: an `Arc` onto the currently published
//!   generation. Acquisition is one `RwLock` read plus one atomic
//!   refcount increment — no allocation, and never blocked by a writer
//!   (the head lock is only ever write-held for a pointer swap). The
//!   snapshot is a fully frozen [`Engine`]; queries against it are
//!   bit-identical to a monolith that stopped mutating at the
//!   snapshot's log position, for as long as the snapshot is held.
//! * **Writers** apply mutations synchronously to a private *master*
//!   engine under a mutex and append the operation to a log. Writers
//!   therefore serialize with each other (and pay for any master-side
//!   auto-compaction), but never touch the published generation.
//! * A background **publisher** thread replays the accumulated log
//!   suffix into a standby replica off-lock, then publishes it as the
//!   next generation with a pointer swap. Two replicas ping-pong
//!   through this role; replaying the *same deterministic op sequence*
//!   from the same seed state keeps master and replicas bit-identical
//!   at equal log positions (ranking-id assignment is a pure function
//!   of store state, and auto-compaction triggers at the same op index
//!   because every engine runs the same [`crate::EngineConfig`]).
//!
//! **Reclamation rule:** after a swap the publisher reclaims the
//! retiring generation by waiting for its `Arc` refcount to drop to
//! one ([`Arc::try_unwrap`] in a bounded spin). A straggler reader
//! that pins the retiring snapshot past the bound does not stall
//! publication: the publisher *abandons* the pinned generation (the
//! readers holding it free it when they drop it) and forks the freshly
//! published head as the new standby instead. Readers never wait on
//! writers; the publisher never waits unboundedly on readers.
//!
//! Freshness is bounded-staleness: a read admitted while the publisher
//! is mid-replay sees the previous generation. [`SnapshotEngine::flush`]
//! blocks until everything written so far is visible to new snapshots.
//!
//! Scratch reuse stays sound across swaps because every engine build,
//! fork and mutation draws a process-unique generation stamp (PR 5's
//! scheme): a [`QueryScratch`] that last served a different snapshot
//! observes a different stamp and re-arms its epoch structures.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use crate::engine::Engine;
use ranksim_rankings::{ItemId, RankingId};

/// How long the publisher waits for straggler readers to release a
/// retiring generation before abandoning it and forking the head.
const RECLAIM_WAIT: Duration = Duration::from_millis(10);

/// One logged mutation, replayed verbatim into the standby replica.
#[derive(Debug, Clone)]
enum LogOp {
    /// `insert_ranking`; the id the master assigned rides along so
    /// replay can assert replica/master id agreement.
    Insert { id: RankingId, items: Vec<ItemId> },
    /// `insert_ranking_at` (re-insertion at a released id).
    InsertAt { id: RankingId, items: Vec<ItemId> },
    /// `remove_ranking` (the master observed it as live).
    Remove(RankingId),
    /// An explicit `compact` (master-side *auto*-compactions are not
    /// logged: replicas re-trigger them deterministically on replay).
    Compact,
}

/// One published generation: a frozen engine plus the absolute log
/// position it reflects.
struct Generation {
    engine: Engine,
    /// Number of log operations folded into `engine` (absolute, never
    /// reset by log truncation).
    log_pos: u64,
}

/// Writer-side state: the master engine and the mutation log.
struct WriterState {
    master: Engine,
    /// Operations not yet truncated; `log[0]` is absolute position
    /// `log_base`.
    log: Vec<LogOp>,
    /// Absolute log position of `log[0]`.
    log_base: u64,
}

impl WriterState {
    fn end_pos(&self) -> u64 {
        self.log_base + self.log.len() as u64
    }
}

struct Shared {
    writer: Mutex<WriterState>,
    /// The published generation; write-held only for the publish swap.
    head: RwLock<Arc<Generation>>,
    /// Log position covered by `head`, for `wait_until_published`.
    published: Mutex<u64>,
    published_cv: Condvar,
    /// Wakes the publisher when the log grows (or on shutdown).
    pending_cv: Condvar,
    shutdown: AtomicBool,
    /// Generations abandoned to straggler readers (observability).
    abandoned: AtomicU64,
}

/// Ignores mutex poisoning: every critical section either mutates
/// nothing before its only panic point (validation panics precede the
/// first store write) or performs non-panicking pointer/counter work,
/// so the protected state is consistent even after an unwind.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An epoch/RCU snapshot layer over [`Engine`] (see the module docs):
/// `&self` mutations, wait-free reads against immutable published
/// generations, off-thread index publication.
pub struct SnapshotEngine {
    shared: Arc<Shared>,
    publisher: Option<std::thread::JoinHandle<()>>,
}

/// A frozen, consistent view of the corpus at one log position.
/// Dereferences to [`Engine`], so the whole read-side query API
/// (`query_into`, `query_items`, `query_topk`, `query_batch`, ...) is
/// available directly. Holding a snapshot keeps its generation alive;
/// drop it promptly so the publisher can recycle retiring generations
/// instead of abandoning them.
#[derive(Clone)]
pub struct EngineSnapshot {
    generation: Arc<Generation>,
}

impl EngineSnapshot {
    /// The frozen engine.
    #[inline]
    pub fn engine(&self) -> &Engine {
        &self.generation.engine
    }

    /// The absolute log position this snapshot reflects: queries are
    /// bit-identical to a monolith that applied exactly the first
    /// `log_pos()` logged mutations.
    #[inline]
    pub fn log_pos(&self) -> u64 {
        self.generation.log_pos
    }
}

impl std::ops::Deref for EngineSnapshot {
    type Target = Engine;

    #[inline]
    fn deref(&self) -> &Engine {
        &self.generation.engine
    }
}

impl SnapshotEngine {
    /// Wraps a built engine, forking the two replicas (published head
    /// and standby) and starting the publisher thread. The wrapped
    /// engine becomes the writer-side master.
    pub fn new(master: Engine) -> Self {
        let head = Arc::new(Generation {
            engine: master.fork(),
            log_pos: 0,
        });
        let standby = master.fork();
        let shared = Arc::new(Shared {
            writer: Mutex::new(WriterState {
                master,
                log: Vec::new(),
                log_base: 0,
            }),
            head: RwLock::new(head),
            published: Mutex::new(0),
            published_cv: Condvar::new(),
            pending_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            abandoned: AtomicU64::new(0),
        });
        let publisher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ranksim-publisher".into())
                .spawn(move || publisher_loop(&shared, standby))
                .expect("spawn snapshot publisher thread")
        };
        SnapshotEngine {
            shared,
            publisher: Some(publisher),
        }
    }

    /// The current published generation — wait-free with respect to
    /// writers and allocation-free (one `RwLock` read, one refcount
    /// increment).
    #[inline]
    pub fn snapshot(&self) -> EngineSnapshot {
        let head = self.shared.head.read().unwrap_or_else(|e| e.into_inner());
        EngineSnapshot {
            generation: head.clone(),
        }
    }

    /// Inserts a ranking into the live corpus (see
    /// [`Engine::insert_ranking`] for semantics and panics). The new
    /// ranking is visible to snapshots taken after the next
    /// publication; [`SnapshotEngine::flush`] forces that.
    pub fn insert_ranking(&self, items: &[ItemId]) -> RankingId {
        let mut w = lock_ignore_poison(&self.shared.writer);
        let id = w.master.insert_ranking(items);
        w.log.push(LogOp::Insert {
            id,
            items: items.to_vec(),
        });
        drop(w);
        self.shared.pending_cv.notify_one();
        id
    }

    /// Re-inserts a ranking at a released id (see
    /// [`Engine::insert_ranking_at`]).
    pub fn insert_ranking_at(&self, id: RankingId, items: &[ItemId]) {
        let mut w = lock_ignore_poison(&self.shared.writer);
        w.master.insert_ranking_at(id, items);
        w.log.push(LogOp::InsertAt {
            id,
            items: items.to_vec(),
        });
        drop(w);
        self.shared.pending_cv.notify_one();
    }

    /// Tombstones ranking `id`; returns `false` when it was not live.
    /// May trigger a master-side auto-compaction (replicas re-trigger
    /// it deterministically during replay).
    pub fn remove_ranking(&self, id: RankingId) -> bool {
        let mut w = lock_ignore_poison(&self.shared.writer);
        if !w.master.remove_ranking(id) {
            return false;
        }
        w.log.push(LogOp::Remove(id));
        drop(w);
        self.shared.pending_cv.notify_one();
        true
    }

    /// Compacts the master and logs the compaction for the replicas.
    /// Readers are *not* blocked while replicas rebuild — that is the
    /// point of this type.
    pub fn compact(&self) {
        let mut w = lock_ignore_poison(&self.shared.writer);
        w.master.compact();
        w.log.push(LogOp::Compact);
        drop(w);
        self.shared.pending_cv.notify_one();
    }

    /// The absolute log position of the last accepted mutation.
    pub fn writer_pos(&self) -> u64 {
        lock_ignore_poison(&self.shared.writer).end_pos()
    }

    /// The absolute log position covered by the published head.
    pub fn published_pos(&self) -> u64 {
        *lock_ignore_poison(&self.shared.published)
    }

    /// Generations the publisher abandoned to straggler readers
    /// instead of recycling (each one costs a head fork).
    pub fn abandoned_generations(&self) -> u64 {
        self.shared.abandoned.load(Ordering::Relaxed)
    }

    /// Blocks until snapshots reflect at least log position `pos`.
    pub fn wait_until_published(&self, pos: u64) {
        let mut published = lock_ignore_poison(&self.shared.published);
        while *published < pos {
            published = self
                .shared
                .published_cv
                .wait(published)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until every mutation accepted so far is visible to new
    /// snapshots.
    pub fn flush(&self) {
        let pos = self.writer_pos();
        self.wait_until_published(pos);
    }
}

impl Drop for SnapshotEngine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The publisher waits on `pending_cv` under the writer lock;
        // taking the lock before notifying closes the race where it
        // re-checks the predicate just before we set the flag.
        drop(lock_ignore_poison(&self.shared.writer));
        self.shared.pending_cv.notify_all();
        if let Some(h) = self.publisher.take() {
            let _ = h.join();
        }
    }
}

/// Replays one logged op into a replica. Ids are asserted, not
/// assigned: determinism of the transition function makes the replica
/// agree with the master by construction.
fn replay(engine: &mut Engine, op: &LogOp) {
    match op {
        LogOp::Insert { id, items } => {
            let got = engine.insert_ranking(items);
            debug_assert_eq!(got, *id, "replica id assignment diverged from master");
        }
        LogOp::InsertAt { id, items } => engine.insert_ranking_at(*id, items),
        LogOp::Remove(id) => {
            let removed = engine.remove_ranking(*id);
            debug_assert!(removed, "replica liveness diverged from master");
        }
        LogOp::Compact => engine.compact(),
    }
}

fn publisher_loop(shared: &Shared, mut standby: Engine) {
    // Log position `standby` currently reflects.
    let mut standby_pos: u64 = 0;
    loop {
        // Wait for new log entries (or shutdown), then copy the suffix
        // out so replay runs without holding the writer lock.
        let ops: Vec<LogOp>;
        let target_pos: u64;
        {
            let mut w = lock_ignore_poison(&shared.writer);
            while w.end_pos() <= standby_pos && !shared.shutdown.load(Ordering::SeqCst) {
                w = shared.pending_cv.wait(w).unwrap_or_else(|e| e.into_inner());
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let skip = (standby_pos - w.log_base) as usize;
            ops = w.log[skip..].to_vec();
            target_pos = w.end_pos();
        }

        // Replay off-lock: writers keep writing, readers keep reading
        // the old head. This is where compaction rebuilds burn CPU
        // without blocking anyone.
        for op in &ops {
            replay(&mut standby, op);
        }

        // Publish: a pointer swap under a momentary write lock.
        let fresh = Arc::new(Generation {
            engine: standby,
            log_pos: target_pos,
        });
        let retiring = {
            let mut head = shared.head.write().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *head, fresh.clone())
        };
        {
            let mut published = lock_ignore_poison(&shared.published);
            *published = target_pos;
        }
        shared.published_cv.notify_all();

        // Reclaim the retiring generation as the next standby. Readers
        // holding snapshots of it keep it alive; wait boundedly, then
        // abandon it to them and fork the head instead.
        let deadline = Instant::now() + RECLAIM_WAIT;
        let mut retiring = retiring;
        (standby, standby_pos) = loop {
            match Arc::try_unwrap(retiring) {
                Ok(generation) => break (generation.engine, generation.log_pos),
                Err(still_shared) => {
                    if Instant::now() >= deadline {
                        shared.abandoned.fetch_add(1, Ordering::Relaxed);
                        drop(still_shared);
                        break (fresh.engine.fork(), fresh.log_pos);
                    }
                    retiring = still_shared;
                    std::thread::yield_now();
                }
            }
        };

        // Truncate the log below what the standby still needs; the
        // published head is always at least as fresh as the standby.
        {
            let mut w = lock_ignore_poison(&shared.writer);
            let cut = (standby_pos - w.log_base) as usize;
            w.log.drain(..cut);
            w.log_base = standby_pos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Algorithm, EngineBuilder};
    use ranksim_datasets::{nyt_like, workload, WorkloadParams};
    use ranksim_rankings::{raw_threshold, QueryStats};

    fn small_snapshot_engine(n: usize, seed: u64) -> (SnapshotEngine, u32) {
        let ds = nyt_like(n, 8, seed);
        let domain = ds.params.domain;
        let engine = EngineBuilder::new(ds.store)
            .coarse_threshold(0.4)
            .coarse_drop_threshold(0.06)
            .compaction_threshold(0.3)
            .build();
        (SnapshotEngine::new(engine), domain)
    }

    #[test]
    fn snapshots_are_stable_while_writes_land() {
        let (se, _domain) = small_snapshot_engine(300, 9);
        let theta = raw_threshold(0.25, 8);
        let before = se.snapshot();
        let q: Vec<ItemId> = before.store().items(RankingId(3)).to_vec();
        let mut scratch = before.scratch();
        let mut stats = QueryStats::new();
        let baseline = before.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats);
        assert!(baseline.contains(&RankingId(3)));

        // Remove the query's own ranking; the held snapshot must keep
        // answering from its frozen world.
        assert!(se.remove_ranking(RankingId(3)));
        se.flush();
        let again = before.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats);
        assert_eq!(again, baseline, "held snapshot changed under a write");

        // A fresh snapshot sees the removal.
        let after = se.snapshot();
        assert!(after.log_pos() >= 1);
        let fresh = after.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats);
        assert!(!fresh.contains(&RankingId(3)));
        assert!(fresh.len() < baseline.len() || baseline == vec![RankingId(3)]);
    }

    #[test]
    fn flush_makes_inserts_visible_and_ids_monotone() {
        let (se, domain) = small_snapshot_engine(200, 21);
        let wl = workload(
            se.snapshot().store(),
            domain,
            WorkloadParams {
                num_queries: 6,
                seed: 5,
                ..Default::default()
            },
        );
        let mut ids = Vec::new();
        for q in &wl.queries {
            ids.push(se.insert_ranking(q));
        }
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be monotone");
        se.flush();
        let snap = se.snapshot();
        assert_eq!(snap.log_pos(), se.writer_pos());
        let theta = raw_threshold(0.0, 8);
        let mut scratch = snap.scratch();
        let mut stats = QueryStats::new();
        for (q, id) in wl.queries.iter().zip(&ids) {
            let res = snap.query_items(Algorithm::ListMerge, q, theta, &mut scratch, &mut stats);
            assert!(res.contains(id), "inserted ranking invisible after flush");
        }
    }

    #[test]
    fn explicit_compaction_publishes_a_consistent_generation() {
        let (se, _domain) = small_snapshot_engine(150, 33);
        for i in 0..20u32 {
            se.remove_ranking(RankingId(i * 3));
        }
        se.compact();
        se.flush();
        let snap = se.snapshot();
        assert_eq!(
            snap.base_tombstones(),
            0,
            "compaction must clear tombstones"
        );
        // Every algorithm still answers identically on the fresh head.
        let q: Vec<ItemId> = snap.store().items(RankingId(1)).to_vec();
        let theta = raw_threshold(0.2, 8);
        let mut scratch = snap.scratch();
        let mut stats = QueryStats::new();
        let expect = snap.query_items(Algorithm::Fv, &q, theta, &mut scratch, &mut stats);
        for alg in Algorithm::ALL {
            let mut got = snap.query_items(alg, &q, theta, &mut scratch, &mut stats);
            got.sort_unstable();
            let mut want = expect.clone();
            want.sort_unstable();
            assert_eq!(got, want, "{alg} diverged on the published snapshot");
        }
    }

    #[test]
    fn abandoned_generations_do_not_stall_publication() {
        let (se, _domain) = small_snapshot_engine(120, 7);
        // Pin the initial generation for the whole test.
        let pinned = se.snapshot();
        for i in 0..30u32 {
            se.insert_ranking(&pinned.store().items(RankingId(i % 5)).to_vec());
            let fresh: Vec<ItemId> = (1000 + i * 10..1000 + i * 10 + 8).map(ItemId).collect();
            se.insert_ranking(&fresh);
        }
        se.flush();
        assert_eq!(se.published_pos(), se.writer_pos());
        assert_eq!(
            pinned.log_pos(),
            0,
            "pinned snapshot must stay at its prefix"
        );
        // The pinned world still has its original corpus size.
        assert_eq!(pinned.store().live_len(), 120);
        let now = se.snapshot();
        assert_eq!(now.store().live_len(), 180);
    }
}
