//! Durable write-ahead log for [`crate::snapshot::SnapshotEngine`]
//! mutations.
//!
//! PR 6's snapshot engine replicates through an **in-memory** mutation
//! log — a process crash silently loses every mutation since build.
//! This module makes that log durable: every [`LogOp`] is encoded as a
//! length-prefixed, CRC32-checksummed binary record and appended to an
//! append-only file *before* the mutation is acknowledged, so the full
//! op history from the base corpus is replayable after a crash.
//!
//! ## Record format (version 1)
//!
//! ```text
//! file   := header record*
//! header := magic "RSWL" (4 bytes) | version u32 LE
//! record := len u32 LE | crc32 u32 LE | payload (len bytes)
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload alone; `len` is bounded by
//! [`MAX_PAYLOAD`] so a corrupted length prefix can never direct the
//! reader to allocate or scan gigabytes. The payload is a hand-rolled
//! tag-prefixed encoding of one [`LogOp`] (no serialization-framework
//! dependency — the build environment is offline, and four op shapes do
//! not need one):
//!
//! ```text
//! payload := 0x01 id u32 count u32 item u32*count   (Insert)
//!          | 0x02 id u32 count u32 item u32*count   (InsertAt)
//!          | 0x03 id u32                            (Remove)
//!          | 0x04                                   (Compact)
//! ```
//!
//! ## Torn-tail truncation rule
//!
//! A crash can stop the writer mid-record. [`read_wal`] scans records
//! in order and stops at the **first** record that is short (fewer
//! bytes than its length prefix promises, or an incomplete prefix),
//! oversized (`len > MAX_PAYLOAD`), checksum-mismatched, or
//! undecodable. Everything before that point is the valid prefix;
//! everything from it on is the torn tail, reported via
//! `truncated_bytes` and physically truncated by
//! [`WalWriter::resume`] before new records are appended. A torn tail
//! is **not** an error — it is the expected shape of a crash — but a
//! missing or wrong header is ([`WalError::BadHeader`]): that file was
//! never a WAL, and replaying guesses from it would corrupt the
//! corpus.
//!
//! ## Sync policies
//!
//! [`SyncPolicy`] picks the durability/latency trade:
//!
//! * [`SyncPolicy::PerOp`] — `fdatasync` after every record. An
//!   acknowledged mutation survives power loss; the writer pays a
//!   device flush per op.
//! * [`SyncPolicy::GroupCommit`] — sync once `max_ops` records
//!   accumulate or `max_delay` has passed since the oldest unsynced
//!   record (the publisher thread flushes overdue groups, so the
//!   window is bounded even when traffic stops).
//! * [`SyncPolicy::None`] — never sync except on explicit
//!   [`WalWriter::sync`] / graceful shutdown. A **process** kill still
//!   loses nothing already `write(2)`-ten (the page cache survives the
//!   process); only a machine crash can take the unsynced window.
//!
//! ## Fault injection
//!
//! [`FailPoint`] is the test hook the fault-injection harness arms:
//! one-shot short writes and bit flips at the record level plus sync
//! failures, injected inside the writer where a real kernel or device
//! would fail. Production code never arms it; the disarmed fast path
//! is one relaxed atomic load.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ranksim_rankings::{ItemId, RankingId};

/// The 4-byte file magic: a WAL and nothing else.
pub const WAL_MAGIC: [u8; 4] = *b"RSWL";

/// Current record-format version (bumped on any layout change).
pub const WAL_VERSION: u32 = 1;

/// Upper bound on one record's payload. A corrupted length prefix is
/// detected here instead of sending the reader chasing gigabytes; the
/// largest legitimate payload (an insert of a size-`k` ranking) is a
/// few hundred bytes.
pub const MAX_PAYLOAD: u32 = 1 << 20;

const HEADER_LEN: u64 = 8;
const TAG_INSERT: u8 = 0x01;
const TAG_INSERT_AT: u8 = 0x02;
const TAG_REMOVE: u8 = 0x03;
const TAG_COMPACT: u8 = 0x04;

/// One logged mutation of the snapshot engine's single-writer stream;
/// the unit of replication (in-memory replicas) and of durability
/// (this module). See [`crate::snapshot::SnapshotEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// `insert_ranking`; the id the master assigned rides along so
    /// replay can assert replica/master id agreement.
    Insert {
        /// The id the master assigned.
        id: RankingId,
        /// The inserted ranking, top rank first.
        items: Vec<ItemId>,
    },
    /// `insert_ranking_at` (re-insertion at a released id).
    InsertAt {
        /// The released id being repopulated.
        id: RankingId,
        /// The inserted ranking, top rank first.
        items: Vec<ItemId>,
    },
    /// `remove_ranking` (the master observed it as live).
    Remove(RankingId),
    /// An explicit `compact` (master-side *auto*-compactions are not
    /// logged: replicas re-trigger them deterministically on replay).
    Compact,
}

/// When the WAL writer forces appended records onto stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every appended record.
    PerOp,
    /// Sync once `max_ops` records accumulate or `max_delay` has
    /// passed since the oldest unsynced record.
    GroupCommit {
        /// Unsynced-record count that forces a sync.
        max_ops: u32,
        /// Oldest-unsynced age that forces a sync.
        max_delay: Duration,
    },
    /// Never sync implicitly (explicit [`WalWriter::sync`] only).
    None,
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::PerOp => write!(f, "per_op"),
            SyncPolicy::GroupCommit { max_ops, max_delay } => {
                write!(f, "group_commit({max_ops} ops, {max_delay:?})")
            }
            SyncPolicy::None => write!(f, "none"),
        }
    }
}

/// Everything that can go wrong appending to or scanning a WAL.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file is missing the magic/version header — it is not a WAL
    /// (or a future, incompatible one); replaying it would be a guess.
    BadHeader,
    /// A previous append or sync on this writer failed; the writer is
    /// fail-stop and refuses further appends.
    Failed(String),
    /// Recovery replay disagreed with the recorded history (wrong base
    /// corpus, or a corrupted record that passed its checksum).
    Diverged(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadHeader => write!(f, "not a wal file (bad magic/version header)"),
            WalError::Failed(msg) => write!(f, "wal writer is failed: {msg}"),
            WalError::Diverged(msg) => write!(f, "wal replay diverged: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What [`crate::snapshot::SnapshotEngine::recover`] did: how many
/// records replayed cleanly and how many torn-tail bytes were cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records replayed into the recovered engine.
    pub applied: u64,
    /// Bytes truncated off the tail (0 for a cleanly closed log).
    pub truncated_bytes: u64,
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled, table-driven.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum in every record header).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(bytes: &[u8], pos: usize) -> Option<u32> {
    bytes
        .get(pos..pos + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Appends the payload encoding of `op` (no framing) to `out`.
pub fn encode_op(op: &LogOp, out: &mut Vec<u8>) {
    match op {
        LogOp::Insert { id, items } | LogOp::InsertAt { id, items } => {
            out.push(if matches!(op, LogOp::Insert { .. }) {
                TAG_INSERT
            } else {
                TAG_INSERT_AT
            });
            push_u32(out, id.0);
            push_u32(out, items.len() as u32);
            for item in items {
                push_u32(out, item.0);
            }
        }
        LogOp::Remove(id) => {
            out.push(TAG_REMOVE);
            push_u32(out, id.0);
        }
        LogOp::Compact => out.push(TAG_COMPACT),
    }
}

/// Decodes one payload back into a [`LogOp`]. `None` on any structural
/// mismatch (unknown tag, short payload, trailing garbage) — the
/// caller treats that exactly like a checksum failure.
pub fn decode_op(payload: &[u8]) -> Option<LogOp> {
    let (&tag, rest) = payload.split_first()?;
    match tag {
        TAG_INSERT | TAG_INSERT_AT => {
            let id = RankingId(read_u32(rest, 0)?);
            let count = read_u32(rest, 4)? as usize;
            let body = rest.get(8..)?;
            if body.len() != count.checked_mul(4)? {
                return None;
            }
            let items: Vec<ItemId> = body
                .chunks_exact(4)
                .map(|c| ItemId(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                .collect();
            Some(if tag == TAG_INSERT {
                LogOp::Insert { id, items }
            } else {
                LogOp::InsertAt { id, items }
            })
        }
        TAG_REMOVE => {
            if rest.len() != 4 {
                return None;
            }
            Some(LogOp::Remove(RankingId(read_u32(rest, 0)?)))
        }
        TAG_COMPACT => rest.is_empty().then_some(LogOp::Compact),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// One injected fault (consumed by the next write or sync it applies
/// to — one-shot by design, so a test controls exactly which record is
/// damaged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Write only the first `n` bytes of the next record, then fail
    /// the append — a torn write at a record boundary of the test's
    /// choosing.
    ShortWrite(usize),
    /// Flip the low bit of byte `offset % record_len` of the next
    /// record before writing it. The write *succeeds* — the corruption
    /// is only discovered by the CRC check at recovery, like a real
    /// silently-corrupted sector.
    BitFlip(usize),
    /// Fail the next sync (explicit or policy-triggered).
    SyncFail,
}

/// A shared, armable fault-injection hook for [`WalWriter`] — the
/// fault-injection harness's lever. Disarmed it costs one relaxed
/// atomic load per append; `inject` arms exactly one fault.
#[derive(Debug, Clone, Default)]
pub struct FailPoint {
    inner: Arc<FailPointInner>,
}

#[derive(Debug, Default)]
struct FailPointInner {
    armed: AtomicBool,
    fault: Mutex<Option<Fault>>,
}

impl FailPoint {
    /// A disarmed fail point.
    pub fn new() -> Self {
        FailPoint::default()
    }

    /// Arms `fault`; the next matching writer operation consumes it.
    pub fn inject(&self, fault: Fault) {
        *self.inner.fault.lock().unwrap_or_else(|e| e.into_inner()) = Some(fault);
        self.inner.armed.store(true, Ordering::Release);
    }

    /// Consumes the armed fault if `pred` matches it.
    fn take_if(&self, pred: impl Fn(&Fault) -> bool) -> Option<Fault> {
        if !self.inner.armed.load(Ordering::Acquire) {
            return None;
        }
        let mut slot = self.inner.fault.lock().unwrap_or_else(|e| e.into_inner());
        if slot.as_ref().is_some_and(&pred) {
            self.inner.armed.store(false, Ordering::Release);
            slot.take()
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Appends framed [`LogOp`] records to an append-only WAL file under a
/// [`SyncPolicy`]. Fail-stop: after any write or sync error the writer
/// refuses further appends (the caller surfaces that via
/// [`crate::snapshot::SnapshotEngine::health`]), because a log with a
/// hole in the middle could replay a wrong history.
pub struct WalWriter {
    file: File,
    policy: SyncPolicy,
    failpoint: FailPoint,
    /// Records successfully appended (including unsynced ones).
    records: u64,
    /// File length in bytes after the last successful append.
    bytes: u64,
    /// Appends since the last successful sync.
    unsynced: u32,
    /// When the oldest unsynced record was appended.
    oldest_unsynced: Option<Instant>,
    /// First append/sync failure; fail-stop marker.
    failed: Option<String>,
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Creates (or truncates) the WAL at `path` and writes the header.
    pub fn create(path: &Path, policy: SyncPolicy) -> Result<WalWriter, WalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            policy,
            failpoint: FailPoint::new(),
            records: 0,
            bytes: HEADER_LEN,
            unsynced: 0,
            oldest_unsynced: None,
            failed: None,
            scratch: Vec::new(),
        })
    }

    /// Reopens an existing WAL for append after a [`read_wal`] scan:
    /// physically truncates the torn tail at `scan.valid_bytes` and
    /// positions the writer there, with `scan.ops.len()` records on
    /// the books.
    pub fn resume(path: &Path, policy: SyncPolicy, scan: &WalScan) -> Result<WalWriter, WalError> {
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(scan.valid_bytes)?;
        file.seek(SeekFrom::Start(scan.valid_bytes))?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            policy,
            failpoint: FailPoint::new(),
            records: scan.ops.len() as u64,
            bytes: scan.valid_bytes,
            unsynced: 0,
            oldest_unsynced: None,
            failed: None,
            scratch: Vec::new(),
        })
    }

    /// The shared fault-injection handle (see [`FailPoint`]).
    pub fn failpoint(&self) -> FailPoint {
        self.failpoint.clone()
    }

    /// Records successfully appended over this writer's lifetime
    /// (including those [`WalWriter::resume`] found on disk).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Current file length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The first failure this writer hit, if any (fail-stop marker).
    pub fn failure(&self) -> Option<&str> {
        self.failed.as_deref()
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// When the oldest unsynced record must be flushed under
    /// [`SyncPolicy::GroupCommit`] (the publisher's flush duty), if a
    /// deadline is pending. `None` once the writer is fail-stop: no
    /// sync can ever succeed again, and a perpetually-past deadline
    /// would spin the publisher's flush loop forever.
    pub fn sync_due_at(&self) -> Option<Instant> {
        if self.failed.is_some() {
            return None;
        }
        match (self.policy, self.oldest_unsynced) {
            (SyncPolicy::GroupCommit { max_delay, .. }, Some(oldest)) => Some(oldest + max_delay),
            _ => None,
        }
    }

    fn fail(&mut self, msg: String) -> WalError {
        if self.failed.is_none() {
            self.failed = Some(msg.clone());
        }
        // Fail-stop retires the group-commit due-state: the records are
        // not durable and never will be, and a surviving deadline would
        // keep `sync_due_at` reporting work that cannot be done.
        self.unsynced = 0;
        self.oldest_unsynced = None;
        WalError::Failed(msg)
    }

    /// Encodes and appends one record, then applies the sync policy.
    /// Returns the total record count on success. On failure the
    /// writer becomes fail-stop; the bytes that reached the file form
    /// a torn tail that recovery truncates.
    pub fn append(&mut self, op: &LogOp) -> Result<u64, WalError> {
        if let Some(msg) = &self.failed {
            return Err(WalError::Failed(msg.clone()));
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(&[0u8; 8]);
        encode_op(op, &mut scratch);
        let payload_len = (scratch.len() - 8) as u32;
        let crc = crc32(&scratch[8..]);
        scratch[..4].copy_from_slice(&payload_len.to_le_bytes());
        scratch[4..8].copy_from_slice(&crc.to_le_bytes());

        let fault = self
            .failpoint
            .take_if(|f| matches!(f, Fault::ShortWrite(_) | Fault::BitFlip(_)));
        let result = match fault {
            Some(Fault::ShortWrite(keep)) => {
                let keep = keep.min(scratch.len());
                // Write the torn prefix so recovery has something to
                // truncate, then report the append as failed. The
                // partial write may itself land short, so the file is
                // re-statted rather than trusting `keep`.
                let _ = self.file.write_all(&scratch[..keep]);
                let _ = self.file.sync_data();
                if let Ok(meta) = self.file.metadata() {
                    self.bytes = meta.len();
                }
                Err(self.fail(format!(
                    "fail point: short write ({keep} of {} bytes)",
                    scratch.len()
                )))
            }
            Some(Fault::BitFlip(offset)) => {
                let n = scratch.len();
                scratch[offset % n] ^= 0x01;
                // The corrupted record is written "successfully" — only
                // the recovery CRC check can see the damage.
                self.write_record(&scratch)
            }
            _ => self.write_record(&scratch),
        };
        self.scratch = scratch;
        result?;
        Ok(self.records)
    }

    fn write_record(&mut self, record: &[u8]) -> Result<(), WalError> {
        if let Err(e) = self.file.write_all(record) {
            return Err(self.fail(format!("append failed: {e}")));
        }
        self.bytes += record.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        if self.oldest_unsynced.is_none() {
            self.oldest_unsynced = Some(Instant::now());
        }
        match self.policy {
            SyncPolicy::PerOp => self.sync(),
            SyncPolicy::GroupCommit { max_ops, max_delay } => {
                let due = self.unsynced >= max_ops
                    || self
                        .oldest_unsynced
                        .is_some_and(|t| t.elapsed() >= max_delay);
                if due {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::None => Ok(()),
        }
    }

    /// Forces every appended record onto stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        if let Some(msg) = &self.failed {
            return Err(WalError::Failed(msg.clone()));
        }
        if self
            .failpoint
            .take_if(|f| matches!(f, Fault::SyncFail))
            .is_some()
        {
            return Err(self.fail("fail point: sync failed".to_string()));
        }
        if self.unsynced == 0 {
            return Ok(());
        }
        if let Err(e) = self.file.sync_data() {
            return Err(self.fail(format!("sync failed: {e}")));
        }
        self.unsynced = 0;
        self.oldest_unsynced = None;
        Ok(())
    }

    /// Syncs iff the group-commit delay has expired (no-op for other
    /// policies) — the publisher thread's flush duty.
    pub fn sync_if_due(&mut self) -> Result<(), WalError> {
        if self.sync_due_at().is_some_and(|at| at <= Instant::now()) {
            self.sync()
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// The result of scanning a WAL: the valid op prefix plus where the
/// torn tail (if any) starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every record of the valid prefix, in append order.
    pub ops: Vec<LogOp>,
    /// Byte length of the header plus the valid prefix.
    pub valid_bytes: u64,
    /// Bytes after the valid prefix (torn/corrupt tail; 0 when clean).
    pub truncated_bytes: u64,
}

/// Reads until `buf` is full or EOF; returns how many bytes landed.
/// A short count is EOF mid-frame — the torn-tail case, not an error.
fn read_full(reader: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Scans the WAL at `path`, applying the torn-tail truncation rule
/// (see the module docs): the scan stops at the first short, oversized,
/// checksum-mismatched or undecodable record, and everything after it
/// is reported as `truncated_bytes`. Never panics on arbitrary bytes;
/// only a missing/wrong header is an error. The scan streams one
/// record at a time, so recovery memory is bounded by [`MAX_PAYLOAD`]
/// plus the decoded ops — never by the log's on-disk length.
pub fn read_wal(path: &Path) -> Result<WalScan, WalError> {
    let file = File::open(path)?;
    let total_bytes = file.metadata()?.len();
    let mut reader = std::io::BufReader::new(file);
    let mut header = [0u8; HEADER_LEN as usize];
    if read_full(&mut reader, &mut header)? < HEADER_LEN as usize
        || header[..4] != WAL_MAGIC
        || header[4..] != WAL_VERSION.to_le_bytes()
    {
        return Err(WalError::BadHeader);
    }
    let mut ops = Vec::new();
    let mut pos = HEADER_LEN;
    let mut frame = [0u8; 8];
    let mut payload = Vec::new();
    loop {
        if read_full(&mut reader, &mut frame)? < frame.len() {
            break;
        }
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        if len > MAX_PAYLOAD {
            break;
        }
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        payload.resize(len as usize, 0);
        if read_full(&mut reader, &mut payload)? < payload.len() {
            break;
        }
        if crc32(&payload) != crc {
            break;
        }
        let Some(op) = decode_op(&payload) else { break };
        ops.push(op);
        pos += 8 + len as u64;
    }
    Ok(WalScan {
        ops,
        valid_bytes: pos,
        truncated_bytes: total_bytes.saturating_sub(pos),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ranksim-wal-{tag}-{}", std::process::id()));
        p
    }

    fn sample_ops() -> Vec<LogOp> {
        vec![
            LogOp::Insert {
                id: RankingId(0),
                items: vec![ItemId(4), ItemId(1), ItemId(9)],
            },
            LogOp::Remove(RankingId(0)),
            LogOp::Compact,
            LogOp::InsertAt {
                id: RankingId(0),
                items: vec![ItemId(7), ItemId(2), ItemId(5)],
            },
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_read_round_trip_per_policy() {
        for (i, policy) in [
            SyncPolicy::PerOp,
            SyncPolicy::GroupCommit {
                max_ops: 2,
                max_delay: Duration::from_millis(5),
            },
            SyncPolicy::None,
        ]
        .into_iter()
        .enumerate()
        {
            let path = temp_path(&format!("roundtrip-{i}"));
            let ops = sample_ops();
            {
                let mut w = WalWriter::create(&path, policy).unwrap();
                for op in &ops {
                    w.append(op).unwrap();
                }
                w.sync().unwrap();
                assert_eq!(w.records(), ops.len() as u64);
            }
            let scan = read_wal(&path).unwrap();
            assert_eq!(scan.ops, ops);
            assert_eq!(scan.truncated_bytes, 0);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn short_write_fails_append_and_recovery_truncates() {
        let path = temp_path("short");
        let ops = sample_ops();
        {
            let mut w = WalWriter::create(&path, SyncPolicy::PerOp).unwrap();
            w.append(&ops[0]).unwrap();
            w.failpoint().inject(Fault::ShortWrite(5));
            let err = w.append(&ops[1]).unwrap_err();
            assert!(matches!(err, WalError::Failed(_)), "got {err}");
            // Fail-stop: the writer refuses further work.
            assert!(w.append(&ops[2]).is_err());
            assert!(w.failure().is_some());
        }
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.ops, ops[..1]);
        assert_eq!(scan.truncated_bytes, 5);
        // Resume truncates the torn tail and appends cleanly after it.
        let mut w = WalWriter::resume(&path, SyncPolicy::PerOp, &scan).unwrap();
        w.append(&ops[2]).unwrap();
        drop(w);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.ops, vec![ops[0].clone(), ops[2].clone()]);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_is_caught_by_the_checksum() {
        let path = temp_path("flip");
        let ops = sample_ops();
        {
            let mut w = WalWriter::create(&path, SyncPolicy::None).unwrap();
            w.append(&ops[0]).unwrap();
            w.failpoint().inject(Fault::BitFlip(11));
            // The corrupted append "succeeds" — like a bad sector.
            w.append(&ops[1]).unwrap();
            w.append(&ops[2]).unwrap();
            w.sync().unwrap();
        }
        let scan = read_wal(&path).unwrap();
        // The flipped record and everything after it are the tail.
        assert_eq!(scan.ops, ops[..1]);
        assert!(scan.truncated_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_failure_is_fail_stop() {
        let path = temp_path("syncfail");
        let mut w = WalWriter::create(&path, SyncPolicy::None).unwrap();
        w.append(&sample_ops()[0]).unwrap();
        w.failpoint().inject(Fault::SyncFail);
        assert!(matches!(w.sync(), Err(WalError::Failed(_))));
        assert!(w.append(&sample_ops()[1]).is_err(), "fail-stop after sync");
        drop(w);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn not_a_wal_is_a_header_error_not_a_panic() {
        let path = temp_path("header");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(matches!(read_wal(&path), Err(WalError::BadHeader)));
        std::fs::write(&path, b"RS").unwrap();
        assert!(matches!(read_wal(&path), Err(WalError::BadHeader)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_length_prefix_is_a_torn_tail() {
        let path = temp_path("oversize");
        let mut w = WalWriter::create(&path, SyncPolicy::None).unwrap();
        w.append(&sample_ops()[0]).unwrap();
        w.sync().unwrap();
        drop(w);
        // Append a frame whose length prefix promises 2 GiB.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.ops, sample_ops()[..1]);
        assert_eq!(scan.truncated_bytes, 16);
        std::fs::remove_file(&path).unwrap();
    }
}
