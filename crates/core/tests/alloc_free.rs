//! Steady-state allocation guard: after a warm-up pass has grown the
//! scratch's epoch arrays and the result buffer to their high-water
//! marks, `Engine::query_into` must perform **zero** heap allocations for
//! every algorithm at every threshold — and so must
//! `ShardedEngine::query_into`, whose per-shard engines share one
//! grow-only scratch and whose id-translation/sort merge works in place,
//! and `Algorithm::Auto` on both engines: the planner prices candidates
//! from pre-computed tables and the scratch's `plan_freqs` buffer, and
//! its recalibration loop is a pair of relaxed atomics — no per-query
//! heap work anywhere.
//!
//! A counting global allocator tracks every `alloc`/`realloc`; the test
//! runs the full (algorithm × θ × query) grid twice for warm-up and then
//! asserts the counter does not move during a third, measured pass.
//!
//! This file intentionally holds a single test: the counter is global, so
//! a concurrently running test in the same binary would tamper with it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ranksim_core::engine::{Algorithm, EngineBuilder};
use ranksim_core::{ShardStrategy, ShardedEngineBuilder};
use ranksim_datasets::{nyt_like, workload, WorkloadParams};
use ranksim_rankings::{raw_threshold, QueryStats};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_query_into_performs_zero_allocations() {
    let ds = nyt_like(1500, 10, 99);
    let domain = ds.params.domain;
    let mut sharded_builder = ShardedEngineBuilder::new(10, 3, ShardStrategy::Hash)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06);
    sharded_builder.extend_from_store(&ds.store);
    let sharded = sharded_builder.build();
    let engine = EngineBuilder::new(ds.store)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .build();
    let wl = workload(
        engine.store(),
        domain,
        WorkloadParams {
            num_queries: 12,
            seed: 31,
            ..Default::default()
        },
    );
    let thetas: Vec<u32> = [0.0, 0.1, 0.2, 0.3]
        .iter()
        .map(|&t| raw_threshold(t, 10))
        .collect();

    let mut scratch = engine.scratch();
    let mut out = Vec::new();
    let mut stats = QueryStats::new();
    let run_grid = |scratch: &mut _, out: &mut _, stats: &mut _| {
        let mut total = 0usize;
        for alg in Algorithm::ALL {
            for &raw in &thetas {
                for q in &wl.queries {
                    engine.query_into(alg, q, raw, scratch, stats, out);
                    total += out.len();
                }
            }
        }
        total
    };

    // Warm-up: two passes grow every buffer to its high-water mark.
    let warm1 = run_grid(&mut scratch, &mut out, &mut stats);
    let warm2 = run_grid(&mut scratch, &mut out, &mut stats);
    assert_eq!(warm1, warm2, "deterministic workload expected");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let measured = run_grid(&mut scratch, &mut out, &mut stats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(measured, warm1);
    assert_eq!(
        after - before,
        0,
        "steady-state query_into must not touch the allocator \
         ({} allocations during the measured pass)",
        after - before
    );

    // The same contract for the sharded engine: one ShardedScratch per
    // caller, every per-shard query plus the translate-and-sort merge
    // allocation-free once warm.
    let mut sscratch = sharded.scratch();
    let mut sout = Vec::new();
    let mut sstats = QueryStats::new();
    let run_sharded_grid =
        |scratch: &mut ranksim_core::ShardedScratch, out: &mut Vec<_>, stats: &mut _| {
            let mut total = 0usize;
            for alg in Algorithm::ALL {
                for &raw in &thetas {
                    for q in &wl.queries {
                        sharded.query_into(alg, q, raw, scratch, stats, out);
                        total += out.len();
                    }
                }
            }
            total
        };
    let swarm1 = run_sharded_grid(&mut sscratch, &mut sout, &mut sstats);
    let swarm2 = run_sharded_grid(&mut sscratch, &mut sout, &mut sstats);
    assert_eq!(swarm1, swarm2, "deterministic workload expected");
    assert_eq!(
        swarm1, warm1,
        "sharded grid must return the same result mass"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let smeasured = run_sharded_grid(&mut sscratch, &mut sout, &mut sstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(smeasured, swarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state sharded query_into must not touch the allocator \
         ({} allocations during the measured pass)",
        after - before
    );

    // `Algorithm::Auto`: planning (candidate pricing + argmin) and the
    // recalibration feedback must add zero allocations on top of the
    // chosen executor. Both engines carry planners (default build /
    // explicit Auto selection); all executors' buffers are already at
    // their high-water marks from the grids above, and the extra warm-up
    // passes grow `plan_freqs` and settle the planner's picks.
    let run_auto_grid = |scratch: &mut _, out: &mut Vec<_>, stats: &mut _| {
        let mut total = 0usize;
        for &raw in &thetas {
            for q in &wl.queries {
                engine.query_into(Algorithm::Auto, q, raw, scratch, stats, out);
                total += out.len();
            }
        }
        total
    };
    let awarm1 = run_auto_grid(&mut scratch, &mut out, &mut stats);
    let awarm2 = run_auto_grid(&mut scratch, &mut out, &mut stats);
    assert_eq!(awarm1, awarm2, "Auto results are algorithm-independent");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let ameasured = run_auto_grid(&mut scratch, &mut out, &mut stats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(ameasured, awarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state query_auto must not touch the allocator \
         ({} allocations during the measured pass)",
        after - before
    );

    let run_sharded_auto_grid =
        |scratch: &mut ranksim_core::ShardedScratch, out: &mut Vec<_>, stats: &mut _| {
            let mut total = 0usize;
            for &raw in &thetas {
                for q in &wl.queries {
                    sharded.query_into(Algorithm::Auto, q, raw, scratch, stats, out);
                    total += out.len();
                }
            }
            total
        };
    let sawarm1 = run_sharded_auto_grid(&mut sscratch, &mut sout, &mut sstats);
    let sawarm2 = run_sharded_auto_grid(&mut sscratch, &mut sout, &mut sstats);
    assert_eq!(sawarm1, sawarm2);
    assert_eq!(sawarm1, awarm1, "sharded Auto returns the same result mass");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let sameasured = run_sharded_auto_grid(&mut sscratch, &mut sout, &mut sstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(sameasured, sawarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state sharded query_auto must not touch the allocator \
         ({} allocations during the measured pass)",
        after - before
    );

    // --- Live corpora -------------------------------------------------
    //
    // A mutated-then-compacted engine must return to the exact same
    // steady state: mutations and the compaction itself may allocate
    // (arena growth, index rebuilds), but once compacted and re-warmed,
    // the query grid touches the allocator zero times again — including
    // `Auto` (the rebuilt planner) and tombstone/delta bookkeeping,
    // which must all be pre-sized.
    let mut live = EngineBuilder::new(nyt_like(1200, 10, 7).store)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .compaction_threshold(f64::INFINITY)
        .topk_tree(true)
        .build();
    for id in (0..1200u32).step_by(5) {
        live.remove_ranking(ranksim_rankings::RankingId(id));
    }
    for i in 0..150u32 {
        let items: Vec<ranksim_rankings::ItemId> = (0..10)
            .map(|j| ranksim_rankings::ItemId(500_000 + i * 16 + j))
            .collect();
        live.insert_ranking(&items);
    }
    live.compact();
    assert_eq!(live.delta_len(), 0);
    assert_eq!(live.base_tombstones(), 0);
    // (`query_topk` returns an owned Vec by design — the threshold grid
    // is the strict-zero surface; the KNN path shares the same scratch
    // and store machinery.)
    let run_live_grid = |scratch: &mut _, out: &mut Vec<_>, stats: &mut _| {
        let mut total = 0usize;
        for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
            for &raw in &thetas {
                for q in &wl.queries {
                    live.query_into(alg, q, raw, scratch, stats, out);
                    total += out.len();
                }
            }
        }
        total
    };
    let mut lscratch = live.scratch();
    let mut lout = Vec::new();
    let mut lstats = QueryStats::new();
    let lwarm1 = run_live_grid(&mut lscratch, &mut lout, &mut lstats);
    let lwarm2 = run_live_grid(&mut lscratch, &mut lout, &mut lstats);
    assert_eq!(lwarm1, lwarm2, "deterministic workload expected");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let lmeasured = run_live_grid(&mut lscratch, &mut lout, &mut lstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(lmeasured, lwarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state queries on a mutated-then-compacted engine must not \
         touch the allocator ({} allocations during the measured pass)",
        after - before
    );

    // --- Snapshot engine ----------------------------------------------
    //
    // Serving reads must stay zero-allocation end to end: acquiring a
    // frozen [`SnapshotEngine`] snapshot is an `RwLock` read plus one
    // `Arc` refcount bump — no clone, no copy — and querying through it
    // is the ordinary `query_into` path on the published generation.
    // The grid below re-acquires a **fresh snapshot for every query**,
    // exactly like a serving dispatcher does. The publisher thread is
    // idled first (`flush` with nothing pending parks it on its
    // condvar), so the measured pass observes the steady serving state
    // of a corpus that has already absorbed writes.
    let service = ranksim_core::SnapshotEngine::new(
        EngineBuilder::new(nyt_like(1000, 10, 13).store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build(),
    );
    for i in 0..40u32 {
        let items: Vec<ranksim_rankings::ItemId> = (0..10)
            .map(|j| ranksim_rankings::ItemId(700_000 + i * 16 + j))
            .collect();
        service.insert_ranking(&items);
    }
    service.flush();
    let mut nscratch = service.snapshot().scratch();
    let mut nout = Vec::new();
    let mut nstats = QueryStats::new();
    let run_snapshot_grid = |scratch: &mut _, out: &mut Vec<_>, stats: &mut _| {
        let mut total = 0usize;
        for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
            for &raw in &thetas {
                for q in &wl.queries {
                    let snap = service.snapshot();
                    snap.query_into(alg, q, raw, scratch, stats, out);
                    total += out.len();
                }
            }
        }
        total
    };
    let nwarm1 = run_snapshot_grid(&mut nscratch, &mut nout, &mut nstats);
    let nwarm2 = run_snapshot_grid(&mut nscratch, &mut nout, &mut nstats);
    assert_eq!(nwarm1, nwarm2, "deterministic workload expected");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let nmeasured = run_snapshot_grid(&mut nscratch, &mut nout, &mut nstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(nmeasured, nwarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state snapshot reads (acquire + query_into) must not \
         touch the allocator ({} allocations during the measured pass)",
        after - before
    );

    // --- Recovered engine ---------------------------------------------
    //
    // Crash recovery must hand back an engine with the same steady-state
    // read contract: a WAL-backed engine absorbs writes, is dropped
    // (cleanly syncing its log), and a *recovered* engine replays that
    // log over the base corpus. Once warm, serving reads through the
    // recovered engine — fresh snapshot per query, like the dispatcher —
    // touch the allocator zero times. The WAL is write-path machinery
    // only; it must cost reads nothing.
    let wal_path =
        std::env::temp_dir().join(format!("ranksim-allocfree-{}.wal", std::process::id()));
    let build_base = || {
        EngineBuilder::new(nyt_like(1000, 10, 17).store)
            .coarse_threshold(0.5)
            .coarse_drop_threshold(0.06)
            .build()
    };
    {
        let durable = ranksim_core::SnapshotEngine::with_wal(
            build_base(),
            &wal_path,
            ranksim_core::SyncPolicy::PerOp,
        )
        .expect("create alloc-test WAL");
        for i in 0..40u32 {
            let items: Vec<ranksim_rankings::ItemId> = (0..10)
                .map(|j| ranksim_rankings::ItemId(800_000 + i * 16 + j))
                .collect();
            durable.insert_ranking(&items);
        }
        for id in (0..200u32).step_by(7) {
            durable.remove_ranking(ranksim_rankings::RankingId(id));
        }
        durable.flush();
    }
    let (recovered, report) = ranksim_core::SnapshotEngine::recover(
        build_base(),
        &wal_path,
        ranksim_core::SyncPolicy::PerOp,
    )
    .expect("recover alloc-test engine");
    assert_eq!(report.applied, 40 + (0..200u32).step_by(7).count() as u64);
    assert_eq!(
        report.truncated_bytes, 0,
        "clean shutdown leaves no torn tail"
    );
    recovered.flush();
    let mut rscratch = recovered.snapshot().scratch();
    let mut rout = Vec::new();
    let mut rstats = QueryStats::new();
    let run_recovered_grid = |scratch: &mut _, out: &mut Vec<_>, stats: &mut _| {
        let mut total = 0usize;
        for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
            for &raw in &thetas {
                for q in &wl.queries {
                    let snap = recovered.snapshot();
                    snap.query_into(alg, q, raw, scratch, stats, out);
                    total += out.len();
                }
            }
        }
        total
    };
    let rwarm1 = run_recovered_grid(&mut rscratch, &mut rout, &mut rstats);
    let rwarm2 = run_recovered_grid(&mut rscratch, &mut rout, &mut rstats);
    assert_eq!(rwarm1, rwarm2, "deterministic workload expected");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let rmeasured = run_recovered_grid(&mut rscratch, &mut rout, &mut rstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(rmeasured, rwarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state reads on a crash-recovered engine must not touch \
         the allocator ({} allocations during the measured pass)",
        after - before
    );
    drop(recovered);
    let _ = std::fs::remove_file(&wal_path);

    // --- Snapshot-loaded engine (RSSN) --------------------------------
    //
    // A warm cold-start must land in the same steady state as the
    // engine it was saved from: `load_engine` reconstructs every arena
    // by casting over one owned buffer, and the *planner section*
    // carries the saved engine's exploration tables — so the loaded
    // engine serves `Auto` without re-exploring. Only the fresh
    // scratch/result buffers need warm-up passes; the measured pass is
    // zero-allocation, `Auto` included. (`live`'s planner is fully
    // warmed by the grids above, which is exactly what the snapshot
    // must preserve.)
    let rssn_path =
        std::env::temp_dir().join(format!("ranksim-allocfree-{}.rssn", std::process::id()));
    ranksim_core::save_engine(&rssn_path, &live, ranksim_core::SnapshotMeta::default())
        .expect("save alloc-test snapshot");
    let (warm_loaded, _) = ranksim_core::load_engine(&rssn_path, ranksim_core::LoadMode::Verify)
        .expect("load alloc-test snapshot");
    let run_loaded_grid = |scratch: &mut _, out: &mut Vec<_>, stats: &mut _| {
        let mut total = 0usize;
        for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
            for &raw in &thetas {
                for q in &wl.queries {
                    warm_loaded.query_into(alg, q, raw, scratch, stats, out);
                    total += out.len();
                }
            }
        }
        total
    };
    let mut pscratch = warm_loaded.scratch();
    let mut pout = Vec::new();
    let mut pstats = QueryStats::new();
    let pwarm1 = run_loaded_grid(&mut pscratch, &mut pout, &mut pstats);
    let pwarm2 = run_loaded_grid(&mut pscratch, &mut pout, &mut pstats);
    assert_eq!(pwarm1, pwarm2, "deterministic workload expected");
    assert_eq!(
        pwarm1, lwarm1,
        "the loaded engine must return the saved engine's result mass"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let pmeasured = run_loaded_grid(&mut pscratch, &mut pout, &mut pstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(pmeasured, pwarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state queries on a snapshot-loaded engine must not touch \
         the allocator ({} allocations during the measured pass)",
        after - before
    );
    let _ = std::fs::remove_file(&rssn_path);

    // The same contract for a snapshot-loaded *sharded* engine: the
    // manifest + per-shard files reload into per-shard engines whose
    // steady-state reads (including the id-translating merge) stay
    // zero-allocation.
    let rssn_dir =
        std::env::temp_dir().join(format!("ranksim-allocfree-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&rssn_dir);
    ranksim_core::save_sharded(&rssn_dir, &sharded).expect("save alloc-test sharded snapshot");
    let loaded_sharded = ranksim_core::load_sharded(&rssn_dir, ranksim_core::LoadMode::Verify)
        .expect("load alloc-test sharded snapshot");
    let run_loaded_sharded_grid =
        |scratch: &mut ranksim_core::ShardedScratch, out: &mut Vec<_>, stats: &mut _| {
            let mut total = 0usize;
            for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
                for &raw in &thetas {
                    for q in &wl.queries {
                        loaded_sharded.query_into(alg, q, raw, scratch, stats, out);
                        total += out.len();
                    }
                }
            }
            total
        };
    let mut qscratch = loaded_sharded.scratch();
    let mut qout = Vec::new();
    let mut qstats = QueryStats::new();
    let qwarm1 = run_loaded_sharded_grid(&mut qscratch, &mut qout, &mut qstats);
    let qwarm2 = run_loaded_sharded_grid(&mut qscratch, &mut qout, &mut qstats);
    assert_eq!(qwarm1, qwarm2, "deterministic workload expected");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let qmeasured = run_loaded_sharded_grid(&mut qscratch, &mut qout, &mut qstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(qmeasured, qwarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state queries on a snapshot-loaded sharded engine must \
         not touch the allocator ({} allocations during the measured pass)",
        after - before
    );
    let _ = std::fs::remove_dir_all(&rssn_dir);

    // --- Suffix-bound order × SIMD kernel -----------------------------
    //
    // The raw-speed configuration must keep the identical contract: the
    // rank-window scan is two `partition_point` probes into the prebuilt
    // CSR rank arrays and the chunked kernel works over the scratch's
    // flat position map, so neither may add per-query heap work — on the
    // monolith, on the sharded engine, or on a snapshot-loaded engine
    // (whose postings come back suffix-bound-ordered straight from the
    // container, never re-sorted on load). The θ grid starts at raw 0,
    // below the maximum rank displacement, so the window path (skipped
    // postings included) is genuinely exercised, and result masses must
    // match the insertion-ordered engines above bit-for-bit.
    use ranksim_invindex::PostingOrder;
    use ranksim_rankings::Kernel;

    let ds2 = nyt_like(1500, 10, 99); // same corpus as `engine`/`sharded`
    let mut xsharded_builder = ShardedEngineBuilder::new(10, 3, ShardStrategy::Hash)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .posting_order(PostingOrder::SuffixBound)
        .kernel(Kernel::Simd);
    xsharded_builder.extend_from_store(&ds2.store);
    let xsharded = xsharded_builder.build();
    let xengine = EngineBuilder::new(ds2.store)
        .coarse_threshold(0.5)
        .coarse_drop_threshold(0.06)
        .posting_order(PostingOrder::SuffixBound)
        .kernel(Kernel::Simd)
        .build();
    assert_eq!(xengine.posting_order(), PostingOrder::SuffixBound);
    assert_eq!(xengine.kernel(), Kernel::Simd);

    let run_suffix_grid = |engine: &ranksim_core::engine::Engine,
                           scratch: &mut _,
                           out: &mut Vec<_>,
                           stats: &mut QueryStats| {
        let mut total = 0usize;
        for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
            for &raw in &thetas {
                for q in &wl.queries {
                    engine.query_into(alg, q, raw, scratch, stats, out);
                    total += out.len();
                }
            }
        }
        total
    };
    let mut xscratch = xengine.scratch();
    let mut xout = Vec::new();
    let mut xstats = QueryStats::new();
    let xwarm1 = run_suffix_grid(&xengine, &mut xscratch, &mut xout, &mut xstats);
    let xwarm2 = run_suffix_grid(&xengine, &mut xscratch, &mut xout, &mut xstats);
    assert_eq!(xwarm1, xwarm2, "deterministic workload expected");
    assert_eq!(
        xwarm1,
        warm1 + awarm1,
        "suffix-bound + SIMD must return the insertion-ordered engine's \
         result mass (concrete algorithms + Auto)"
    );
    assert!(
        xstats.postings_skipped > 0,
        "the tight end of the θ grid must exercise the rank window"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let xmeasured = run_suffix_grid(&xengine, &mut xscratch, &mut xout, &mut xstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(xmeasured, xwarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state suffix-bound + SIMD queries must not touch the \
         allocator ({} allocations during the measured pass)",
        after - before
    );

    let run_xsharded_grid =
        |scratch: &mut ranksim_core::ShardedScratch, out: &mut Vec<_>, stats: &mut _| {
            let mut total = 0usize;
            for alg in Algorithm::ALL.iter().copied().chain([Algorithm::Auto]) {
                for &raw in &thetas {
                    for q in &wl.queries {
                        xsharded.query_into(alg, q, raw, scratch, stats, out);
                        total += out.len();
                    }
                }
            }
            total
        };
    let mut yscratch = xsharded.scratch();
    let mut yout = Vec::new();
    let mut ystats = QueryStats::new();
    let ywarm1 = run_xsharded_grid(&mut yscratch, &mut yout, &mut ystats);
    let ywarm2 = run_xsharded_grid(&mut yscratch, &mut yout, &mut ystats);
    assert_eq!(ywarm1, ywarm2, "deterministic workload expected");
    assert_eq!(
        ywarm1, xwarm1,
        "the suffix-bound sharded engine must return the same result mass"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let ymeasured = run_xsharded_grid(&mut yscratch, &mut yout, &mut ystats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(ymeasured, ywarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state suffix-bound + SIMD sharded queries must not touch \
         the allocator ({} allocations during the measured pass)",
        after - before
    );

    // Persist round-trip: the container stores the posting order and
    // kernel tags, so the loaded engine serves the exact configuration —
    // suffix-bound rank arrays included — without a rebuild or re-sort.
    let xrssn_path = std::env::temp_dir().join(format!(
        "ranksim-allocfree-suffix-{}.rssn",
        std::process::id()
    ));
    ranksim_core::save_engine(&xrssn_path, &xengine, ranksim_core::SnapshotMeta::default())
        .expect("save suffix-bound snapshot");
    let (xloaded, _) = ranksim_core::load_engine(&xrssn_path, ranksim_core::LoadMode::Verify)
        .expect("load suffix-bound snapshot");
    assert_eq!(
        xloaded.posting_order(),
        PostingOrder::SuffixBound,
        "the persist round-trip must preserve the posting order"
    );
    assert_eq!(
        xloaded.kernel(),
        Kernel::Simd,
        "the persist round-trip must preserve the kernel selection"
    );
    let mut zscratch = xloaded.scratch();
    let mut zout = Vec::new();
    let mut zstats = QueryStats::new();
    let zwarm1 = run_suffix_grid(&xloaded, &mut zscratch, &mut zout, &mut zstats);
    let zwarm2 = run_suffix_grid(&xloaded, &mut zscratch, &mut zout, &mut zstats);
    assert_eq!(zwarm1, zwarm2, "deterministic workload expected");
    assert_eq!(
        zwarm1, xwarm1,
        "the loaded suffix-bound engine must return the saved result mass"
    );
    assert!(
        zstats.postings_skipped > 0,
        "the loaded engine's rank window must skip postings — proof the \
         suffix ordering survived the round-trip"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let zmeasured = run_suffix_grid(&xloaded, &mut zscratch, &mut zout, &mut zstats);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(zmeasured, zwarm1);
    assert_eq!(
        after - before,
        0,
        "steady-state queries on a snapshot-loaded suffix-bound engine \
         must not touch the allocator ({} allocations during the \
         measured pass)",
        after - before
    );
    let _ = std::fs::remove_file(&xrssn_path);
}
