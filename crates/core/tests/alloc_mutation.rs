//! Mutation-path allocation guard: the allocation points of
//! `Engine::insert_ranking` / `Engine::remove_ranking` are pinned to
//! **arena growth only**. An engine whose mutation-side arenas were
//! pre-reserved (`Engine::reserve_mutations`) performs a whole
//! insert/remove sequence with zero heap allocations — removal is pure
//! state flipping, insertion appends into reserved store rows and the
//! reserved delta overlay. The same sequence without the reservation
//! must grow the arenas (the only allocations the mutation path is
//! allowed).
//!
//! The engine under test carries no top-k tree and no planner: those
//! absorb mutations into their own arenas (BK node arena, statistic
//! tables) with their own growth points, which the steady-state guard in
//! `alloc_free.rs` covers on the query side.
//!
//! This file intentionally holds a single test: the counting allocator
//! is global to the test binary, so a concurrently running test would
//! tamper with the measurement (`alloc_free.rs` owns its own binary for
//! the same reason).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use ranksim_core::engine::{Algorithm, EngineBuilder};
use ranksim_datasets::nyt_like;
use ranksim_rankings::ItemId;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn insert_and_remove_allocate_only_for_arena_growth() {
    let ds = nyt_like(600, 10, 13);
    let build = |store: ranksim_rankings::RankingStore| {
        EngineBuilder::new(store)
            .algorithms(&[Algorithm::Fv])
            .compaction_threshold(f64::INFINITY)
            .build()
    };
    let fresh_items =
        |i: u32| -> Vec<ItemId> { (0..10).map(|j| ItemId(700_000 + i * 16 + j)).collect() };
    const N: u32 = 64;

    // Un-reserved baseline: arena growth is allowed (and must happen —
    // the store rows, delta overlay and id table all outgrow their
    // build-time capacity).
    let mut engine = build(ds.store.clone());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..N {
        let id = engine.insert_ranking(&fresh_items(i));
        if i % 2 == 0 {
            engine.remove_ranking(id);
        }
    }
    let grew = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert!(grew > 0, "unreserved inserts must grow the arenas");

    // Reserved: the identical mutation sequence touches the allocator
    // zero times — every allocation point of insert/remove is arena
    // growth, and the arenas were grown up front.
    let mut engine = build(ds.store);
    let items: Vec<Vec<ItemId>> = (0..N).map(fresh_items).collect();
    engine.reserve_mutations(N as usize);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for (i, it) in items.iter().enumerate() {
        let id = engine.insert_ranking(it);
        if i % 2 == 0 {
            engine.remove_ranking(id);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "reserved insert/remove must not touch the allocator \
         ({} allocations over {N} mutations)",
        after - before
    );
    assert_eq!(engine.delta_len(), N as usize / 2);

    // Tombstoned removal of *base* rankings is pure state flipping —
    // allocation-free even without any reservation.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for id in 0..32u32 {
        assert!(engine.remove_ranking(ranksim_rankings::RankingId(id)));
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "base removals must never allocate");
}
