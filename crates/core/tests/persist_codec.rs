//! Adversarial tests of the `RSSN` snapshot container, mirroring the
//! WAL's `wal_codec` sweep: a snapshot damaged at *any* byte — flipped
//! or cut — must fail a verified load with a clean typed
//! [`PersistError`], never a panic and never a silently-wrong engine.
//! Alongside the sweep, the forward-compatibility refusals: a future
//! format version, an unknown section tag, a wrong-endian magic and a
//! snapshot/WAL position mismatch are each a distinct typed error.

use std::path::PathBuf;

use proptest::prelude::*;
use ranksim_core::engine::{Algorithm, Engine, EngineBuilder};
use ranksim_core::wal::{SyncPolicy, WalWriter};
use ranksim_core::{
    load_engine, save_engine, LoadMode, PersistError, SnapshotEngine, SnapshotMeta,
};
use ranksim_datasets::nyt_like;
use ranksim_rankings::{raw_threshold, QueryStats, RankingId};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ranksim-persistcodec-{tag}-{}.rssn",
        std::process::id()
    ))
}

/// A deliberately tiny engine that still populates **every** section of
/// the container: all four posting-list indexes, both coarse indexes,
/// the top-k BK-tree, the planner and a non-empty delta + tombstone
/// plane. Small, because the sweep is quadratic in the file length.
fn probe_engine(n: usize, seed: u64) -> Engine {
    let ds = nyt_like(n, 6, seed);
    let mut engine = EngineBuilder::new(ds.store)
        .coarse_threshold(0.4)
        .coarse_drop_threshold(0.06)
        .topk_tree(true)
        .build();
    // Touch the mutable planes so DELTA carries real data.
    let donor = engine.store().items(RankingId(0)).to_vec();
    engine.insert_ranking(&donor);
    engine.remove_ranking(RankingId(1));
    // One Auto query seeds the planner's observation tables.
    let mut scratch = engine.scratch();
    let mut stats = QueryStats::new();
    let q = engine.store().items(RankingId(2)).to_vec();
    engine.query_items(
        Algorithm::Auto,
        &q,
        raw_threshold(0.2, 6),
        &mut scratch,
        &mut stats,
    );
    engine
}

/// Saves the probe engine once and returns its raw container bytes.
fn probe_snapshot(tag: &str) -> (Vec<u8>, PathBuf) {
    let path = temp_path(tag);
    let engine = probe_engine(32, 11);
    save_engine(
        &path,
        &engine,
        SnapshotMeta {
            log_pos: 7,
            wal_base: 3,
        },
    )
    .expect("save probe snapshot");
    let bytes = std::fs::read(&path).expect("read probe snapshot back");
    (bytes, path)
}

/// Every single-byte flip (single-bit and whole-byte masks) must fail a
/// verified load with a typed error: the container's tiling rule leaves
/// no byte uncovered — header and table bytes are structurally pinned,
/// pad bytes must be zero, payload bytes are checksummed.
#[test]
fn flipping_any_byte_fails_a_verified_load() {
    let (bytes, path) = probe_snapshot("flip");
    for mask in [0x01u8, 0xFF] {
        for offset in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[offset] ^= mask;
            std::fs::write(&path, &damaged).unwrap();
            match load_engine(&path, LoadMode::Verify) {
                Err(e) => {
                    // The error must render (no Display panic) and stay
                    // typed — an Io error here would mean the parser
                    // leaked a raw read failure for in-bounds damage.
                    let msg = e.to_string();
                    assert!(!msg.is_empty());
                    assert!(
                        !matches!(e, PersistError::Io(_)),
                        "flip at {offset} (mask {mask:#04x}) surfaced as raw I/O: {msg}"
                    );
                }
                Ok(_) => panic!(
                    "flip at {offset} (mask {mask:#04x}) of {} bytes loaded silently",
                    bytes.len()
                ),
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// Every truncation point must fail a verified load with a typed error:
/// the final section's padded end is required to equal the file length,
/// so even a cut falling on a section boundary is caught.
#[test]
fn cutting_the_snapshot_at_any_length_fails_a_verified_load() {
    let (bytes, path) = probe_snapshot("cut");
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match load_engine(&path, LoadMode::Verify) {
            Err(e) => {
                let _ = e.to_string();
            }
            Ok(_) => panic!("cut at {cut} of {} bytes loaded silently", bytes.len()),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random multi-byte damage (the sweep's single-flip guarantee does
    /// not automatically compose): any combination of flips must still
    /// fail a verified load or — only when every flip cancels out —
    /// load the identical engine. `proptest` picks offsets and masks.
    #[test]
    fn random_multi_byte_damage_never_loads_silently(
        flips in proptest::collection::vec(0u32..u32::MAX, 1..8),
        tag in 0u32..1_000_000,
    ) {
        let (bytes, path) = probe_snapshot(&format!("multi-{tag}"));
        let mut damaged = bytes.clone();
        for token in &flips {
            // Low bits pick the offset, high byte the (non-zero) mask.
            let mask = ((token >> 24) as u8).max(1);
            damaged[(token & 0x00FF_FFFF) as usize % bytes.len()] ^= mask;
        }
        std::fs::write(&path, &damaged).unwrap();
        let outcome = load_engine(&path, LoadMode::Verify);
        std::fs::remove_file(&path).unwrap();
        match outcome {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(_) => prop_assert_eq!(
                damaged, bytes,
                "damaged container loaded although bytes differ"
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Forward/negative compatibility: each refusal is a distinct typed error
// ---------------------------------------------------------------------

#[test]
fn future_format_version_is_refused_by_name() {
    let (mut bytes, path) = probe_snapshot("future-version");
    // Bytes 4..8 are the little-endian format version.
    bytes[4..8].copy_from_slice(&3u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match load_engine(&path, LoadMode::Verify) {
        Err(PersistError::UnsupportedVersion(3)) => {}
        Err(other) => panic!("expected UnsupportedVersion(3), got {other:?}"),
        Ok(_) => panic!("future version must not load"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn unknown_section_tag_is_refused_by_tag() {
    let (mut bytes, path) = probe_snapshot("unknown-section");
    // Bytes 16..20 are the first section-table entry's tag.
    bytes[16..20].copy_from_slice(&999u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match load_engine(&path, LoadMode::Verify) {
        Err(PersistError::UnknownSection(999)) => {}
        Err(other) => panic!("expected UnknownSection(999), got {other:?}"),
        Ok(_) => panic!("unknown section must not load"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn wrong_endian_magic_is_called_out() {
    let (mut bytes, path) = probe_snapshot("endian");
    bytes[0..4].copy_from_slice(b"NSSR"); // the magic, byte-swapped
    std::fs::write(&path, &bytes).unwrap();
    match load_engine(&path, LoadMode::Verify) {
        Err(
            e @ PersistError::BadMagic {
                byte_swapped: true, ..
            },
        ) => {
            let msg = e.to_string();
            assert!(msg.contains("endian"), "message must explain: {msg}");
        }
        Err(other) => panic!("expected byte-swapped BadMagic, got {other:?}"),
        Ok(_) => panic!("byte-swapped magic must not load"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshot_ahead_of_its_wal_is_a_typed_mismatch() {
    let snap_path = temp_path("wal-mismatch");
    let wal_path = std::env::temp_dir().join(format!(
        "ranksim-persistcodec-wal-mismatch-{}.wal",
        std::process::id()
    ));
    // A snapshot claiming 9 logged mutations over an empty WAL: the
    // missing tail is unrecoverable and must be refused, not guessed.
    let engine = probe_engine(32, 5);
    save_engine(
        &snap_path,
        &engine,
        SnapshotMeta {
            log_pos: 9,
            wal_base: 0,
        },
    )
    .expect("save snapshot");
    drop(WalWriter::create(&wal_path, SyncPolicy::None).expect("create empty WAL"));
    match SnapshotEngine::recover_from_snapshot(
        &snap_path,
        &wal_path,
        SyncPolicy::None,
        LoadMode::Verify,
    ) {
        Err(PersistError::WalMismatch { detail }) => {
            assert!(detail.contains("0 valid records"), "detail: {detail}");
        }
        Err(other) => panic!("expected WalMismatch, got {other:?}"),
        Ok(_) => panic!("snapshot ahead of its WAL must not recover"),
    }
    let _ = std::fs::remove_file(&snap_path);
    let _ = std::fs::remove_file(&wal_path);
}

/// A snapshot whose recorded position *precedes* the WAL base points at
/// a WAL that was truncated past it; recovery must refuse it.
#[test]
fn snapshot_behind_the_wal_base_is_a_typed_mismatch() {
    let snap_path = temp_path("wal-behind");
    let wal_path = std::env::temp_dir().join(format!(
        "ranksim-persistcodec-wal-behind-{}.wal",
        std::process::id()
    ));
    let engine = probe_engine(32, 6);
    save_engine(
        &snap_path,
        &engine,
        SnapshotMeta {
            log_pos: 2,
            wal_base: 5,
        },
    )
    .expect("save snapshot");
    drop(WalWriter::create(&wal_path, SyncPolicy::None).expect("create empty WAL"));
    match SnapshotEngine::recover_from_snapshot(
        &snap_path,
        &wal_path,
        SyncPolicy::None,
        LoadMode::Verify,
    ) {
        Err(PersistError::WalMismatch { detail }) => {
            assert!(detail.contains("precedes"), "detail: {detail}");
        }
        Err(other) => panic!("expected WalMismatch, got {other:?}"),
        Ok(_) => panic!("snapshot behind the WAL base must not recover"),
    }
    let _ = std::fs::remove_file(&snap_path);
    let _ = std::fs::remove_file(&wal_path);
}
