//! Adversarial tests of the WAL record codec and the torn-tail scan
//! rule, independent of the engine: arbitrary op sequences must
//! round-trip bit-exactly, and a log damaged at *any* byte — flipped or
//! cut — must scan to a strict prefix of the original ops, without a
//! panic and without ever surfacing a corrupt record.

use std::path::PathBuf;

use proptest::prelude::*;
use ranksim_core::wal::{decode_op, encode_op, read_wal, LogOp, SyncPolicy, WalError, WalWriter};
use ranksim_rankings::{ItemId, RankingId};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ranksim-walcodec-{tag}-{}", std::process::id()))
}

/// Folds a flat token stream into an op sequence: each token picks an
/// op kind and supplies its id, then consumes following tokens as the
/// item payload. Deterministic, so proptest's seed replay reproduces
/// the exact sequence.
fn ops_from_tokens(mut tokens: &[u32]) -> Vec<LogOp> {
    let mut ops = Vec::new();
    while let Some((&t, rest)) = tokens.split_first() {
        tokens = rest;
        let op = match t % 4 {
            0 | 1 => {
                let want = (t / 4 % 11) as usize; // 0..=10 items
                let take = want.min(tokens.len());
                let items: Vec<ItemId> = tokens[..take].iter().map(|&v| ItemId(v)).collect();
                tokens = &tokens[take..];
                let id = RankingId(t / 64);
                if t % 4 == 0 {
                    LogOp::Insert { id, items }
                } else {
                    LogOp::InsertAt { id, items }
                }
            }
            2 => LogOp::Remove(RankingId(t / 4)),
            _ => LogOp::Compact,
        };
        ops.push(op);
    }
    ops
}

/// Byte offset where each record starts, plus the end of the log —
/// the ground truth for "a flip at offset X damages record R".
fn record_boundaries(ops: &[LogOp]) -> Vec<usize> {
    let mut bounds = vec![8usize]; // file header
    let mut payload = Vec::new();
    for op in ops {
        payload.clear();
        encode_op(op, &mut payload);
        bounds.push(bounds.last().unwrap() + 8 + payload.len());
    }
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Payload-level codec round-trip for arbitrary op sequences.
    #[test]
    fn encode_decode_round_trips_arbitrary_ops(
        tokens in proptest::collection::vec(0u32..u32::MAX, 0..64),
    ) {
        let mut payload = Vec::new();
        for op in ops_from_tokens(&tokens) {
            payload.clear();
            encode_op(&op, &mut payload);
            prop_assert_eq!(decode_op(&payload), Some(op));
        }
    }

    /// File-level round-trip: what the writer appends is exactly what
    /// the scan returns, with nothing truncated.
    #[test]
    fn wal_file_round_trips_arbitrary_sequences(
        tokens in proptest::collection::vec(0u32..u32::MAX, 0..48),
        tag in 0u32..1_000_000,
    ) {
        let ops = ops_from_tokens(&tokens);
        let path = temp_path(&format!("roundtrip-{tag}"));
        {
            let mut w = WalWriter::create(&path, SyncPolicy::None).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
            w.sync().unwrap();
        }
        let scan = read_wal(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(&scan.ops, &ops);
        prop_assert_eq!(scan.truncated_bytes, 0);
        prop_assert_eq!(scan.valid_bytes, file_len);
    }
}

/// Writes a representative log once and returns (ops, raw file bytes).
fn build_probe_log(tag: &str) -> (Vec<LogOp>, Vec<u8>, PathBuf) {
    // Tokens chosen to cover all four op kinds and several item sizes.
    let tokens: Vec<u32> = (0..48u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let ops = ops_from_tokens(&tokens);
    assert!(ops.len() >= 8, "probe log must hold several records");
    let path = temp_path(tag);
    let mut w = WalWriter::create(&path, SyncPolicy::None).unwrap();
    for op in &ops {
        w.append(op).unwrap();
    }
    w.sync().unwrap();
    drop(w);
    let bytes = std::fs::read(&path).unwrap();
    (ops, bytes, path)
}

/// Flip every byte of the log (two masks: single-bit and whole-byte):
/// the scan must never panic, must reject a damaged header outright,
/// and must otherwise return exactly the records before the damaged
/// one — a corrupt record is never surfaced, under any flip.
#[test]
fn flipping_any_byte_yields_a_strict_prefix_never_a_panic() {
    let (ops, bytes, path) = build_probe_log("flip");
    let bounds = record_boundaries(&ops);
    assert_eq!(*bounds.last().unwrap(), bytes.len());

    for mask in [0x01u8, 0xFF] {
        for offset in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[offset] ^= mask;
            std::fs::write(&path, &damaged).unwrap();
            if offset < 8 {
                match read_wal(&path) {
                    Err(WalError::BadHeader) => {}
                    other => panic!(
                        "header flip at {offset} (mask {mask:#04x}): expected BadHeader, got {other:?}"
                    ),
                }
                continue;
            }
            let scan = read_wal(&path).unwrap_or_else(|e| {
                panic!("flip at {offset} (mask {mask:#04x}) errored the scan: {e}")
            });
            // The record whose bytes contain `offset` is the first casualty.
            let damaged_record = bounds.iter().take_while(|&&b| b <= offset).count() - 1;
            assert_eq!(
                scan.ops,
                ops[..damaged_record],
                "flip at {offset} (mask {mask:#04x}) must cut at record {damaged_record}"
            );
            assert_eq!(scan.valid_bytes as usize, bounds[damaged_record]);
            assert!(scan.truncated_bytes > 0, "damage at {offset} must truncate");
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// Cut the log at every length: short files are a bad header, longer
/// cuts recover exactly the records that fit before the cut.
#[test]
fn cutting_the_log_at_any_length_recovers_the_complete_records() {
    let (ops, bytes, path) = build_probe_log("cut");
    let bounds = record_boundaries(&ops);

    for cut in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        if cut < 8 {
            assert!(
                matches!(read_wal(&path), Err(WalError::BadHeader)),
                "a {cut}-byte file is not a WAL"
            );
            continue;
        }
        let scan = read_wal(&path).unwrap_or_else(|e| panic!("cut at {cut} errored: {e}"));
        let complete = bounds.iter().take_while(|&&b| b <= cut).count() - 1;
        assert_eq!(scan.ops, ops[..complete], "cut at {cut}");
        assert_eq!(scan.valid_bytes as usize, bounds[complete]);
        assert_eq!(scan.truncated_bytes as usize, cut - bounds[complete]);
    }
    std::fs::remove_file(&path).unwrap();
}
