//! Work-stealing batch driver under adversarial skew.
//!
//! The old driver split a batch into `threads` equal *static* chunks, so
//! a batch whose expensive queries all land in one chunk serialized on a
//! single worker while the others finished instantly and idled. These
//! tests build exactly that batch — every pathological query inside what
//! would have been worker 0's chunk — and assert the stealing driver
//! (a) completes with bit-identical results and merged stats, and
//! (b) spreads the work: **every** worker claims queries (workers
//! rendezvous on a barrier before the first claim, and each heavy query
//! is orders of magnitude longer than a claim, so no worker can miss the
//! whole drain).

use ranksim_core::engine::{Algorithm, EngineBuilder};
use ranksim_core::merge_reports;
use ranksim_datasets::nyt_like;
use ranksim_rankings::{raw_threshold, ItemId, QueryStats};

/// The corpus's `k` most / least frequent items as a query ranking:
/// popular items have the longest postings lists, so the "heavy" query
/// touches a large slice of the corpus while the "light" one touches
/// almost nothing.
fn frequency_extreme_queries(
    store: &ranksim_rankings::RankingStore,
    domain: u32,
) -> (Vec<ItemId>, Vec<ItemId>) {
    let mut freq = vec![0u32; domain as usize];
    for id in store.ids() {
        for item in store.items(id) {
            freq[item.0 as usize] += 1;
        }
    }
    let mut by_freq: Vec<u32> = (0..domain).collect();
    by_freq.sort_unstable_by_key(|&i| std::cmp::Reverse(freq[i as usize]));
    let k = store.k();
    let heavy: Vec<ItemId> = by_freq[..k].iter().map(|&i| ItemId(i)).collect();
    let light: Vec<ItemId> = by_freq[by_freq.len() - k..]
        .iter()
        .map(|&i| ItemId(i))
        .collect();
    (heavy, light)
}

#[test]
fn stealing_balances_an_adversarially_skewed_batch() {
    let ds = nyt_like(40_000, 10, 4242);
    let domain = ds.params.domain;
    let engine = EngineBuilder::new(ds.store)
        .algorithms(&[Algorithm::Fv])
        .build();
    let (heavy, light) = frequency_extreme_queries(engine.store(), domain);

    // 4 workers, 48 queries: the old static split gave worker 0 queries
    // 0..12 — exactly the 12 pathological ones below. The other 36 are
    // near-free, so static chunking serialized ~all of the batch.
    let threads = 4usize;
    let mut queries: Vec<Vec<ItemId>> = vec![heavy; 12];
    queries.extend(std::iter::repeat_n(light, 36));
    let theta = raw_threshold(0.3, 10);

    let (results, reports) = engine.query_batch_reported(Algorithm::Fv, &queries, theta, threads);

    // Completion + correctness: bit-identical to sequential processing.
    assert_eq!(results.len(), queries.len());
    let mut scratch = engine.scratch();
    let mut seq_stats = QueryStats::new();
    for (qi, q) in queries.iter().enumerate() {
        let expect = engine.query_items(Algorithm::Fv, q, theta, &mut scratch, &mut seq_stats);
        assert_eq!(results[qi], expect, "query {qi}");
    }
    let mut heavy_stats = QueryStats::new();
    let mut light_stats = QueryStats::new();
    engine.query_items(
        Algorithm::Fv,
        &queries[0],
        theta,
        &mut scratch,
        &mut heavy_stats,
    );
    engine.query_items(
        Algorithm::Fv,
        &queries[47],
        theta,
        &mut scratch,
        &mut light_stats,
    );
    assert!(
        heavy_stats.entries_scanned > 100 * light_stats.entries_scanned.max(1),
        "the heavy query must dominate the light one for the skew to be real \
         ({} vs {} postings scanned)",
        heavy_stats.entries_scanned,
        light_stats.entries_scanned
    );

    // Balance: every worker exists, claims work, and the claims cover
    // the batch exactly once.
    assert_eq!(reports.len(), threads);
    let claimed: u64 = reports.iter().map(|r| r.queries).sum();
    assert_eq!(claimed as usize, queries.len());
    for (w, r) in reports.iter().enumerate() {
        assert!(
            r.queries > 0,
            "worker {w} never stole a query (shares: {:?})",
            reports.iter().map(|r| r.queries).collect::<Vec<_>>()
        );
    }
    // No worker got stuck with the whole batch either.
    let max_share = reports.iter().map(|r| r.queries).max().unwrap();
    assert!(
        (max_share as usize) < queries.len(),
        "one worker processed the entire batch"
    );

    // Per-worker stats fold into exactly the sequential stats.
    assert_eq!(merge_reports(&reports), seq_stats);
}

/// The (query × shard) split: a batch of ONE expensive query on a
/// 4-shard engine fans out into 4 tasks, so multiple workers share the
/// single query instead of one worker serializing it — with results
/// bit-identical to sequential sharded processing. Claim counts are
/// scheduler-dependent, so the ≥2-workers assertion gets bounded
/// retries; the task accounting (1 query × 4 shards = 4 claims) and the
/// result set are deterministic and checked every attempt.
#[test]
fn one_heavy_query_splits_across_workers() {
    use ranksim_core::{ShardStrategy, ShardedEngineBuilder};

    let ds = nyt_like(20_000, 10, 999);
    let domain = ds.params.domain;
    let shards = 4usize;
    let mut builder =
        ShardedEngineBuilder::new(10, shards, ShardStrategy::Hash).algorithms(&[Algorithm::Fv]);
    builder.extend_from_store(&ds.store);
    let se = builder.build();
    assert!(
        se.shard_sizes().iter().all(|&s| s > 0),
        "every shard must be populated for the 4-task split"
    );
    let (heavy, _) = frequency_extreme_queries(&ds.store, domain);
    let theta = raw_threshold(0.6, 10);

    let mut scratch = se.scratch();
    let mut seq_stats = QueryStats::new();
    let expect = se.query_items(Algorithm::Fv, &heavy, theta, &mut scratch, &mut seq_stats);
    assert!(!expect.is_empty(), "the heavy query must have matches");

    let mut split_seen = false;
    for attempt in 0..10 {
        let (results, reports) =
            se.query_batch_reported(Algorithm::Fv, std::slice::from_ref(&heavy), theta, shards);
        // Deterministic every attempt: the one query's merged result is
        // bit-identical to sequential processing, and exactly
        // 1 query × 4 shards = 4 tasks were claimed in total.
        assert_eq!(results.len(), 1);
        assert_eq!(results[0], expect, "attempt {attempt}");
        assert_eq!(reports.len(), shards);
        let claimed: u64 = reports.iter().map(|r| r.queries).sum();
        assert_eq!(claimed as usize, shards, "1 query × {shards} shards");
        assert_eq!(merge_reports(&reports), seq_stats);
        // Scheduler-dependent: at least two workers took a slice of the
        // single query.
        if reports.iter().filter(|r| r.queries > 0).count() >= 2 {
            split_seen = true;
            break;
        }
    }
    assert!(
        split_seen,
        "one worker claimed all 4 (query, shard) tasks in every one of 10 attempts"
    );
}

#[test]
fn worker_count_never_exceeds_the_batch() {
    let ds = nyt_like(500, 10, 7);
    let engine = EngineBuilder::new(ds.store)
        .algorithms(&[Algorithm::ListMerge])
        .build();
    let q: Vec<ItemId> = engine
        .store()
        .items(ranksim_rankings::RankingId(0))
        .to_vec();
    let theta = raw_threshold(0.1, 10);
    let (results, reports) =
        engine.query_batch_reported(Algorithm::ListMerge, &[q.clone(), q], theta, 16);
    assert_eq!(results.len(), 2);
    assert_eq!(reports.len(), 2, "two queries cap the pool at two workers");
    let (results, reports) = engine.query_batch_reported(Algorithm::ListMerge, &[], theta, 16);
    assert!(results.is_empty());
    assert!(reports.is_empty());
}
