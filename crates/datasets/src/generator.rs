//! The parameterized corpus generator behind the NYT-like and Yago-like
//! presets.

use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksim_rankings::{ItemId, RankingStore};

/// Parameters of [`ClusteredZipfGenerator`].
#[derive(Debug, Clone)]
pub struct GeneratorParams {
    /// Human-readable dataset name (appears in reports).
    pub name: String,
    /// Number of rankings.
    pub n: usize,
    /// Ranking size.
    pub k: usize,
    /// Item-domain size `v`.
    pub domain: u32,
    /// Zipf exponent of item popularity.
    pub zipf_s: f64,
    /// Number of cluster seed rankings.
    pub num_seeds: usize,
    /// Fraction of rankings generated as perturbations of a seed.
    pub cluster_fraction: f64,
    /// Maximum adjacent-swap perturbations applied to a cluster member.
    pub max_swaps: usize,
    /// Probability that a cluster member additionally replaces one item.
    pub replace_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A generated corpus plus its provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. `nyt-like(n=100000,k=10)`).
    pub name: String,
    /// The rankings.
    pub store: RankingStore,
    /// The parameters that produced it.
    pub params: GeneratorParams,
}

/// Generates corpora as a mixture of fresh Zipf-sampled rankings and
/// perturbed copies of a pool of seed rankings, yielding the popularity
/// skew and the near-duplicate cluster structure of the paper's datasets.
#[derive(Debug, Clone)]
pub struct ClusteredZipfGenerator {
    params: GeneratorParams,
}

impl ClusteredZipfGenerator {
    /// A generator for the given parameters.
    pub fn new(params: GeneratorParams) -> Self {
        assert!(params.k > 0 && params.domain as usize >= params.k);
        assert!((0.0..=1.0).contains(&params.cluster_fraction));
        ClusteredZipfGenerator { params }
    }

    /// Streams the corpus ranking-by-ranking into `sink` without
    /// materializing a monolithic store — the builder behind sharded
    /// paper-scale corpora (1M rankings stream straight into per-shard
    /// stores). The ranking sequence is identical to
    /// [`ClusteredZipfGenerator::generate`]'s under the same parameters;
    /// the `&[ItemId]` slice is only valid for the duration of one
    /// callback.
    pub fn for_each<F: FnMut(&[ItemId])>(&self, mut sink: F) {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);
        let zipf = ZipfSampler::new(p.domain, p.zipf_s);

        // Seed pool: fresh Zipf-sampled rankings.
        let num_seeds = p.num_seeds.clamp(1, p.n.max(1));
        let seeds: Vec<Vec<u32>> = (0..num_seeds)
            .map(|_| zipf.sample_distinct(p.k, &mut rng))
            .collect();

        let mut scratch: Vec<u32> = Vec::with_capacity(p.k);
        let mut items: Vec<ItemId> = Vec::with_capacity(p.k);
        for _ in 0..p.n {
            scratch.clear();
            if rng.random_bool(p.cluster_fraction) {
                // Cluster member: perturb a seed.
                let s = &seeds[rng.random_range(0..seeds.len())];
                scratch.extend_from_slice(s);
                let swaps = rng.random_range(0..=p.max_swaps);
                for _ in 0..swaps {
                    let a = rng.random_range(0..p.k.saturating_sub(1));
                    scratch.swap(a, a + 1);
                }
                if rng.random_bool(p.replace_prob) {
                    let pos = rng.random_range(0..p.k);
                    loop {
                        let cand = zipf.sample(&mut rng);
                        if !scratch.contains(&cand) {
                            scratch[pos] = cand;
                            break;
                        }
                    }
                }
            } else {
                scratch.extend(zipf.sample_distinct(p.k, &mut rng));
            }
            items.clear();
            items.extend(scratch.iter().map(|&i| ItemId(i)));
            sink(&items);
        }
    }

    /// Produces the corpus (deterministic under `params.seed`).
    pub fn generate(&self) -> Dataset {
        let p = &self.params;
        let mut store = RankingStore::with_capacity(p.k, p.n);
        self.for_each(|items| {
            store.push_items_unchecked(items);
        });
        Dataset {
            name: p.name.clone(),
            store,
            params: self.params.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(cluster_fraction: f64) -> GeneratorParams {
        GeneratorParams {
            name: "test".into(),
            n: 600,
            k: 8,
            domain: 300,
            zipf_s: 0.8,
            num_seeds: 12,
            cluster_fraction,
            max_swaps: 2,
            replace_prob: 0.3,
            seed: 5,
        }
    }

    #[test]
    fn all_rankings_valid() {
        let ds = ClusteredZipfGenerator::new(small_params(0.6)).generate();
        assert_eq!(ds.store.len(), 600);
        for id in ds.store.ids() {
            let items = ds.store.items(id);
            assert_eq!(items.len(), 8);
            let mut sorted: Vec<ItemId> = items.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "duplicate item inside a ranking");
            assert!(items.iter().all(|i| i.0 < 300));
        }
    }

    #[test]
    fn streaming_and_materialized_generation_agree() {
        let generator = ClusteredZipfGenerator::new(small_params(0.7));
        let ds = generator.generate();
        let mut streamed: Vec<Vec<ItemId>> = Vec::new();
        generator.for_each(|items| streamed.push(items.to_vec()));
        assert_eq!(streamed.len(), ds.store.len());
        for (i, items) in streamed.iter().enumerate() {
            assert_eq!(
                items.as_slice(),
                ds.store.items(ranksim_rankings::RankingId(i as u32)),
                "ranking {i} diverged between streaming and materialized paths"
            );
        }
    }

    #[test]
    fn clustering_knob_controls_duplicate_mass() {
        // More clustering ⇒ more exact-duplicate or near-duplicate pairs.
        let tight = ClusteredZipfGenerator::new(small_params(0.9)).generate();
        let loose = ClusteredZipfGenerator::new(small_params(0.0)).generate();
        let close_pairs = |store: &RankingStore| {
            let mut c = 0usize;
            for i in 0..200u32 {
                for j in (i + 1)..200u32 {
                    let d = ranksim_rankings::footrule_store(
                        store,
                        ranksim_rankings::RankingId(i),
                        ranksim_rankings::RankingId(j),
                    );
                    if d <= store.max_distance() / 6 {
                        c += 1;
                    }
                }
            }
            c
        };
        assert!(close_pairs(&tight.store) > close_pairs(&loose.store));
    }
}
