//! Synthetic ranking corpora and query workloads.
//!
//! The paper evaluates on two datasets that cannot be redistributed:
//! **NYT** (1M web-search-result rankings over the licensed New York Times
//! Annotated Corpus) and **Yago** (25k entity rankings mined from the Yago
//! knowledge base). This crate generates seeded synthetic substitutes that
//! preserve the two properties the paper's analysis and algorithms are
//! sensitive to (see DESIGN.md §3):
//!
//! 1. **Item-popularity skew** — item frequencies follow Zipf's law; the
//!    authors measured `s ≈ 0.87` on NYT (few hugely popular documents)
//!    and `s ≈ 0.53` on Yago (near-uniform entities).
//! 2. **Near-duplicate cluster structure** — NYT-style query logs repeat
//!    queries with small variations, producing many rankings within small
//!    Footrule distance of each other; Yago produces small, tight,
//!    mutually distant clusters.
//!
//! [`nyt_like`] and [`yago_like`] are presets of the parameterized
//! [`ClusteredZipfGenerator`]; [`workload()`] derives query sets by lightly
//! perturbing corpus rankings (queries in the paper come from the same
//! distribution as the data).

pub mod generator;
pub mod workload;
pub mod zipf;

pub use generator::{ClusteredZipfGenerator, Dataset, GeneratorParams};
pub use workload::{perturb_ranking, PerturbParams};
pub use workload::{workload, Workload, WorkloadParams};
pub use zipf::{estimate_zipf_s, ZipfSampler};

/// Parameters of the NYT-like preset (see [`nyt_like`]); exposed so
/// paper-scale corpora can be **streamed** through
/// [`ClusteredZipfGenerator::for_each`] instead of materialized.
pub fn nyt_like_params(n: usize, k: usize, seed: u64) -> GeneratorParams {
    GeneratorParams {
        name: format!("nyt-like(n={n},k={k})"),
        n,
        k,
        // One result-list slot per distinct query on average; the Zipf
        // head still puts popular documents into thousands of rankings.
        domain: (n.max(40 * k)) as u32,
        zipf_s: 0.87,
        // Query logs repeat heavily: large near-duplicate clusters.
        num_seeds: (n / 100).max(1),
        cluster_fraction: 0.8,
        max_swaps: 3,
        replace_prob: 0.4,
        seed,
    }
}

/// Parameters of the Yago-like preset (see [`yago_like`]).
pub fn yago_like_params(n: usize, k: usize, seed: u64) -> GeneratorParams {
    GeneratorParams {
        name: format!("yago-like(n={n},k={k})"),
        n,
        k,
        // Entities occur in few rankings: domain on the order of n.
        domain: (n.max(4 * k)) as u32,
        zipf_s: 0.53,
        num_seeds: (n / 20).max(1),
        cluster_fraction: 0.55,
        max_swaps: 2,
        replace_prob: 0.25,
        seed,
    }
}

/// The paper's NYT dataset, scaled: web-search-result rankings with
/// strongly skewed document popularity (`s = 0.87`) and heavy
/// near-duplicate clustering. `n` is configurable because the original has
/// 1M rankings — the benches default to 100k on laptop budgets.
pub fn nyt_like(n: usize, k: usize, seed: u64) -> Dataset {
    ClusteredZipfGenerator::new(nyt_like_params(n, k, seed)).generate()
}

/// The paper's Yago dataset, at original scale by default (25k rankings):
/// entity rankings with near-uniform item popularity (`s = 0.53`), a large
/// item domain relative to `n`, and small tight clusters.
pub fn yago_like(n: usize, k: usize, seed: u64) -> Dataset {
    ClusteredZipfGenerator::new(yago_like_params(n, k, seed)).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_rankings::footrule_store;

    #[test]
    fn presets_generate_requested_sizes() {
        let nyt = nyt_like(2000, 10, 1);
        assert_eq!(nyt.store.len(), 2000);
        assert_eq!(nyt.store.k(), 10);
        let yago = yago_like(1500, 10, 2);
        assert_eq!(yago.store.len(), 1500);
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let a = nyt_like(500, 8, 42);
        let b = nyt_like(500, 8, 42);
        for id in a.store.ids() {
            assert_eq!(a.store.items(id), b.store.items(id));
        }
        let c = nyt_like(500, 8, 43);
        let differs = c
            .store
            .ids()
            .any(|id| a.store.items(id) != c.store.items(id));
        assert!(differs, "different seeds must differ");
    }

    #[test]
    fn nyt_like_is_more_skewed_than_yago_like() {
        let nyt = nyt_like(4000, 10, 7);
        let yago = yago_like(4000, 10, 7);
        let s_nyt = estimate_zipf_s(&nyt.store);
        let s_yago = estimate_zipf_s(&yago.store);
        assert!(
            s_nyt > s_yago,
            "measured skew: nyt {s_nyt:.3} vs yago {s_yago:.3}"
        );
    }

    #[test]
    fn nyt_like_contains_near_duplicates() {
        // The clustering property: a decent share of consecutive-cluster
        // rankings lie within a small Footrule radius of another ranking.
        let ds = nyt_like(1500, 10, 3);
        let max_d = ds.store.max_distance();
        let mut close = 0usize;
        let probe = 200usize;
        for i in 0..probe {
            let a = ranksim_rankings::RankingId(i as u32);
            let near = ds
                .store
                .ids()
                .filter(|&b| b != a)
                .any(|b| footrule_store(&ds.store, a, b) <= max_d / 5);
            if near {
                close += 1;
            }
        }
        assert!(
            close > probe / 4,
            "only {close}/{probe} rankings have a near neighbour"
        );
    }
}
