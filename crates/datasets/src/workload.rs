//! Query workloads.
//!
//! The paper measures wall-clock time for batches of 1000 ad-hoc queries
//! whose rankings come from the same distribution as the data. We derive
//! queries by sampling corpus rankings and perturbing them lightly — near
//! the data but rarely identical, so result sets are non-trivial at small
//! thresholds and grow with θ.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksim_rankings::{ItemId, RankingId, RankingStore};

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Number of queries.
    pub num_queries: usize,
    /// Maximum adjacent swaps applied to a sampled ranking.
    pub max_swaps: usize,
    /// Probability of replacing one item with a fresh domain item.
    pub replace_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            num_queries: 1000,
            max_swaps: 3,
            replace_prob: 0.5,
            seed: 0xC0FFEE,
        }
    }
}

/// A set of query rankings.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Query rankings (each of the corpus's size k).
    pub queries: Vec<Vec<ItemId>>,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The light perturbation applied to a base ranking to derive a query
/// from it (shared by [`workload`] and streaming query derivation, where
/// no monolithic store exists to sample bases from).
#[derive(Debug, Clone, Copy)]
pub struct PerturbParams {
    /// Maximum adjacent swaps.
    pub max_swaps: usize,
    /// Probability of replacing one item with a fresh domain item.
    pub replace_prob: f64,
}

/// Perturbs `items` in place: up to `max_swaps` adjacent swaps plus an
/// optional single-item replacement drawn from `0..domain` (distinctness
/// preserved). Deterministic under the caller's RNG state.
pub fn perturb_ranking(items: &mut [ItemId], domain: u32, params: PerturbParams, rng: &mut StdRng) {
    let k = items.len();
    let swaps = rng.random_range(0..=params.max_swaps);
    for _ in 0..swaps {
        let a = rng.random_range(0..k.saturating_sub(1));
        items.swap(a, a + 1);
    }
    if rng.random_bool(params.replace_prob) {
        let pos = rng.random_range(0..k);
        loop {
            let cand = ItemId(rng.random_range(0..domain));
            if !items.contains(&cand) {
                items[pos] = cand;
                break;
            }
        }
    }
}

/// Derives a workload from a corpus (deterministic under `params.seed`).
///
/// `domain` bounds the fresh items used for replacements; pass the
/// generator's domain so query items stay inside the corpus vocabulary.
pub fn workload(store: &RankingStore, domain: u32, params: WorkloadParams) -> Workload {
    assert!(
        !store.is_empty(),
        "cannot derive queries from an empty corpus"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let perturb = PerturbParams {
        max_swaps: params.max_swaps,
        replace_prob: params.replace_prob,
    };
    let queries = (0..params.num_queries)
        .map(|_| {
            let base = RankingId(rng.random_range(0..store.len() as u32));
            let mut items: Vec<ItemId> = store.items(base).to_vec();
            perturb_ranking(&mut items, domain, perturb, &mut rng);
            items
        })
        .collect();
    Workload { queries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nyt_like;
    use ranksim_rankings::PositionMap;

    #[test]
    fn queries_are_valid_rankings() {
        let ds = nyt_like(800, 10, 11);
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 50,
                ..Default::default()
            },
        );
        assert_eq!(wl.len(), 50);
        for q in &wl.queries {
            assert_eq!(q.len(), 10);
            let mut s = q.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10, "duplicate item in query");
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let ds = nyt_like(500, 8, 3);
        let p = WorkloadParams {
            num_queries: 20,
            seed: 9,
            ..Default::default()
        };
        let a = workload(&ds.store, ds.params.domain, p);
        let b = workload(&ds.store, ds.params.domain, p);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn queries_have_nearby_corpus_rankings() {
        // Perturbed queries should find something at moderate thresholds.
        let ds = nyt_like(1000, 10, 5);
        let wl = workload(
            &ds.store,
            ds.params.domain,
            WorkloadParams {
                num_queries: 40,
                ..Default::default()
            },
        );
        let theta = ranksim_rankings::raw_threshold(0.3, 10);
        let mut nonempty = 0usize;
        for q in &wl.queries {
            let qmap = PositionMap::new(q);
            if ds
                .store
                .ids()
                .any(|id| qmap.distance_to(ds.store.items(id)) <= theta)
            {
                nonempty += 1;
            }
        }
        assert!(nonempty > 30, "only {nonempty}/40 queries have results");
    }
}
