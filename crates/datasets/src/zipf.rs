//! Zipf sampling and skew estimation.
//!
//! The paper's cost model (Section 5) assumes item popularity follows
//! Zipf's law with parameter `s`: the i-th most popular item has frequency
//! `f(i; s, v) = (1 / i^s) / H_{v,s}` over a domain of `v` items, with
//! `H_{v,s}` the generalized harmonic number. The generator samples items
//! from exactly this law; [`estimate_zipf_s`] recovers `s` from a corpus
//! the way the authors "empirically estimated the skewness parameter from
//! samples of the datasets" — a log-log least-squares fit of the
//! rank-frequency curve.

use rand::rngs::StdRng;
use rand::Rng;
use ranksim_rankings::hash::FxHashMap;
use ranksim_rankings::{ItemId, RankingStore};

/// Inverse-CDF sampler for the Zipf distribution over `1..=v` (item index
/// 0 maps to rank 1, the most popular).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precomputes the CDF for domain size `v` and exponent `s ≥ 0`.
    pub fn new(v: u32, s: f64) -> Self {
        assert!(v > 0, "domain must be non-empty");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(v as usize);
        let mut acc = 0.0f64;
        for i in 1..=v as u64 {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Domain size.
    pub fn v(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// Samples one item index in `0..v` (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) as u32
    }

    /// Samples `k` **distinct** item indices (rejection on duplicates;
    /// cheap because `k ≪ v`).
    pub fn sample_distinct(&self, k: usize, rng: &mut StdRng) -> Vec<u32> {
        assert!(
            k <= self.cdf.len(),
            "cannot draw {k} distinct from {}",
            self.cdf.len()
        );
        let mut out: Vec<u32> = Vec::with_capacity(k);
        while out.len() < k {
            let cand = self.sample(rng);
            if !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }

    /// The probability mass of rank `i` (1-based).
    pub fn pmf(&self, i: u32) -> f64 {
        assert!(i >= 1 && i <= self.v());
        let idx = (i - 1) as usize;
        if idx == 0 {
            self.cdf[0]
        } else {
            self.cdf[idx] - self.cdf[idx - 1]
        }
    }
}

/// Estimates the Zipf exponent of a corpus's item-frequency distribution
/// by least squares on `log(freq) = −s · log(rank) + c`, matching the
/// paper's empirical estimation procedure.
pub fn estimate_zipf_s(store: &RankingStore) -> f64 {
    let mut freq: FxHashMap<ItemId, u64> = FxHashMap::default();
    for id in store.live_ids() {
        for &item in store.items(id) {
            *freq.entry(item).or_insert(0) += 1;
        }
    }
    let mut counts: Vec<u64> = freq.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    if counts.len() < 2 {
        return 0.0;
    }
    let pts: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    -slope
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let z = ZipfSampler::new(1000, 0.87);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(z.cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sample_respects_popularity_order() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[60]);
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let z = ZipfSampler::new(50, 0.9);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let mut s = z.sample_distinct(10, &mut rng);
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(64, 0.53);
        let total: f64 = (1..=64).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimator_recovers_exponent_roughly() {
        // Build a corpus by raw Zipf sampling and re-estimate s.
        for &s in &[0.5f64, 0.9] {
            let z = ZipfSampler::new(2000, s);
            let mut rng = StdRng::seed_from_u64(7);
            let mut store = RankingStore::new(10);
            for _ in 0..3000 {
                let items: Vec<ItemId> = z
                    .sample_distinct(10, &mut rng)
                    .into_iter()
                    .map(ItemId)
                    .collect();
                store.push_items_unchecked(&items);
            }
            let est = estimate_zipf_s(&store);
            assert!(
                (est - s).abs() < 0.3,
                "estimated {est:.3} for true s = {s} (tolerance 0.3: the \
                 distinct-sampling constraint flattens the head)"
            );
        }
    }
}
