//! Rank-augmented inverted index: item → id-sorted `(ranking, rank)`
//! postings (paper Section 6.2).
//!
//! Carrying the rank in the posting lets algorithms compute Footrule
//! contributions on the fly — ListMerge finalizes exact distances during
//! the merge and the partial-information algorithms derive their bounds —
//! without ever touching the ranking store.

use ranksim_rankings::hash::{fx_map_with_capacity, FxHashMap};
use ranksim_rankings::{ItemId, RankingId, RankingStore};

/// One posting: a ranking containing the item, and the rank it holds there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// The ranking containing the item.
    pub id: RankingId,
    /// The rank (`0..k-1`) of the item inside that ranking.
    pub rank: u32,
}

/// The rank-augmented inverted index.
#[derive(Debug, Clone)]
pub struct AugmentedInvertedIndex {
    k: usize,
    lists: FxHashMap<ItemId, Vec<Posting>>,
    indexed: usize,
}

impl AugmentedInvertedIndex {
    /// Indexes every ranking of the store.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_from(store, store.ids())
    }

    /// Indexes a subset of rankings (ids in ascending order).
    pub fn build_from<I: IntoIterator<Item = RankingId>>(store: &RankingStore, ids: I) -> Self {
        let mut lists: FxHashMap<ItemId, Vec<Posting>> = fx_map_with_capacity(1024);
        let mut indexed = 0usize;
        let mut prev: Option<RankingId> = None;
        for id in ids {
            debug_assert!(prev.map(|p| p < id).unwrap_or(true), "ids must ascend");
            prev = Some(id);
            indexed += 1;
            for (rank, &item) in store.items(id).iter().enumerate() {
                lists.entry(item).or_default().push(Posting {
                    id,
                    rank: rank as u32,
                });
            }
        }
        AugmentedInvertedIndex {
            k: store.k(),
            lists,
            indexed,
        }
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// Number of distinct items (= number of index lists).
    pub fn num_items(&self) -> usize {
        self.lists.len()
    }

    /// The id-sorted postings list for `item`, if any.
    #[inline]
    pub fn list(&self, item: ItemId) -> Option<&[Posting]> {
        self.lists.get(&item).map(|v| v.as_slice())
    }

    /// Length of the postings list for `item` (0 if absent).
    #[inline]
    pub fn list_len(&self, item: ItemId) -> usize {
        self.lists.get(&item).map(|v| v.len()).unwrap_or(0)
    }

    /// Approximate heap footprint in bytes (Table 6 reporting).
    pub fn heap_bytes(&self) -> usize {
        let buckets = self.lists.capacity()
            * (std::mem::size_of::<ItemId>() + std::mem::size_of::<Vec<Posting>>());
        let postings: usize = self
            .lists
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<Posting>())
            .sum();
        buckets + postings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;

    #[test]
    fn postings_carry_correct_ranks() {
        let store = random_store(150, 7, 60, 4);
        let idx = AugmentedInvertedIndex::build(&store);
        for item in 0..60u32 {
            if let Some(list) = idx.list(ItemId(item)) {
                assert!(list.windows(2).all(|w| w[0].id < w[1].id));
                for p in list {
                    assert_eq!(store.items(p.id)[p.rank as usize], ItemId(item));
                }
            }
        }
    }

    #[test]
    fn paper_example_index_list() {
        // Table 4 / Section 6.2: item 7 appears in τ3 at rank 0, τ6 at rank
        // 4 and τ7 at rank 0.
        let rankings: [[u32; 5]; 10] = [
            [1, 2, 3, 4, 5],
            [1, 2, 9, 8, 3],
            [9, 8, 1, 2, 4],
            [7, 1, 9, 4, 5],
            [6, 1, 5, 2, 3],
            [4, 5, 1, 2, 3],
            [1, 6, 2, 3, 7],
            [7, 1, 6, 5, 2],
            [2, 5, 9, 8, 1],
            [6, 3, 2, 1, 4],
        ];
        let mut store = RankingStore::new(5);
        for r in rankings {
            store.push_items_unchecked(&r.map(ItemId));
        }
        let idx = AugmentedInvertedIndex::build(&store);
        let list7 = idx.list(ItemId(7)).unwrap();
        assert_eq!(
            list7,
            &[
                Posting {
                    id: RankingId(3),
                    rank: 0
                },
                Posting {
                    id: RankingId(6),
                    rank: 4
                },
                Posting {
                    id: RankingId(7),
                    rank: 0
                },
            ]
        );
    }
}
