//! Rank-augmented inverted index: item → id-sorted `(ranking, rank)`
//! postings (paper Section 6.2).
//!
//! Carrying the rank in the posting lets algorithms compute Footrule
//! contributions on the fly — ListMerge finalizes exact distances during
//! the merge and the partial-information algorithms derive their bounds —
//! without ever touching the ranking store. Postings live in a CSR layout
//! (see [`crate::PlainInvertedIndex`]): one contiguous array addressed by
//! dense-item offsets, so ListMerge's k cursors walk one flat allocation.

use std::sync::Arc;

use crate::order::PostingOrder;
use ranksim_rankings::{ItemId, ItemRemap, RankingId, RankingStore};

/// One posting: a ranking containing the item, and the rank it holds there.
///
/// `repr(C)` pins the layout to two consecutive little-endian-persistable
/// `u32`s (8 bytes, no padding) so the persistence layer can round-trip
/// the postings arena as raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Posting {
    /// The ranking containing the item.
    pub id: RankingId,
    /// The rank (`0..k-1`) of the item inside that ranking.
    pub rank: u32,
}

/// The rank-augmented inverted index.
#[derive(Debug, Clone)]
pub struct AugmentedInvertedIndex {
    k: usize,
    remap: Arc<ItemRemap>,
    /// `offsets[d]..offsets[d + 1]` is the postings slice of dense item `d`.
    offsets: Vec<u32>,
    /// All postings, item-major, ordered per `order` within each item.
    postings: Vec<Posting>,
    order: PostingOrder,
    indexed: usize,
    num_items: usize,
}

impl AugmentedInvertedIndex {
    /// Indexes every ranking of the store.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), store.live_ids())
    }

    /// Indexes a subset of rankings (ids in ascending order).
    pub fn build_from<I: IntoIterator<Item = RankingId>>(store: &RankingStore, ids: I) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), ids)
    }

    /// Indexes a subset of rankings against a shared corpus remap (ids in
    /// ascending order).
    pub fn build_with_remap<I: IntoIterator<Item = RankingId>>(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        ids: I,
    ) -> Self {
        Self::build_with_remap_ordered(store, remap, ids, PostingOrder::Id)
    }

    /// [`AugmentedInvertedIndex::build_with_remap`] with an explicit
    /// posting ordering; [`PostingOrder::SuffixBound`] sorts each item's
    /// slice by `(rank, id)` so ListMerge can restrict its merge to the
    /// `[q_rank − θ, q_rank + θ]` rank window.
    pub fn build_with_remap_ordered<I: IntoIterator<Item = RankingId>>(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        ids: I,
        order: PostingOrder,
    ) -> Self {
        let ids: Vec<RankingId> = ids.into_iter().collect();
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        let m = remap.len();
        let mut offsets = vec![0u32; m + 1];
        for &id in &ids {
            for &item in store.items(id) {
                // Unmapped items get no posting (partial remaps degrade
                // to empty lists instead of aborting the rebuild).
                let Some(d) = remap.dense(item) else { continue };
                offsets[d as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let total = *offsets.last().unwrap_or(&0) as usize;
        let mut cursors: Vec<u32> = offsets[..m].to_vec();
        let mut postings = vec![
            Posting {
                id: RankingId(0),
                rank: 0
            };
            total
        ];
        for &id in &ids {
            for (rank, &item) in store.items(id).iter().enumerate() {
                // Must skip exactly the items the counting pass skipped;
                // `rank` still reflects the item's true store position.
                let Some(d) = remap.dense(item) else { continue };
                let d = d as usize;
                postings[cursors[d] as usize] = Posting {
                    id,
                    rank: rank as u32,
                };
                cursors[d] += 1;
            }
        }
        if order == PostingOrder::SuffixBound {
            for d in 0..m {
                let (s, e) = (offsets[d] as usize, offsets[d + 1] as usize);
                postings[s..e].sort_unstable_by_key(|p| (p.rank, p.id));
            }
        }
        let num_items = (0..m).filter(|&d| offsets[d] < offsets[d + 1]).count();
        AugmentedInvertedIndex {
            k: store.k(),
            remap,
            offsets,
            postings,
            order,
            indexed: ids.len(),
            num_items,
        }
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// Number of distinct items with at least one posting.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The shared item remap backing the CSR layout.
    #[inline]
    pub fn remap(&self) -> &Arc<ItemRemap> {
        &self.remap
    }

    /// The per-item entry ordering this index was built with.
    #[inline]
    pub fn order(&self) -> PostingOrder {
        self.order
    }

    /// The whole contiguous postings array (ListMerge slices it through
    /// [`AugmentedInvertedIndex::list_range`]).
    #[inline]
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// The `[start, end)` range of `item`'s postings inside
    /// [`AugmentedInvertedIndex::postings`]; `(0, 0)` if the item is
    /// absent.
    #[inline]
    pub fn list_range(&self, item: ItemId) -> (u32, u32) {
        match self.remap.dense(item) {
            Some(d) => (self.offsets[d as usize], self.offsets[d as usize + 1]),
            None => (0, 0),
        }
    }

    /// The id-sorted postings list for `item`, if the item is in the
    /// corpus remap.
    #[inline]
    pub fn list(&self, item: ItemId) -> Option<&[Posting]> {
        let d = self.remap.dense(item)? as usize;
        Some(&self.postings[self.offsets[d] as usize..self.offsets[d + 1] as usize])
    }

    /// Length of the postings list for `item` (0 if absent).
    #[inline]
    pub fn list_len(&self, item: ItemId) -> usize {
        self.list(item).map(|l| l.len()).unwrap_or(0)
    }

    /// Exact heap footprint in bytes (Table 6 reporting).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.postings.capacity() * std::mem::size_of::<Posting>()
            + self.remap.heap_bytes()
    }

    /// Decomposes the index into its flat persistence form. Postings are
    /// split into `u32` id/rank planes (the `repr(C)` pair itself could be
    /// persisted raw, but planes keep every section a plain `u32` array).
    #[doc(hidden)]
    pub fn export_parts(&self) -> AugmentedIndexParts {
        let mut ids = Vec::with_capacity(self.postings.len());
        let mut ranks = Vec::with_capacity(self.postings.len());
        for p in &self.postings {
            ids.push(p.id.0);
            ranks.push(p.rank);
        }
        AugmentedIndexParts {
            k: self.k as u32,
            indexed: self.indexed as u32,
            order: self.order,
            offsets: self.offsets.clone(),
            ids,
            ranks,
        }
    }

    /// Rebuilds the index from its flat persistence form against the
    /// corpus remap, validating the CSR invariants and rank bounds.
    #[doc(hidden)]
    pub fn from_parts(parts: AugmentedIndexParts, remap: Arc<ItemRemap>) -> Result<Self, String> {
        crate::plain::validate_csr(&parts.offsets, parts.ids.len(), remap.len())?;
        if parts.ids.len() != parts.ranks.len() {
            return Err("augmented posting id/rank planes disagree".into());
        }
        let k = parts.k as usize;
        if let Some(bad) = parts.ranks.iter().find(|&&r| r as usize >= k.max(1)) {
            return Err(format!("posting rank {bad} out of bounds for k {k}"));
        }
        if parts.order == PostingOrder::SuffixBound {
            // Validated, never re-sorted on load.
            crate::plain::validate_rank_sorted(&parts.offsets, &parts.ranks, &parts.ids)?;
        }
        let postings = parts
            .ids
            .iter()
            .zip(&parts.ranks)
            .map(|(&id, &rank)| Posting {
                id: RankingId(id),
                rank,
            })
            .collect();
        let m = remap.len();
        let num_items = (0..m)
            .filter(|&d| parts.offsets[d] < parts.offsets[d + 1])
            .count();
        Ok(AugmentedInvertedIndex {
            k,
            remap,
            offsets: parts.offsets,
            postings,
            order: parts.order,
            indexed: parts.indexed as usize,
            num_items,
        })
    }
}

/// Flat persistence form of an [`AugmentedInvertedIndex`].
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct AugmentedIndexParts {
    pub k: u32,
    pub indexed: u32,
    pub order: PostingOrder,
    pub offsets: Vec<u32>,
    pub ids: Vec<u32>,
    pub ranks: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;

    #[test]
    fn postings_carry_correct_ranks() {
        let store = random_store(150, 7, 60, 4);
        let idx = AugmentedInvertedIndex::build(&store);
        for item in 0..60u32 {
            if let Some(list) = idx.list(ItemId(item)) {
                assert!(list.windows(2).all(|w| w[0].id < w[1].id));
                for p in list {
                    assert_eq!(store.items(p.id)[p.rank as usize], ItemId(item));
                }
            }
        }
    }

    #[test]
    fn partial_remap_degrades_to_empty_postings() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[2, 3, 4].map(ItemId));
        let remap = Arc::new(ItemRemap::from_raw_ids(vec![1, 2]));
        let idx = AugmentedInvertedIndex::build_with_remap(&store, remap, store.live_ids());
        // Mapped items keep postings with their true store ranks…
        let l2 = idx.list(ItemId(2)).unwrap();
        assert_eq!(l2.len(), 2);
        assert_eq!((l2[0].id, l2[0].rank), (RankingId(0), 1));
        assert_eq!((l2[1].id, l2[1].rank), (RankingId(1), 0));
        // …while unmapped items have none, rather than a panicking build.
        assert_eq!(idx.list(ItemId(3)), None);
        assert_eq!(idx.list_range(ItemId(4)), (0, 0));
    }

    #[test]
    fn list_range_slices_the_shared_postings_array() {
        let store = random_store(120, 5, 40, 6);
        let idx = AugmentedInvertedIndex::build(&store);
        for item in 0..45u32 {
            let (s, e) = idx.list_range(ItemId(item));
            let via_range = &idx.postings()[s as usize..e as usize];
            let via_list = idx.list(ItemId(item)).unwrap_or(&[]);
            assert_eq!(via_range, via_list);
        }
        assert_eq!(idx.list_range(ItemId(9999)), (0, 0));
    }

    #[test]
    fn suffix_bound_build_sorts_each_list_by_rank_then_id() {
        let store = random_store(150, 7, 60, 4);
        let id_idx = AugmentedInvertedIndex::build(&store);
        let sb_idx = AugmentedInvertedIndex::build_with_remap_ordered(
            &store,
            Arc::new(ItemRemap::build(&store)),
            store.live_ids(),
            PostingOrder::SuffixBound,
        );
        assert_eq!(sb_idx.order(), PostingOrder::SuffixBound);
        for item in 0..60u32 {
            let list = match sb_idx.list(ItemId(item)) {
                Some(l) => l,
                None => continue,
            };
            for w in list.windows(2) {
                assert!((w[0].rank, w[0].id) < (w[1].rank, w[1].id));
            }
            for p in list {
                assert_eq!(store.items(p.id)[p.rank as usize], ItemId(item));
            }
            let mut a: Vec<Posting> = list.to_vec();
            a.sort_unstable_by_key(|p| p.id);
            assert_eq!(a, id_idx.list(ItemId(item)).unwrap());
        }
        // Parts round-trip keeps the ordering; a tampered arena is
        // rejected instead of silently re-sorted.
        let rt = AugmentedInvertedIndex::from_parts(sb_idx.export_parts(), sb_idx.remap().clone())
            .unwrap();
        assert_eq!(rt.postings(), sb_idx.postings());
        assert_eq!(rt.order(), PostingOrder::SuffixBound);
        let mut bad = sb_idx.export_parts();
        let flip = bad
            .offsets
            .windows(2)
            .position(|w| w[1] - w[0] >= 2)
            .map(|d| bad.offsets[d] as usize)
            .unwrap();
        bad.ids.swap(flip, flip + 1);
        bad.ranks.swap(flip, flip + 1);
        assert!(AugmentedInvertedIndex::from_parts(bad, sb_idx.remap().clone()).is_err());
    }

    #[test]
    fn paper_example_index_list() {
        // Table 4 / Section 6.2: item 7 appears in τ3 at rank 0, τ6 at rank
        // 4 and τ7 at rank 0.
        let rankings: [[u32; 5]; 10] = [
            [1, 2, 3, 4, 5],
            [1, 2, 9, 8, 3],
            [9, 8, 1, 2, 4],
            [7, 1, 9, 4, 5],
            [6, 1, 5, 2, 3],
            [4, 5, 1, 2, 3],
            [1, 6, 2, 3, 7],
            [7, 1, 6, 5, 2],
            [2, 5, 9, 8, 1],
            [6, 3, 2, 1, 4],
        ];
        let mut store = RankingStore::new(5);
        for r in rankings {
            store.push_items_unchecked(&r.map(ItemId));
        }
        let idx = AugmentedInvertedIndex::build(&store);
        let list7 = idx.list(ItemId(7)).unwrap();
        assert_eq!(
            list7,
            &[
                Posting {
                    id: RankingId(3),
                    rank: 0
                },
                Posting {
                    id: RankingId(6),
                    rank: 4
                },
                Posting {
                    id: RankingId(7),
                    rank: 0
                },
            ]
        );
    }
}
