//! Blocked inverted index (paper Section 6.3).
//!
//! Each item's postings are sorted by **rank**; since ranks are integers
//! `0..k-1`, runs of equal rank form *blocks* `B_{i@j}` — the rankings in
//! which item `i` appears at rank `j`. A secondary per-list offset array
//! (`k + 1` entries) addresses each block in O(1), so query processing can
//! skip whole blocks whose guaranteed partial distance `|j − q(i)|` already
//! exceeds the threshold.

use ranksim_rankings::hash::{fx_map_with_capacity, FxHashMap};
use ranksim_rankings::{ItemId, RankingId, RankingStore};

#[derive(Debug, Clone)]
struct BlockedList {
    /// Postings sorted by (rank, id); rank is implicit via `offsets`.
    ids: Vec<RankingId>,
    /// `offsets[j]..offsets[j+1]` is block `B_{i@j}`; length `k + 1`.
    offsets: Vec<u32>,
}

/// The blocked, rank-partitioned inverted index.
#[derive(Debug, Clone)]
pub struct BlockedInvertedIndex {
    k: usize,
    lists: FxHashMap<ItemId, BlockedList>,
    indexed: usize,
    /// Time spent sorting postings into blocks is part of construction;
    /// the per-query *resorting* overhead the paper discusses for the Yago
    /// dataset is modelled by the query-side block walk itself.
    pub build_sort_ops: u64,
}

impl BlockedInvertedIndex {
    /// Indexes every ranking of the store.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_from(store, store.ids())
    }

    /// Indexes a subset of rankings (any order; blocks are rank-major).
    pub fn build_from<I: IntoIterator<Item = RankingId>>(store: &RankingStore, ids: I) -> Self {
        let k = store.k();
        // First gather (rank, id) per item, then freeze into block layout.
        let mut staging: FxHashMap<ItemId, Vec<(u32, RankingId)>> = fx_map_with_capacity(1024);
        let mut indexed = 0usize;
        for id in ids {
            indexed += 1;
            for (rank, &item) in store.items(id).iter().enumerate() {
                staging.entry(item).or_default().push((rank as u32, id));
            }
        }
        let mut lists = fx_map_with_capacity(staging.len());
        let mut build_sort_ops = 0u64;
        for (item, mut postings) in staging {
            postings.sort_unstable();
            build_sort_ops += postings.len() as u64;
            let mut offsets = Vec::with_capacity(k + 1);
            let mut ids = Vec::with_capacity(postings.len());
            let mut cursor = 0usize;
            for j in 0..k as u32 {
                offsets.push(cursor as u32);
                while cursor < postings.len() && postings[cursor].0 == j {
                    ids.push(postings[cursor].1);
                    cursor += 1;
                }
            }
            offsets.push(cursor as u32);
            debug_assert_eq!(cursor, postings.len());
            lists.insert(item, BlockedList { ids, offsets });
        }
        BlockedInvertedIndex {
            k,
            lists,
            indexed,
            build_sort_ops,
        }
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// Number of distinct items.
    pub fn num_items(&self) -> usize {
        self.lists.len()
    }

    /// Block `B_{item@rank}`: the rankings holding `item` at `rank`.
    #[inline]
    pub fn block(&self, item: ItemId, rank: u32) -> &[RankingId] {
        match self.lists.get(&item) {
            Some(l) => {
                let lo = l.offsets[rank as usize] as usize;
                let hi = l.offsets[rank as usize + 1] as usize;
                &l.ids[lo..hi]
            }
            None => &[],
        }
    }

    /// Total postings for `item`.
    #[inline]
    pub fn list_len(&self, item: ItemId) -> usize {
        self.lists.get(&item).map(|l| l.ids.len()).unwrap_or(0)
    }

    /// Whether the index holds any posting for `item`.
    #[inline]
    pub fn contains_item(&self, item: ItemId) -> bool {
        self.lists.contains_key(&item)
    }

    /// Approximate heap footprint in bytes (Table 6 reporting).
    pub fn heap_bytes(&self) -> usize {
        let buckets = self.lists.capacity()
            * (std::mem::size_of::<ItemId>() + std::mem::size_of::<BlockedList>());
        let payload: usize = self
            .lists
            .values()
            .map(|l| l.ids.capacity() * 4 + l.offsets.capacity() * 4)
            .sum();
        buckets + payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;

    #[test]
    fn blocks_partition_each_list_by_rank() {
        let store = random_store(180, 6, 50, 9);
        let idx = BlockedInvertedIndex::build(&store);
        for item in 0..50u32 {
            let item = ItemId(item);
            let mut total = 0usize;
            for rank in 0..6u32 {
                let block = idx.block(item, rank);
                for &id in block {
                    assert_eq!(store.items(id)[rank as usize], item);
                }
                assert!(block.windows(2).all(|w| w[0] < w[1]), "block not id-sorted");
                total += block.len();
            }
            assert_eq!(total, idx.list_len(item));
        }
    }

    #[test]
    fn paper_figure4_blocks() {
        // Figure 4 of the paper: blocks of the inverted index for Table 4
        // (plus τ10 which the figure references but Table 4 omits; we only
        // check items over the 10 rankings of Table 4).
        let rankings: [[u32; 5]; 10] = [
            [1, 2, 3, 4, 5],
            [1, 2, 9, 8, 3],
            [9, 8, 1, 2, 4],
            [7, 1, 9, 4, 5],
            [6, 1, 5, 2, 3],
            [4, 5, 1, 2, 3],
            [1, 6, 2, 3, 7],
            [7, 1, 6, 5, 2],
            [2, 5, 9, 8, 1],
            [6, 3, 2, 1, 4],
        ];
        let mut store = RankingStore::new(5);
        for r in rankings {
            store.push_items_unchecked(&r.map(ItemId));
        }
        let idx = BlockedInvertedIndex::build(&store);
        // item 1 at rank 0: τ0, τ1, τ6.
        assert_eq!(
            idx.block(ItemId(1), 0),
            &[RankingId(0), RankingId(1), RankingId(6)]
        );
        // item 1 at rank 1: τ3, τ4, τ7.
        assert_eq!(
            idx.block(ItemId(1), 1),
            &[RankingId(3), RankingId(4), RankingId(7)]
        );
        // item 3 at rank 1: τ9 only.
        assert_eq!(idx.block(ItemId(3), 1), &[RankingId(9)]);
        // item 4 at rank 0: τ5 only.
        assert_eq!(idx.block(ItemId(4), 0), &[RankingId(5)]);
        // absent item: empty everywhere.
        assert!(idx.block(ItemId(42), 0).is_empty());
    }
}
