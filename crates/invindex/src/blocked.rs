//! Blocked inverted index (paper Section 6.3).
//!
//! Each item's postings are sorted by **rank**; since ranks are integers
//! `0..k-1`, runs of equal rank form *blocks* `B_{i@j}` — the rankings in
//! which item `i` appears at rank `j`. The whole structure is one CSR
//! arena: a single contiguous `ids` array plus a `block_offsets` array of
//! `k + 1` absolute offsets per dense item, so addressing block `B_{i@j}`
//! is two loads and a slice and query processing can skip whole blocks
//! whose guaranteed partial distance `|j − q(i)|` already exceeds the
//! threshold.

use std::sync::Arc;

use ranksim_rankings::{ItemId, ItemRemap, RankingId, RankingStore};

/// The blocked, rank-partitioned inverted index.
#[derive(Debug, Clone)]
pub struct BlockedInvertedIndex {
    k: usize,
    remap: Arc<ItemRemap>,
    /// All postings, item-major, rank-major (then id-sorted) within each
    /// item.
    ids: Vec<RankingId>,
    /// `block_offsets[d * (k + 1) + j] .. block_offsets[d * (k + 1) + j + 1]`
    /// is block `B_{d@j}` inside `ids`; `k + 1` absolute offsets per dense
    /// item.
    block_offsets: Vec<u32>,
    indexed: usize,
    num_items: usize,
    /// Time spent sorting postings into blocks is part of construction;
    /// the per-query *resorting* overhead the paper discusses for the Yago
    /// dataset is modelled by the query-side block walk itself.
    pub build_sort_ops: u64,
}

impl BlockedInvertedIndex {
    /// Indexes every ranking of the store.
    pub fn build(store: &RankingStore) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), store.live_ids())
    }

    /// Indexes a subset of rankings (any order; blocks are rank-major).
    pub fn build_from<I: IntoIterator<Item = RankingId>>(store: &RankingStore, ids: I) -> Self {
        Self::build_with_remap(store, Arc::new(ItemRemap::build(store)), ids)
    }

    /// Indexes a subset of rankings against a shared corpus remap.
    pub fn build_with_remap<I: IntoIterator<Item = RankingId>>(
        store: &RankingStore,
        remap: Arc<ItemRemap>,
        ids: I,
    ) -> Self {
        let k = store.k();
        let mut ids_in: Vec<RankingId> = ids.into_iter().collect();
        let m = remap.len();
        let stride = k + 1;
        // Counting sort over (dense item, rank): `block_offsets` doubles as
        // the per-(item, rank) counter during construction.
        let mut block_offsets = vec![0u32; m * stride + 1];
        for &id in &ids_in {
            for (rank, &item) in store.items(id).iter().enumerate() {
                // Unmapped items get no posting (partial remaps degrade
                // to empty blocks instead of aborting the rebuild).
                let Some(d) = remap.dense(item) else { continue };
                block_offsets[d as usize * stride + rank + 1] += 1;
            }
        }
        // The per-item `offsets[k]` slot (one short of the next item's
        // start) stays 0 in the counting pass — rank k never occurs — so a
        // single prefix sum turns the counts into absolute block offsets
        // with `offsets[d * stride + k] == offsets[(d + 1) * stride]`.
        for i in 1..block_offsets.len() {
            block_offsets[i] += block_offsets[i - 1];
        }
        let total = *block_offsets.last().unwrap_or(&0) as usize;
        let mut cursors: Vec<u32> = block_offsets[..m * stride].to_vec();
        let mut arena = vec![RankingId(0); total];
        // Iterating ids in ascending order keeps every block id-sorted
        // even when the caller supplied them unsorted; the original order
        // is not needed again, so sort in place.
        ids_in.sort_unstable();
        let mut build_sort_ops = 0u64;
        for &id in &ids_in {
            for (rank, &item) in store.items(id).iter().enumerate() {
                // Must skip exactly the items the counting pass skipped.
                let Some(d) = remap.dense(item) else { continue };
                let c = &mut cursors[d as usize * stride + rank];
                arena[*c as usize] = id;
                *c += 1;
                build_sort_ops += 1;
            }
        }
        let num_items = (0..m)
            .filter(|&d| block_offsets[d * stride] < block_offsets[d * stride + k])
            .count();
        BlockedInvertedIndex {
            k,
            remap,
            ids: arena,
            block_offsets,
            indexed: ids_in.len(),
            num_items,
            build_sort_ops,
        }
    }

    /// The ranking size the index was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of rankings indexed.
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// Number of distinct items with at least one posting.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The shared item remap backing the CSR layout.
    #[inline]
    pub fn remap(&self) -> &Arc<ItemRemap> {
        &self.remap
    }

    /// Block `B_{item@rank}`: the rankings holding `item` at `rank`.
    #[inline]
    pub fn block(&self, item: ItemId, rank: u32) -> &[RankingId] {
        match self.remap.dense(item) {
            Some(d) => {
                let base = d as usize * (self.k + 1) + rank as usize;
                let lo = self.block_offsets[base] as usize;
                let hi = self.block_offsets[base + 1] as usize;
                &self.ids[lo..hi]
            }
            None => &[],
        }
    }

    /// Total postings for `item`.
    #[inline]
    pub fn list_len(&self, item: ItemId) -> usize {
        match self.remap.dense(item) {
            Some(d) => {
                let base = d as usize * (self.k + 1);
                (self.block_offsets[base + self.k] - self.block_offsets[base]) as usize
            }
            None => 0,
        }
    }

    /// Whether the index holds any posting for `item`.
    #[inline]
    pub fn contains_item(&self, item: ItemId) -> bool {
        self.list_len(item) > 0
    }

    /// Exact heap footprint in bytes (Table 6 reporting).
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.ids.capacity() * std::mem::size_of::<RankingId>()
            + self.block_offsets.capacity() * std::mem::size_of::<u32>()
            + self.remap.heap_bytes()
    }

    /// Decomposes the index into its flat persistence form.
    #[doc(hidden)]
    pub fn export_parts(&self) -> BlockedIndexParts {
        BlockedIndexParts {
            k: self.k as u32,
            indexed: self.indexed as u32,
            block_offsets: self.block_offsets.clone(),
            ids: ranksim_rankings::ranking_vec_into_u32(self.ids.clone()),
        }
    }

    /// Rebuilds the index from its flat persistence form against the
    /// corpus remap, validating the strided block-offset invariants.
    #[doc(hidden)]
    pub fn from_parts(parts: BlockedIndexParts, remap: Arc<ItemRemap>) -> Result<Self, String> {
        let k = parts.k as usize;
        if k == 0 {
            return Err("blocked index k must be positive".into());
        }
        let m = remap.len();
        let stride = k + 1;
        if parts.block_offsets.len() != m * stride + 1 {
            return Err(format!(
                "block offsets length {} != remap size {} × (k + 1) + 1",
                parts.block_offsets.len(),
                m
            ));
        }
        if parts.block_offsets.first().copied().unwrap_or(0) != 0 {
            return Err("block offsets must start at 0".into());
        }
        if parts.block_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("block offsets not monotone".into());
        }
        let end = parts.block_offsets.last().copied().unwrap_or(0) as usize;
        if end != parts.ids.len() {
            return Err(format!(
                "block offsets end {end} != posting arena length {}",
                parts.ids.len()
            ));
        }
        let num_items = (0..m)
            .filter(|&d| parts.block_offsets[d * stride] < parts.block_offsets[d * stride + k])
            .count();
        Ok(BlockedInvertedIndex {
            k,
            remap,
            ids: ranksim_rankings::ranking_vec_from_u32(parts.ids),
            block_offsets: parts.block_offsets,
            indexed: parts.indexed as usize,
            num_items,
            build_sort_ops: 0,
        })
    }
}

/// Flat persistence form of a [`BlockedInvertedIndex`]. `build_sort_ops`
/// is a construction-time statistic and resets to 0 on load.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct BlockedIndexParts {
    pub k: u32,
    pub indexed: u32,
    pub block_offsets: Vec<u32>,
    pub ids: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_store;

    #[test]
    fn blocks_partition_each_list_by_rank() {
        let store = random_store(180, 6, 50, 9);
        let idx = BlockedInvertedIndex::build(&store);
        for item in 0..50u32 {
            let item = ItemId(item);
            let mut total = 0usize;
            for rank in 0..6u32 {
                let block = idx.block(item, rank);
                for &id in block {
                    assert_eq!(store.items(id)[rank as usize], item);
                }
                assert!(block.windows(2).all(|w| w[0] < w[1]), "block not id-sorted");
                total += block.len();
            }
            assert_eq!(total, idx.list_len(item));
        }
    }

    #[test]
    fn partial_remap_degrades_to_empty_blocks() {
        let mut store = RankingStore::new(3);
        store.push_items_unchecked(&[1, 2, 3].map(ItemId));
        store.push_items_unchecked(&[2, 3, 4].map(ItemId));
        let remap = Arc::new(ItemRemap::from_raw_ids(vec![1, 2]));
        let idx = BlockedInvertedIndex::build_with_remap(&store, remap, store.live_ids());
        // Mapped items keep their rank-partitioned blocks at true store
        // ranks…
        assert_eq!(idx.block(ItemId(1), 0), &[RankingId(0)]);
        assert_eq!(idx.block(ItemId(2), 0), &[RankingId(1)]);
        assert_eq!(idx.block(ItemId(2), 1), &[RankingId(0)]);
        // …while unmapped items have none, rather than a panicking build.
        assert!(!idx.contains_item(ItemId(3)));
        assert_eq!(idx.list_len(ItemId(4)), 0);
        assert_eq!(idx.block(ItemId(4), 0), &[] as &[RankingId]);
    }

    #[test]
    fn unsorted_subset_build_keeps_blocks_id_sorted() {
        let store = random_store(90, 5, 30, 21);
        let mut subset: Vec<RankingId> = store.ids().filter(|id| id.0 % 2 == 1).collect();
        subset.reverse();
        let idx = BlockedInvertedIndex::build_from(&store, subset);
        for item in 0..30u32 {
            for rank in 0..5u32 {
                let block = idx.block(ItemId(item), rank);
                assert!(block.windows(2).all(|w| w[0] < w[1]));
                for &id in block {
                    assert_eq!(id.0 % 2, 1);
                }
            }
        }
    }

    #[test]
    fn paper_figure4_blocks() {
        // Figure 4 of the paper: blocks of the inverted index for Table 4
        // (plus τ10 which the figure references but Table 4 omits; we only
        // check items over the 10 rankings of Table 4).
        let rankings: [[u32; 5]; 10] = [
            [1, 2, 3, 4, 5],
            [1, 2, 9, 8, 3],
            [9, 8, 1, 2, 4],
            [7, 1, 9, 4, 5],
            [6, 1, 5, 2, 3],
            [4, 5, 1, 2, 3],
            [1, 6, 2, 3, 7],
            [7, 1, 6, 5, 2],
            [2, 5, 9, 8, 1],
            [6, 3, 2, 1, 4],
        ];
        let mut store = RankingStore::new(5);
        for r in rankings {
            store.push_items_unchecked(&r.map(ItemId));
        }
        let idx = BlockedInvertedIndex::build(&store);
        // item 1 at rank 0: τ0, τ1, τ6.
        assert_eq!(
            idx.block(ItemId(1), 0),
            &[RankingId(0), RankingId(1), RankingId(6)]
        );
        // item 1 at rank 1: τ3, τ4, τ7.
        assert_eq!(
            idx.block(ItemId(1), 1),
            &[RankingId(3), RankingId(4), RankingId(7)]
        );
        // item 3 at rank 1: τ9 only.
        assert_eq!(idx.block(ItemId(3), 1), &[RankingId(9)]);
        // item 4 at rank 0: τ5 only.
        assert_eq!(idx.block(ItemId(4), 0), &[RankingId(5)]);
        // absent item: empty everywhere.
        assert!(idx.block(ItemId(42), 0).is_empty());
    }
}
