//! Blocked access with pruning (paper Section 6.3): list-at-a-time
//! processing over the [`BlockedInvertedIndex`] with NRA-style bounds.
//!
//! For each (retained) query item `i` at query rank `q(i)`, only the blocks
//! `B_{i@j}` with `|j − q(i)| ≤ θ` are read — any ranking confined to a
//! skipped block has a single-item displacement `> θ` and cannot be a
//! result. Seen candidates accumulate [`CandidateBounds`]; after every
//! list, candidates with `L > θ` are evicted and candidates with `U ≤ θ`
//! are reported early (both directions sound, see [`crate::bounds`]).
//!
//! * `Blocked+Prune` processes all k lists: the final upper bound equals
//!   the exact distance for every surviving true result, so the algorithm
//!   finishes with **zero** distance-function calls.
//! * `Blocked+Prune+Drop` additionally drops lists per Lemma 2; membership
//!   in dropped lists is never learned, so undecided candidates fall back
//!   to one exact distance evaluation each — the DFCs Figure 10 reports.
//!
//! Candidate state lives in the reusable [`QueryScratch`]: the bound
//! accumulators in an epoch-versioned cell map (`(exact, tau_side,
//! q_side)` per candidate), decided candidates in an epoch-versioned
//! marker set — zero heap allocations in steady state.

use crate::blocked::BlockedInvertedIndex;
use crate::bounds::CandidateBounds;
use crate::drop::keep_positions_into;
use ranksim_rankings::{
    one_side_total, ItemId, Kernel, QueryScratch, QueryStats, RankingId, RankingStore,
};

/// Blocked+Prune: all lists, block skipping, bound-based decisions.
pub fn blocked_prune(
    index: &BlockedInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    blocked_prune_into(
        index,
        store,
        query,
        theta_raw,
        Kernel::default(),
        &mut scratch,
        stats,
        &mut out,
    );
    out
}

/// Blocked+Prune+Drop: Lemma 2 list dropping on top of blocked pruning.
pub fn blocked_prune_drop(
    index: &BlockedInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    stats: &mut QueryStats,
) -> Vec<RankingId> {
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    blocked_prune_drop_into(
        index,
        store,
        query,
        theta_raw,
        Kernel::default(),
        &mut scratch,
        stats,
        &mut out,
    );
    out
}

/// Scratch-reusing Blocked+Prune; appends results to `out`.
#[allow(clippy::too_many_arguments)]
pub fn blocked_prune_into(
    index: &BlockedInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    kernel: Kernel,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
    out: &mut Vec<RankingId>,
) {
    blocked_core(
        index, store, query, theta_raw, false, kernel, scratch, stats, out,
    )
}

/// Scratch-reusing Blocked+Prune+Drop; appends results to `out`.
#[allow(clippy::too_many_arguments)]
pub fn blocked_prune_drop_into(
    index: &BlockedInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    kernel: Kernel,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
    out: &mut Vec<RankingId>,
) {
    blocked_core(
        index, store, query, theta_raw, true, kernel, scratch, stats, out,
    )
}

#[inline]
fn cell_bounds(c: [u32; 3]) -> CandidateBounds {
    CandidateBounds {
        exact_seen: c[0],
        tau_side_seen: c[1],
        q_side_seen: c[2],
    }
}

#[allow(clippy::too_many_arguments)]
fn blocked_core(
    index: &BlockedInvertedIndex,
    store: &RankingStore,
    query: &[ItemId],
    theta_raw: u32,
    drop_lists: bool,
    kernel: Kernel,
    scratch: &mut QueryScratch,
    stats: &mut QueryStats,
    out: &mut Vec<RankingId>,
) {
    debug_assert_eq!(index.k(), query.len());
    let k = query.len();
    let ku = k as u32;
    let t_k = one_side_total(k);
    let remap = index.remap();
    let mut positions = std::mem::take(&mut scratch.positions);
    if drop_lists {
        let mut by_len = std::mem::take(&mut scratch.positions_tmp);
        keep_positions_into(
            query,
            theta_raw,
            |p| index.list_len(query[p]),
            &mut positions,
            &mut by_len,
        );
        scratch.positions_tmp = by_len;
    } else {
        positions.clear();
        positions.extend(0..k);
    }

    let QueryScratch {
        qmap,
        marks: decided,
        cells: cands,
        ..
    } = scratch;
    cands.begin(store.len());
    decided.begin(store.len());
    let out_start = out.len();
    let mut processed_q = 0u32;

    for &p in &positions {
        // Once even a perfectly-matching new candidate would start with
        // L > θ and no open candidates remain, later lists are irrelevant.
        if processed_q > theta_raw && cands.is_empty() {
            break;
        }
        let item = query[p];
        let q_rank = p as u32;
        let lo = q_rank.saturating_sub(theta_raw);
        let hi = (ku - 1).min(q_rank.saturating_add(theta_raw));
        let mut scanned = 0usize;
        for j in lo..=hi {
            let block = index.block(item, j);
            scanned += block.len();
            let delta = j.abs_diff(q_rank);
            for &id in block {
                if decided.contains(id.0) {
                    continue;
                }
                match cands.get_mut(id.0) {
                    Some(c) => {
                        c[0] += j.abs_diff(q_rank);
                        c[1] += ku - j;
                        c[2] += ku - q_rank;
                    }
                    None => {
                        // Dead on arrival: the candidate's lower bound
                        // after this list would already exceed θ.
                        if processed_q + delta > theta_raw {
                            continue;
                        }
                        stats.candidates += 1;
                        cands.insert(id.0, [j.abs_diff(q_rank), ku - j, ku - q_rank]);
                    }
                }
            }
        }
        stats.count_list(scanned);
        processed_q += ku - q_rank;
        // Sweep: evict hopeless candidates, report certain ones early.
        cands.retain(|id, c| {
            let b = cell_bounds(*c);
            if b.lower(processed_q) > theta_raw {
                decided.mark(id);
                false
            } else if b.upper(t_k) <= theta_raw {
                decided.mark(id);
                out.push(RankingId(id));
                false
            } else {
                true
            }
        });
    }

    // Finalize survivors. Without dropping, U has converged to the exact
    // distance for every candidate that could still be a result; with
    // dropping, undecided candidates need one exact evaluation.
    let fallback = drop_lists && !cands.is_empty();
    if fallback {
        qmap.build(remap, query);
    }
    for &id in cands.keys() {
        let b = cell_bounds(cands.get(id).expect("live candidate"));
        if b.upper(t_k) <= theta_raw {
            out.push(RankingId(id));
        } else if fallback && b.lower(processed_q) <= theta_raw {
            stats.count_distance();
            match qmap.distance_within(remap, store.items(RankingId(id)), theta_raw, kernel) {
                Some(d) if d <= theta_raw => out.push(RankingId(id)),
                Some(_) => {}
                None => stats.validations_pruned += 1,
            }
        }
    }
    stats.results += (out.len() - out_start) as u64;
    scratch.positions = positions;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_equals_scan, perturbed_query, random_store};
    use ranksim_rankings::raw_threshold;

    #[test]
    fn blocked_prune_equals_scan() {
        let store = random_store(300, 7, 60, 500);
        let index = BlockedInvertedIndex::build(&store);
        for seed in 0..12u64 {
            let q = perturbed_query(&store, RankingId((seed * 13 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.3, 0.5] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let got = blocked_prune(&index, &store, &q, raw, &mut stats);
                assert_equals_scan(&store, &q, raw, got);
            }
        }
    }

    #[test]
    fn blocked_prune_drop_equals_scan() {
        let store = random_store(300, 7, 60, 600);
        let index = BlockedInvertedIndex::build(&store);
        for seed in 0..12u64 {
            let q = perturbed_query(&store, RankingId((seed * 29 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.2, 0.3, 0.5] {
                let raw = raw_threshold(theta, 7);
                let mut stats = QueryStats::new();
                let got = blocked_prune_drop(&index, &store, &q, raw, &mut stats);
                assert_equals_scan(&store, &q, raw, got);
            }
        }
    }

    #[test]
    fn shared_scratch_blocked_equals_fresh_scratch() {
        let store = random_store(280, 7, 55, 601);
        let index = BlockedInvertedIndex::build(&store);
        let mut shared = QueryScratch::new();
        for seed in 0..16u64 {
            let q = perturbed_query(&store, RankingId((seed * 37 % 280) as u32), 55, seed);
            let raw = raw_threshold(0.1 * (seed % 4) as f64, 7);
            let drop = seed % 2 == 0;
            let mut s1 = QueryStats::new();
            let mut s2 = QueryStats::new();
            let mut got = Vec::new();
            if drop {
                blocked_prune_drop_into(
                    &index,
                    &store,
                    &q,
                    raw,
                    Kernel::default(),
                    &mut shared,
                    &mut s1,
                    &mut got,
                );
            } else {
                blocked_prune_into(
                    &index,
                    &store,
                    &q,
                    raw,
                    Kernel::default(),
                    &mut shared,
                    &mut s1,
                    &mut got,
                );
            }
            let mut expect = if drop {
                blocked_prune_drop(&index, &store, &q, raw, &mut s2)
            } else {
                blocked_prune(&index, &store, &q, raw, &mut s2)
            };
            got.sort_unstable();
            expect.sort_unstable();
            assert_eq!(got, expect, "seed {seed} drop {drop}");
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn blocked_prune_needs_no_distance_calls() {
        let store = random_store(400, 8, 70, 700);
        let index = BlockedInvertedIndex::build(&store);
        for seed in 0..8u64 {
            let q = perturbed_query(&store, RankingId((seed * 41 % 400) as u32), 70, seed);
            let mut stats = QueryStats::new();
            let _ = blocked_prune(&index, &store, &q, 20, &mut stats);
            assert_eq!(stats.distance_calls, 0);
        }
    }

    #[test]
    fn block_skipping_reads_fewer_entries_at_small_theta() {
        let store = random_store(500, 10, 90, 800);
        let index = BlockedInvertedIndex::build(&store);
        let q = perturbed_query(&store, RankingId(77), 90, 3);
        let mut s_small = QueryStats::new();
        let mut s_large = QueryStats::new();
        let _ = blocked_prune(&index, &store, &q, 4, &mut s_small);
        let _ = blocked_prune(&index, &store, &q, 110, &mut s_large);
        assert!(
            s_small.entries_scanned < s_large.entries_scanned,
            "θ=4 must touch fewer postings than θ=dmax ({} vs {})",
            s_small.entries_scanned,
            s_large.entries_scanned
        );
    }

    #[test]
    fn exact_match_search_terminates_early() {
        // θ = 0: only the exact block per list is read.
        let store = random_store(300, 6, 50, 900);
        let index = BlockedInvertedIndex::build(&store);
        let q: Vec<ItemId> = store.items(RankingId(42)).to_vec();
        let mut stats = QueryStats::new();
        let got = blocked_prune(&index, &store, &q, 0, &mut stats);
        assert!(got.contains(&RankingId(42)));
        for &id in &got {
            assert_eq!(store.items(id), q.as_slice());
        }
    }
}
