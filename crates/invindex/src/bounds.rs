//! NRA-style partial-information distance bounds (paper Section 6.2).
//!
//! While index lists are consumed one after another (list-at-a-time), each
//! seen candidate `τ` accumulates three exact quantities:
//!
//! * `exact_seen` — `Σ |τ(i) − q(i)|` over the matched items,
//! * `tau_side_seen` — `Σ (k − τ(i))` over the matched items (what those
//!   items would have contributed had they been absent from `q`),
//! * `q_side_seen` — `Σ (k − q(i))` over the matched items (dito for `q`).
//!
//! With `T(k) = k(k+1)/2` and `processed_q = Σ_{lists processed} (k − q(i))`:
//!
//! * **Lower bound** `L = exact_seen + (processed_q − q_side_seen)`: the
//!   matched contributions are exact; a processed-but-unmatched list means
//!   the item is missing from `τ`, contributing exactly `k − q(i)`; all
//!   unprocessed contributions are optimistically 0. `L` is monotonically
//!   non-decreasing over list processing.
//! * **Upper bound** `U = exact_seen + (T − tau_side_seen) + (T − q_side_seen)`:
//!   every unseen `τ` position `p` contributes at most `k − p`, and every
//!   unmatched query item at most `k − q(i)`; a common-but-unseen item
//!   contributes `|τ(i) − q(i)| ≤ (k − τ(i)) + (k − q(i))`, both addends of
//!   which are present. `U` is monotonically non-increasing and equals the
//!   exact distance once all of `τ`'s occurrences have been seen.
//!
//! ## Soundness under block skipping (Section 6.3)
//!
//! The blocked algorithm never reads blocks with `|j − q(i)| > θ`. Any
//! ranking hidden in a skipped block has a single-item displacement — and
//! hence a total distance — exceeding `θ`: it is *never* a result.
//! Therefore:
//!
//! * `U` stays a true upper bound for every ranking (the inequality above
//!   holds regardless of why an occurrence was unseen), so accepting on
//!   `U ≤ θ` is sound, and for true results (never skipped) `U` converges
//!   to the exact distance, so deciding by `U` after the last list is also
//!   complete.
//! * `L` may overestimate a skipped ranking (it books `k − q(i)` for a
//!   common item), but every such ranking is already disqualified, so
//!   evicting on `L > θ` never loses a result.
//!
//! With *dropped* lists (Lemma 2) the final `U` of a true result may stay
//! above the exact distance (membership in dropped lists is never
//! learned), so `Blocked+Prune+Drop` falls back to one exact distance
//! computation per undecided candidate — these are the DFCs Figure 10
//! reports for that algorithm.

/// Per-candidate accumulator for the partial-information bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateBounds {
    /// `Σ |τ(i) − q(i)|` over matched items.
    pub exact_seen: u32,
    /// `Σ (k − τ(i))` over matched items.
    pub tau_side_seen: u32,
    /// `Σ (k − q(i))` over matched items.
    pub q_side_seen: u32,
}

impl CandidateBounds {
    /// Books a match of the query item at query rank `q_rank` found at
    /// rank `tau_rank` in the candidate.
    #[inline]
    pub fn see(&mut self, k: u32, tau_rank: u32, q_rank: u32) {
        self.exact_seen += tau_rank.abs_diff(q_rank);
        self.tau_side_seen += k - tau_rank;
        self.q_side_seen += k - q_rank;
    }

    /// Lower bound given the `Σ (k − q(i))` of all processed lists.
    #[inline]
    pub fn lower(&self, processed_q: u32) -> u32 {
        self.exact_seen + (processed_q - self.q_side_seen)
    }

    /// Upper bound given `T(k) = k(k+1)/2`.
    #[inline]
    pub fn upper(&self, t_k: u32) -> u32 {
        self.exact_seen + (t_k - self.tau_side_seen) + (t_k - self.q_side_seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_rankings::{one_side_total, ItemId, PositionMap};

    /// Replays list-at-a-time processing of a full (unskipped, undropped)
    /// index over two explicit rankings and checks the bound invariants at
    /// every step.
    fn replay(q: &[u32], tau: &[u32]) {
        let k = q.len() as u32;
        let t_k = one_side_total(q.len());
        let tau_items: Vec<ItemId> = tau.iter().map(|&i| ItemId(i)).collect();
        let q_items: Vec<ItemId> = q.iter().map(|&i| ItemId(i)).collect();
        let truth = PositionMap::new(&q_items).distance_to(&tau_items);

        let mut b = CandidateBounds::default();
        let mut processed_q = 0u32;
        let mut prev_lower = 0u32;
        let mut prev_upper = u32::MAX;
        for (q_rank, qi) in q_items.iter().enumerate() {
            let q_rank = q_rank as u32;
            if let Some(tau_rank) = tau_items.iter().position(|i| i == qi) {
                b.see(k, tau_rank as u32, q_rank);
            }
            processed_q += k - q_rank;
            let lower = b.lower(processed_q);
            let upper = b.upper(t_k);
            assert!(lower >= prev_lower, "L must be non-decreasing");
            assert!(upper <= prev_upper, "U must be non-increasing");
            assert!(lower <= truth, "L={lower} exceeds true distance {truth}");
            assert!(upper >= truth, "U={upper} below true distance {truth}");
            prev_lower = lower;
            prev_upper = upper;
        }
        assert_eq!(
            b.upper(t_k),
            truth,
            "after all lists, U equals the exact distance"
        );
    }

    #[test]
    fn bounds_sandwich_truth_disjoint() {
        replay(&[0, 1, 2, 3, 4], &[10, 11, 12, 13, 14]);
    }

    #[test]
    fn bounds_sandwich_truth_identical() {
        replay(&[7, 6, 3, 9, 5], &[7, 6, 3, 9, 5]);
    }

    #[test]
    fn bounds_sandwich_truth_partial_overlap() {
        replay(&[7, 6, 3, 9, 5], &[7, 1, 6, 5, 2]);
        replay(&[7, 6, 3, 9, 5], &[1, 6, 2, 3, 7]);
        replay(&[7, 6, 3, 9, 5], &[2, 5, 9, 8, 1]);
    }

    #[test]
    fn paper_example_item7_bounds() {
        // Section 6.2: q = [7,6,3,9,5], after only the list of item 7
        // (query rank 0): the paper reports L(τ3)=0, U(τ3)=20, L(τ6)=4 and
        // U(τ6)=24. The τ6 upper bound in the paper approximates the
        // unseen τ positions by the unseen *query* positions
        // (U ≈ L + 2·Σ_unseen(k − q(i))), which can under-estimate the
        // worst case: τ6 holds item 7 at rank 4, so its unseen positions
        // are 0..3 and the certified bound is 4 + (5+4+3+2) + (4+3+2+1)
        // = 28. We implement the certified bound (soundness of early
        // accept depends on it); τ3's bounds agree with the paper exactly.
        let k = 5u32;
        let t_k = one_side_total(5);
        let mut b3 = CandidateBounds::default();
        b3.see(k, 0, 0);
        assert_eq!(b3.lower(k), 0); // processed_q after list 0 = k − 0 = 5
        assert_eq!(b3.upper(t_k), 20);
        let mut b6 = CandidateBounds::default();
        b6.see(k, 4, 0);
        assert_eq!(b6.lower(k), 4);
        assert_eq!(b6.upper(t_k), 28);
    }
}
