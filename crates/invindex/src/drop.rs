//! Pruning by query-ranking overlap (paper Section 6.1, Lemma 2).
//!
//! A ranking within Footrule distance `θ` of the query must overlap it in
//! at least `ω` items, where `L(k, ω) = (k−ω)(k−ω+1)` is the smallest
//! distance achievable at overlap `ω`. Solving `L(k, ω) = θ` gives
//!
//! ```text
//! ω = ⌊ 0.5 · (1 + 2k − √(1 + 4θ)) ⌋        (θ in raw Footrule units)
//! ```
//!
//! Consequently `k − ω` index lists suffice to see every candidate —
//! provided at least one retained list belongs to an item ranked in the
//! query's top `ω` positions (Lemma 2). The positional side condition
//! covers the boundary case `θ = L(k, ω)` exactly: an overlap-ω result
//! then requires its ω common items to fill the query's top-ω positions
//! perfectly, which is impossible once a top-ω item is known to be
//! retained (any displacement costs at least 2 because top-k Footrule
//! distances are even).

use ranksim_rankings::ItemId;

/// The minimum overlap `ω` a result at threshold `theta_raw` must have
/// with a size-`k` query (floored as in the paper; clamped to `0..=k`).
pub fn omega(k: usize, theta_raw: u32) -> usize {
    let disc = (1.0 + 4.0 * theta_raw as f64).sqrt();
    let w = 0.5 * (1.0 + 2.0 * k as f64 - disc);
    w.floor().clamp(0.0, k as f64) as usize
}

/// Selects which query positions' index lists to access.
///
/// Keeps `max(1, k − ω)` lists, dropping the *longest* lists first (the
/// paper's heuristic: dropped work is maximised), while guaranteeing that
/// at least one retained item sits at a query position `< ω` whenever
/// `ω > 0`. Returns the retained query positions, ordered by ascending
/// query position.
///
/// `list_len(pos)` must report the index-list length of the item at query
/// position `pos`.
pub fn keep_positions<F: Fn(usize) -> usize>(
    query: &[ItemId],
    theta_raw: u32,
    list_len: F,
) -> Vec<usize> {
    let mut out = Vec::new();
    let mut tmp = Vec::new();
    keep_positions_into(query, theta_raw, list_len, &mut out, &mut tmp);
    out
}

/// Allocation-free core of [`keep_positions`]: writes the retained
/// positions into `out` using `by_len` as sort scratch (both reusable
/// across queries, e.g. from a `QueryScratch`).
pub fn keep_positions_into<F: Fn(usize) -> usize>(
    query: &[ItemId],
    theta_raw: u32,
    list_len: F,
    out: &mut Vec<usize>,
    by_len: &mut Vec<usize>,
) {
    out.clear();
    let k = query.len();
    let w = omega(k, theta_raw);
    let n_keep = (k - w).max(1);
    if n_keep >= k {
        out.extend(0..k);
        return;
    }
    // Sort positions by list length ascending; keep the shortest lists.
    by_len.clear();
    by_len.extend(0..k);
    by_len.sort_unstable_by_key(|&p| (list_len(p), p));
    out.extend_from_slice(&by_len[..n_keep]);
    // Positional condition of Lemma 2: at least one retained position < ω.
    if w > 0 && !out.iter().any(|&p| p < w) {
        // Swap in the cheapest top-ω list for the most expensive kept one.
        let cheapest_top = (0..w).min_by_key(|&p| (list_len(p), p)).expect("ω > 0");
        let (victim_idx, _) = out
            .iter()
            .enumerate()
            .max_by_key(|&(_, &p)| (list_len(p), p))
            .expect("keep non-empty");
        out[victim_idx] = cheapest_top;
    }
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksim_rankings::{max_distance, min_distance_for_overlap, raw_threshold};

    #[test]
    fn omega_at_zero_threshold_is_k() {
        assert_eq!(omega(10, 0), 10);
        assert_eq!(omega(5, 0), 5);
    }

    #[test]
    fn omega_shrinks_with_threshold() {
        let k = 10;
        let mut prev = k + 1;
        for theta in (0..=max_distance(k)).step_by(2) {
            let w = omega(k, theta);
            assert!(w <= prev, "ω must be non-increasing in θ");
            prev = w;
        }
    }

    #[test]
    fn omega_is_safe_lower_bound() {
        // Any overlap < ω implies minimal distance > θ.
        for k in [5usize, 10, 20] {
            for theta in (0..=max_distance(k)).step_by(4) {
                let w = omega(k, theta);
                if w > 0 {
                    assert!(
                        min_distance_for_overlap(k, w - 1) > theta,
                        "k={k} θ={theta} ω={w}: L(k, ω−1) must exceed θ"
                    );
                }
            }
        }
    }

    #[test]
    fn omega_paper_scale_values() {
        // k=10, θ=0.1 ⇒ raw 11 ⇒ ω = ⌊0.5(21 − √45)⌋ = ⌊7.15⌋ = 7.
        assert_eq!(omega(10, raw_threshold(0.1, 10)), 7);
        // k=10, θ=0.2 ⇒ raw 22 ⇒ ⌊0.5(21 − √89)⌋ = ⌊5.78⌋ = 5.
        assert_eq!(omega(10, raw_threshold(0.2, 10)), 5);
        // k=10, θ=0.3 ⇒ raw 33 ⇒ ⌊0.5(21 − √133)⌋ = ⌊4.73⌋ = 4.
        assert_eq!(omega(10, raw_threshold(0.3, 10)), 4);
    }

    #[test]
    fn keep_positions_drops_longest() {
        let q: Vec<ItemId> = (0..10u32).map(ItemId).collect();
        // List lengths descending in position: position 0 longest.
        let lens = [100usize, 90, 80, 70, 60, 50, 40, 30, 20, 10];
        let kept = keep_positions(&q, 22, |p| lens[p]); // ω = 5, keep 5
        assert_eq!(kept.len(), 5);
        // The shortest lists are positions 5..10, but one top-ω (< 5)
        // position must be swapped in: the cheapest of 0..5 is position 4.
        assert!(kept.contains(&4), "kept={kept:?}");
        assert!(kept.iter().any(|&p| p < 5));
    }

    #[test]
    fn keep_positions_at_least_one_list() {
        let q: Vec<ItemId> = (0..5u32).map(ItemId).collect();
        let kept = keep_positions(&q, 0, |_| 7); // ω = k ⇒ keep max(1, 0)
        assert_eq!(kept.len(), 1);
        assert!(kept[0] < 5, "the single kept list satisfies the condition");
    }

    #[test]
    fn keep_positions_no_drop_at_huge_threshold() {
        let q: Vec<ItemId> = (0..6u32).map(ItemId).collect();
        let kept = keep_positions(&q, max_distance(6), |p| p);
        assert_eq!(kept, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn keep_positions_results_sorted_unique() {
        let q: Vec<ItemId> = (0..8u32).map(ItemId).collect();
        let kept = keep_positions(&q, 18, |p| 8 - p);
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(kept, sorted);
    }
}
