//! [`QueryExecutor`] impls for the inverted-index algorithm family.
//!
//! One executor per paper algorithm, each holding (a shared handle to)
//! the index structure it runs on. The engine builds the index once,
//! wraps it in the matching executor, and dispatches every query through
//! the uniform [`QueryExecutor`] contract — the per-algorithm `match`
//! that used to live in the engine is gone, and the instrumented
//! [`ExecStats`] each call returns feeds the cost-model planner's
//! predicted-vs-actual recalibration loop.

use std::sync::Arc;

use crate::augmented::AugmentedInvertedIndex;
use crate::blocked::BlockedInvertedIndex;
use crate::plain::PlainInvertedIndex;
use crate::{blocked_prune, fv, listmerge};
use ranksim_rankings::{
    ExecStats, ItemId, Kernel, QueryExecutor, QueryScratch, QueryStats, RankingId, RankingStore,
};

/// F&V over the plain inverted index (paper Section 4).
pub struct FvExecutor {
    index: Arc<PlainInvertedIndex>,
    kernel: Kernel,
}

impl FvExecutor {
    /// Wraps a shared plain index with the default distance kernel.
    pub fn new(index: Arc<PlainInvertedIndex>) -> Self {
        Self::with_kernel(index, Kernel::default())
    }

    /// Wraps a shared plain index with an explicit distance kernel.
    pub fn with_kernel(index: Arc<PlainInvertedIndex>, kernel: Kernel) -> Self {
        FvExecutor { index, kernel }
    }
}

impl QueryExecutor for FvExecutor {
    fn name(&self) -> &'static str {
        "F&V"
    }

    fn execute(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> ExecStats {
        let before = *stats;
        fv::filter_validate_into(
            &self.index,
            store,
            query,
            theta_raw,
            self.kernel,
            scratch,
            stats,
            out,
        );
        ExecStats::since(&before, stats)
    }
}

/// F&V with Lemma 2 list dropping (paper Section 6.1).
pub struct FvDropExecutor {
    index: Arc<PlainInvertedIndex>,
    kernel: Kernel,
}

impl FvDropExecutor {
    /// Wraps a shared plain index with the default distance kernel.
    pub fn new(index: Arc<PlainInvertedIndex>) -> Self {
        Self::with_kernel(index, Kernel::default())
    }

    /// Wraps a shared plain index with an explicit distance kernel.
    pub fn with_kernel(index: Arc<PlainInvertedIndex>, kernel: Kernel) -> Self {
        FvDropExecutor { index, kernel }
    }
}

impl QueryExecutor for FvDropExecutor {
    fn name(&self) -> &'static str {
        "F&V+Drop"
    }

    fn execute(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> ExecStats {
        let before = *stats;
        fv::filter_validate_drop_into(
            &self.index,
            store,
            query,
            theta_raw,
            self.kernel,
            scratch,
            stats,
            out,
        );
        ExecStats::since(&before, stats)
    }
}

/// Merge of id-sorted augmented lists with on-the-fly aggregation
/// (paper Section 6.2).
pub struct ListMergeExecutor {
    index: Arc<AugmentedInvertedIndex>,
}

impl ListMergeExecutor {
    /// Wraps a shared augmented index.
    pub fn new(index: Arc<AugmentedInvertedIndex>) -> Self {
        ListMergeExecutor { index }
    }
}

impl QueryExecutor for ListMergeExecutor {
    fn name(&self) -> &'static str {
        "ListMerge"
    }

    fn execute(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> ExecStats {
        let before = *stats;
        listmerge::list_merge_into(&self.index, store, query, theta_raw, scratch, stats, out);
        ExecStats::since(&before, stats)
    }
}

/// Blocked access with NRA-style pruning (paper Section 6.3).
pub struct BlockedPruneExecutor {
    index: Arc<BlockedInvertedIndex>,
    /// Additionally drop lists per Lemma 2 (`Blocked+Prune+Drop`).
    drop_lists: bool,
    kernel: Kernel,
}

impl BlockedPruneExecutor {
    /// Wraps a shared blocked index; `drop_lists` selects the `+Drop`
    /// variant.
    pub fn new(index: Arc<BlockedInvertedIndex>, drop_lists: bool) -> Self {
        Self::with_kernel(index, drop_lists, Kernel::default())
    }

    /// Like [`BlockedPruneExecutor::new`] with an explicit distance
    /// kernel for the `+Drop` variant's fallback validations.
    pub fn with_kernel(index: Arc<BlockedInvertedIndex>, drop_lists: bool, kernel: Kernel) -> Self {
        BlockedPruneExecutor {
            index,
            drop_lists,
            kernel,
        }
    }
}

impl QueryExecutor for BlockedPruneExecutor {
    fn name(&self) -> &'static str {
        if self.drop_lists {
            "Blocked+Prune+Drop"
        } else {
            "Blocked+Prune"
        }
    }

    fn execute(
        &self,
        store: &RankingStore,
        query: &[ItemId],
        theta_raw: u32,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
        out: &mut Vec<RankingId>,
    ) -> ExecStats {
        let before = *stats;
        if self.drop_lists {
            blocked_prune::blocked_prune_drop_into(
                &self.index,
                store,
                query,
                theta_raw,
                self.kernel,
                scratch,
                stats,
                out,
            );
        } else {
            blocked_prune::blocked_prune_into(
                &self.index,
                store,
                query,
                theta_raw,
                self.kernel,
                scratch,
                stats,
                out,
            );
        }
        ExecStats::since(&before, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_equals_scan, perturbed_query, random_store};
    use ranksim_rankings::raw_threshold;

    #[test]
    fn executors_match_their_direct_entry_points() {
        let store = random_store(300, 7, 60, 11);
        let plain = Arc::new(PlainInvertedIndex::build(&store));
        let augmented = Arc::new(AugmentedInvertedIndex::build(&store));
        let blocked = Arc::new(BlockedInvertedIndex::build(&store));
        let executors: Vec<Box<dyn QueryExecutor>> = vec![
            Box::new(FvExecutor::new(plain.clone())),
            Box::new(FvDropExecutor::new(plain)),
            Box::new(ListMergeExecutor::new(augmented)),
            Box::new(BlockedPruneExecutor::new(blocked.clone(), false)),
            Box::new(BlockedPruneExecutor::new(blocked, true)),
        ];
        let mut scratch = QueryScratch::new();
        for seed in 0..6u64 {
            let q = perturbed_query(&store, RankingId((seed * 17 % 300) as u32), 60, seed);
            for theta in [0.0, 0.1, 0.25] {
                let raw = raw_threshold(theta, 7);
                for exec in &executors {
                    let mut stats = QueryStats::new();
                    let mut out = Vec::new();
                    let delta = exec.execute(&store, &q, raw, &mut scratch, &mut stats, &mut out);
                    assert_equals_scan(&store, &q, raw, out);
                    assert_eq!(
                        delta,
                        ExecStats::since(&QueryStats::new(), &stats),
                        "{}: delta must equal the fresh-stats total",
                        exec.name()
                    );
                }
            }
        }
    }

    #[test]
    fn executor_names_match_paper() {
        let store = random_store(50, 5, 30, 3);
        let plain = Arc::new(PlainInvertedIndex::build(&store));
        let blocked = Arc::new(BlockedInvertedIndex::build(&store));
        assert_eq!(FvExecutor::new(plain.clone()).name(), "F&V");
        assert_eq!(FvDropExecutor::new(plain).name(), "F&V+Drop");
        assert_eq!(
            BlockedPruneExecutor::new(blocked.clone(), false).name(),
            "Blocked+Prune"
        );
        assert_eq!(
            BlockedPruneExecutor::new(blocked, true).name(),
            "Blocked+Prune+Drop"
        );
    }
}
